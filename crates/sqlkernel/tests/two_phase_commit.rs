//! Kernel-level two-phase commit: the `Prepare` record, the prepared
//! (in-doubt) window, checkpoint refusal inside it, and recovery's
//! in-doubt resolution against a caller-supplied decision.

use std::sync::Arc;

use sqlkernel::{Database, FaultPlan, MemLogStore, PrepareCrash, SqlError, Value};

fn durable(name: &str) -> (Database, Arc<MemLogStore>) {
    let store = Arc::new(MemLogStore::new());
    let db = Database::with_wal(name, Arc::clone(&store) as Arc<dyn sqlkernel::LogStore>);
    db.connect()
        .execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)", &[])
        .unwrap();
    (db, store)
}

/// Satellite regression: checkpoint already refused while explicit
/// transactions were open; it must also refuse — with the sharper
/// error — while a participant sits in the 2PC prepared window, and
/// succeed again once phase 2 resolves the transaction.
#[test]
fn checkpoint_refuses_while_prepared_window_is_open() {
    let (db, _store) = durable("ckpt2pc");
    let conn = db.connect();
    conn.execute("BEGIN", &[]).unwrap();
    conn.execute("INSERT INTO t VALUES (1, 'one')", &[])
        .unwrap();
    conn.prepare_transaction(77).unwrap();
    assert!(conn.is_prepared());

    let err = db.checkpoint().unwrap_err();
    assert_eq!(err.class(), "txn");
    assert!(
        err.to_string().contains("two-phase commit"),
        "error must name the prepared window, got: {err}"
    );

    conn.commit_prepared().unwrap();
    assert!(!conn.is_prepared());
    db.checkpoint()
        .expect("resolved window must checkpoint cleanly");
    assert_eq!(db.stats().wal_prepares, 1);
    assert_eq!(db.stats().prepared_txns, 0);
}

#[test]
fn prepare_requires_an_open_transaction_and_is_not_reentrant() {
    let (db, _store) = durable("2pcapi");
    let conn = db.connect();
    assert_eq!(conn.prepare_transaction(1).unwrap_err().class(), "txn");
    conn.execute("BEGIN", &[]).unwrap();
    conn.execute("INSERT INTO t VALUES (1, 'x')", &[]).unwrap();
    conn.prepare_transaction(1).unwrap();
    assert_eq!(conn.prepare_transaction(1).unwrap_err().class(), "txn");
    conn.abort_prepared().unwrap();
    assert_eq!(db.table_len("t").unwrap(), 0, "abort left residue");
    assert_eq!(conn.commit_prepared().unwrap_err().class(), "txn");
}

#[test]
fn two_phase_commit_requires_durability() {
    let db = Database::new("mem2pc");
    let conn = db.connect();
    conn.execute("CREATE TABLE t (id INT PRIMARY KEY)", &[])
        .unwrap();
    conn.execute("BEGIN", &[]).unwrap();
    conn.execute("INSERT INTO t VALUES (1)", &[]).unwrap();
    let err = conn.prepare_transaction(5).unwrap_err();
    assert!(err.to_string().contains("durable"), "got: {err}");
}

/// The in-doubt window end to end: vote acknowledged, process dies,
/// recovery commits or aborts strictly according to the decision the
/// resolver reports — and the resolved state survives a *second*
/// recovery (the decision terminators are themselves logged).
#[test]
fn in_doubt_transaction_resolves_by_decision() {
    for (decision, expect_rows) in [(true, 1usize), (false, 0usize)] {
        let (db, store) = durable("indoubt");
        db.set_fault_plan(Some(
            FaultPlan::new(9).crash_at_prepare(0, PrepareCrash::AfterAck),
        ));
        let conn = db.connect();
        conn.execute("BEGIN", &[]).unwrap();
        conn.execute("INSERT INTO t VALUES (?, 'in-doubt')", &[Value::Int(1)])
            .unwrap();
        conn.prepare_transaction(42).unwrap();
        // The process is dead: phase 2 can no longer be delivered.
        assert_eq!(conn.commit_prepared().unwrap_err().class(), "crashed");
        drop(conn);
        drop(db);

        let recovered = Database::recover_resolving(
            "indoubt",
            {
                let s: Arc<dyn sqlkernel::LogStore> = store.clone();
                s
            },
            |txn| {
                assert_eq!(txn.gid, 42);
                Ok(decision)
            },
        )
        .unwrap();
        assert_eq!(recovered.table_len("t").unwrap(), expect_rows);
        let stats = recovered.stats();
        assert_eq!(stats.in_doubt_commits, u64::from(decision));
        assert_eq!(stats.in_doubt_aborts, u64::from(!decision));

        // Second recovery: the appended terminator must have decided the
        // transaction for good — the resolver must not be consulted.
        drop(recovered);
        let again = Database::recover_resolving(
            "indoubt",
            {
                let s: Arc<dyn sqlkernel::LogStore> = store.clone();
                s
            },
            |_| panic!("transaction already decided"),
        )
        .unwrap();
        assert_eq!(again.table_len("t").unwrap(), expect_rows);
        assert_eq!(again.stats().in_doubt_commits, 0);
    }
}

/// Plain `recover` presumes abort: with no coordinator to ask, a
/// prepared-but-undecided transaction must roll back.
#[test]
fn plain_recover_presumes_abort() {
    let (db, store) = durable("presume");
    db.set_fault_plan(Some(
        FaultPlan::new(9).crash_at_prepare(0, PrepareCrash::AfterAck),
    ));
    let conn = db.connect();
    conn.execute("BEGIN", &[]).unwrap();
    conn.execute("INSERT INTO t VALUES (1, 'gone')", &[])
        .unwrap();
    conn.prepare_transaction(7).unwrap();
    drop(conn);
    drop(db);
    let recovered = Database::recover("presume", store as Arc<dyn sqlkernel::LogStore>).unwrap();
    assert_eq!(recovered.table_len("t").unwrap(), 0);
    assert_eq!(recovered.stats().in_doubt_aborts, 1);
}

/// A torn `Prepare` frame is no vote: recovery truncates at the tear and
/// the transaction is an ordinary loser — never in-doubt.
#[test]
fn torn_prepare_is_a_loser_not_in_doubt() {
    let (db, store) = durable("torn");
    db.set_fault_plan(Some(
        FaultPlan::new(9).crash_at_prepare(0, PrepareCrash::Torn),
    ));
    let conn = db.connect();
    conn.execute("BEGIN", &[]).unwrap();
    conn.execute("INSERT INTO t VALUES (1, 'torn')", &[])
        .unwrap();
    assert_eq!(conn.prepare_transaction(7).unwrap_err().class(), "crashed");
    drop(conn);
    drop(db);
    let recovered =
        Database::recover_resolving("torn", store as Arc<dyn sqlkernel::LogStore>, |_| {
            panic!("a torn vote must not surface as in-doubt")
        })
        .unwrap();
    assert_eq!(recovered.table_len("t").unwrap(), 0);
    assert_eq!(recovered.stats().in_doubt_aborts, 0);
}

/// An unacknowledged (but durable) vote surfaces as in-doubt — the
/// coordinator may have died after deciding, so recovery must ask.
#[test]
fn unacked_prepare_still_surfaces_as_in_doubt() {
    let (db, store) = durable("unacked");
    db.set_fault_plan(Some(
        FaultPlan::new(9).crash_at_prepare(0, PrepareCrash::AfterWrite),
    ));
    let conn = db.connect();
    conn.execute("BEGIN", &[]).unwrap();
    conn.execute("INSERT INTO t VALUES (1, 'voted')", &[])
        .unwrap();
    assert_eq!(conn.prepare_transaction(7).unwrap_err().class(), "crashed");
    drop(conn);
    drop(db);
    let mut asked = false;
    let recovered =
        Database::recover_resolving("unacked", store as Arc<dyn sqlkernel::LogStore>, |txn| {
            asked = true;
            assert_eq!(txn.gid, 7);
            Ok(false)
        })
        .unwrap();
    assert!(
        asked,
        "durable vote must be resolved against the decision log"
    );
    assert_eq!(recovered.table_len("t").unwrap(), 0);
}

/// Sequence draws made inside a prepared transaction commit with it: the
/// `Prepare` record carries the sequence states a later `Commit` needs,
/// so recovery must restore them when it resolves to commit.
#[test]
fn committed_in_doubt_transaction_restores_sequences() {
    let store = Arc::new(MemLogStore::new());
    let db = Database::with_wal("seq2pc", Arc::clone(&store) as Arc<dyn sqlkernel::LogStore>);
    db.connect()
        .execute_script(
            "CREATE TABLE t (id INT PRIMARY KEY, v TEXT);
             CREATE SEQUENCE ids START WITH 100;",
        )
        .unwrap();
    db.set_fault_plan(Some(
        FaultPlan::new(9).crash_at_prepare(0, PrepareCrash::AfterAck),
    ));
    let conn = db.connect();
    conn.execute("BEGIN", &[]).unwrap();
    conn.execute("INSERT INTO t VALUES (NEXTVAL('ids'), 'a')", &[])
        .unwrap();
    conn.prepare_transaction(11).unwrap();
    drop(conn);
    drop(db);
    let recovered =
        Database::recover_resolving("seq2pc", store as Arc<dyn sqlkernel::LogStore>, |_| {
            Ok(true)
        })
        .unwrap();
    assert_eq!(recovered.table_len("t").unwrap(), 1);
    // The next draw continues past the committed one instead of
    // re-issuing it.
    let rs = recovered
        .connect()
        .query("SELECT NEXTVAL('ids')", &[])
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(101));
}

/// A resolver error (decision log unreachable) must fail the recovery —
/// never guess.
#[test]
fn unreachable_decision_log_fails_recovery() {
    let (db, store) = durable("noanswer");
    db.set_fault_plan(Some(
        FaultPlan::new(9).crash_at_prepare(0, PrepareCrash::AfterAck),
    ));
    let conn = db.connect();
    conn.execute("BEGIN", &[]).unwrap();
    conn.execute("INSERT INTO t VALUES (1, 'x')", &[]).unwrap();
    conn.prepare_transaction(3).unwrap();
    drop(conn);
    drop(db);
    let err =
        Database::recover_resolving("noanswer", store as Arc<dyn sqlkernel::LogStore>, |_| {
            Err(SqlError::Connection("coordinator unreachable".into()))
        })
        .unwrap_err();
    assert!(err.to_string().contains("unreachable"));
}

/// Dropping the connection of a prepared transaction detaches it
/// instead of aborting: the vote is durable, so only the coordinator's
/// decision (via recovery) may settle it — and until then the engine
/// refuses to checkpoint the undecided state away.
#[test]
fn dropping_a_prepared_connection_detaches_instead_of_aborting() {
    let (db, store) = durable("detach");
    {
        let conn = db.connect();
        conn.execute("BEGIN", &[]).unwrap();
        conn.execute("INSERT INTO t VALUES (1, 'kept')", &[])
            .unwrap();
        conn.prepare_transaction(99).unwrap();
    } // drop: detach, not rollback — no Abort record may hit the log
    assert!(db
        .checkpoint()
        .unwrap_err()
        .to_string()
        .contains("two-phase"));
    drop(db);
    let recovered =
        Database::recover_resolving("detach", store as Arc<dyn sqlkernel::LogStore>, |txn| {
            assert_eq!(txn.gid, 99);
            Ok(true)
        })
        .unwrap();
    assert_eq!(
        recovered.table_len("t").unwrap(),
        1,
        "decision said commit; the dropped connection must not have aborted the vote"
    );
}
