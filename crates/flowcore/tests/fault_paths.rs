//! Fault-path semantics: catch precedence, reverse-order compensation,
//! and `Exit` passing through the recovery machinery untouched.

use std::cell::RefCell;
use std::rc::Rc;

use flowcore::prelude::*;

type Trace = Rc<RefCell<Vec<String>>>;

fn tracer(trace: &Trace, label: &str) -> Snippet {
    let trace = trace.clone();
    let label = label.to_string();
    Snippet::new(label.clone(), move |_ctx| {
        trace.borrow_mut().push(label.clone());
        Ok(())
    })
}

fn failing(trace: &Trace, label: &str, fault: &str) -> Snippet {
    let trace = trace.clone();
    let label = label.to_string();
    let fault = fault.to_string();
    Snippet::new(label.clone(), move |_ctx| {
        trace.borrow_mut().push(label.clone());
        Err(FlowError::fault(fault.clone(), "injected"))
    })
}

fn run(root: impl Activity + 'static) -> CompletedInstance {
    Engine::new()
        .run(&ProcessDefinition::new("test", root), Variables::new())
        .unwrap()
}

// ------------------------------------------------- catch precedence

#[test]
fn named_catch_wins_over_catch_all_declared_first() {
    let trace: Trace = Rc::new(RefCell::new(Vec::new()));
    // The catch-all is declared *before* the named catch; the named one
    // must still win for its fault.
    let inst = run(
        Scope::new("s", Throw::new("t", "orderFailed", "supplier down"))
            .catch_all(tracer(&trace, "generic-handler"))
            .catch("orderFailed", tracer(&trace, "named-handler")),
    );
    assert!(inst.is_completed());
    assert_eq!(*trace.borrow(), vec!["named-handler"]);
    assert_eq!(
        inst.variables.require_scalar("$faultName").unwrap(),
        &sqlkernel::Value::text("orderFailed")
    );
}

#[test]
fn catch_all_still_catches_unnamed_faults() {
    let trace: Trace = Rc::new(RefCell::new(Vec::new()));
    let inst = run(Scope::new("s", Throw::new("t", "somethingElse", "boom"))
        .catch_all(tracer(&trace, "generic-handler"))
        .catch("orderFailed", tracer(&trace, "named-handler")));
    assert!(inst.is_completed());
    assert_eq!(*trace.borrow(), vec!["generic-handler"]);
}

// -------------------------------------------------- compensation

#[test]
fn compensations_run_in_reverse_completion_order() {
    let trace: Trace = Rc::new(RefCell::new(Vec::new()));
    let inst = run(CompensableSequence::new("saga")
        .step_with(
            tracer(&trace, "book-flight"),
            tracer(&trace, "cancel-flight"),
        )
        .step_with(tracer(&trace, "book-hotel"), tracer(&trace, "cancel-hotel"))
        .step_with(tracer(&trace, "book-car"), tracer(&trace, "cancel-car"))
        .step(failing(&trace, "charge-card", "paymentFailed")));
    assert!(inst.is_faulted(), "original fault must be rethrown");
    assert_eq!(
        *trace.borrow(),
        vec![
            "book-flight",
            "book-hotel",
            "book-car",
            "charge-card",
            // reverse completion order:
            "cancel-car",
            "cancel-hotel",
            "cancel-flight",
        ]
    );
    // The compensation run is visible in the audit trail.
    assert!(inst
        .audit
        .events()
        .iter()
        .any(|e| e.kind == "compensate" && e.detail.contains("reverse order")));
    assert!(inst.audit.completed("cancel-hotel"));
}

#[test]
fn steps_without_compensation_are_skipped_during_undo() {
    let trace: Trace = Rc::new(RefCell::new(Vec::new()));
    let inst = run(CompensableSequence::new("saga")
        .step(tracer(&trace, "read-only-check"))
        .step_with(tracer(&trace, "reserve"), tracer(&trace, "unreserve"))
        .step(failing(&trace, "confirm", "confirmFailed")));
    assert!(inst.is_faulted());
    assert_eq!(
        *trace.borrow(),
        vec!["read-only-check", "reserve", "confirm", "unreserve"]
    );
}

#[test]
fn compensable_sequence_inside_scope_hands_fault_to_handler() {
    let trace: Trace = Rc::new(RefCell::new(Vec::new()));
    let inst = run(Scope::new(
        "s",
        CompensableSequence::new("saga")
            .step_with(tracer(&trace, "step1"), tracer(&trace, "undo1"))
            .step(failing(&trace, "step2", "oops")),
    )
    .catch("oops", tracer(&trace, "handler")));
    assert!(inst.is_completed(), "scope handler absorbs the fault");
    assert_eq!(*trace.borrow(), vec!["step1", "step2", "undo1", "handler"]);
}

#[test]
fn failed_compensation_does_not_mask_original_fault() {
    let trace: Trace = Rc::new(RefCell::new(Vec::new()));
    let t2 = trace.clone();
    let bad_comp = Snippet::new("bad-comp", move |_ctx| {
        t2.borrow_mut().push("bad-comp".into());
        Err(FlowError::fault("compBroke", "undo failed"))
    });
    let inst = run(CompensableSequence::new("saga")
        .step_with(tracer(&trace, "a"), bad_comp)
        .step_with(tracer(&trace, "b"), tracer(&trace, "undo-b"))
        .step(failing(&trace, "c", "originalFault")));
    assert!(inst.is_faulted());
    match inst.fault() {
        Some(FlowError::Fault { name, .. }) => assert_eq!(name, "originalFault"),
        other => panic!("expected the original fault, got {other:?}"),
    }
    // Both compensations were attempted, in reverse order, despite the
    // first one (of the reversed pair: undo-b then bad-comp) failing.
    assert_eq!(*trace.borrow(), vec!["a", "b", "c", "undo-b", "bad-comp"]);
    assert!(inst
        .audit
        .events()
        .iter()
        .any(|e| e.kind == "compensate" && e.detail.contains("compensation 'bad-comp' failed")));
}

// ------------------------------------------------------- exit

#[test]
fn exit_does_not_trigger_compensation() {
    let trace: Trace = Rc::new(RefCell::new(Vec::new()));
    let inst = run(CompensableSequence::new("saga")
        .step_with(tracer(&trace, "commit-1"), tracer(&trace, "undo-1"))
        .step(Exit::new("bail"))
        .step_with(tracer(&trace, "never"), tracer(&trace, "undo-never")));
    assert!(
        inst.is_exited(),
        "Exit is a normal termination, not a fault"
    );
    assert_eq!(
        *trace.borrow(),
        vec!["commit-1"],
        "no compensation and no further steps after Exit"
    );
}

#[test]
fn exit_passes_through_scope_without_handlers_firing() {
    let trace: Trace = Rc::new(RefCell::new(Vec::new()));
    let inst = run(Scope::new(
        "s",
        CompensableSequence::new("saga")
            .step_with(tracer(&trace, "step"), tracer(&trace, "undo"))
            .step(Exit::new("bail")),
    )
    .catch_all(tracer(&trace, "handler")));
    assert!(inst.is_exited());
    assert_eq!(*trace.borrow(), vec!["step"]);
}
