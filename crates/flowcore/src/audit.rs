//! Execution audit trail.
//!
//! Every activity execution is recorded with nesting depth, so a finished
//! instance can be rendered as the kind of annotated flow diagram the
//! paper shows in Figures 4, 6 and 8.

use std::fmt;

/// Lifecycle status of one audit event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditStatus {
    Started,
    Completed,
    Faulted,
    /// Informational detail emitted mid-activity (SQL text, bound values…).
    Note,
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct AuditEvent {
    /// Monotonic sequence number within the instance.
    pub seq: u64,
    /// Nesting depth of the activity.
    pub depth: u32,
    /// Activity kind (`sequence`, `sql`, `invoke`, …).
    pub kind: String,
    /// Activity display name.
    pub name: String,
    pub status: AuditStatus,
    /// Free-form detail (SQL statement, fault text, …).
    pub detail: String,
}

/// The ordered event log of one process instance.
#[derive(Debug, Clone, Default)]
pub struct AuditTrail {
    events: Vec<AuditEvent>,
}

impl AuditTrail {
    /// Empty trail.
    pub fn new() -> AuditTrail {
        AuditTrail::default()
    }

    /// Record an event; `depth` comes from the execution context.
    pub fn record(
        &mut self,
        depth: u32,
        kind: &str,
        name: &str,
        status: AuditStatus,
        detail: impl Into<String>,
    ) {
        let seq = self.events.len() as u64;
        self.events.push(AuditEvent {
            seq,
            depth,
            kind: kind.to_string(),
            name: name.to_string(),
            status,
            detail: detail.into(),
        });
    }

    /// All events, in order.
    pub fn events(&self) -> &[AuditEvent] {
        &self.events
    }

    /// Events of a given status.
    pub fn with_status(&self, status: AuditStatus) -> impl Iterator<Item = &AuditEvent> {
        self.events.iter().filter(move |e| e.status == status)
    }

    /// How many activities of `kind` completed?
    pub fn completed_count(&self, kind: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.kind == kind && e.status == AuditStatus::Completed)
            .count()
    }

    /// Did an activity with this name complete?
    pub fn completed(&self, name: &str) -> bool {
        self.events
            .iter()
            .any(|e| e.name == name && e.status == AuditStatus::Completed)
    }

    /// Render the trail as an indented text flow (Figures 4/6/8 output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let marker = match e.status {
                AuditStatus::Started => "▶",
                AuditStatus::Completed => "✓",
                AuditStatus::Faulted => "✗",
                AuditStatus::Note => "·",
            };
            let indent = "  ".repeat(e.depth as usize);
            out.push_str(&format!("{indent}{marker} [{}] {}", e.kind, e.name));
            if !e.detail.is_empty() {
                out.push_str(&format!(" — {}", e.detail));
            }
            out.push('\n');
        }
        out
    }

    /// Only the start events, rendered compactly — the activity order.
    pub fn activity_order(&self) -> Vec<String> {
        self.events
            .iter()
            .filter(|e| e.status == AuditStatus::Started)
            .map(|e| e.name.clone())
            .collect()
    }
}

impl fmt::Display for AuditTrail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut t = AuditTrail::new();
        t.record(0, "sequence", "main", AuditStatus::Started, "");
        t.record(1, "sql", "SQL_1", AuditStatus::Started, "SELECT …");
        t.record(1, "sql", "SQL_1", AuditStatus::Completed, "3 rows");
        t.record(0, "sequence", "main", AuditStatus::Completed, "");
        assert_eq!(t.events().len(), 4);
        assert_eq!(t.completed_count("sql"), 1);
        assert!(t.completed("SQL_1"));
        assert!(!t.completed("SQL_2"));
        assert_eq!(t.activity_order(), vec!["main", "SQL_1"]);
    }

    #[test]
    fn render_indents_by_depth() {
        let mut t = AuditTrail::new();
        t.record(0, "sequence", "main", AuditStatus::Started, "");
        t.record(
            1,
            "invoke",
            "OrderFromSupplier",
            AuditStatus::Faulted,
            "down",
        );
        let s = t.render();
        assert!(s.contains("▶ [sequence] main"));
        assert!(s.contains("  ✗ [invoke] OrderFromSupplier — down"));
    }

    #[test]
    fn sequence_numbers_monotonic() {
        let mut t = AuditTrail::new();
        for i in 0..5 {
            t.record(0, "empty", &format!("e{i}"), AuditStatus::Note, "");
        }
        let seqs: Vec<u64> = t.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }
}
