//! Compensation: saga-style undo for multi-step sequences.
//!
//! A [`CompensableSequence`] pairs each step with an optional
//! *compensation* activity. Steps run in order; if one faults, the
//! compensations of every already-completed step run in **reverse
//! completion order** — the classic saga pattern — and the original
//! fault is then rethrown so enclosing `Scope` handlers still see it.
//! `Exit` is not a fault: [`FlowError::Exited`] passes straight through
//! without compensating, matching `Scope` semantics.
//!
//! Every compensation run is visible in the audit trail: the sequence
//! records a `compensate` note naming the fault and the number of steps
//! being undone, and each compensation body executes through
//! [`exec_activity`], so its own Started/Completed records appear too.

use crate::activity::{exec_activity, Activity, ActivityContext};
use crate::error::{FlowError, FlowResult};

struct CompensableStep {
    step: Box<dyn Activity>,
    compensation: Option<Box<dyn Activity>>,
}

/// A sequence whose completed steps are undone, in reverse order, when a
/// later step faults.
pub struct CompensableSequence {
    name: String,
    steps: Vec<CompensableStep>,
}

impl CompensableSequence {
    /// Empty compensable sequence.
    pub fn new(name: impl Into<String>) -> CompensableSequence {
        CompensableSequence {
            name: name.into(),
            steps: Vec::new(),
        }
    }

    /// Builder: append a step with no compensation (nothing to undo).
    pub fn step(mut self, step: impl Activity + 'static) -> CompensableSequence {
        self.steps.push(CompensableStep {
            step: Box::new(step),
            compensation: None,
        });
        self
    }

    /// Builder: append a step with a compensation to run if a *later*
    /// step faults.
    pub fn step_with(
        mut self,
        step: impl Activity + 'static,
        compensation: impl Activity + 'static,
    ) -> CompensableSequence {
        self.steps.push(CompensableStep {
            step: Box::new(step),
            compensation: Some(Box::new(compensation)),
        });
        self
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Is the sequence empty?
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

impl Activity for CompensableSequence {
    fn kind(&self) -> &str {
        "compensableSequence"
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn children(&self) -> Vec<&dyn Activity> {
        let mut out: Vec<&dyn Activity> = Vec::new();
        for s in &self.steps {
            out.push(s.step.as_ref());
            if let Some(c) = &s.compensation {
                out.push(c.as_ref());
            }
        }
        out
    }
    fn execute(&self, ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
        let mut completed: Vec<usize> = Vec::new();
        for (i, s) in self.steps.iter().enumerate() {
            match exec_activity(s.step.as_ref(), ctx) {
                Ok(()) => completed.push(i),
                // Exit is a normal termination, not a fault: committed
                // steps stand and nothing is compensated.
                Err(FlowError::Exited) => return Err(FlowError::Exited),
                Err(e) => {
                    let to_undo = completed
                        .iter()
                        .filter(|&&j| self.steps[j].compensation.is_some())
                        .count();
                    ctx.note(
                        "compensate",
                        &self.name,
                        format!(
                            "step '{}' faulted ({e}); compensating {to_undo} completed step(s) \
                             in reverse order",
                            s.step.name()
                        ),
                    );
                    for &j in completed.iter().rev() {
                        if let Some(comp) = &self.steps[j].compensation {
                            if let Err(ce) = exec_activity(comp.as_ref(), ctx) {
                                // A failing compensation must not mask the
                                // original fault; record it and continue
                                // undoing the rest.
                                ctx.note(
                                    "compensate",
                                    &self.name,
                                    format!("compensation '{}' failed: {ce}", comp.name()),
                                );
                            }
                        }
                    }
                    return Err(e);
                }
            }
        }
        Ok(())
    }
}
