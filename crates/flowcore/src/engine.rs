//! The process engine: creates instances, runs setup hooks, executes the
//! root activity, runs cleanup hooks, and classifies the outcome.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::activity::{exec_activity, ActivityContext, Extensions};
use crate::audit::{AuditStatus, AuditTrail};
use crate::error::{FlowError, FlowResult};
use crate::process::{CompletedInstance, Outcome, ProcessDefinition};
use crate::service::ServiceRegistry;
use crate::value::Variables;

/// The workflow engine. Holds the service registry (function layer) and
/// hands out instance ids; process state itself is per-run.
#[derive(Debug, Default)]
pub struct Engine {
    services: ServiceRegistry,
    instance_counter: AtomicU64,
}

impl Engine {
    /// Engine with an empty service registry.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// Engine with a pre-populated registry.
    pub fn with_services(services: ServiceRegistry) -> Engine {
        Engine {
            services,
            instance_counter: AtomicU64::new(0),
        }
    }

    /// Mutable access to the registry (registration phase).
    pub fn services_mut(&mut self) -> &mut ServiceRegistry {
        &mut self.services
    }

    /// Shared access to the registry.
    pub fn services(&self) -> &ServiceRegistry {
        &self.services
    }

    /// Run one instance of `def` starting from `initial` variables.
    ///
    /// Returns `Err` only for infrastructure failures in *setup hooks* —
    /// faults during normal execution are reported through
    /// [`CompletedInstance::outcome`] so callers always get the audit
    /// trail and final variable state.
    pub fn run(
        &self,
        def: &ProcessDefinition,
        initial: Variables,
    ) -> FlowResult<CompletedInstance> {
        let instance_id = self.instance_counter.fetch_add(1, Ordering::Relaxed) + 1;
        let mut variables = initial;
        let mut audit = AuditTrail::new();
        let mut extensions = Extensions::new();

        audit.record(
            0,
            "process",
            def.name(),
            AuditStatus::Started,
            format!("instance {instance_id}, mode {:?}", def.mode()),
        );

        let mut ctx = ActivityContext {
            instance_id,
            variables: &mut variables,
            services: &self.services,
            audit: &mut audit,
            mode: def.mode(),
            extensions: &mut extensions,
            depth: 1,
        };

        for hook in def.setup_hooks() {
            hook(&mut ctx)?;
        }

        let result = exec_activity(def.root(), &mut ctx);

        // Cleanup hooks always run; their faults only surface when the
        // body itself succeeded.
        let mut cleanup_fault: Option<FlowError> = None;
        for hook in def.cleanup_hooks() {
            if let Err(e) = hook(&mut ctx) {
                cleanup_fault.get_or_insert(e);
            }
        }

        let outcome = match result {
            Ok(()) => match cleanup_fault {
                None => Outcome::Completed,
                Some(e) => Outcome::Faulted(e),
            },
            Err(FlowError::Exited) => Outcome::Exited,
            Err(e) => Outcome::Faulted(e),
        };

        let status = match &outcome {
            Outcome::Completed | Outcome::Exited => AuditStatus::Completed,
            Outcome::Faulted(_) => AuditStatus::Faulted,
        };
        audit.record(0, "process", def.name(), status, format!("{outcome:?}"));

        Ok(CompletedInstance {
            instance_id,
            process_name: def.name().to_string(),
            outcome,
            variables,
            audit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtins::{Empty, Snippet, Throw};
    use sqlkernel::Value;

    #[test]
    fn instance_ids_increase() {
        let engine = Engine::new();
        let def = ProcessDefinition::new("p", Empty::new("e"));
        let a = engine.run(&def, Variables::new()).unwrap();
        let b = engine.run(&def, Variables::new()).unwrap();
        assert!(b.instance_id > a.instance_id);
    }

    #[test]
    fn setup_and_cleanup_hooks_run() {
        let engine = Engine::new();
        let def = ProcessDefinition::new("p", Empty::new("e"))
            .with_setup(|ctx| {
                ctx.variables.set("setup", Value::Bool(true));
                Ok(())
            })
            .with_cleanup(|ctx| {
                ctx.variables.set("cleanup", Value::Bool(true));
                Ok(())
            });
        let inst = engine.run(&def, Variables::new()).unwrap();
        assert!(inst.variables.contains("setup"));
        assert!(inst.variables.contains("cleanup"));
    }

    #[test]
    fn cleanup_runs_even_on_fault() {
        let engine = Engine::new();
        let def = ProcessDefinition::new("p", Throw::new("t", "f", "m")).with_cleanup(|ctx| {
            ctx.variables.set("cleanup", Value::Bool(true));
            Ok(())
        });
        let inst = engine.run(&def, Variables::new()).unwrap();
        assert!(inst.is_faulted());
        assert!(inst.variables.contains("cleanup"));
    }

    #[test]
    fn cleanup_fault_surfaces_when_body_succeeds() {
        let engine = Engine::new();
        let def = ProcessDefinition::new("p", Empty::new("e"))
            .with_cleanup(|_| Err(FlowError::Variable("cleanup broke".into())));
        let inst = engine.run(&def, Variables::new()).unwrap();
        assert!(inst.is_faulted());
    }

    #[test]
    fn initial_variables_visible() {
        let engine = Engine::new();
        let def = ProcessDefinition::new(
            "p",
            Snippet::new("read", |ctx| {
                ctx.variables.require_scalar("seed")?;
                Ok(())
            }),
        );
        let mut vars = Variables::new();
        vars.set("seed", Value::Int(7));
        let inst = engine.run(&def, vars).unwrap();
        assert!(inst.is_completed());
    }

    #[test]
    fn audit_brackets_process() {
        let engine = Engine::new();
        let def = ProcessDefinition::new("proc", Empty::new("e"));
        let inst = engine.run(&def, Variables::new()).unwrap();
        let events = inst.audit.events();
        assert_eq!(events.first().unwrap().kind, "process");
        assert_eq!(events.last().unwrap().kind, "process");
        assert_eq!(events.last().unwrap().status, AuditStatus::Completed);
    }
}
