//! Workflow fault model.

use std::fmt;

/// Convenient alias.
pub type FlowResult<T> = Result<T, FlowError>;

/// Faults and failures that can occur during process execution.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// A named fault, thrown explicitly (`Throw`) or by an activity.
    /// Caught by `Scope` fault handlers.
    Fault { name: String, message: String },
    /// A variable problem: unknown name, wrong type, bad path.
    Variable(String),
    /// A service invocation problem: unknown service or service failure.
    Service(String),
    /// The process definition itself is invalid.
    Definition(String),
    /// An embedded SQL operation failed.
    Sql(sqlkernel::SqlError),
    /// An XML value operation failed.
    Xml(xmlval::XmlError),
    /// The `Exit` activity terminated the instance. Not a fault — the
    /// engine converts it into a normal (exited) completion.
    Exited,
}

impl FlowError {
    /// Construct a named fault.
    pub fn fault(name: impl Into<String>, message: impl Into<String>) -> FlowError {
        FlowError::Fault {
            name: name.into(),
            message: message.into(),
        }
    }

    /// Is this a *transient* infrastructure failure worth retrying?
    ///
    /// Only two shapes qualify: an embedded SQL error the kernel marks
    /// transient (connection reset, deadlock victim, serialization
    /// failure), and a service failure whose message carries the
    /// `transient:` prefix — the convention for function-layer services
    /// that want the retry layer to re-invoke them. Everything else
    /// (named faults, variable/definition problems, `Exited`) is
    /// deterministic and must not be retried.
    pub fn is_transient(&self) -> bool {
        match self {
            FlowError::Sql(e) => e.is_transient(),
            FlowError::Service(m) => m.starts_with("transient:"),
            _ => false,
        }
    }

    /// Machine-readable class for assertions.
    pub fn class(&self) -> &'static str {
        match self {
            FlowError::Fault { .. } => "fault",
            FlowError::Variable(_) => "variable",
            FlowError::Service(_) => "service",
            FlowError::Definition(_) => "definition",
            FlowError::Sql(_) => "sql",
            FlowError::Xml(_) => "xml",
            FlowError::Exited => "exited",
        }
    }
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Fault { name, message } => write!(f, "fault '{name}': {message}"),
            FlowError::Variable(m) => write!(f, "variable error: {m}"),
            FlowError::Service(m) => write!(f, "service error: {m}"),
            FlowError::Definition(m) => write!(f, "definition error: {m}"),
            FlowError::Sql(e) => write!(f, "sql error: {e}"),
            FlowError::Xml(e) => write!(f, "xml error: {e}"),
            FlowError::Exited => write!(f, "process exited"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<sqlkernel::SqlError> for FlowError {
    fn from(e: sqlkernel::SqlError) -> Self {
        FlowError::Sql(e)
    }
}

impl From<xmlval::XmlError> for FlowError {
    fn from(e: xmlval::XmlError) -> Self {
        FlowError::Xml(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_construction_and_display() {
        let f = FlowError::fault("orderFailed", "supplier unavailable");
        assert_eq!(f.class(), "fault");
        assert!(f.to_string().contains("orderFailed"));
    }

    #[test]
    fn transient_classification() {
        assert!(
            FlowError::Sql(sqlkernel::SqlError::Transient("connection reset".into()))
                .is_transient()
        );
        assert!(FlowError::Service("transient: endpoint flapped".into()).is_transient());
        assert!(!FlowError::Service("no such service".into()).is_transient());
        assert!(!FlowError::Sql(sqlkernel::SqlError::Constraint("pk".into())).is_transient());
        assert!(!FlowError::fault("f", "m").is_transient());
        assert!(!FlowError::Exited.is_transient());
    }

    #[test]
    fn conversions() {
        let s: FlowError = sqlkernel::SqlError::Runtime("x".into()).into();
        assert_eq!(s.class(), "sql");
        let x: FlowError = xmlval::XmlError::Parse("y".into()).into();
        assert_eq!(x.class(), "xml");
    }
}
