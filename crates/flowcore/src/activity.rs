//! The activity model: the choreography layer's unit of work.
//!
//! An [`Activity`] is a stateless description; all run-time state lives in
//! the [`ActivityContext`]. Vendor crates extend the activity set simply
//! by implementing the trait (this is the extension point the paper
//! credits Microsoft WF for, and that IBM's information service
//! activities exploit in BIS).

use std::any::{Any, TypeId};
use std::collections::HashMap;

use crate::audit::{AuditStatus, AuditTrail};
use crate::error::{FlowError, FlowResult};
use crate::service::ServiceRegistry;
use crate::value::Variables;

/// Long-running vs short-running execution (Sec. III-B: in short-running
/// processes all SQL activities share one transaction; in long-running
/// processes boundaries are set explicitly via atomic SQL sequences).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Interruptible process; each activity is its own unit of work
    /// unless bundled by an atomic sequence.
    #[default]
    LongRunning,
    /// Micro-flow; the engine brackets the whole instance in one
    /// transaction scope.
    ShortRunning,
}

/// Type-indexed per-instance extension state for vendor runtimes
/// (data-source bindings, open transactions, cursors, …).
#[derive(Default)]
pub struct Extensions {
    map: HashMap<TypeId, Box<dyn Any + Send>>,
}

impl Extensions {
    /// Empty extension map.
    pub fn new() -> Extensions {
        Extensions::default()
    }

    /// Insert (replacing) a value of type `T`.
    pub fn insert<T: Any + Send>(&mut self, value: T) {
        self.map.insert(TypeId::of::<T>(), Box::new(value));
    }

    /// Shared view of the `T` slot.
    pub fn get<T: Any + Send>(&self) -> Option<&T> {
        self.map
            .get(&TypeId::of::<T>())
            .and_then(|b| b.downcast_ref::<T>())
    }

    /// Mutable view of the `T` slot.
    pub fn get_mut<T: Any + Send>(&mut self) -> Option<&mut T> {
        self.map
            .get_mut(&TypeId::of::<T>())
            .and_then(|b| b.downcast_mut::<T>())
    }

    /// Get the `T` slot, inserting a default first if absent.
    pub fn get_or_insert_with<T: Any + Send>(&mut self, f: impl FnOnce() -> T) -> &mut T {
        self.map
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(f()))
            .downcast_mut::<T>()
            .expect("slot holds T by construction")
    }

    /// Remove the `T` slot.
    pub fn remove<T: Any + Send>(&mut self) -> Option<T> {
        self.map
            .remove(&TypeId::of::<T>())
            .and_then(|b| b.downcast::<T>().ok())
            .map(|b| *b)
    }
}

/// Everything an executing activity can touch.
pub struct ActivityContext<'a> {
    /// Instance id assigned by the engine.
    pub instance_id: u64,
    /// The process variable pool.
    pub variables: &'a mut Variables,
    /// The function layer.
    pub services: &'a ServiceRegistry,
    /// The audit trail.
    pub audit: &'a mut AuditTrail,
    /// Long- vs short-running execution.
    pub mode: ExecutionMode,
    /// Vendor extension state.
    pub extensions: &'a mut Extensions,
    /// Current nesting depth (managed by [`exec_activity`]).
    pub depth: u32,
}

impl ActivityContext<'_> {
    /// Record an informational note against the current activity.
    pub fn note(&mut self, kind: &str, name: &str, detail: impl Into<String>) {
        self.audit
            .record(self.depth + 1, kind, name, AuditStatus::Note, detail);
    }
}

/// One node of the choreography layer.
pub trait Activity {
    /// Activity kind tag (`"sequence"`, `"sql"`, `"invoke"`, …).
    fn kind(&self) -> &str;

    /// Display name.
    fn name(&self) -> &str;

    /// Execute against the context. Child activities must be run through
    /// [`exec_activity`] so nesting depth and audit records stay correct.
    fn execute(&self, ctx: &mut ActivityContext<'_>) -> FlowResult<()>;

    /// Child activities, in declaration order — introspection for
    /// exporters (BPEL markup) and tooling. Composites override this;
    /// basic activities keep the empty default.
    fn children(&self) -> Vec<&dyn Activity> {
        Vec::new()
    }

    /// Extra attributes for markup export (service names, SQL text, …).
    fn export_attributes(&self) -> Vec<(String, String)> {
        Vec::new()
    }
}

/// Total number of activities in a tree (the node itself included).
pub fn activity_count(activity: &dyn Activity) -> usize {
    1 + activity
        .children()
        .iter()
        .map(|c| activity_count(*c))
        .sum::<usize>()
}

/// Execute `activity` with audit bookkeeping. All composite activities and
/// the engine itself funnel through here.
pub fn exec_activity(activity: &dyn Activity, ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
    ctx.audit.record(
        ctx.depth,
        activity.kind(),
        activity.name(),
        AuditStatus::Started,
        "",
    );
    ctx.depth += 1;
    let result = activity.execute(ctx);
    ctx.depth -= 1;
    match &result {
        Ok(()) => ctx.audit.record(
            ctx.depth,
            activity.kind(),
            activity.name(),
            AuditStatus::Completed,
            "",
        ),
        Err(FlowError::Exited) => ctx.audit.record(
            ctx.depth,
            activity.kind(),
            activity.name(),
            AuditStatus::Completed,
            "exit requested",
        ),
        Err(e) => ctx.audit.record(
            ctx.depth,
            activity.kind(),
            activity.name(),
            AuditStatus::Faulted,
            e.to_string(),
        ),
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Probe;
    impl Activity for Probe {
        fn kind(&self) -> &str {
            "probe"
        }
        fn name(&self) -> &str {
            "p"
        }
        fn execute(&self, ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
            ctx.variables.set("ran", sqlkernel::Value::Bool(true));
            ctx.note("probe", "p", "inside");
            Ok(())
        }
    }

    fn with_ctx(f: impl FnOnce(&mut ActivityContext<'_>)) -> (Variables, AuditTrail) {
        let mut vars = Variables::new();
        let services = ServiceRegistry::new();
        let mut audit = AuditTrail::new();
        let mut ext = Extensions::new();
        {
            let mut ctx = ActivityContext {
                instance_id: 1,
                variables: &mut vars,
                services: &services,
                audit: &mut audit,
                mode: ExecutionMode::LongRunning,
                extensions: &mut ext,
                depth: 0,
            };
            f(&mut ctx);
        }
        (vars, audit)
    }

    #[test]
    fn exec_activity_records_lifecycle() {
        let (vars, audit) = with_ctx(|ctx| {
            exec_activity(&Probe, ctx).unwrap();
        });
        assert_eq!(
            vars.require_scalar("ran").unwrap(),
            &sqlkernel::Value::Bool(true)
        );
        let kinds: Vec<_> = audit.events().iter().map(|e| e.status).collect();
        assert_eq!(
            kinds,
            vec![
                AuditStatus::Started,
                AuditStatus::Note,
                AuditStatus::Completed
            ]
        );
    }

    struct Faulty;
    impl Activity for Faulty {
        fn kind(&self) -> &str {
            "faulty"
        }
        fn name(&self) -> &str {
            "f"
        }
        fn execute(&self, _ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
            Err(FlowError::fault("boom", "kaput"))
        }
    }

    #[test]
    fn faults_recorded() {
        let (_, audit) = with_ctx(|ctx| {
            assert!(exec_activity(&Faulty, ctx).is_err());
            assert_eq!(ctx.depth, 0, "depth restored after fault");
        });
        assert_eq!(audit.with_status(AuditStatus::Faulted).count(), 1);
    }

    #[test]
    fn extensions_slots() {
        let mut ext = Extensions::new();
        ext.insert(41u32);
        assert_eq!(ext.get::<u32>(), Some(&41));
        *ext.get_mut::<u32>().unwrap() += 1;
        assert_eq!(ext.remove::<u32>(), Some(42));
        assert!(ext.get::<u32>().is_none());
        let v = ext.get_or_insert_with::<Vec<String>>(Vec::new);
        v.push("x".into());
        assert_eq!(ext.get::<Vec<String>>().unwrap().len(), 1);
    }
}
