//! The built-in activity library: the BPEL-style structured and basic
//! activities every vendor layer builds on.

use sqlkernel::Value;
use xmlval::{Path, XmlNode};

use crate::activity::{exec_activity, Activity, ActivityContext};
use crate::error::{FlowError, FlowResult};
use crate::service::Message;
use crate::value::{VarValue, Variables};

/// A boolean condition over the executing context.
pub type Condition = Box<dyn Fn(&ActivityContext<'_>) -> FlowResult<bool>>;

/// A computed assign source over the variable pool.
pub type ComputeFn = Box<dyn Fn(&Variables) -> FlowResult<VarValue>>;

/// An embedded code body (snippets / code activities).
pub type SnippetBody = Box<dyn Fn(&mut ActivityContext<'_>) -> FlowResult<()>>;

/// Guard against runaway loops in misconfigured processes.
const MAX_LOOP_ITERATIONS: u64 = 1_000_000;

// ---------------------------------------------------------------- sequence

/// Executes children strictly in order.
pub struct Sequence {
    name: String,
    children: Vec<Box<dyn Activity>>,
}

impl Sequence {
    /// Empty sequence.
    pub fn new(name: impl Into<String>) -> Sequence {
        Sequence {
            name: name.into(),
            children: Vec::new(),
        }
    }

    /// Builder: append a child.
    pub fn then(mut self, child: impl Activity + 'static) -> Sequence {
        self.children.push(Box::new(child));
        self
    }

    /// Builder: append a boxed child.
    pub fn then_boxed(mut self, child: Box<dyn Activity>) -> Sequence {
        self.children.push(child);
        self
    }

    /// Number of children.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// Is the sequence empty?
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }
}

impl Activity for Sequence {
    fn kind(&self) -> &str {
        "sequence"
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn children(&self) -> Vec<&dyn Activity> {
        self.children.iter().map(|c| c.as_ref()).collect()
    }
    fn execute(&self, ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
        for child in &self.children {
            exec_activity(child.as_ref(), ctx)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- flow

/// Unordered branches. BPEL's `flow` is conceptually parallel; this
/// engine runs branches one after another (they share one variable pool),
/// which preserves the observable semantics for independent branches.
pub struct Flow {
    name: String,
    branches: Vec<Box<dyn Activity>>,
}

impl Flow {
    /// Empty flow.
    pub fn new(name: impl Into<String>) -> Flow {
        Flow {
            name: name.into(),
            branches: Vec::new(),
        }
    }

    /// Builder: add a branch.
    pub fn branch(mut self, child: impl Activity + 'static) -> Flow {
        self.branches.push(Box::new(child));
        self
    }
}

impl Activity for Flow {
    fn kind(&self) -> &str {
        "flow"
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn children(&self) -> Vec<&dyn Activity> {
        self.branches.iter().map(|c| c.as_ref()).collect()
    }
    fn execute(&self, ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
        for b in &self.branches {
            exec_activity(b.as_ref(), ctx)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- loops

/// `while cond { body }`.
pub struct While {
    name: String,
    cond: Condition,
    body: Box<dyn Activity>,
}

impl While {
    /// Construct a while loop.
    pub fn new(
        name: impl Into<String>,
        cond: impl Fn(&ActivityContext<'_>) -> FlowResult<bool> + 'static,
        body: impl Activity + 'static,
    ) -> While {
        While {
            name: name.into(),
            cond: Box::new(cond),
            body: Box::new(body),
        }
    }
}

impl Activity for While {
    fn kind(&self) -> &str {
        "while"
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn children(&self) -> Vec<&dyn Activity> {
        vec![self.body.as_ref()]
    }
    fn execute(&self, ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
        let mut iterations = 0u64;
        while (self.cond)(ctx)? {
            exec_activity(self.body.as_ref(), ctx)?;
            iterations += 1;
            if iterations >= MAX_LOOP_ITERATIONS {
                return Err(FlowError::Definition(format!(
                    "while '{}' exceeded {MAX_LOOP_ITERATIONS} iterations",
                    self.name
                )));
            }
        }
        Ok(())
    }
}

/// `repeat { body } until cond`.
pub struct RepeatUntil {
    name: String,
    cond: Condition,
    body: Box<dyn Activity>,
}

impl RepeatUntil {
    /// Construct a repeat-until loop.
    pub fn new(
        name: impl Into<String>,
        body: impl Activity + 'static,
        cond: impl Fn(&ActivityContext<'_>) -> FlowResult<bool> + 'static,
    ) -> RepeatUntil {
        RepeatUntil {
            name: name.into(),
            cond: Box::new(cond),
            body: Box::new(body),
        }
    }
}

impl Activity for RepeatUntil {
    fn kind(&self) -> &str {
        "repeatUntil"
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn children(&self) -> Vec<&dyn Activity> {
        vec![self.body.as_ref()]
    }
    fn execute(&self, ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
        let mut iterations = 0u64;
        loop {
            exec_activity(self.body.as_ref(), ctx)?;
            if (self.cond)(ctx)? {
                return Ok(());
            }
            iterations += 1;
            if iterations >= MAX_LOOP_ITERATIONS {
                return Err(FlowError::Definition(format!(
                    "repeatUntil '{}' exceeded {MAX_LOOP_ITERATIONS} iterations",
                    self.name
                )));
            }
        }
    }
}

// ---------------------------------------------------------------- if

/// Two-way conditional.
pub struct If {
    name: String,
    cond: Condition,
    then_branch: Box<dyn Activity>,
    else_branch: Option<Box<dyn Activity>>,
}

impl If {
    /// `if cond { then }`.
    pub fn new(
        name: impl Into<String>,
        cond: impl Fn(&ActivityContext<'_>) -> FlowResult<bool> + 'static,
        then_branch: impl Activity + 'static,
    ) -> If {
        If {
            name: name.into(),
            cond: Box::new(cond),
            then_branch: Box::new(then_branch),
            else_branch: None,
        }
    }

    /// Builder: add an else branch.
    pub fn otherwise(mut self, else_branch: impl Activity + 'static) -> If {
        self.else_branch = Some(Box::new(else_branch));
        self
    }
}

impl Activity for If {
    fn kind(&self) -> &str {
        "if"
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn children(&self) -> Vec<&dyn Activity> {
        let mut out: Vec<&dyn Activity> = vec![self.then_branch.as_ref()];
        if let Some(e) = &self.else_branch {
            out.push(e.as_ref());
        }
        out
    }
    fn execute(&self, ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
        if (self.cond)(ctx)? {
            exec_activity(self.then_branch.as_ref(), ctx)
        } else if let Some(e) = &self.else_branch {
            exec_activity(e.as_ref(), ctx)
        } else {
            Ok(())
        }
    }
}

// ---------------------------------------------------------------- assign

/// Where an assign copy reads from.
pub enum CopyFrom {
    /// A constant.
    Literal(VarValue),
    /// Another variable, wholesale.
    Variable(String),
    /// The string value of a path selection inside an XML variable —
    /// this is the BPEL-specific XPath access of Table II.
    Path { variable: String, path: Path },
    /// The first element selected by a path, cloned as an XML value.
    PathNode { variable: String, path: Path },
    /// Computed from the variable pool (expression escape hatch).
    Compute(ComputeFn),
}

impl CopyFrom {
    /// Shorthand for a path source.
    pub fn path(variable: impl Into<String>, path: &str) -> FlowResult<CopyFrom> {
        Ok(CopyFrom::Path {
            variable: variable.into(),
            path: Path::parse(path)?,
        })
    }

    /// Read the source value from the variable pool.
    pub fn read(&self, vars: &Variables) -> FlowResult<VarValue> {
        match self {
            CopyFrom::Literal(v) => Ok(v.clone()),
            CopyFrom::Variable(name) => Ok(vars.require(name)?.clone()),
            CopyFrom::Path { variable, path } => {
                let xml = vars.require_xml(variable)?;
                let text = path.select_text(xml).ok_or_else(|| {
                    FlowError::Variable(format!(
                        "path '{path}' selected nothing in variable '{variable}'"
                    ))
                })?;
                Ok(VarValue::Scalar(Value::Text(text)))
            }
            CopyFrom::PathNode { variable, path } => {
                let xml = vars.require_xml(variable)?;
                let el = xml
                    .as_element()
                    .and_then(|e| path.select_elements(e).into_iter().next())
                    .ok_or_else(|| {
                        FlowError::Variable(format!(
                            "path '{path}' selected no element in variable '{variable}'"
                        ))
                    })?;
                Ok(VarValue::Xml(XmlNode::Element(el.clone())))
            }
            CopyFrom::Compute(f) => f(vars),
        }
    }
}

/// Where an assign copy writes to.
pub enum CopyTo {
    /// A variable, wholesale.
    Variable(String),
    /// The text content of elements selected by a path inside an XML
    /// variable (covers the UPDATE half of the Tuple IUD pattern).
    Path { variable: String, path: Path },
}

impl CopyTo {
    /// Shorthand for a path target.
    pub fn path(variable: impl Into<String>, path: &str) -> FlowResult<CopyTo> {
        Ok(CopyTo::Path {
            variable: variable.into(),
            path: Path::parse(path)?,
        })
    }

    /// Write `value` to the target.
    pub fn write(&self, vars: &mut Variables, value: VarValue) -> FlowResult<()> {
        match self {
            CopyTo::Variable(name) => {
                vars.set(name.clone(), value);
                Ok(())
            }
            CopyTo::Path { variable, path } => {
                let text = match &value {
                    VarValue::Scalar(v) => v.render(),
                    VarValue::Xml(x) => x.text_content(),
                    VarValue::Null => String::new(),
                    VarValue::Opaque(_) => {
                        return Err(FlowError::Variable(
                            "cannot write an opaque handle through a path".into(),
                        ))
                    }
                };
                let xml = vars.require_xml_mut(variable)?;
                let root = xml.as_element_mut().ok_or_else(|| {
                    FlowError::Variable(format!("variable '{variable}' is not an element"))
                })?;
                let chains = path.select_chains(root)?;
                if chains.is_empty() {
                    return Err(FlowError::Variable(format!(
                        "path '{path}' selected nothing in variable '{variable}'"
                    )));
                }
                for chain in chains {
                    if let Some(el) = xmlval::path::element_by_chain_mut(root, &chain) {
                        el.set_text(text.clone());
                    }
                }
                Ok(())
            }
        }
    }
}

/// One copy rule inside an assign.
pub struct Copy {
    pub from: CopyFrom,
    pub to: CopyTo,
}

/// The BPEL `assign` activity: an ordered list of copies.
pub struct Assign {
    name: String,
    copies: Vec<Copy>,
}

impl Assign {
    /// Empty assign.
    pub fn new(name: impl Into<String>) -> Assign {
        Assign {
            name: name.into(),
            copies: Vec::new(),
        }
    }

    /// Builder: add a copy rule.
    pub fn copy(mut self, from: CopyFrom, to: CopyTo) -> Assign {
        self.copies.push(Copy { from, to });
        self
    }
}

impl Activity for Assign {
    fn kind(&self) -> &str {
        "assign"
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn execute(&self, ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
        for c in &self.copies {
            let v = c.from.read(ctx.variables)?;
            c.to.write(ctx.variables, v)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- invoke

/// Calls a registered service, mapping variables into message parts and
/// reply parts back into variables.
pub struct Invoke {
    name: String,
    service: String,
    inputs: Vec<(String, CopyFrom)>,
    outputs: Vec<(String, String)>,
}

impl Invoke {
    /// Invoke `service`.
    pub fn new(name: impl Into<String>, service: impl Into<String>) -> Invoke {
        Invoke {
            name: name.into(),
            service: service.into(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Builder: bind an input part.
    pub fn input(mut self, part: impl Into<String>, from: CopyFrom) -> Invoke {
        self.inputs.push((part.into(), from));
        self
    }

    /// Builder: route a reply part into a variable.
    pub fn output(mut self, part: impl Into<String>, variable: impl Into<String>) -> Invoke {
        self.outputs.push((part.into(), variable.into()));
        self
    }
}

impl Activity for Invoke {
    fn kind(&self) -> &str {
        "invoke"
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn export_attributes(&self) -> Vec<(String, String)> {
        vec![("partnerService".into(), self.service.clone())]
    }
    fn execute(&self, ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
        let mut msg = Message::new();
        for (part, from) in &self.inputs {
            msg.set_part(part.clone(), from.read(ctx.variables)?);
        }
        ctx.note(
            "invoke",
            &self.name,
            format!("calling service '{}'", self.service),
        );
        let reply = ctx.services.invoke(&self.service, &msg)?;
        for (part, variable) in &self.outputs {
            let v = reply.part(part).cloned().ok_or_else(|| {
                FlowError::Service(format!(
                    "service '{}' reply missing part '{part}'",
                    self.service
                ))
            })?;
            ctx.variables.set(variable.clone(), v);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- simple

/// Does nothing (useful as a placeholder branch).
pub struct Empty {
    name: String,
}

impl Empty {
    /// Construct.
    pub fn new(name: impl Into<String>) -> Empty {
        Empty { name: name.into() }
    }
}

impl Activity for Empty {
    fn kind(&self) -> &str {
        "empty"
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn execute(&self, _ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
        Ok(())
    }
}

/// Raises a named fault.
pub struct Throw {
    name: String,
    fault: String,
    message: String,
}

impl Throw {
    /// Construct.
    pub fn new(
        name: impl Into<String>,
        fault: impl Into<String>,
        message: impl Into<String>,
    ) -> Throw {
        Throw {
            name: name.into(),
            fault: fault.into(),
            message: message.into(),
        }
    }
}

impl Activity for Throw {
    fn kind(&self) -> &str {
        "throw"
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn export_attributes(&self) -> Vec<(String, String)> {
        vec![
            ("faultName".into(), self.fault.clone()),
            ("faultMessage".into(), self.message.clone()),
        ]
    }
    fn execute(&self, _ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
        Err(FlowError::fault(self.fault.clone(), self.message.clone()))
    }
}

/// Terminates the instance immediately (BPEL `exit`).
pub struct Exit {
    name: String,
}

impl Exit {
    /// Construct.
    pub fn new(name: impl Into<String>) -> Exit {
        Exit { name: name.into() }
    }
}

impl Activity for Exit {
    fn kind(&self) -> &str {
        "exit"
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn execute(&self, _ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
        Err(FlowError::Exited)
    }
}

/// Embedded native code — the analog of IBM's Java-Snippets and WF's code
/// activities. The `kind` label is configurable so vendor layers can
/// surface it as `java-snippet` or `code` in audit trails.
pub struct Snippet {
    name: String,
    kind: String,
    body: SnippetBody,
}

impl Snippet {
    /// A snippet with kind `"snippet"`.
    pub fn new(
        name: impl Into<String>,
        body: impl Fn(&mut ActivityContext<'_>) -> FlowResult<()> + 'static,
    ) -> Snippet {
        Snippet::with_kind(name, "snippet", body)
    }

    /// A snippet with a custom kind label.
    pub fn with_kind(
        name: impl Into<String>,
        kind: impl Into<String>,
        body: impl Fn(&mut ActivityContext<'_>) -> FlowResult<()> + 'static,
    ) -> Snippet {
        Snippet {
            name: name.into(),
            kind: kind.into(),
            body: Box::new(body),
        }
    }
}

impl Activity for Snippet {
    fn kind(&self) -> &str {
        &self.kind
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn execute(&self, ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
        (self.body)(ctx)
    }
}

// ---------------------------------------------------------------- scope

/// A fault handler attached to a scope.
pub struct FaultHandler {
    /// Fault name to catch; `None` is catch-all.
    pub catches: Option<String>,
    pub body: Box<dyn Activity>,
}

/// A scope with fault handlers. On a caught fault, the fault's name and
/// message are exposed as `$faultName` / `$faultMessage` variables while
/// the handler runs.
pub struct Scope {
    name: String,
    body: Box<dyn Activity>,
    handlers: Vec<FaultHandler>,
}

impl Scope {
    /// Scope around `body`.
    pub fn new(name: impl Into<String>, body: impl Activity + 'static) -> Scope {
        Scope {
            name: name.into(),
            body: Box::new(body),
            handlers: Vec::new(),
        }
    }

    /// Builder: catch a specific fault.
    pub fn catch(mut self, fault: impl Into<String>, handler: impl Activity + 'static) -> Scope {
        self.handlers.push(FaultHandler {
            catches: Some(fault.into()),
            body: Box::new(handler),
        });
        self
    }

    /// Builder: catch any fault.
    pub fn catch_all(mut self, handler: impl Activity + 'static) -> Scope {
        self.handlers.push(FaultHandler {
            catches: None,
            body: Box::new(handler),
        });
        self
    }
}

impl Activity for Scope {
    fn kind(&self) -> &str {
        "scope"
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn children(&self) -> Vec<&dyn Activity> {
        let mut out: Vec<&dyn Activity> = vec![self.body.as_ref()];
        out.extend(self.handlers.iter().map(|h| h.body.as_ref()));
        out
    }
    fn execute(&self, ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
        match exec_activity(self.body.as_ref(), ctx) {
            Ok(()) => Ok(()),
            Err(FlowError::Exited) => Err(FlowError::Exited),
            Err(e) => {
                let (fault_name, fault_message) = match &e {
                    FlowError::Fault { name, message } => (name.clone(), message.clone()),
                    other => ("systemFault".to_string(), other.to_string()),
                };
                // BPEL catch semantics: a catch naming the fault beats a
                // catch-all, regardless of declaration order.
                let handler = self
                    .handlers
                    .iter()
                    .find(|h| h.catches.as_deref() == Some(fault_name.as_str()))
                    .or_else(|| self.handlers.iter().find(|h| h.catches.is_none()));
                match handler {
                    Some(h) => {
                        ctx.variables
                            .set("$faultName", Value::text(fault_name.clone()));
                        ctx.variables
                            .set("$faultMessage", Value::text(fault_message));
                        exec_activity(h.body.as_ref(), ctx)
                    }
                    None => Err(e),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::process::ProcessDefinition;
    use xmlval::Element;

    fn run(root: impl Activity + 'static) -> crate::process::CompletedInstance {
        let engine = Engine::new();
        let def = ProcessDefinition::new("test", root);
        engine.run(&def, Variables::new()).unwrap()
    }

    fn set_var(name: &str, v: impl Into<VarValue> + Clone + 'static) -> Snippet {
        let name = name.to_string();
        Snippet::new(format!("set {name}"), move |ctx| {
            ctx.variables.set(name.clone(), v.clone().into());
            Ok(())
        })
    }

    #[test]
    fn sequence_runs_in_order() {
        let inst = run(Sequence::new("s")
            .then(set_var("a", Value::Int(1)))
            .then(Snippet::new("check", |ctx| {
                ctx.variables.require_scalar("a")?;
                ctx.variables.set("b", Value::Int(2));
                Ok(())
            })));
        assert!(inst.is_completed());
        assert_eq!(inst.variables.require_scalar("b").unwrap(), &Value::Int(2));
    }

    #[test]
    fn while_loop_counts() {
        let body = Snippet::new("inc", |ctx| {
            let v = ctx.variables.require_scalar("i")?.as_i64().unwrap();
            ctx.variables.set("i", Value::Int(v + 1));
            Ok(())
        });
        let root = Sequence::new("s")
            .then(set_var("i", Value::Int(0)))
            .then(While::new(
                "w",
                |ctx: &ActivityContext<'_>| {
                    Ok(ctx.variables.require_scalar("i")?.as_i64().unwrap() < 5)
                },
                body,
            ));
        let inst = run(root);
        assert_eq!(inst.variables.require_scalar("i").unwrap(), &Value::Int(5));
    }

    #[test]
    fn repeat_until_runs_at_least_once() {
        let root = Sequence::new("s")
            .then(set_var("n", Value::Int(0)))
            .then(RepeatUntil::new(
                "r",
                Snippet::new("inc", |ctx| {
                    let v = ctx.variables.require_scalar("n")?.as_i64().unwrap();
                    ctx.variables.set("n", Value::Int(v + 1));
                    Ok(())
                }),
                |ctx: &ActivityContext<'_>| {
                    Ok(ctx.variables.require_scalar("n")?.as_i64().unwrap() >= 1)
                },
            ));
        let inst = run(root);
        assert_eq!(inst.variables.require_scalar("n").unwrap(), &Value::Int(1));
    }

    #[test]
    fn if_branches() {
        let root = Sequence::new("s").then(set_var("x", Value::Int(10))).then(
            If::new(
                "big?",
                |ctx: &ActivityContext<'_>| {
                    Ok(ctx.variables.require_scalar("x")?.as_i64().unwrap() > 5)
                },
                set_var("r", Value::text("big")),
            )
            .otherwise(set_var("r", Value::text("small"))),
        );
        let inst = run(root);
        assert_eq!(
            inst.variables.require_scalar("r").unwrap(),
            &Value::text("big")
        );
    }

    #[test]
    fn assign_literal_variable_and_paths() {
        let doc = XmlNode::Element(
            Element::new("order")
                .with_text_child("item", "widget")
                .with_text_child("qty", "5"),
        );
        let root = Sequence::new("s").then(set_var("doc", doc)).then(
            Assign::new("a")
                .copy(
                    CopyFrom::Literal(VarValue::Scalar(Value::Int(42))),
                    CopyTo::Variable("answer".into()),
                )
                .copy(
                    CopyFrom::path("doc", "/order/item").unwrap(),
                    CopyTo::Variable("item".into()),
                )
                .copy(
                    CopyFrom::Literal(VarValue::Scalar(Value::Int(9))),
                    CopyTo::path("doc", "/order/qty").unwrap(),
                ),
        );
        let inst = run(root);
        assert_eq!(
            inst.variables.require_scalar("answer").unwrap(),
            &Value::Int(42)
        );
        assert_eq!(
            inst.variables.require_scalar("item").unwrap(),
            &Value::text("widget")
        );
        assert_eq!(
            Path::parse("/order/qty")
                .unwrap()
                .select_text(inst.variables.require_xml("doc").unwrap())
                .as_deref(),
            Some("9")
        );
    }

    #[test]
    fn assign_path_node_clones_subtree() {
        let doc = XmlNode::Element(
            Element::new("rows")
                .with_child(XmlNode::Element(
                    Element::new("row").with_text_child("a", "1"),
                ))
                .with_child(XmlNode::Element(
                    Element::new("row").with_text_child("a", "2"),
                )),
        );
        let root = Sequence::new("s")
            .then(set_var("rows", doc))
            .then(Assign::new("a").copy(
                CopyFrom::PathNode {
                    variable: "rows".into(),
                    path: Path::parse("/rows/row[2]").unwrap(),
                },
                CopyTo::Variable("current".into()),
            ));
        let inst = run(root);
        let cur = inst.variables.require_xml("current").unwrap();
        assert_eq!(cur.text_content(), "2");
    }

    #[test]
    fn assign_missing_path_faults() {
        let root = Sequence::new("s")
            .then(set_var("doc", XmlNode::Element(Element::new("a"))))
            .then(Assign::new("a").copy(
                CopyFrom::path("doc", "/a/missing").unwrap(),
                CopyTo::Variable("x".into()),
            ));
        let engine = Engine::new();
        let def = ProcessDefinition::new("t", root);
        let inst = engine.run(&def, Variables::new()).unwrap();
        assert!(inst.is_faulted());
    }

    #[test]
    fn invoke_maps_parts() {
        let mut engine = Engine::new();
        engine.services_mut().register_fn("double", |input| {
            let v = input.scalar_part("x")?.as_i64().unwrap();
            Ok(Message::new().with_part("y", Value::Int(v * 2)))
        });
        let root = Sequence::new("s").then(set_var("n", Value::Int(21))).then(
            Invoke::new("call", "double")
                .input("x", CopyFrom::Variable("n".into()))
                .output("y", "result"),
        );
        let def = ProcessDefinition::new("t", root);
        let inst = engine.run(&def, Variables::new()).unwrap();
        assert_eq!(
            inst.variables.require_scalar("result").unwrap(),
            &Value::Int(42)
        );
    }

    #[test]
    fn invoke_unknown_service_faults_instance() {
        let root = Invoke::new("call", "missing");
        let inst = run(root);
        assert!(inst.is_faulted());
    }

    #[test]
    fn scope_catches_named_fault() {
        let root = Scope::new(
            "guard",
            Sequence::new("b").then(Throw::new("t", "orderFault", "no stock")),
        )
        .catch("orderFault", set_var("handled", Value::Bool(true)));
        let inst = run(root);
        assert!(inst.is_completed());
        assert_eq!(
            inst.variables.require_scalar("handled").unwrap(),
            &Value::Bool(true)
        );
        assert_eq!(
            inst.variables.require_scalar("$faultName").unwrap(),
            &Value::text("orderFault")
        );
    }

    #[test]
    fn scope_catch_all_handles_system_faults() {
        let root = Scope::new(
            "guard",
            Snippet::new("bad", |ctx| {
                ctx.variables.require("no-such-var")?;
                Ok(())
            }),
        )
        .catch_all(set_var("handled", Value::Bool(true)));
        let inst = run(root);
        assert!(inst.is_completed());
        assert_eq!(
            inst.variables.require_scalar("$faultName").unwrap(),
            &Value::text("systemFault")
        );
    }

    #[test]
    fn scope_without_matching_handler_rethrows() {
        let root = Scope::new("guard", Throw::new("t", "a", "")).catch("b", Empty::new("nope"));
        let inst = run(root);
        assert!(inst.is_faulted());
    }

    #[test]
    fn exit_terminates_instance_cleanly() {
        let root = Sequence::new("s")
            .then(set_var("before", Value::Bool(true)))
            .then(Exit::new("done"))
            .then(set_var("after", Value::Bool(true)));
        let inst = run(root);
        assert!(inst.is_exited());
        assert!(inst.variables.contains("before"));
        assert!(!inst.variables.contains("after"));
    }

    #[test]
    fn exit_passes_through_scope_handlers() {
        let root = Scope::new("guard", Exit::new("bye")).catch_all(Empty::new("never"));
        let inst = run(root);
        assert!(inst.is_exited());
    }

    #[test]
    fn flow_runs_all_branches() {
        let root = Flow::new("f")
            .branch(set_var("a", Value::Int(1)))
            .branch(set_var("b", Value::Int(2)));
        let inst = run(root);
        assert!(inst.variables.contains("a") && inst.variables.contains("b"));
    }

    #[test]
    fn empty_does_nothing() {
        let inst = run(Empty::new("e"));
        assert!(inst.is_completed());
        assert!(inst.audit.completed("e"));
    }
}
