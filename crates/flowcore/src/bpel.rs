//! BPEL markup export.
//!
//! WID produces *“a description of the process in BPEL”* and WF provides
//! *“import and export tools for BPEL”* (Sec. II / IV-A). This module
//! renders a process definition as a BPEL document: the structured
//! activities map to their standard elements, and vendor-specific
//! activity types (SQL activity, retrieve set, SQL database activity,
//! …) appear as `<extensionActivity>` elements carrying their kind —
//! exactly how BPEL accommodates proprietary language extensions.
//!
//! Conditions, copy rules and embedded code are host-language closures
//! in this engine and have no portable markup form; they are exported as
//! `expressionLanguage="code-bound"` markers. The export is therefore an
//! *abstract process* in BPEL terms: structurally complete, executably
//! bound by the host.

use xmlval::{Element, XmlNode};

use crate::activity::Activity;
use crate::process::ProcessDefinition;

/// Namespace used on exported documents.
pub const BPEL_NS: &str = "http://docs.oasis-open.org/wsbpel/2.0/process/executable";

/// The BPEL element name for an activity kind, or `None` for
/// vendor-specific kinds that need an `<extensionActivity>` wrapper.
fn bpel_element(kind: &str) -> Option<&'static str> {
    match kind {
        "sequence" => Some("sequence"),
        "flow" => Some("flow"),
        "while" => Some("while"),
        "repeatUntil" => Some("repeatUntil"),
        "if" => Some("if"),
        "assign" => Some("assign"),
        "invoke" => Some("invoke"),
        "empty" => Some("empty"),
        "throw" => Some("throw"),
        "exit" => Some("exit"),
        "scope" => Some("scope"),
        _ => None,
    }
}

fn export_activity(activity: &dyn Activity) -> Element {
    let children = activity.children();
    let mut el = match bpel_element(activity.kind()) {
        Some(tag) => {
            let mut el = Element::new(tag).with_attr("name", activity.name());
            if matches!(activity.kind(), "while" | "repeatUntil" | "if") {
                el.children.push(XmlNode::Element(
                    Element::new("condition").with_attr("expressionLanguage", "code-bound"),
                ));
            }
            el
        }
        None => Element::new("extensionActivity")
            .with_attr("name", activity.name())
            .with_attr("kind", activity.kind()),
    };
    for (k, v) in activity.export_attributes() {
        el.set_attr(k, v);
    }
    for c in children {
        el.children.push(XmlNode::Element(export_activity(c)));
    }
    el
}

/// Render `def` as a BPEL document.
pub fn export_bpel(def: &ProcessDefinition) -> String {
    let root = Element::new("process")
        .with_attr("name", def.name())
        .with_attr("xmlns", BPEL_NS)
        .with_child(XmlNode::Element(export_activity(def.root())));
    format!(
        "<?xml version=\"1.0\"?>\n{}",
        XmlNode::Element(root).to_pretty_xml()
    )
}

/// Count the `<extensionActivity>` elements an export would contain —
/// the footprint of proprietary functionality in the process model.
pub fn extension_activity_count(def: &ProcessDefinition) -> usize {
    fn rec(a: &dyn Activity) -> usize {
        let own = usize::from(bpel_element(a.kind()).is_none());
        own + a.children().iter().map(|c| rec(*c)).sum::<usize>()
    }
    rec(def.root())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtins::{Empty, If, Invoke, Sequence, Snippet, While};

    fn sample_def() -> ProcessDefinition {
        ProcessDefinition::new(
            "sample",
            Sequence::new("main")
                .then(Invoke::new("call", "svc"))
                .then(While::new(
                    "loop",
                    |_ctx: &crate::ActivityContext<'_>| Ok(false),
                    Snippet::with_kind("step", "java-snippet", |_| Ok(())),
                ))
                .then(If::new("gate", |_| Ok(true), Empty::new("yes")).otherwise(Empty::new("no"))),
        )
    }

    #[test]
    fn export_is_well_formed_xml() {
        let def = sample_def();
        let text = export_bpel(&def);
        let doc = xmlval::parse(&text).unwrap();
        assert_eq!(doc.name, "process");
        assert_eq!(doc.attr("name"), Some("sample"));
        let seq = doc.child("sequence").unwrap();
        assert_eq!(seq.attr("name"), Some("main"));
        assert_eq!(seq.child_elements().count(), 3);
    }

    #[test]
    fn structured_activities_use_standard_elements() {
        let text = export_bpel(&sample_def());
        let doc = xmlval::parse(&text).unwrap();
        let seq = doc.child("sequence").unwrap();
        assert!(seq.child("invoke").is_some());
        let w = seq.child("while").unwrap();
        assert!(w.child("condition").is_some());
        let i = seq.child("if").unwrap();
        assert_eq!(i.children_named("empty").count(), 2);
    }

    #[test]
    fn vendor_kinds_become_extension_activities() {
        let def = sample_def();
        assert_eq!(extension_activity_count(&def), 1); // the java-snippet
        let text = export_bpel(&def);
        assert!(text.contains("extensionActivity"));
        assert!(text.contains("kind=\"java-snippet\""));
    }

    #[test]
    fn activity_count_matches_tree() {
        let def = sample_def();
        // main + invoke + while + snippet + if + yes + no = 7
        assert_eq!(crate::activity::activity_count(def.root()), 7);
    }
}
