//! Parallel multi-instance execution.
//!
//! Every product in the paper runs many workflow instances at once —
//! WebSphere drives them from a J2EE thread pool, Windows Workflow from
//! the CLR scheduler, BPEL Process Manager from its dehydration-store
//! dispatcher. This module is the in-tree analog: a fixed pool of OS
//! worker threads executing N instance jobs, with a *seeded,
//! deterministic* job→worker assignment so any run can be replayed
//! exactly (the same property the fault layer's virtual clock gives
//! single-instance runs).
//!
//! The scheduler is deliberately dumb about the work itself: a job is
//! `Fn(usize) -> R` over the job index. Each stack (bis deployments, wf
//! persistence hosts, soa page sequences) wraps it with a closure that
//! builds the instance's process *inside* the worker — step bodies are
//! not `Send`, so definitions cannot cross the thread boundary, but the
//! factories that make them can.
//!
//! Determinism story: `worker_for` hashes `(seed, index)`, so the
//! partition of jobs onto workers is a pure function of the scheduler's
//! configuration — not of thread timing. Within one worker, its jobs run
//! in ascending index order. Across workers, execution interleaves
//! arbitrarily; anything needing a stronger guarantee (the differential
//! tests comparing against sequential execution) must make the jobs
//! themselves commutative — which instance-per-key workflows over
//! disjoint rows are.

use std::sync::Mutex;

use sqlkernel::fault::SplitMix64;

/// A fixed worker pool driving N instance jobs with a seeded,
/// deterministic assignment of jobs to workers.
#[derive(Debug, Clone)]
pub struct InstanceScheduler {
    workers: usize,
    seed: u64,
}

impl InstanceScheduler {
    /// A scheduler with `workers` OS threads (clamped to at least 1).
    pub fn new(workers: usize) -> InstanceScheduler {
        InstanceScheduler {
            workers: workers.max(1),
            seed: 0,
        }
    }

    /// Reseed the job→worker assignment (equal seeds ⇒ equal partitions).
    pub fn with_seed(mut self, seed: u64) -> InstanceScheduler {
        self.seed = seed;
        self
    }

    /// Pool width.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Which worker runs job `index`? Pure function of `(seed, index)`.
    pub fn worker_for(&self, index: usize) -> usize {
        let mut rng =
            SplitMix64::new(self.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        (rng.next_below(self.workers as u64)) as usize
    }

    /// Run `job(0..count)` across the pool and return the results in job
    /// order. Workers run their assigned jobs in ascending index order;
    /// a panicking job propagates after all workers finish their lists.
    pub fn run_indexed<R, F>(&self, count: usize, job: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Send + Sync,
    {
        // Partition deterministically before any thread starts.
        let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); self.workers];
        for index in 0..count {
            assignments[self.worker_for(index)].push(index);
        }

        let slots: Vec<Mutex<Option<R>>> = (0..count).map(|_| Mutex::new(None)).collect();
        let job = &job;
        let slots_ref = &slots;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.workers);
            for list in &assignments {
                if list.is_empty() {
                    continue;
                }
                handles.push(scope.spawn(move || {
                    for &index in list {
                        *slots_ref[index].lock().expect("result slot poisoned") = Some(job(index));
                    }
                }));
            }
            for h in handles {
                // A worker panic reaches the caller as this join panic.
                if let Err(payload) = h.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every job index was assigned exactly once")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_job_order() {
        let sched = InstanceScheduler::new(4).with_seed(7);
        let out = sched.run_indexed(17, |i| i * 10);
        assert_eq!(out, (0..17).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn assignment_is_deterministic_and_uses_the_pool() {
        let a = InstanceScheduler::new(4).with_seed(42);
        let b = InstanceScheduler::new(4).with_seed(42);
        let map_a: Vec<usize> = (0..64).map(|i| a.worker_for(i)).collect();
        let map_b: Vec<usize> = (0..64).map(|i| b.worker_for(i)).collect();
        assert_eq!(map_a, map_b, "equal seeds give equal partitions");
        let mut seen = [false; 4];
        for w in map_a {
            seen[w] = true;
        }
        assert!(seen.iter().all(|s| *s), "64 jobs touch all 4 workers");
        let c = InstanceScheduler::new(4).with_seed(43);
        let map_c: Vec<usize> = (0..64).map(|i| c.worker_for(i)).collect();
        assert_ne!(map_b, map_c, "different seeds shuffle the partition");
    }

    #[test]
    fn zero_workers_clamps_to_one_and_zero_jobs_is_fine() {
        let sched = InstanceScheduler::new(0);
        assert_eq!(sched.workers(), 1);
        let out: Vec<usize> = sched.run_indexed(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_actually_run_concurrently_across_workers() {
        // Not a timing assertion — just that every job ran exactly once
        // under real threads.
        let counter = AtomicUsize::new(0);
        let sched = InstanceScheduler::new(8).with_seed(1);
        let out = sched.run_indexed(100, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }
}
