//! Parallel multi-instance execution.
//!
//! Every product in the paper runs many workflow instances at once —
//! WebSphere drives them from a J2EE thread pool, Windows Workflow from
//! the CLR scheduler, BPEL Process Manager from its dehydration-store
//! dispatcher. This module is the in-tree analog: a fixed pool of OS
//! worker threads executing N instance jobs, with a *seeded,
//! deterministic* job→worker assignment so any run can be replayed
//! exactly (the same property the fault layer's virtual clock gives
//! single-instance runs).
//!
//! The scheduler is deliberately dumb about the work itself: a job is
//! `Fn(usize) -> R` over the job index. Each stack (bis deployments, wf
//! persistence hosts, soa page sequences) wraps it with a closure that
//! builds the instance's process *inside* the worker — step bodies are
//! not `Send`, so definitions cannot cross the thread boundary, but the
//! factories that make them can.
//!
//! Determinism story: `worker_for` hashes `(seed, index)`, so the
//! partition of jobs onto workers is a pure function of the scheduler's
//! configuration — not of thread timing. Within one worker, its jobs run
//! in ascending index order. Across workers, execution interleaves
//! arbitrarily; anything needing a stronger guarantee (the differential
//! tests comparing against sequential execution) must make the jobs
//! themselves commutative — which instance-per-key workflows over
//! disjoint rows are.

use std::sync::Mutex;

use sqlkernel::fault::SplitMix64;
use sqlkernel::shard::shard_of;
use sqlkernel::Database;

/// A fixed worker pool driving N instance jobs with a seeded,
/// deterministic assignment of jobs to workers.
#[derive(Debug, Clone)]
pub struct InstanceScheduler {
    workers: usize,
    seed: u64,
}

impl InstanceScheduler {
    /// A scheduler with `workers` OS threads (clamped to at least 1).
    pub fn new(workers: usize) -> InstanceScheduler {
        InstanceScheduler {
            workers: workers.max(1),
            seed: 0,
        }
    }

    /// Reseed the job→worker assignment (equal seeds ⇒ equal partitions).
    pub fn with_seed(mut self, seed: u64) -> InstanceScheduler {
        self.seed = seed;
        self
    }

    /// Pool width.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Which worker runs job `index`? Pure function of `(seed, index)`.
    pub fn worker_for(&self, index: usize) -> usize {
        let mut rng =
            SplitMix64::new(self.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        (rng.next_below(self.workers as u64)) as usize
    }

    /// Run `job(0..count)` across the pool and return the results in job
    /// order. Workers run their assigned jobs in ascending index order;
    /// a panicking job propagates after all workers finish their lists.
    pub fn run_indexed<R, F>(&self, count: usize, job: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Send + Sync,
    {
        self.try_run_indexed(count, |i| Ok::<R, std::convert::Infallible>(job(i)))
            .into_iter()
            .map(|slot| match slot {
                Ok(v) => v,
                Err(JobFailure::Panicked(msg)) => {
                    panic!("scheduler job panicked: {msg}")
                }
            })
            .collect()
    }

    /// [`InstanceScheduler::run_indexed`], but with per-job failure
    /// isolation: each job returns a `Result`, a *panicking* job is
    /// contained (caught on its worker, surfaced as
    /// [`JobFailure::Panicked`] in that job's slot) instead of taking
    /// the whole pool down, and a crashed job can never wedge its
    /// siblings — the result slots are poison-transparent, so a panic
    /// mid-store on one worker does not cascade into `expect` panics on
    /// the others. This is the entry point sharded storms use: one
    /// shard's crash is a per-instance error, not a process abort.
    pub fn try_run_indexed<R, E, F>(&self, count: usize, job: F) -> Vec<Result<R, JobFailure<E>>>
    where
        R: Send,
        E: Send,
        F: Fn(usize) -> Result<R, E> + Send + Sync,
    {
        // Partition deterministically before any thread starts.
        let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); self.workers];
        for index in 0..count {
            assignments[self.worker_for(index)].push(index);
        }

        type Slot<R, E> = Mutex<Option<Result<R, JobFailure<E>>>>;
        let slots: Vec<Slot<R, E>> = (0..count).map(|_| Mutex::new(None)).collect();
        let job = &job;
        let slots_ref = &slots;
        std::thread::scope(|scope| {
            for list in &assignments {
                if list.is_empty() {
                    continue;
                }
                scope.spawn(move || {
                    for &index in list {
                        // Contain the job's panic so the rest of this
                        // worker's list (and every other worker) still
                        // runs; the payload lands in the job's own slot.
                        let outcome: Result<R, JobFailure<E>> =
                            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                job(index)
                            })) {
                                Ok(Ok(v)) => Ok(v),
                                Ok(Err(e)) => Err(JobFailure::Failed(e)),
                                Err(payload) => Err(JobFailure::Panicked(panic_message(&payload))),
                            };
                        // Poison-transparent store: a peer that panicked
                        // while holding a slot lock must not wedge us.
                        let mut guard = match slots_ref[index].lock() {
                            Ok(g) => g,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                        *guard = Some(outcome);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                let inner = match slot.into_inner() {
                    Ok(v) => v,
                    Err(poisoned) => poisoned.into_inner(),
                };
                inner.expect("every job index was assigned exactly once")
            })
            .collect()
    }

    /// Run one job per instance key across the pool, handing each job
    /// the shard engine its key hash-routes to (`shard_of`, the same
    /// canonical router the storage layer uses — so the scheduler and
    /// the data agree on placement by construction). Job→worker
    /// assignment stays the seeded `worker_for` partition, independent
    /// of shard count: the same seed runs the same instances on the
    /// same workers whether state lives on 1 engine or 16.
    pub fn run_sharded<R, E, F>(
        &self,
        keys: &[String],
        shards: &[Database],
        job: F,
    ) -> Vec<Result<R, JobFailure<E>>>
    where
        R: Send,
        E: Send,
        F: Fn(usize, &str, &Database) -> Result<R, E> + Send + Sync,
    {
        assert!(!shards.is_empty(), "run_sharded over zero shards");
        self.try_run_indexed(keys.len(), |i| {
            let key = &keys[i];
            let shard = &shards[shard_of(key, shards.len())];
            job(i, key, shard)
        })
    }
}

/// Why a job slot holds no result: the job returned its own error, or it
/// panicked and the panic was contained on its worker.
#[derive(Debug)]
pub enum JobFailure<E> {
    /// The job's own error.
    Failed(E),
    /// The job panicked; the payload's message, best-effort.
    Panicked(String),
}

impl<E> From<E> for JobFailure<E> {
    fn from(e: E) -> JobFailure<E> {
        JobFailure::Failed(e)
    }
}

impl<E: std::fmt::Display> std::fmt::Display for JobFailure<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobFailure::Failed(e) => write!(f, "job failed: {e}"),
            JobFailure::Panicked(msg) => write!(f, "job panicked: {msg}"),
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_job_order() {
        let sched = InstanceScheduler::new(4).with_seed(7);
        let out = sched.run_indexed(17, |i| i * 10);
        assert_eq!(out, (0..17).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn assignment_is_deterministic_and_uses_the_pool() {
        let a = InstanceScheduler::new(4).with_seed(42);
        let b = InstanceScheduler::new(4).with_seed(42);
        let map_a: Vec<usize> = (0..64).map(|i| a.worker_for(i)).collect();
        let map_b: Vec<usize> = (0..64).map(|i| b.worker_for(i)).collect();
        assert_eq!(map_a, map_b, "equal seeds give equal partitions");
        let mut seen = [false; 4];
        for w in map_a {
            seen[w] = true;
        }
        assert!(seen.iter().all(|s| *s), "64 jobs touch all 4 workers");
        let c = InstanceScheduler::new(4).with_seed(43);
        let map_c: Vec<usize> = (0..64).map(|i| c.worker_for(i)).collect();
        assert_ne!(map_b, map_c, "different seeds shuffle the partition");
    }

    #[test]
    fn zero_workers_clamps_to_one_and_zero_jobs_is_fine() {
        let sched = InstanceScheduler::new(0);
        assert_eq!(sched.workers(), 1);
        let out: Vec<usize> = sched.run_indexed(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn panicking_job_is_contained_per_slot() {
        let sched = InstanceScheduler::new(4).with_seed(9);
        let out = sched.try_run_indexed(8, |i| -> Result<usize, String> {
            if i == 3 {
                panic!("job {i} exploded");
            }
            if i == 5 {
                return Err(format!("job {i} failed politely"));
            }
            Ok(i)
        });
        assert_eq!(out.len(), 8);
        for (i, slot) in out.iter().enumerate() {
            match (i, slot) {
                (3, Err(JobFailure::Panicked(msg))) => assert!(msg.contains("exploded")),
                (5, Err(JobFailure::Failed(msg))) => assert!(msg.contains("politely")),
                (_, Ok(v)) => assert_eq!(*v, i),
                (_, other) => panic!("job {i}: unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn run_sharded_routes_keys_to_their_owning_engine() {
        use sqlkernel::shard::shard_of;
        let shards: Vec<Database> = (0..4).map(|i| Database::new(format!("rs{i}"))).collect();
        let keys: Vec<String> = (0..32).map(|i| format!("inst-{i}")).collect();
        let sched = InstanceScheduler::new(4).with_seed(11);
        let out = sched.run_sharded(&keys, &shards, |i, key, db| -> Result<String, String> {
            assert_eq!(key, &keys[i]);
            Ok(db.name().to_string())
        });
        for (key, slot) in keys.iter().zip(&out) {
            let name = slot.as_ref().expect("job failed");
            assert_eq!(name, &format!("rs{}", shard_of(key, 4)));
        }
    }

    #[test]
    fn jobs_actually_run_concurrently_across_workers() {
        // Not a timing assertion — just that every job ran exactly once
        // under real threads.
        let counter = AtomicUsize::new(0);
        let sched = InstanceScheduler::new(8).with_seed(1);
        let out = sched.run_indexed(100, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }
}
