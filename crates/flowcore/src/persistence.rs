//! Workflow instance dehydration and rehydration.
//!
//! The paper's products all park long-running instances in the database
//! between activities — WebSphere Process Server persists BPEL state in
//! DB2, Windows Workflow Foundation ships a `SqlWorkflowPersistenceService`
//! (Fig. 5), and BPEL Process Manager dehydrates between invoke pages.
//! This module reproduces that layer on top of `sqlkernel`'s WAL: instance
//! state (variables, program counter, circuit-breaker state) lives in an
//! ordinary `FLOW_INSTANCES` table, so dehydration rides the same
//! write-ahead log as user data and survives crashes with no extra
//! machinery.
//!
//! # Exactly-once stepping
//!
//! [`PersistenceService::run`] executes a [`DurableProcess`] one
//! [`DurableStep`] at a time. Each step runs inside ONE explicit SQL
//! transaction together with the checkpoint that advances the program
//! counter:
//!
//! ```text
//! BEGIN;
//!   <step body: arbitrary SQL against user tables>;
//!   UPDATE FLOW_INSTANCES SET Pc = pc+1, Vars = <encoded> WHERE InstanceKey = ?;
//! COMMIT;
//! ```
//!
//! A crash anywhere inside the window leaves the transaction uncommitted;
//! recovery undoes it wholesale, so on resume the program counter still
//! points at the interrupted step and it re-runs — its user-table effects
//! and its checkpoint commit or vanish *together*. A completed (committed)
//! step is never re-executed.
//!
//! # Encoding
//!
//! Variables and breaker snapshots are stored as line-oriented text with
//! percent-escaping — deliberately human-readable (`SELECT Vars FROM
//! FLOW_INSTANCES` shows the parked state, just like the paper's products
//! expose instance tables to admin queries). Floats round-trip via their
//! IEEE-754 bit patterns; XML variables via `to_xml` + re-parse. Opaque
//! values cannot be dehydrated and fail fast.

use sqlkernel::{Connection, Database, Value};
use xmlval::XmlNode;

use crate::error::{FlowError, FlowResult};
use crate::retry::{BreakerSnapshot, BreakerState, RetryRuntime};
use crate::value::{VarValue, Variables};

/// Name of the instance-state table.
pub const INSTANCES_TABLE: &str = "FLOW_INSTANCES";

/// Status value while an instance has steps left.
pub const STATUS_RUNNING: &str = "running";
/// Status value once every step has committed.
pub const STATUS_COMPLETED: &str = "completed";

// ---------------------------------------------------------------------------
// Durable process shape
// ---------------------------------------------------------------------------

/// A step body: arbitrary work over process variables and the instance's
/// connection. Runs *inside* the step transaction — it must not issue
/// `BEGIN`/`COMMIT` itself.
pub type StepBody = Box<dyn Fn(&Connection, &mut Variables) -> FlowResult<()>>;

/// One activity of a durable process: a name (used as the retry/breaker
/// key) and its [`StepBody`].
pub struct DurableStep {
    name: String,
    body: StepBody,
}

impl std::fmt::Debug for DurableStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStep")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// A linear sequence of durable steps — the dehydration-aware analog of
/// the engine's `Sequence`. Built with the same fluent style.
#[derive(Debug)]
pub struct DurableProcess {
    name: String,
    steps: Vec<DurableStep>,
}

impl DurableProcess {
    /// Empty process.
    pub fn new(name: impl Into<String>) -> DurableProcess {
        DurableProcess {
            name: name.into(),
            steps: Vec::new(),
        }
    }

    /// Append a step.
    pub fn step(
        mut self,
        name: impl Into<String>,
        body: impl Fn(&Connection, &mut Variables) -> FlowResult<()> + 'static,
    ) -> DurableProcess {
        self.steps.push(DurableStep {
            name: name.into(),
            body: Box::new(body),
        });
        self
    }

    /// Process name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Any steps at all?
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Step names in order.
    pub fn step_names(&self) -> Vec<&str> {
        self.steps.iter().map(|s| s.name.as_str()).collect()
    }
}

// ---------------------------------------------------------------------------
// Service
// ---------------------------------------------------------------------------

/// What a [`PersistenceService::run`] call did.
#[derive(Debug, Clone)]
pub struct DurableRun {
    /// Final process variables (decoded from the committed row).
    pub variables: Variables,
    /// Program counter the run started from (0 = fresh instance).
    pub resumed_from: usize,
    /// Steps executed (and committed) by THIS call.
    pub steps_executed: usize,
    /// The instance had already completed before this call; nothing ran.
    pub already_completed: bool,
}

/// A rehydrated instance image, as read back from `FLOW_INSTANCES`.
#[derive(Debug, Clone)]
pub struct HydratedInstance {
    /// Owning process name.
    pub process: String,
    /// Program counter: index of the next step to run.
    pub pc: usize,
    /// `running` or `completed`.
    pub status: String,
    /// Decoded variables.
    pub variables: Variables,
    /// Dehydrated breaker snapshot `(key, state, failures, opened_at)`.
    pub breakers: Vec<BreakerSnapshot>,
    /// Virtual clock at dehydration time.
    pub clock: u64,
}

/// The persistence service: owns (a handle to) the database holding
/// `FLOW_INSTANCES` and knows how to park and resume instances on it.
#[derive(Debug, Clone)]
pub struct PersistenceService {
    db: Database,
}

impl PersistenceService {
    /// Attach to `db`, creating `FLOW_INSTANCES` if missing. On a durable
    /// database the DDL itself is WAL-logged, so the table survives
    /// crashes like any user table.
    pub fn new(db: &Database) -> FlowResult<PersistenceService> {
        if !db.has_table(INSTANCES_TABLE) {
            let conn = db.connect();
            conn.execute(
                "CREATE TABLE FLOW_INSTANCES (
                    InstanceKey TEXT PRIMARY KEY,
                    Process TEXT,
                    Pc INT,
                    Status TEXT,
                    Vars TEXT,
                    Breakers TEXT
                )",
                &[],
            )?;
        }
        Ok(PersistenceService { db: db.clone() })
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Park instance state explicitly (upsert). `run` does this
    /// implicitly at every step boundary; this entry point serves hosts
    /// that manage their own stepping (the wf stack's Fig. 5 API).
    pub fn dehydrate(
        &self,
        instance_key: &str,
        process: &str,
        pc: usize,
        status: &str,
        vars: &Variables,
        rt: &RetryRuntime,
    ) -> FlowResult<()> {
        let conn = self.db.connect();
        let vars_txt = encode_variables(vars)?;
        let breakers_txt = encode_breakers(rt);
        let existing = conn.query(
            "SELECT Pc FROM FLOW_INSTANCES WHERE InstanceKey = ?",
            &[Value::text(instance_key)],
        )?;
        if existing.rows.is_empty() {
            conn.execute(
                "INSERT INTO FLOW_INSTANCES VALUES (?, ?, ?, ?, ?, ?)",
                &[
                    Value::text(instance_key),
                    Value::text(process),
                    Value::Int(pc as i64),
                    Value::text(status),
                    Value::text(vars_txt),
                    Value::text(breakers_txt),
                ],
            )?;
        } else {
            conn.execute(
                "UPDATE FLOW_INSTANCES SET Process = ?, Pc = ?, Status = ?, Vars = ?, Breakers = ? \
                 WHERE InstanceKey = ?",
                &[
                    Value::text(process),
                    Value::Int(pc as i64),
                    Value::text(status),
                    Value::text(vars_txt),
                    Value::text(breakers_txt),
                    Value::text(instance_key),
                ],
            )?;
        }
        Ok(())
    }

    /// Read an instance back, or `None` if the key is unknown.
    pub fn rehydrate(&self, instance_key: &str) -> FlowResult<Option<HydratedInstance>> {
        let conn = self.db.connect();
        let rs = conn.query(
            "SELECT Process, Pc, Status, Vars, Breakers FROM FLOW_INSTANCES WHERE InstanceKey = ?",
            &[Value::text(instance_key)],
        )?;
        let Some(row) = rs.rows.first() else {
            return Ok(None);
        };
        let (clock, breakers) = decode_breakers(&as_text(&row[4])?)?;
        Ok(Some(HydratedInstance {
            process: as_text(&row[0])?,
            pc: as_int(&row[1])? as usize,
            status: as_text(&row[2])?,
            variables: decode_variables(&as_text(&row[3])?)?,
            breakers,
            clock,
        }))
    }

    /// Program counter and status for `key`, or `None` if unknown.
    pub fn instance_status(&self, instance_key: &str) -> FlowResult<Option<(usize, String)>> {
        Ok(self.rehydrate(instance_key)?.map(|h| (h.pc, h.status)))
    }

    /// Run (or resume) `process` under `instance_key`.
    ///
    /// A fresh key inserts a `running` row at pc 0 with `initial`; a known
    /// key resumes from the parked program counter, variables, and breaker
    /// state (ignoring `initial`). Each step executes inside one explicit
    /// transaction with its pc/vars checkpoint (see module docs), wrapped
    /// in `rt`'s retry/breaker envelope keyed `"<process>:<step>"`. An
    /// already-completed instance returns immediately with
    /// `already_completed = true`.
    pub fn run(
        &self,
        process: &DurableProcess,
        instance_key: &str,
        initial: &Variables,
        rt: &mut RetryRuntime,
    ) -> FlowResult<DurableRun> {
        let conn = self.db.connect();
        // Bookkeeping statements run under the same retry envelope as
        // step bodies — a transient on the hydrate query must not fail
        // the whole run.
        let hydrate_key = format!("{}:hydrate", process.name);
        let (rs, _) = rt.run(&hydrate_key, Some(&self.db), || {
            conn.query(
                "SELECT Process, Pc, Status, Vars, Breakers FROM FLOW_INSTANCES \
                 WHERE InstanceKey = ?",
                &[Value::text(instance_key)],
            )
            .map_err(FlowError::from)
        });
        let rs = rs?;
        let (pc, mut vars_txt) = match rs.rows.first() {
            Some(row) => {
                let owner = as_text(&row[0])?;
                if owner != process.name {
                    return Err(FlowError::Definition(format!(
                        "instance '{instance_key}' belongs to process '{owner}', not '{}'",
                        process.name
                    )));
                }
                let pc = as_int(&row[1])? as usize;
                let status = as_text(&row[2])?;
                let vars_txt = as_text(&row[3])?;
                let (clock, snaps) = decode_breakers(&as_text(&row[4])?)?;
                rt.restore_clock(clock);
                rt.import_breakers(&snaps);
                if status == STATUS_COMPLETED {
                    return Ok(DurableRun {
                        variables: decode_variables(&vars_txt)?,
                        resumed_from: pc,
                        steps_executed: 0,
                        already_completed: true,
                    });
                }
                (pc, vars_txt)
            }
            None => {
                let vars_txt = encode_variables(initial)?;
                let breakers_txt = encode_breakers(rt);
                let (r, _) = rt.run(&hydrate_key, Some(&self.db), || {
                    conn.execute(
                        "INSERT INTO FLOW_INSTANCES VALUES (?, ?, 0, ?, ?, ?)",
                        &[
                            Value::text(instance_key),
                            Value::text(&process.name),
                            Value::text(STATUS_RUNNING),
                            Value::text(&vars_txt),
                            Value::text(&breakers_txt),
                        ],
                    )
                    .map(|_| ())
                    .map_err(FlowError::from)
                });
                r?;
                (0, vars_txt)
            }
        };
        let resumed_from = pc;

        let mut steps_executed = 0usize;
        for (i, step) in process.steps.iter().enumerate().skip(pc) {
            let retry_key = format!("{}:{}", process.name, step.name);
            let next_pc = (i + 1) as i64;
            // Each retry attempt decodes a fresh copy of the parked
            // variables, so a half-mutated attempt never leaks into the
            // next one — attempts are deterministic replays.
            let snapshot = vars_txt.clone();
            let (result, _report) = rt.run(&retry_key, Some(&self.db), || {
                let mut v = decode_variables(&snapshot)?;
                conn.execute("BEGIN", &[])?;
                let r = (step.body)(&conn, &mut v).and_then(|()| {
                    let encoded = encode_variables(&v)?;
                    conn.execute(
                        "UPDATE FLOW_INSTANCES SET Pc = ?, Vars = ? WHERE InstanceKey = ?",
                        &[
                            Value::Int(next_pc),
                            Value::text(&encoded),
                            Value::text(instance_key),
                        ],
                    )?;
                    conn.execute("COMMIT", &[])?;
                    Ok(encoded)
                });
                if r.is_err() {
                    conn.rollback_if_open();
                }
                r
            });
            match result {
                Ok(encoded) => {
                    vars_txt = encoded;
                    steps_executed += 1;
                    // Park breaker state after the step. Deliberately a
                    // separate auto-commit write: a crash between the step
                    // commit and this update loses at most a little breaker
                    // history, never a step.
                    let breakers_txt = encode_breakers(rt);
                    let (r, _) = rt.run(&retry_key, Some(&self.db), || {
                        conn.execute(
                            "UPDATE FLOW_INSTANCES SET Breakers = ? WHERE InstanceKey = ?",
                            &[Value::text(&breakers_txt), Value::text(instance_key)],
                        )
                        .map(|_| ())
                        .map_err(FlowError::from)
                    });
                    r?;
                }
                Err(e) => {
                    // Best effort: park the breaker trips so a later
                    // resume fails fast where this run did. If the
                    // database just "crashed" this fails too — fine.
                    let _ = conn.execute(
                        "UPDATE FLOW_INSTANCES SET Breakers = ? WHERE InstanceKey = ?",
                        &[Value::text(encode_breakers(rt)), Value::text(instance_key)],
                    );
                    return Err(e);
                }
            }
        }

        let (r, _) = rt.run(&hydrate_key, Some(&self.db), || {
            conn.execute(
                "UPDATE FLOW_INSTANCES SET Status = ? WHERE InstanceKey = ?",
                &[Value::text(STATUS_COMPLETED), Value::text(instance_key)],
            )
            .map(|_| ())
            .map_err(FlowError::from)
        });
        r?;
        Ok(DurableRun {
            variables: decode_variables(&vars_txt)?,
            resumed_from,
            steps_executed,
            already_completed: false,
        })
    }
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

fn corrupt(what: &str) -> FlowError {
    FlowError::Variable(format!("corrupt dehydrated state: {what}"))
}

fn as_text(v: &Value) -> FlowResult<String> {
    match v {
        Value::Text(s) => Ok(s.clone()),
        other => Err(corrupt(&format!("expected text column, got {other:?}"))),
    }
}

fn as_int(v: &Value) -> FlowResult<i64> {
    match v {
        Value::Int(i) => Ok(*i),
        other => Err(corrupt(&format!("expected int column, got {other:?}"))),
    }
}

/// Percent-escape everything outside `[A-Za-z0-9_.-]` so names and text
/// payloads survive the line/space-delimited frame.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'.' | b'-' => out.push(b as char),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn unesc(s: &str) -> FlowResult<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if i + 2 >= bytes.len() {
                return Err(corrupt("truncated escape sequence"));
            }
            let hex = std::str::from_utf8(&bytes[i + 1..i + 3])
                .map_err(|_| corrupt("non-utf8 escape sequence"))?;
            let v = u8::from_str_radix(hex, 16).map_err(|_| corrupt("bad hex escape sequence"))?;
            out.push(v);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| corrupt("escaped payload is not utf-8"))
}

/// Encode variables as one `name tag [payload]` line each, sorted by name
/// (deterministic — identical states encode identically, which the crash
/// tests rely on for fingerprint comparison).
pub fn encode_variables(vars: &Variables) -> FlowResult<String> {
    let mut lines = Vec::new();
    for name in vars.names() {
        let v = vars.get(name).expect("name listed by names()");
        let line = match v {
            VarValue::Null => format!("{} null", esc(name)),
            VarValue::Scalar(Value::Null) => format!("{} snull", esc(name)),
            VarValue::Scalar(Value::Bool(b)) => format!("{} bool {b}", esc(name)),
            VarValue::Scalar(Value::Int(i)) => format!("{} int {i}", esc(name)),
            VarValue::Scalar(Value::Float(f)) => format!("{} float {}", esc(name), f.to_bits()),
            VarValue::Scalar(Value::Text(t)) => format!("{} text {}", esc(name), esc(t)),
            VarValue::Xml(n @ XmlNode::Element(_)) => {
                format!("{} xml {}", esc(name), esc(&n.to_xml()))
            }
            VarValue::Xml(XmlNode::Text(t)) => format!("{} xmltext {}", esc(name), esc(t)),
            VarValue::Opaque(_) => {
                return Err(FlowError::Variable(format!(
                    "variable '{name}' holds an opaque host object and cannot be dehydrated"
                )))
            }
        };
        lines.push(line);
    }
    Ok(lines.join("\n"))
}

/// Inverse of [`encode_variables`].
pub fn decode_variables(text: &str) -> FlowResult<Variables> {
    let mut vars = Variables::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(3, ' ');
        let name = unesc(parts.next().ok_or_else(|| corrupt("empty variable line"))?)?;
        let tag = parts
            .next()
            .ok_or_else(|| corrupt("variable line missing type tag"))?;
        let payload = parts.next();
        fn need(p: Option<&str>) -> FlowResult<&str> {
            p.ok_or_else(|| corrupt("variable line missing payload"))
        }
        let value = match tag {
            "null" => VarValue::Null,
            "snull" => VarValue::Scalar(Value::Null),
            "bool" => VarValue::Scalar(Value::Bool(match need(payload)? {
                "true" => true,
                "false" => false,
                other => return Err(corrupt(&format!("bad bool payload '{other}'"))),
            })),
            "int" => VarValue::Scalar(Value::Int(
                need(payload)?
                    .parse::<i64>()
                    .map_err(|_| corrupt("bad int payload"))?,
            )),
            "float" => VarValue::Scalar(Value::Float(f64::from_bits(
                need(payload)?
                    .parse::<u64>()
                    .map_err(|_| corrupt("bad float payload"))?,
            ))),
            "text" => VarValue::Scalar(Value::Text(unesc(need(payload)?)?)),
            "xml" => {
                let xml = unesc(need(payload)?)?;
                VarValue::Xml(XmlNode::Element(xmlval::parse(&xml)?))
            }
            "xmltext" => VarValue::Xml(XmlNode::Text(unesc(need(payload)?)?)),
            other => return Err(corrupt(&format!("unknown variable tag '{other}'"))),
        };
        vars.set(name, value);
    }
    Ok(vars)
}

fn state_name(s: BreakerState) -> &'static str {
    match s {
        BreakerState::Closed => "closed",
        BreakerState::Open => "open",
        BreakerState::HalfOpen => "half_open",
    }
}

fn state_from_name(s: &str) -> FlowResult<BreakerState> {
    match s {
        "closed" => Ok(BreakerState::Closed),
        "open" => Ok(BreakerState::Open),
        "half_open" => Ok(BreakerState::HalfOpen),
        other => Err(corrupt(&format!("unknown breaker state '{other}'"))),
    }
}

/// Encode the runtime's virtual clock and breaker snapshot.
pub fn encode_breakers(rt: &RetryRuntime) -> String {
    let mut lines = vec![format!("clock {}", rt.now())];
    for (key, state, failures, opened_at) in rt.export_breakers() {
        lines.push(format!(
            "{} {} {failures} {opened_at}",
            esc(&key),
            state_name(state)
        ));
    }
    lines.join("\n")
}

/// Inverse of [`encode_breakers`]: `(clock, snapshot)`.
pub fn decode_breakers(text: &str) -> FlowResult<(u64, Vec<BreakerSnapshot>)> {
    let mut clock = 0u64;
    let mut snaps = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split(' ').collect();
        match parts.as_slice() {
            ["clock", ticks] => {
                clock = ticks.parse().map_err(|_| corrupt("bad clock payload"))?;
            }
            [key, state, failures, opened_at] => snaps.push((
                unesc(key)?,
                state_from_name(state)?,
                failures
                    .parse()
                    .map_err(|_| corrupt("bad breaker failure count"))?,
                opened_at
                    .parse()
                    .map_err(|_| corrupt("bad breaker opened_at"))?,
            )),
            _ => return Err(corrupt("malformed breaker line")),
        }
    }
    Ok((clock, snaps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlkernel::{Database, MemLogStore};
    use std::cell::Cell;
    use std::rc::Rc;
    use std::sync::Arc;
    use xmlval::Element;

    fn demo_vars() -> Variables {
        let mut v = Variables::new();
        v.set("count", VarValue::Scalar(Value::Int(7)));
        v.set("ratio", VarValue::Scalar(Value::Float(0.1 + 0.2)));
        v.set("who", VarValue::Scalar(Value::Text("a b\nc%".into())));
        v.set("flag", VarValue::Scalar(Value::Bool(true)));
        v.set("missing", VarValue::Null);
        v.set(
            "doc",
            VarValue::Xml(XmlNode::Element(
                Element::new("order").with_child(XmlNode::text("x<y&z")),
            )),
        );
        v
    }

    #[test]
    fn variables_roundtrip() {
        let vars = demo_vars();
        let encoded = encode_variables(&vars).unwrap();
        let back = decode_variables(&encoded).unwrap();
        assert_eq!(back.names(), vars.names());
        assert_eq!(
            back.require_scalar("who").unwrap(),
            &Value::Text("a b\nc%".into())
        );
        assert_eq!(
            back.require_scalar("ratio").unwrap(),
            &Value::Float(0.1 + 0.2),
            "floats round-trip bit-exactly"
        );
        assert_eq!(
            back.require_xml("doc").unwrap().text_content(),
            "x<y&z",
            "xml text survives escaping"
        );
        // Deterministic: encoding the decoded state is byte-identical.
        assert_eq!(encode_variables(&back).unwrap(), encoded);
    }

    #[test]
    fn opaque_variables_refuse_to_dehydrate() {
        let mut v = Variables::new();
        v.set(
            "handle",
            VarValue::Opaque(crate::value::OpaqueValue::new("conn", 1u32)),
        );
        let err = encode_variables(&v).unwrap_err();
        assert!(err.to_string().contains("opaque"));
    }

    #[test]
    fn breaker_snapshot_roundtrip() {
        let mut rt = RetryRuntime::new(3)
            .with_policy(crate::retry::RetryPolicy::no_retry())
            .with_breaker(crate::retry::BreakerConfig {
                failure_threshold: 1,
                cooldown_ticks: 50,
            });
        let (_, _) = rt.run("svc a", None, || {
            Err::<(), _>(FlowError::Sql(sqlkernel::SqlError::Transient("r".into())))
        });
        assert_eq!(rt.breaker_state("svc a"), BreakerState::Open);
        let encoded = encode_breakers(&rt);

        let mut rt2 = RetryRuntime::new(3).with_breaker(crate::retry::BreakerConfig {
            failure_threshold: 1,
            cooldown_ticks: 50,
        });
        let (clock, snaps) = decode_breakers(&encoded).unwrap();
        rt2.restore_clock(clock);
        rt2.import_breakers(&snaps);
        assert_eq!(rt2.breaker_state("svc a"), BreakerState::Open);
        assert_eq!(rt2.now(), rt.now());
        // Still inside the cooldown: fails fast without admitting the op.
        let mut invoked = false;
        let (r, _) = rt2.run("svc a", None, || {
            invoked = true;
            Ok(())
        });
        assert!(r.is_err() && !invoked, "rehydrated breaker still open");
    }

    fn counting_process(effects: &Rc<Cell<u32>>) -> DurableProcess {
        let e1 = Rc::clone(effects);
        let e2 = Rc::clone(effects);
        DurableProcess::new("demo")
            .step("first", move |conn, vars| {
                e1.set(e1.get() + 1);
                conn.execute("INSERT INTO LOG VALUES (1, 'first')", &[])?;
                vars.set("stage", VarValue::Scalar(Value::Int(1)));
                Ok(())
            })
            .step("second", move |conn, vars| {
                e2.set(e2.get() + 1);
                conn.execute("INSERT INTO LOG VALUES (2, 'second')", &[])?;
                vars.set("stage", VarValue::Scalar(Value::Int(2)));
                Ok(())
            })
    }

    fn log_table(db: &Database) {
        db.connect()
            .execute("CREATE TABLE LOG (id INT PRIMARY KEY, note TEXT)", &[])
            .unwrap();
    }

    #[test]
    fn fresh_instance_runs_all_steps_and_completes() {
        let db = Database::new("p");
        log_table(&db);
        let svc = PersistenceService::new(&db).unwrap();
        let effects = Rc::new(Cell::new(0));
        let proc_ = counting_process(&effects);
        let mut rt = RetryRuntime::new(1);
        let run = svc.run(&proc_, "i-1", &Variables::new(), &mut rt).unwrap();
        assert_eq!(run.steps_executed, 2);
        assert_eq!(run.resumed_from, 0);
        assert!(!run.already_completed);
        assert_eq!(
            run.variables.require_scalar("stage").unwrap(),
            &Value::Int(2)
        );
        assert_eq!(
            svc.instance_status("i-1").unwrap(),
            Some((2, STATUS_COMPLETED.into()))
        );
        assert_eq!(effects.get(), 2);
    }

    #[test]
    fn completed_instance_does_not_rerun() {
        let db = Database::new("p");
        log_table(&db);
        let svc = PersistenceService::new(&db).unwrap();
        let effects = Rc::new(Cell::new(0));
        let proc_ = counting_process(&effects);
        let mut rt = RetryRuntime::new(1);
        svc.run(&proc_, "i-1", &Variables::new(), &mut rt).unwrap();
        let again = svc.run(&proc_, "i-1", &Variables::new(), &mut rt).unwrap();
        assert!(again.already_completed);
        assert_eq!(again.steps_executed, 0);
        assert_eq!(effects.get(), 2, "no step re-executed");
    }

    #[test]
    fn key_collision_across_processes_is_rejected() {
        let db = Database::new("p");
        log_table(&db);
        let svc = PersistenceService::new(&db).unwrap();
        let effects = Rc::new(Cell::new(0));
        let proc_ = counting_process(&effects);
        let mut rt = RetryRuntime::new(1);
        svc.run(&proc_, "i-1", &Variables::new(), &mut rt).unwrap();
        let other = DurableProcess::new("other").step("s", |_, _| Ok(()));
        let err = svc
            .run(&other, "i-1", &Variables::new(), &mut rt)
            .unwrap_err();
        assert_eq!(err.class(), "definition");
    }

    #[test]
    fn crash_mid_step_resumes_without_replaying_committed_steps() {
        // Durable database; crash during the SECOND step's body, after the
        // first step committed. Resume from the recovered log must re-run
        // only the second step, and its first attempt's partial work must
        // be invisible.
        let store = MemLogStore::new();
        let db = Database::with_wal("p", Arc::new(store.clone()));
        log_table(&db);
        let svc = PersistenceService::new(&db).unwrap();
        let effects = Rc::new(Cell::new(0));
        let proc_ = counting_process(&effects);
        let mut rt = RetryRuntime::new(1);

        // The second step's INSERT is the 2nd statement of its txn
        // (BEGIN is unnumbered by the fault gate only for Begin itself);
        // probe statement indexes until the crash actually fires.
        let mut crashed = false;
        for idx in 0..24 {
            let db = Database::recover("p", Arc::new(store.clone())).unwrap();
            let svc = PersistenceService::new(&db).unwrap();
            db.set_fault_plan(Some(sqlkernel::FaultPlan::new(7).fault_at(
                idx,
                sqlkernel::Fault::Crash(sqlkernel::CrashPoint::MidApply),
            )));
            let r = svc.run(&proc_, "i-9", &Variables::new(), &mut rt);
            if db.fault_injector().map(|i| i.frozen()).unwrap_or(false) {
                assert!(r.is_err(), "a crash must surface as an error");
                crashed = true;
                break;
            }
            // No crash fired at this index (read statement or run already
            // complete): reset the instance for the next probe.
            if r.is_ok() {
                let conn = db.connect();
                conn.execute("DELETE FROM FLOW_INSTANCES WHERE InstanceKey = 'i-9'", &[])
                    .unwrap();
                conn.execute("DELETE FROM LOG", &[]).unwrap();
                effects.set(0);
            }
        }
        assert!(crashed, "no probe index produced a crash");

        // "Reboot": recover strictly from the log.
        let db2 = Database::recover("p", Arc::new(store.clone())).unwrap();
        let svc2 = PersistenceService::new(&db2).unwrap();
        let before = effects.get();
        let run = svc2.run(&proc_, "i-9", &Variables::new(), &mut rt).unwrap();
        assert!(!run.already_completed);
        assert!(run.resumed_from <= 2);
        let rs = db2
            .connect()
            .query("SELECT id FROM LOG ORDER BY id", &[])
            .unwrap();
        assert_eq!(rs.rows.len(), 2, "exactly one row per step, exactly once");
        assert_eq!(
            svc2.instance_status("i-9").unwrap(),
            Some((2, STATUS_COMPLETED.into()))
        );
        assert!(
            effects.get() > before,
            "the interrupted step re-executed after recovery"
        );
        let _ = svc; // first durable handle kept alive until here
    }

    #[test]
    fn dehydrate_rehydrate_explicit_api() {
        let db = Database::new("p");
        let svc = PersistenceService::new(&db).unwrap();
        let rt = RetryRuntime::new(9);
        let vars = demo_vars();
        svc.dehydrate("wf-1", "explicit", 3, STATUS_RUNNING, &vars, &rt)
            .unwrap();
        let h = svc.rehydrate("wf-1").unwrap().unwrap();
        assert_eq!(h.process, "explicit");
        assert_eq!(h.pc, 3);
        assert_eq!(h.status, STATUS_RUNNING);
        assert_eq!(h.variables.names(), vars.names());
        // Upsert path.
        svc.dehydrate("wf-1", "explicit", 4, STATUS_COMPLETED, &vars, &rt)
            .unwrap();
        assert_eq!(
            svc.instance_status("wf-1").unwrap(),
            Some((4, STATUS_COMPLETED.into()))
        );
        assert!(svc.rehydrate("nope").unwrap().is_none());
    }
}
