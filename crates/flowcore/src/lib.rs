//! `flowcore` — a BPEL-style workflow engine.
//!
//! The paper's products share a *two-level programming model* (Sec. II):
//! a **function layer** of executable components (Web services) and a
//! **choreography layer** that orders them. `flowcore` reproduces both:
//!
//! * [`service::ServiceRegistry`] — the function layer; anything
//!   implementing [`service::Service`] is invocable,
//! * [`activity::Activity`] — the choreography layer's extensible
//!   activity model, with the BPEL built-ins in [`builtins`]:
//!   `Sequence`, `Flow`, `While`, `RepeatUntil`, `If`, `Assign` (with
//!   XPath-style copy sources/targets), `Invoke`, `Scope` with fault
//!   handlers, `Throw`, `Exit`, `Empty`, and `Snippet` (the Java-Snippet
//!   / code-activity analog),
//! * [`engine::Engine`] — instance execution with setup/cleanup hooks
//!   (the substrate for IBM BIS preparation/cleanup statements),
//!   long-running vs short-running modes, and a full [`audit::AuditTrail`]
//!   from which the paper's Figure 4/6/8 flow renderings are generated.
//!
//! The vendor crates (`bis`, `wf`, `soa`) each add their SQL-specific
//! activity types on top of this engine — exactly the three integration
//! styles the paper contrasts.
//!
//! ```
//! use flowcore::prelude::*;
//! use sqlkernel::Value;
//!
//! let mut engine = Engine::new();
//! engine.services_mut().register_fn("greet", |input| {
//!     let name = input.scalar_part("name")?.clone();
//!     Ok(Message::new().with_part("greeting", Value::Text(format!("hello {name}"))))
//! });
//!
//! let process = ProcessDefinition::new(
//!     "quickstart",
//!     Sequence::new("main")
//!         .then(Assign::new("init").copy(
//!             CopyFrom::Literal(Value::text("workflow").into()),
//!             CopyTo::Variable("name".into()),
//!         ))
//!         .then(
//!             Invoke::new("call", "greet")
//!                 .input("name", CopyFrom::Variable("name".into()))
//!                 .output("greeting", "out"),
//!         ),
//! );
//!
//! let instance = engine.run(&process, Variables::new()).unwrap();
//! assert!(instance.is_completed());
//! assert_eq!(
//!     instance.variables.require_scalar("out").unwrap(),
//!     &Value::text("hello workflow"),
//! );
//! ```

pub mod activity;
pub mod audit;
pub mod bpel;
pub mod builtins;
pub mod compensation;
pub mod engine;
pub mod error;
pub mod persistence;
pub mod process;
pub mod retry;
pub mod scheduler;
pub mod service;
pub mod value;

pub use activity::{
    activity_count, exec_activity, Activity, ActivityContext, ExecutionMode, Extensions,
};
pub use audit::{AuditEvent, AuditStatus, AuditTrail};
pub use bpel::{export_bpel, extension_activity_count};
pub use compensation::CompensableSequence;
pub use engine::Engine;
pub use error::{FlowError, FlowResult};
pub use persistence::{
    DurableProcess, DurableRun, DurableStep, HydratedInstance, PersistenceService,
};
pub use process::{CompletedInstance, Outcome, ProcessDefinition};
pub use retry::{BreakerConfig, BreakerState, RetryPolicy, RetryReport, RetryRuntime};
pub use scheduler::{InstanceScheduler, JobFailure};
pub use service::{Message, Service, ServiceRegistry};
pub use value::{OpaqueValue, VarValue, Variables};

/// Common imports for building processes.
pub mod prelude {
    pub use crate::activity::{
        exec_activity, Activity, ActivityContext, ExecutionMode, Extensions,
    };
    pub use crate::audit::{AuditStatus, AuditTrail};
    pub use crate::builtins::{
        Assign, Condition, Copy, CopyFrom, CopyTo, Empty, Exit, FaultHandler, Flow, If, Invoke,
        RepeatUntil, Scope, Sequence, Snippet, Throw, While,
    };
    pub use crate::compensation::CompensableSequence;
    pub use crate::engine::Engine;
    pub use crate::error::{FlowError, FlowResult};
    pub use crate::persistence::{
        DurableProcess, DurableRun, DurableStep, HydratedInstance, PersistenceService,
    };
    pub use crate::process::{CompletedInstance, Outcome, ProcessDefinition};
    pub use crate::retry::{BreakerConfig, BreakerState, RetryPolicy, RetryReport, RetryRuntime};
    pub use crate::scheduler::{InstanceScheduler, JobFailure};
    pub use crate::service::{Message, Service, ServiceRegistry};
    pub use crate::value::{OpaqueValue, VarValue, Variables};
}
