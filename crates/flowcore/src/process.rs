//! Process definitions and completed instances.

use std::sync::Arc;

use crate::activity::{Activity, ActivityContext, ExecutionMode};
use crate::audit::AuditTrail;
use crate::error::{FlowError, FlowResult};
use crate::value::Variables;

/// A hook run against the instance context at start or end of execution.
/// BIS preparation/cleanup statements are modeled on these.
pub type InstanceHook = Arc<dyn Fn(&mut ActivityContext<'_>) -> FlowResult<()>>;

/// A deployable process model: a named root activity plus deployment
/// configuration (mode, start/finish hooks).
pub struct ProcessDefinition {
    name: String,
    root: Box<dyn Activity>,
    mode: ExecutionMode,
    setup_hooks: Vec<InstanceHook>,
    cleanup_hooks: Vec<InstanceHook>,
}

impl ProcessDefinition {
    /// Define a process with the given root activity.
    pub fn new(name: impl Into<String>, root: impl Activity + 'static) -> ProcessDefinition {
        ProcessDefinition {
            name: name.into(),
            root: Box::new(root),
            mode: ExecutionMode::LongRunning,
            setup_hooks: Vec::new(),
            cleanup_hooks: Vec::new(),
        }
    }

    /// Builder: set the execution mode.
    pub fn with_mode(mut self, mode: ExecutionMode) -> ProcessDefinition {
        self.mode = mode;
        self
    }

    /// Builder: add a setup hook (runs before the root activity).
    pub fn with_setup(
        mut self,
        hook: impl Fn(&mut ActivityContext<'_>) -> FlowResult<()> + 'static,
    ) -> ProcessDefinition {
        self.setup_hooks.push(Arc::new(hook));
        self
    }

    /// Builder: add a cleanup hook (runs after the root activity, even on
    /// fault).
    pub fn with_cleanup(
        mut self,
        hook: impl Fn(&mut ActivityContext<'_>) -> FlowResult<()> + 'static,
    ) -> ProcessDefinition {
        self.cleanup_hooks.push(Arc::new(hook));
        self
    }

    /// Process name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Execution mode.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    pub(crate) fn root(&self) -> &dyn Activity {
        self.root.as_ref()
    }

    pub(crate) fn setup_hooks(&self) -> &[InstanceHook] {
        &self.setup_hooks
    }

    pub(crate) fn cleanup_hooks(&self) -> &[InstanceHook] {
        &self.cleanup_hooks
    }
}

impl std::fmt::Debug for ProcessDefinition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessDefinition")
            .field("name", &self.name)
            .field("mode", &self.mode)
            .field("root", &self.root.name())
            .finish_non_exhaustive()
    }
}

/// How an instance ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The root activity finished normally.
    Completed,
    /// An `Exit` activity terminated the instance.
    Exited,
    /// An unhandled fault escaped the root activity.
    Faulted(FlowError),
}

/// A finished process instance: outcome, final variables, audit trail.
#[derive(Debug)]
pub struct CompletedInstance {
    pub instance_id: u64,
    pub process_name: String,
    pub outcome: Outcome,
    pub variables: Variables,
    pub audit: AuditTrail,
}

impl CompletedInstance {
    /// Did the instance complete normally?
    pub fn is_completed(&self) -> bool {
        self.outcome == Outcome::Completed
    }

    /// Did an `Exit` terminate it?
    pub fn is_exited(&self) -> bool {
        self.outcome == Outcome::Exited
    }

    /// Did a fault escape?
    pub fn is_faulted(&self) -> bool {
        matches!(self.outcome, Outcome::Faulted(_))
    }

    /// The escaping fault, if any.
    pub fn fault(&self) -> Option<&FlowError> {
        match &self.outcome {
            Outcome::Faulted(e) => Some(e),
            _ => None,
        }
    }

    /// Propagate the fault as a `Result` (for tests and examples that
    /// expect success).
    pub fn into_result(self) -> FlowResult<CompletedInstance> {
        match &self.outcome {
            Outcome::Faulted(e) => Err(e.clone()),
            _ => Ok(self),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtins::Empty;

    #[test]
    fn definition_builder() {
        let def = ProcessDefinition::new("p", Empty::new("root"))
            .with_mode(ExecutionMode::ShortRunning)
            .with_setup(|_| Ok(()))
            .with_cleanup(|_| Ok(()));
        assert_eq!(def.name(), "p");
        assert_eq!(def.mode(), ExecutionMode::ShortRunning);
        assert_eq!(def.setup_hooks().len(), 1);
        assert_eq!(def.cleanup_hooks().len(), 1);
        assert!(format!("{def:?}").contains("ShortRunning"));
    }

    #[test]
    fn outcome_predicates() {
        let inst = CompletedInstance {
            instance_id: 1,
            process_name: "p".into(),
            outcome: Outcome::Faulted(FlowError::fault("f", "m")),
            variables: Variables::new(),
            audit: AuditTrail::new(),
        };
        assert!(inst.is_faulted());
        assert!(!inst.is_completed());
        assert!(inst.fault().is_some());
        assert!(inst.into_result().is_err());
    }
}
