//! Process variables.
//!
//! The paper distinguishes *internal data* (managed in the process space)
//! from *external data* (managed by a database). Internal data lives in
//! [`Variables`]: scalars, XML documents (RowSets among them), and opaque
//! vendor-specific handles (WF `DataSet`s, BIS set references, data-source
//! variables) attached through [`OpaqueValue`].

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use sqlkernel::Value;
use xmlval::XmlNode;

use crate::error::{FlowError, FlowResult};

/// A vendor-extensible variable payload.
#[derive(Clone)]
pub struct OpaqueValue {
    type_label: &'static str,
    value: Arc<dyn Any + Send + Sync>,
}

impl OpaqueValue {
    /// Wrap any shareable value.
    pub fn new<T: Any + Send + Sync>(type_label: &'static str, value: T) -> OpaqueValue {
        OpaqueValue {
            type_label,
            value: Arc::new(value),
        }
    }

    /// The label supplied at construction (for diagnostics).
    pub fn type_label(&self) -> &'static str {
        self.type_label
    }

    /// Try to view the payload as `T`.
    pub fn downcast<T: Any + Send + Sync>(&self) -> Option<&T> {
        self.value.downcast_ref::<T>()
    }
}

impl std::fmt::Debug for OpaqueValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OpaqueValue<{}>", self.type_label)
    }
}

/// One process variable.
#[derive(Debug, Clone)]
pub enum VarValue {
    /// Unset / null.
    Null,
    /// A scalar (the paper's `OrderConfirmation`, `CurrentItem` fields…).
    Scalar(Value),
    /// An XML document (BPEL variables, RowSets).
    Xml(XmlNode),
    /// Vendor-specific handle (DataSet, set reference, …).
    Opaque(OpaqueValue),
}

impl VarValue {
    /// Scalar view.
    pub fn as_scalar(&self) -> Option<&Value> {
        match self {
            VarValue::Scalar(v) => Some(v),
            _ => None,
        }
    }

    /// XML view.
    pub fn as_xml(&self) -> Option<&XmlNode> {
        match self {
            VarValue::Xml(x) => Some(x),
            _ => None,
        }
    }

    /// Opaque view, downcast to `T`.
    pub fn as_opaque<T: Any + Send + Sync>(&self) -> Option<&T> {
        match self {
            VarValue::Opaque(o) => o.downcast::<T>(),
            _ => None,
        }
    }

    /// Short type tag for audit output.
    pub fn type_tag(&self) -> &'static str {
        match self {
            VarValue::Null => "null",
            VarValue::Scalar(_) => "scalar",
            VarValue::Xml(_) => "xml",
            VarValue::Opaque(o) => o.type_label(),
        }
    }

    /// Render for audit/debug output (truncated).
    pub fn render_short(&self) -> String {
        let full = match self {
            VarValue::Null => "∅".to_string(),
            VarValue::Scalar(v) => v.render(),
            VarValue::Xml(x) => x.to_xml(),
            VarValue::Opaque(o) => format!("<{}>", o.type_label()),
        };
        if full.len() > 60 {
            let mut cut = 59;
            while cut > 0 && !full.is_char_boundary(cut) {
                cut -= 1;
            }
            format!("{}…", &full[..cut])
        } else {
            full
        }
    }
}

impl From<Value> for VarValue {
    fn from(v: Value) -> Self {
        VarValue::Scalar(v)
    }
}

impl From<XmlNode> for VarValue {
    fn from(x: XmlNode) -> Self {
        VarValue::Xml(x)
    }
}

/// The variable pool of one process instance. Names are case-sensitive,
/// as in BPEL.
#[derive(Debug, Clone, Default)]
pub struct Variables {
    map: HashMap<String, VarValue>,
}

impl Variables {
    /// Empty pool.
    pub fn new() -> Variables {
        Variables::default()
    }

    /// Set (declare or overwrite) a variable.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<VarValue>) {
        self.map.insert(name.into(), value.into());
    }

    /// Get a variable, if set.
    pub fn get(&self, name: &str) -> Option<&VarValue> {
        self.map.get(name)
    }

    /// Get or fail with a variable fault.
    pub fn require(&self, name: &str) -> FlowResult<&VarValue> {
        self.get(name)
            .ok_or_else(|| FlowError::Variable(format!("variable '{name}' is not set")))
    }

    /// Require a scalar variable.
    pub fn require_scalar(&self, name: &str) -> FlowResult<&Value> {
        self.require(name)?
            .as_scalar()
            .ok_or_else(|| FlowError::Variable(format!("variable '{name}' is not a scalar")))
    }

    /// Require an XML variable.
    pub fn require_xml(&self, name: &str) -> FlowResult<&XmlNode> {
        self.require(name)?
            .as_xml()
            .ok_or_else(|| FlowError::Variable(format!("variable '{name}' is not XML")))
    }

    /// Mutable access to an XML variable.
    pub fn require_xml_mut(&mut self, name: &str) -> FlowResult<&mut XmlNode> {
        match self.map.get_mut(name) {
            Some(VarValue::Xml(x)) => Ok(x),
            Some(_) => Err(FlowError::Variable(format!("variable '{name}' is not XML"))),
            None => Err(FlowError::Variable(format!("variable '{name}' is not set"))),
        }
    }

    /// Require an opaque variable of type `T`.
    pub fn require_opaque<T: Any + Send + Sync>(&self, name: &str) -> FlowResult<&T> {
        self.require(name)?.as_opaque::<T>().ok_or_else(|| {
            FlowError::Variable(format!(
                "variable '{name}' does not hold the expected handle type"
            ))
        })
    }

    /// Is a variable set?
    pub fn contains(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }

    /// Remove a variable.
    pub fn unset(&mut self, name: &str) -> Option<VarValue> {
        self.map.remove(name)
    }

    /// Sorted variable names.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.map.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the pool empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlval::Element;

    #[test]
    fn scalar_round_trip() {
        let mut vars = Variables::new();
        vars.set("q", Value::Int(5));
        assert_eq!(vars.require_scalar("q").unwrap(), &Value::Int(5));
        assert!(vars.require_scalar("missing").is_err());
        assert_eq!(vars.require("missing").unwrap_err().class(), "variable");
    }

    #[test]
    fn xml_round_trip_and_mutation() {
        let mut vars = Variables::new();
        vars.set("doc", XmlNode::Element(Element::new("a")));
        assert!(vars.require_xml("doc").is_ok());
        assert!(vars.require_scalar("doc").is_err());
        if let XmlNode::Element(e) = vars.require_xml_mut("doc").unwrap() {
            e.set_text("hi");
        }
        assert_eq!(vars.require_xml("doc").unwrap().text_content(), "hi");
    }

    #[test]
    fn opaque_downcasting() {
        #[derive(Debug, PartialEq)]
        struct Handle(u32);
        let mut vars = Variables::new();
        vars.set(
            "h",
            VarValue::Opaque(OpaqueValue::new("test-handle", Handle(7))),
        );
        assert_eq!(vars.require_opaque::<Handle>("h").unwrap(), &Handle(7));
        assert!(vars.require_opaque::<String>("h").is_err());
        assert_eq!(vars.get("h").unwrap().type_tag(), "test-handle");
    }

    #[test]
    fn names_sorted_and_unset() {
        let mut vars = Variables::new();
        vars.set("b", Value::Int(1));
        vars.set("a", Value::Int(2));
        assert_eq!(vars.names(), vec!["a", "b"]);
        vars.unset("a");
        assert_eq!(vars.len(), 1);
        assert!(!vars.contains("a"));
    }

    #[test]
    fn render_short_truncates() {
        let long = "x".repeat(200);
        let v = VarValue::Scalar(Value::text(long));
        assert!(v.render_short().len() <= 62);
        assert!(v.render_short().ends_with('…'));
    }

    #[test]
    fn case_sensitive_names() {
        let mut vars = Variables::new();
        vars.set("Item", Value::Int(1));
        assert!(vars.get("item").is_none());
        assert!(vars.get("Item").is_some());
    }
}
