//! The function layer: registered services callable from `Invoke`
//! activities.
//!
//! The paper's two-level programming model (Sec. II) puts executable
//! components — Web services — below the choreography layer. Here a
//! service is anything implementing [`Service`]; the registry plays the
//! role of the SOA core / WSDL binding framework.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{FlowError, FlowResult};
use crate::value::VarValue;

/// A message exchanged with a service: named parts.
#[derive(Debug, Clone, Default)]
pub struct Message {
    parts: Vec<(String, VarValue)>,
}

impl Message {
    /// Empty message.
    pub fn new() -> Message {
        Message::default()
    }

    /// Builder: add a part.
    pub fn with_part(mut self, name: impl Into<String>, value: impl Into<VarValue>) -> Message {
        self.parts.push((name.into(), value.into()));
        self
    }

    /// Add a part.
    pub fn set_part(&mut self, name: impl Into<String>, value: impl Into<VarValue>) {
        self.parts.push((name.into(), value.into()));
    }

    /// Look up a part by name.
    pub fn part(&self, name: &str) -> Option<&VarValue> {
        self.parts.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Require a scalar part.
    pub fn scalar_part(&self, name: &str) -> FlowResult<&sqlkernel::Value> {
        self.part(name)
            .and_then(VarValue::as_scalar)
            .ok_or_else(|| FlowError::Service(format!("message missing scalar part '{name}'")))
    }

    /// All parts in order.
    pub fn parts(&self) -> &[(String, VarValue)] {
        &self.parts
    }

    /// Number of parts.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Is the message empty?
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

/// A callable service endpoint.
pub trait Service: Send + Sync {
    /// Handle a request message.
    fn invoke(&self, input: &Message) -> FlowResult<Message>;
}

/// Adapter turning a closure into a [`Service`].
pub struct ServiceFn<F>(pub F);

impl<F> Service for ServiceFn<F>
where
    F: Fn(&Message) -> FlowResult<Message> + Send + Sync,
{
    fn invoke(&self, input: &Message) -> FlowResult<Message> {
        (self.0)(input)
    }
}

/// The service registry (function layer).
#[derive(Clone, Default)]
pub struct ServiceRegistry {
    services: HashMap<String, Arc<dyn Service>>,
}

impl ServiceRegistry {
    /// Empty registry.
    pub fn new() -> ServiceRegistry {
        ServiceRegistry::default()
    }

    /// Register a service object.
    pub fn register(&mut self, name: impl Into<String>, service: Arc<dyn Service>) {
        self.services.insert(name.into(), service);
    }

    /// Register a closure as a service.
    pub fn register_fn<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: Fn(&Message) -> FlowResult<Message> + Send + Sync + 'static,
    {
        self.register(name, Arc::new(ServiceFn(f)));
    }

    /// Invoke a registered service.
    pub fn invoke(&self, name: &str, input: &Message) -> FlowResult<Message> {
        let svc = self
            .services
            .get(name)
            .ok_or_else(|| FlowError::Service(format!("service '{name}' is not registered")))?;
        svc.invoke(input)
    }

    /// Is a service registered?
    pub fn contains(&self, name: &str) -> bool {
        self.services.contains_key(name)
    }

    /// Sorted service names.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.services.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

impl std::fmt::Debug for ServiceRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceRegistry")
            .field("services", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlkernel::Value;

    #[test]
    fn message_parts() {
        let m = Message::new()
            .with_part("ItemType", Value::text("widget"))
            .with_part("Quantity", Value::Int(15));
        assert_eq!(m.len(), 2);
        assert_eq!(m.scalar_part("Quantity").unwrap(), &Value::Int(15));
        assert!(m.scalar_part("missing").is_err());
        assert!(m.part("ItemType").is_some());
    }

    #[test]
    fn registry_invoke() {
        let mut reg = ServiceRegistry::new();
        reg.register_fn("echo", |input| {
            let v = input.scalar_part("x")?.clone();
            Ok(Message::new().with_part("y", v))
        });
        assert!(reg.contains("echo"));
        let out = reg
            .invoke("echo", &Message::new().with_part("x", Value::Int(1)))
            .unwrap();
        assert_eq!(out.scalar_part("y").unwrap(), &Value::Int(1));
    }

    #[test]
    fn unknown_service_errors() {
        let reg = ServiceRegistry::new();
        let err = reg.invoke("nope", &Message::new()).unwrap_err();
        assert_eq!(err.class(), "service");
    }

    #[test]
    fn service_can_fault() {
        let mut reg = ServiceRegistry::new();
        reg.register_fn("broken", |_| Err(FlowError::fault("supplierDown", "503")));
        assert_eq!(
            reg.invoke("broken", &Message::new()).unwrap_err().class(),
            "fault"
        );
    }

    #[test]
    fn names_sorted() {
        let mut reg = ServiceRegistry::new();
        reg.register_fn("b", |_| Ok(Message::new()));
        reg.register_fn("a", |_| Ok(Message::new()));
        assert_eq!(reg.names(), vec!["a", "b"]);
    }
}
