//! Retry policies and circuit breakers over the engine's fault model.
//!
//! The recovery layer every product stack routes its SQL through:
//! a [`RetryPolicy`] (bounded attempts, exponential backoff with seeded
//! jitter) and a per-service [`CircuitBreaker`] (closed → open on
//! consecutive failures → half-open probe after a cooldown). Everything
//! is deterministic: jitter comes from the kernel's SplitMix64 PRNG and
//! time is virtual ticks on the runtime's own clock — each `run` call
//! advances it by one tick, and each backoff by its tick count — so a
//! given seed replays the exact same recovery trace.
//!
//! Only *transient* failures are retried (see
//! [`FlowError::is_transient`]): deterministic errors — constraint
//! violations, parse errors, missing variables — would fail identically
//! again, and retrying them just burns the budget.

use std::collections::HashMap;

use sqlkernel::fault::SplitMix64;
use sqlkernel::Database;

use crate::error::{FlowError, FlowResult};

/// Bounded retry with exponential backoff, in virtual ticks.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, the first one included. `1` disables retry.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff_ticks: u64,
    /// Exponential growth factor between consecutive backoffs.
    pub backoff_multiplier: u32,
    /// Ceiling on a single backoff (before jitter).
    pub max_backoff_ticks: u64,
    /// Uniform jitter in `[0, jitter_ticks]` added to every backoff.
    pub jitter_ticks: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ticks: 2,
            backoff_multiplier: 2,
            max_backoff_ticks: 64,
            jitter_ticks: 3,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (attempts = 1).
    pub fn no_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Backoff before retry number `retry_index` (0-based), jittered.
    pub fn backoff_for(&self, retry_index: u32, rng: &mut SplitMix64) -> u64 {
        let mut backoff = self.base_backoff_ticks;
        for _ in 0..retry_index {
            backoff = backoff.saturating_mul(self.backoff_multiplier as u64);
            if backoff >= self.max_backoff_ticks {
                backoff = self.max_backoff_ticks;
                break;
            }
        }
        let backoff = backoff.min(self.max_backoff_ticks);
        if self.jitter_ticks == 0 {
            backoff
        } else {
            backoff + rng.next_below(self.jitter_ticks + 1)
        }
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Virtual ticks the breaker stays open before half-open probing.
    pub cooldown_ticks: u64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 5,
            cooldown_ticks: 100,
        }
    }
}

/// Breaker state machine: `Closed` admits everything, `Open` fails fast,
/// `HalfOpen` admits a single probe whose outcome closes or reopens it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

/// A dehydrated breaker: `(key, state, consecutive_failures, opened_at)`.
/// The wire form of [`RetryRuntime::export_breakers`] /
/// [`RetryRuntime::import_breakers`].
pub type BreakerSnapshot = (String, BreakerState, u32, u64);

/// Per-service circuit breaker (keyed by service/database name inside
/// [`RetryRuntime`]).
#[derive(Debug)]
pub struct CircuitBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: u64,
}

impl CircuitBreaker {
    fn new() -> CircuitBreaker {
        CircuitBreaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: 0,
        }
    }

    /// Rebuild a breaker from a dehydrated snapshot (see
    /// [`RetryRuntime::import_breakers`]).
    fn from_parts(
        state: BreakerState,
        consecutive_failures: u32,
        opened_at: u64,
    ) -> CircuitBreaker {
        CircuitBreaker {
            state,
            consecutive_failures,
            opened_at,
        }
    }

    /// Current state (for tests and introspection).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// May a call proceed at virtual time `now`? Transitions Open →
    /// HalfOpen once the cooldown elapsed. Returns whether this call is
    /// the half-open probe.
    fn admit(&mut self, now: u64, cfg: &BreakerConfig) -> Result<bool, ()> {
        match self.state {
            BreakerState::Closed => Ok(false),
            BreakerState::HalfOpen => Ok(true),
            BreakerState::Open => {
                if now >= self.opened_at + cfg.cooldown_ticks {
                    self.state = BreakerState::HalfOpen;
                    Ok(true)
                } else {
                    Err(())
                }
            }
        }
    }

    /// Record a success: closes the breaker and clears the failure run.
    fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Record a failure at `now`; returns `true` when this trips the
    /// breaker open (including a failed half-open probe re-opening it).
    fn on_failure(&mut self, now: u64, cfg: &BreakerConfig) -> bool {
        match self.state {
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.opened_at = now;
                true
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= cfg.failure_threshold {
                    self.state = BreakerState::Open;
                    self.opened_at = now;
                    true
                } else {
                    false
                }
            }
            BreakerState::Open => false,
        }
    }
}

/// What one [`RetryRuntime::run`] call did, for audit trails and stats.
#[derive(Debug, Default, Clone)]
pub struct RetryReport {
    /// Attempts made (1 = first try succeeded or failed terminally).
    pub attempts: u32,
    /// Retries after transient failures (`attempts - 1` unless the
    /// breaker cut the loop short).
    pub retries: u32,
    /// Total virtual backoff ticks slept.
    pub backoff_ticks: u64,
    /// Did this call trip a breaker open?
    pub breaker_tripped: bool,
    /// Human-readable recovery trace, one line per event — callers
    /// append these to the workflow audit trail.
    pub log: Vec<String>,
}

/// The per-deployment recovery runtime: one policy, one seeded PRNG, one
/// virtual clock, and a circuit breaker per service key.
#[derive(Debug)]
pub struct RetryRuntime {
    /// The retry policy applied to every `run` call.
    pub policy: RetryPolicy,
    breaker_cfg: BreakerConfig,
    rng: SplitMix64,
    clock: u64,
    breakers: HashMap<String, CircuitBreaker>,
    total_retries: u64,
    total_breaker_trips: u64,
}

impl RetryRuntime {
    /// Default policy/breaker with the given PRNG seed.
    pub fn new(seed: u64) -> RetryRuntime {
        RetryRuntime {
            policy: RetryPolicy::default(),
            breaker_cfg: BreakerConfig::default(),
            rng: SplitMix64::new(seed),
            clock: 0,
            breakers: HashMap::new(),
            total_retries: 0,
            total_breaker_trips: 0,
        }
    }

    /// Builder: replace the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> RetryRuntime {
        self.policy = policy;
        self
    }

    /// Builder: replace the breaker configuration.
    pub fn with_breaker(mut self, cfg: BreakerConfig) -> RetryRuntime {
        self.breaker_cfg = cfg;
        self
    }

    /// Virtual-clock reading.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Advance the virtual clock (lets tests and schedulers model idle
    /// time, e.g. to bring an open breaker into its half-open window).
    pub fn advance(&mut self, ticks: u64) {
        self.clock += ticks;
    }

    /// Retries performed over the runtime's lifetime.
    pub fn total_retries(&self) -> u64 {
        self.total_retries
    }

    /// Breaker trips over the runtime's lifetime.
    pub fn total_breaker_trips(&self) -> u64 {
        self.total_breaker_trips
    }

    /// Dehydrate every breaker as `(key, state, consecutive_failures,
    /// opened_at)`, sorted by key so the encoding is deterministic. Used
    /// by the persistence layer to park breaker state alongside process
    /// variables when an instance dehydrates.
    pub fn export_breakers(&self) -> Vec<BreakerSnapshot> {
        let mut out: Vec<BreakerSnapshot> = self
            .breakers
            .iter()
            .map(|(k, b)| (k.clone(), b.state, b.consecutive_failures, b.opened_at))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Rehydrate breakers from an [`export_breakers`](Self::export_breakers)
    /// snapshot, replacing any same-keyed breaker. Breakers for keys not
    /// in the snapshot are left untouched.
    pub fn import_breakers(&mut self, snapshot: &[BreakerSnapshot]) {
        for (key, state, failures, opened_at) in snapshot {
            self.breakers.insert(
                key.clone(),
                CircuitBreaker::from_parts(*state, *failures, *opened_at),
            );
        }
    }

    /// Fast-forward the virtual clock to at least `ticks` (rehydration:
    /// a restored `opened_at` is only meaningful against the clock it
    /// was recorded under). Never moves the clock backwards.
    pub fn restore_clock(&mut self, ticks: u64) {
        self.clock = self.clock.max(ticks);
    }

    /// Breaker state for `key` (`Closed` if never used).
    pub fn breaker_state(&self, key: &str) -> BreakerState {
        self.breakers
            .get(key)
            .map(|b| b.state())
            .unwrap_or(BreakerState::Closed)
    }

    /// Run `op` under the retry policy and the circuit breaker for
    /// `key`. Transient failures back off (virtual ticks) and retry up
    /// to the policy budget; deterministic failures and breaker-open
    /// conditions return immediately. When `db` is given, retries and
    /// breaker trips are also recorded in its [`sqlkernel::DbStats`] and
    /// backoff advances its fault injector's virtual clock, keeping both
    /// layers on one timeline.
    pub fn run<T>(
        &mut self,
        key: &str,
        db: Option<&Database>,
        mut op: impl FnMut() -> FlowResult<T>,
    ) -> (FlowResult<T>, RetryReport) {
        let mut report = RetryReport::default();
        self.clock += 1; // one unit of work per run call
        loop {
            let now = self.clock;
            let probing = {
                let breaker = self
                    .breakers
                    .entry(key.to_string())
                    .or_insert_with(CircuitBreaker::new);
                match breaker.admit(now, &self.breaker_cfg) {
                    Ok(probing) => probing,
                    Err(()) => {
                        report
                            .log
                            .push(format!("circuit breaker open for '{key}': failing fast"));
                        return (
                            Err(FlowError::Service(format!(
                                "circuit breaker open for '{key}'"
                            ))),
                            report,
                        );
                    }
                }
            };
            if probing {
                report.log.push(format!("half-open probe for '{key}'"));
            }

            report.attempts += 1;
            match op() {
                Ok(v) => {
                    let breaker = self.breakers.get_mut(key).expect("inserted above");
                    if probing {
                        report
                            .log
                            .push(format!("probe succeeded: breaker for '{key}' closed"));
                    }
                    breaker.on_success();
                    return (Ok(v), report);
                }
                Err(e) => {
                    let tripped = {
                        let breaker = self.breakers.get_mut(key).expect("inserted above");
                        breaker.on_failure(now, &self.breaker_cfg)
                    };
                    if tripped {
                        report.breaker_tripped = true;
                        self.total_breaker_trips += 1;
                        if let Some(db) = db {
                            db.note_breaker_trip();
                        }
                        report
                            .log
                            .push(format!("circuit breaker for '{key}' tripped open"));
                    }
                    let out_of_budget = report.attempts >= self.policy.max_attempts;
                    if !e.is_transient() || out_of_budget || (tripped && probing) {
                        if e.is_transient() && out_of_budget {
                            report.log.push(format!(
                                "retries exhausted for '{key}' after {} attempts: {e}",
                                report.attempts
                            ));
                        }
                        return (Err(e), report);
                    }
                    let backoff = self.policy.backoff_for(report.retries, &mut self.rng);
                    self.clock += backoff;
                    report.retries += 1;
                    report.backoff_ticks += backoff;
                    self.total_retries += 1;
                    if let Some(db) = db {
                        db.note_retry();
                        if let Some(inj) = db.fault_injector() {
                            inj.advance_ticks(backoff);
                        }
                    }
                    report.log.push(format!(
                        "retry {} for '{key}' after transient failure ({e}); backoff {backoff} ticks",
                        report.retries
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlkernel::SqlError;

    fn transient() -> FlowError {
        FlowError::Sql(SqlError::Transient("connection reset".into()))
    }

    #[test]
    fn first_try_success_is_untouched() {
        let mut rt = RetryRuntime::new(1);
        let (r, report) = rt.run("svc", None, || Ok(42));
        assert_eq!(r.unwrap(), 42);
        assert_eq!(report.attempts, 1);
        assert_eq!(report.retries, 0);
        assert!(report.log.is_empty());
    }

    #[test]
    fn transient_failures_retry_with_growing_backoff() {
        let mut rt = RetryRuntime::new(1);
        let mut failures_left = 2;
        let (r, report) = rt.run("svc", None, || {
            if failures_left > 0 {
                failures_left -= 1;
                Err(transient())
            } else {
                Ok("done")
            }
        });
        assert_eq!(r.unwrap(), "done");
        assert_eq!(report.attempts, 3);
        assert_eq!(report.retries, 2);
        assert!(report.backoff_ticks >= 2 + 4, "exponential backoff");
        assert_eq!(rt.total_retries(), 2);
    }

    #[test]
    fn deterministic_errors_never_retry() {
        let mut rt = RetryRuntime::new(1);
        let mut calls = 0;
        let (r, report) = rt.run("svc", None, || {
            calls += 1;
            Err::<(), _>(FlowError::Sql(SqlError::Constraint("pk".into())))
        });
        assert!(r.is_err());
        assert_eq!(calls, 1);
        assert_eq!(report.retries, 0);
    }

    #[test]
    fn budget_exhaustion_returns_last_transient() {
        let mut rt = RetryRuntime::new(1);
        let (r, report) = rt.run("svc", None, || Err::<(), _>(transient()));
        let err = r.unwrap_err();
        assert!(err.is_transient());
        assert_eq!(report.attempts, 4, "default budget");
        assert!(report.log.iter().any(|l| l.contains("exhausted")));
    }

    #[test]
    fn jitter_is_seed_deterministic() {
        let trace = |seed: u64| -> u64 {
            let mut rt = RetryRuntime::new(seed);
            let (_, report) = rt.run("svc", None, || Err::<(), _>(transient()));
            report.backoff_ticks
        };
        assert_eq!(trace(5), trace(5));
    }

    #[test]
    fn breaker_trips_fails_fast_then_half_open_probe_recovers() {
        let mut rt = RetryRuntime::new(1)
            .with_policy(RetryPolicy::no_retry())
            .with_breaker(BreakerConfig {
                failure_threshold: 3,
                cooldown_ticks: 50,
            });
        // Three consecutive failures trip the breaker.
        for _ in 0..3 {
            let (r, _) = rt.run("db", None, || Err::<(), _>(transient()));
            assert!(r.is_err());
        }
        assert_eq!(rt.breaker_state("db"), BreakerState::Open);
        assert_eq!(rt.total_breaker_trips(), 1);
        // While open: fail fast without invoking the operation.
        let mut invoked = false;
        let (r, report) = rt.run("db", None, || {
            invoked = true;
            Ok(())
        });
        assert!(!invoked, "open breaker must not admit calls");
        assert!(r.unwrap_err().to_string().contains("circuit breaker open"));
        assert_eq!(report.attempts, 0);
        // After the cooldown, the half-open probe admits one call; its
        // success closes the breaker.
        rt.advance(50);
        let (r, report) = rt.run("db", None, || Ok("recovered"));
        assert_eq!(r.unwrap(), "recovered");
        assert!(report.log.iter().any(|l| l.contains("half-open probe")));
        assert_eq!(rt.breaker_state("db"), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_breaker() {
        let mut rt = RetryRuntime::new(1)
            .with_policy(RetryPolicy::no_retry())
            .with_breaker(BreakerConfig {
                failure_threshold: 1,
                cooldown_ticks: 10,
            });
        let (_, _) = rt.run("db", None, || Err::<(), _>(transient()));
        assert_eq!(rt.breaker_state("db"), BreakerState::Open);
        rt.advance(10);
        let (r, _) = rt.run("db", None, || Err::<(), _>(transient()));
        assert!(r.is_err());
        assert_eq!(
            rt.breaker_state("db"),
            BreakerState::Open,
            "failed probe reopens"
        );
        assert_eq!(rt.total_breaker_trips(), 2);
    }

    #[test]
    fn breakers_are_per_key() {
        let mut rt = RetryRuntime::new(1)
            .with_policy(RetryPolicy::no_retry())
            .with_breaker(BreakerConfig {
                failure_threshold: 1,
                cooldown_ticks: 1000,
            });
        let (_, _) = rt.run("bad", None, || Err::<(), _>(transient()));
        assert_eq!(rt.breaker_state("bad"), BreakerState::Open);
        let (r, _) = rt.run("good", None, || Ok(1));
        assert!(r.is_ok(), "unrelated key unaffected");
    }

    #[test]
    fn db_counters_record_retries_and_trips() {
        let db = Database::new("t");
        let mut rt = RetryRuntime::new(1).with_breaker(BreakerConfig {
            failure_threshold: 2,
            cooldown_ticks: 1000,
        });
        let (r, _) = rt.run("t", Some(&db), || Err::<(), _>(transient()));
        // The breaker trips after the second failure and then fails the
        // next admit fast, cutting the retry loop short of its budget.
        assert!(r.unwrap_err().to_string().contains("circuit breaker open"));
        let stats = db.stats();
        assert_eq!(stats.retries, 2, "breaker cuts the retry loop short");
        assert_eq!(stats.breaker_trips, 1);
    }
}
