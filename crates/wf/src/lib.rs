//! `wf` — the Microsoft Windows Workflow Foundation integration style
//! (paper Sec. IV).
//!
//! WF provides **no SQL support in its Base Activity Library**; the gap
//! is closed by augmenting a Custom Activity Library with customized SQL
//! activity types. This crate reproduces that structure:
//!
//! * [`activities::BASE_ACTIVITY_LIBRARY`] — the BAL inventory (checked
//!   by code to contain no SQL activity type),
//! * [`activities::CustomActivityLibrary`] — the CAL registry,
//! * [`activities::SqlDatabaseActivity`] — the customized SQL database
//!   activity: static connection string, static table names, `?` host
//!   variables, before/after event handlers, automatic materialization
//!   of results into a [`dataset::DataSet`],
//! * [`dataset`] — the ADO.NET-style client-side cache: row states,
//!   select, tuple IUD, and [`dataset::DataAdapter`] sync-back,
//! * [`host`] — the host process with the SqlServer/Oracle provider
//!   restriction the paper notes in Sec. VI-B,
//! * [`activities::code_activity`] / [`activities::while_over_dataset`]
//!   — the code-based workarounds for all internal-data patterns,
//! * [`sample`] — the Figure 6 running example,
//! * [`integration::WfProduct`] — the [`patterns::SqlIntegration`]
//!   implementation.

pub mod activities;
pub mod bpel_import;
pub mod dataset;
pub mod host;
pub mod integration;
pub mod persistence;
pub mod sample;
pub mod tracking;
pub mod xoml;

pub use activities::{
    bal_has_sql_support, code_activity, dataset_var, row_field, while_over_dataset, with_dataset,
    CurrentRow, CustomActivityLibrary, SqlDatabaseActivity, BASE_ACTIVITY_LIBRARY,
};
pub use bpel_import::{import_bpel, BpelBindings};
pub use dataset::{DataAdapter, DataRow, DataSet, DataTable, RowState};
pub use host::{connection_string, parse_connection_string, Provider, WfHost};
pub use integration::WfProduct;
pub use persistence::SqlWorkflowPersistenceService;
pub use sample::figure6_process;
pub use tracking::TrackingService;
pub use xoml::{load_xoml, CodeBehind};
