//! The Figure 6 sample workflow: the running example realized with
//! Microsoft WF technology.
//!
//! Differences from the BIS realization (Fig. 4) that the paper calls
//! out: the `Orders` table is named **statically** inside the SQL text
//! (no set references), the query result is **automatically
//! materialized** into a `DataSet` object in host variable
//! `SV_ItemList`, whose lifecycle is tied to the process instance, and
//! iteration accesses tuples through the ADO.NET API
//! (`CurrentItem["ItemId"]`).

use flowcore::builtins::{Invoke, Sequence};
use flowcore::ProcessDefinition;

use crate::activities::{row_field, while_over_dataset, SqlDatabaseActivity};
use crate::host::{connection_string, Provider, WfHost};

/// The query of activity `SQLDatabase_1` — table name as static text.
pub const SQL_DATABASE_1: &str = "SELECT ItemId, SUM(Quantity) AS Quantity FROM Orders \
                                  WHERE Approved = TRUE GROUP BY ItemId ORDER BY ItemId";

/// The insert of activity `SQLDatabase_2`.
pub const SQL_DATABASE_2: &str = "INSERT INTO OrderConfirmations \
                                  (ConfId, ItemId, Quantity, Confirmation) \
                                  VALUES (NEXTVAL('conf_ids'), ?, ?, ?)";

/// Build the Figure 6 process. `orders_db` must carry the probe schema
/// and be registered in the returned host as a SQL Server database.
pub fn figure6_process(db: sqlkernel::Database) -> ProcessDefinition {
    let cs = connection_string(Provider::SqlServer, db.name());
    let host = WfHost::new().with_database(Provider::SqlServer, db);

    let loop_body = Sequence::new("order item")
        .then(
            Invoke::new("Invoke OrderFromSupplier", patterns::ORDER_FROM_SUPPLIER)
                .input("ItemType", row_field("CurrentItem", "ItemId"))
                .input("Quantity", row_field("CurrentItem", "Quantity"))
                .output("Confirmation", "OrderConfirmation"),
        )
        .then(
            SqlDatabaseActivity::new("SQLDatabase_2", cs.clone(), SQL_DATABASE_2)
                .param(row_field("CurrentItem", "ItemId"))
                .param(row_field("CurrentItem", "Quantity"))
                .param_var("OrderConfirmation"),
        );

    let body = Sequence::new("main")
        .then(
            SqlDatabaseActivity::new("SQLDatabase_1", cs, SQL_DATABASE_1)
                .result_into("SV_ItemList"),
        )
        .then(while_over_dataset(
            "while: more tuples in SV_ItemList",
            "SV_ItemList",
            "CurrentItem",
            loop_body,
        ));

    host.install(ProcessDefinition::new("OrderAggregation/WF (Fig. 6)", body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowcore::Variables;
    use patterns::probe::{expected_item_list, ProbeEnv};

    #[test]
    fn figure6_end_to_end() {
        let env = ProbeEnv::fresh();
        let def = figure6_process(env.db.clone());
        let inst = env.engine.run(&def, Variables::new()).unwrap();
        assert!(inst.is_completed(), "{:?}", inst.outcome);

        assert_eq!(
            env.confirmations(),
            vec![
                "confirmed:gadget:3",
                "confirmed:sprocket:2",
                "confirmed:widget:15"
            ]
        );

        let conn = env.db.connect();
        let rs = conn
            .query(
                "SELECT ItemId, Quantity FROM OrderConfirmations ORDER BY ItemId",
                &[],
            )
            .unwrap();
        let got: Vec<(String, i64)> = rs
            .rows
            .iter()
            .map(|r| (r[0].render(), r[1].as_i64().unwrap()))
            .collect();
        let want: Vec<(String, i64)> = expected_item_list()
            .into_iter()
            .map(|(s, n)| (s.to_string(), n))
            .collect();
        assert_eq!(got, want);

        // The audit trail shows WF's activity mix: SQL database
        // activities and code activities, no set references.
        assert_eq!(inst.audit.completed_count("sqlDatabase"), 1 + 3);
        assert_eq!(inst.audit.completed_count("invoke"), 3);
        assert!(inst.audit.events().iter().any(|e| e.kind == "code"));
        assert!(inst.audit.events().iter().all(|e| e.kind != "java-snippet"));
    }

    #[test]
    fn figure6_no_external_result_tables() {
        // Unlike BIS, nothing external is created for the item list: the
        // result lives only in the DataSet variable.
        let env = ProbeEnv::fresh();
        let before = env.db.table_names();
        let def = figure6_process(env.db.clone());
        env.engine.run(&def, Variables::new()).unwrap();
        assert_eq!(env.db.table_names(), before);
    }
}
