//! An ADO.NET-style `DataSet`: the client-side cache WF materializes
//! query results into (Sec. IV-B).
//!
//! The paper relies on four DataSet capabilities (Sec. IV-C): tuple
//! insert/update/delete on the cached table, sequential iteration,
//! querying specific tuples, and synchronizing the cache with its
//! original data source. All four are implemented here, including the
//! row-state machinery (`Unchanged` / `Added` / `Modified` / `Deleted`)
//! and a [`DataAdapter`] that generates the INSERT/UPDATE/DELETE
//! statements for sync-back — a cache *“holding no connection to the
//! original data”*.

use flowcore::retry::RetryRuntime;
use flowcore::FlowError;
use sqlkernel::{Connection, Prepared, QueryResult, SqlError, SqlResult, Value};

/// Change state of one cached row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowState {
    /// Unchanged since fill / last accept.
    Unchanged,
    /// Added locally; not yet in the source.
    Added,
    /// Cell values changed locally.
    Modified,
    /// Deleted locally; still present in the source.
    Deleted,
}

/// One cached row: current values, the original values as filled (for
/// sync-back WHERE clauses), and a state.
#[derive(Debug, Clone)]
pub struct DataRow {
    values: Vec<Value>,
    original: Option<Vec<Value>>,
    state: RowState,
}

impl DataRow {
    /// Current cell values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Row state.
    pub fn state(&self) -> RowState {
        self.state
    }
}

/// A cached table inside a [`DataSet`].
#[derive(Debug, Clone)]
pub struct DataTable {
    name: String,
    columns: Vec<String>,
    /// Primary-key column positions used by the adapter's WHERE clauses.
    key_columns: Vec<usize>,
    rows: Vec<DataRow>,
}

impl DataTable {
    /// Build an empty table.
    pub fn new(name: impl Into<String>, columns: Vec<String>) -> DataTable {
        DataTable {
            name: name.into(),
            columns,
            key_columns: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Fill from a query result; all rows start `Unchanged`.
    pub fn from_result(name: impl Into<String>, rs: &QueryResult) -> DataTable {
        let mut t = DataTable::new(name, rs.columns.clone());
        for row in &rs.rows {
            t.rows.push(DataRow {
                values: row.clone(),
                original: Some(row.clone()),
                state: RowState::Unchanged,
            });
        }
        t
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Declare which columns form the key used for sync-back.
    pub fn set_key_columns(&mut self, names: &[&str]) -> SqlResult<()> {
        let mut keys = Vec::with_capacity(names.len());
        for n in names {
            keys.push(self.column_index(n)?);
        }
        self.key_columns = keys;
        Ok(())
    }

    /// Position of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> SqlResult<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
            .ok_or_else(|| SqlError::NotFound(format!("column '{name}' in DataTable")))
    }

    /// Live rows (everything except locally deleted ones).
    pub fn live_rows(&self) -> impl Iterator<Item = &DataRow> {
        self.rows.iter().filter(|r| r.state != RowState::Deleted)
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live_rows().count()
    }

    /// No live rows?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th live row.
    pub fn row(&self, i: usize) -> Option<&DataRow> {
        self.live_rows().nth(i)
    }

    /// A cell of the `i`-th live row by column name.
    pub fn cell(&self, i: usize, column: &str) -> SqlResult<Value> {
        let c = self.column_index(column)?;
        self.row(i)
            .map(|r| r.values[c].clone())
            .ok_or_else(|| SqlError::NotFound(format!("row {i} in DataTable")))
    }

    /// Select live row indices matching a predicate over (column →
    /// value) — the `DataTable.Select` analog.
    pub fn select(&self, mut pred: impl FnMut(&DataRow) -> bool) -> Vec<usize> {
        self.live_rows()
            .enumerate()
            .filter(|(_, r)| pred(r))
            .map(|(i, _)| i)
            .collect()
    }

    /// Update one cell of the `i`-th live row.
    pub fn set_cell(&mut self, i: usize, column: &str, value: Value) -> SqlResult<()> {
        let c = self.column_index(column)?;
        let idx = self
            .live_index(i)
            .ok_or_else(|| SqlError::NotFound(format!("row {i} in DataTable")))?;
        let row = &mut self.rows[idx];
        row.values[c] = value;
        if row.state == RowState::Unchanged {
            row.state = RowState::Modified;
        }
        Ok(())
    }

    /// Append a new row (state `Added`).
    pub fn add_row(&mut self, values: Vec<Value>) -> SqlResult<()> {
        if values.len() != self.columns.len() {
            return Err(SqlError::Semantic(format!(
                "DataTable '{}' expects {} values, got {}",
                self.name,
                self.columns.len(),
                values.len()
            )));
        }
        self.rows.push(DataRow {
            values,
            original: None,
            state: RowState::Added,
        });
        Ok(())
    }

    /// Delete the `i`-th live row: `Added` rows vanish, others are
    /// tombstoned for the adapter.
    pub fn delete_row(&mut self, i: usize) -> SqlResult<()> {
        let idx = self
            .live_index(i)
            .ok_or_else(|| SqlError::NotFound(format!("row {i} in DataTable")))?;
        if self.rows[idx].state == RowState::Added {
            self.rows.remove(idx);
        } else {
            self.rows[idx].state = RowState::Deleted;
        }
        Ok(())
    }

    fn live_index(&self, i: usize) -> Option<usize> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.state != RowState::Deleted)
            .map(|(idx, _)| idx)
            .nth(i)
    }

    /// Rows that differ from the source (the `GetChanges` analog).
    pub fn changes(&self) -> Vec<&DataRow> {
        self.rows
            .iter()
            .filter(|r| r.state != RowState::Unchanged)
            .collect()
    }

    /// Accept all changes: tombstones drop, everything becomes
    /// `Unchanged` with fresh originals.
    pub fn accept_changes(&mut self) {
        self.rows.retain(|r| r.state != RowState::Deleted);
        for r in &mut self.rows {
            r.original = Some(r.values.clone());
            r.state = RowState::Unchanged;
        }
    }

    /// Reject all changes: revert to the originals.
    pub fn reject_changes(&mut self) {
        self.rows.retain(|r| r.original.is_some());
        for r in &mut self.rows {
            r.values = r.original.clone().expect("retained above");
            r.state = RowState::Unchanged;
        }
    }

    /// Snapshot as a plain query result (live rows).
    pub fn to_result(&self) -> QueryResult {
        QueryResult {
            columns: self.columns.clone(),
            rows: self.live_rows().map(|r| r.values.clone()).collect(),
        }
    }
}

/// A set of cached tables — the ADO.NET `DataSet` object.
#[derive(Debug, Clone, Default)]
pub struct DataSet {
    tables: Vec<DataTable>,
}

impl DataSet {
    /// Empty data set.
    pub fn new() -> DataSet {
        DataSet::default()
    }

    /// A data set holding one filled table.
    pub fn from_result(table_name: impl Into<String>, rs: &QueryResult) -> DataSet {
        let mut ds = DataSet::new();
        ds.tables.push(DataTable::from_result(table_name, rs));
        ds
    }

    /// Add a table.
    pub fn add_table(&mut self, table: DataTable) {
        self.tables.push(table);
    }

    /// Get a table by name.
    pub fn table(&self, name: &str) -> SqlResult<&DataTable> {
        self.tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| SqlError::NotFound(format!("DataTable '{name}'")))
    }

    /// Mutable table access.
    pub fn table_mut(&mut self, name: &str) -> SqlResult<&mut DataTable> {
        self.tables
            .iter_mut()
            .find(|t| t.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| SqlError::NotFound(format!("DataTable '{name}'")))
    }

    /// The first (often only) table.
    pub fn first_table(&self) -> SqlResult<&DataTable> {
        self.tables
            .first()
            .ok_or_else(|| SqlError::NotFound("DataSet has no tables".into()))
    }

    /// Mutable access to the first table.
    pub fn first_table_mut(&mut self) -> SqlResult<&mut DataTable> {
        self.tables
            .first_mut()
            .ok_or_else(|| SqlError::NotFound("DataSet has no tables".into()))
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }
}

/// Generates and executes the SQL that reconciles a cached table with its
/// source — the `SqlDataAdapter.Update` analog. Uses the declared key
/// columns (original values) to address rows.
pub struct DataAdapter;

impl DataAdapter {
    /// Push all pending changes of `table` to `target_table` through
    /// `conn`. Returns the number of statements executed and accepts the
    /// changes on success.
    pub fn update(
        conn: &Connection,
        table: &mut DataTable,
        target_table: &str,
    ) -> SqlResult<usize> {
        if table.key_columns.is_empty() {
            return Err(SqlError::Semantic(
                "DataAdapter requires key columns for sync-back".into(),
            ));
        }
        let executed = Self::sync_rows(conn, table, target_table, &mut |p, params| {
            conn.execute_prepared(p, params).map(|_| ())
        })?;
        table.accept_changes();
        Ok(executed)
    }

    /// Transactional, retrying sync-back: the whole reconciliation runs
    /// as one transaction (unless the connection already has one open),
    /// each generated statement retries transient failures under
    /// `retry`, and the recovery trace is appended to `log` for the
    /// caller's audit trail. On failure the transaction rolls back and
    /// the cache keeps its pending changes, so a later sync can redo the
    /// whole reconciliation — all-or-nothing semantics.
    pub fn update_with_retry(
        conn: &Connection,
        table: &mut DataTable,
        target_table: &str,
        retry: &mut RetryRuntime,
        log: &mut Vec<String>,
    ) -> SqlResult<usize> {
        if table.key_columns.is_empty() {
            return Err(SqlError::Semantic(
                "DataAdapter requires key columns for sync-back".into(),
            ));
        }
        let db = conn.database().clone();
        let key = db.name().to_string();
        let own_txn = !conn.in_transaction();
        if own_txn {
            conn.execute("BEGIN", &[])?;
        }
        let result = Self::sync_rows(conn, table, target_table, &mut |p, params| {
            let (r, report) = retry.run(&key, Some(&db), || {
                conn.execute_prepared(p, params)
                    .map(|_| ())
                    .map_err(FlowError::from)
            });
            log.extend(report.log);
            r.map_err(|e| match e {
                FlowError::Sql(s) => s,
                other => SqlError::Runtime(other.to_string()),
            })
        });
        match result {
            Ok(executed) => {
                if own_txn {
                    conn.execute("COMMIT", &[])?;
                }
                table.accept_changes();
                Ok(executed)
            }
            Err(e) => {
                if own_txn {
                    conn.rollback_if_open();
                    log.push(format!(
                        "sync-back of '{target_table}' rolled back after {e}; cache changes kept"
                    ));
                }
                Err(e)
            }
        }
    }

    /// The shared reconciliation loop: generate per-kind prepared
    /// statements once, re-bind per changed row, and run each through
    /// `exec` (plain execution or the retry wrapper).
    fn sync_rows(
        conn: &Connection,
        table: &DataTable,
        target_table: &str,
        exec: &mut dyn FnMut(&Prepared, &[Value]) -> SqlResult<()>,
    ) -> SqlResult<usize> {
        // The statement text for each change kind is fixed per table, so
        // each kind is prepared at most once and re-bound per row.
        let mut executed = 0;
        let mut insert: Option<Prepared> = None;
        let mut update: Option<Prepared> = None;
        let mut delete: Option<Prepared> = None;
        for row in &table.rows {
            match row.state {
                RowState::Unchanged => {}
                RowState::Added => {
                    if insert.is_none() {
                        let cols = table.columns.join(", ");
                        let placeholders = vec!["?"; table.columns.len()].join(", ");
                        insert = Some(conn.prepare(&format!(
                            "INSERT INTO {target_table} ({cols}) VALUES ({placeholders})"
                        ))?);
                    }
                    exec(insert.as_ref().expect("just prepared"), &row.values)?;
                    executed += 1;
                }
                RowState::Modified => {
                    if update.is_none() {
                        let set: Vec<String> =
                            table.columns.iter().map(|c| format!("{c} = ?")).collect();
                        update = Some(conn.prepare(&format!(
                            "UPDATE {target_table} SET {} WHERE {}",
                            set.join(", "),
                            Self::key_clause(table)
                        ))?);
                    }
                    let mut params = row.values.clone();
                    Self::push_key_params(table, row, &mut params)?;
                    exec(update.as_ref().expect("just prepared"), &params)?;
                    executed += 1;
                }
                RowState::Deleted => {
                    if delete.is_none() {
                        delete = Some(conn.prepare(&format!(
                            "DELETE FROM {target_table} WHERE {}",
                            Self::key_clause(table)
                        ))?);
                    }
                    let mut params = Vec::new();
                    Self::push_key_params(table, row, &mut params)?;
                    exec(delete.as_ref().expect("just prepared"), &params)?;
                    executed += 1;
                }
            }
        }
        Ok(executed)
    }

    /// `k1 = ? AND k2 = ?` over the declared key columns; the text
    /// depends only on the table shape, never on row values.
    fn key_clause(table: &DataTable) -> String {
        table
            .key_columns
            .iter()
            .map(|&k| format!("{} = ?", table.columns[k]))
            .collect::<Vec<_>>()
            .join(" AND ")
    }

    fn push_key_params(table: &DataTable, row: &DataRow, params: &mut Vec<Value>) -> SqlResult<()> {
        let original = row.original.as_ref().ok_or_else(|| {
            SqlError::Semantic("modified/deleted row lost its original values".into())
        })?;
        for &k in &table.key_columns {
            params.push(original[k].clone());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlkernel::Database;

    fn seeded_db() -> Database {
        let db = Database::new("d");
        db.connect()
            .execute_script(
                "CREATE TABLE items (id INT PRIMARY KEY, name TEXT, qty INT);
                 INSERT INTO items VALUES (1, 'widget', 10), (2, 'gadget', 3), (3, 'cog', 7);",
            )
            .unwrap();
        db
    }

    fn filled_table(db: &Database) -> DataTable {
        let rs = db
            .connect()
            .query("SELECT id, name, qty FROM items ORDER BY id", &[])
            .unwrap();
        let mut t = DataTable::from_result("items", &rs);
        t.set_key_columns(&["id"]).unwrap();
        t
    }

    #[test]
    fn fill_and_read() {
        let db = seeded_db();
        let t = filled_table(&db);
        assert_eq!(t.len(), 3);
        assert_eq!(t.cell(0, "name").unwrap(), Value::text("widget"));
        assert_eq!(t.cell(2, "QTY").unwrap(), Value::Int(7));
        assert!(t.cell(9, "name").is_err());
        assert!(t.cell(0, "nope").is_err());
    }

    #[test]
    fn select_predicate() {
        let db = seeded_db();
        let t = filled_table(&db);
        let hits = t.select(|r| r.values()[2].as_i64().unwrap() > 5);
        assert_eq!(hits, vec![0, 2]);
    }

    #[test]
    fn row_states_track_changes() {
        let db = seeded_db();
        let mut t = filled_table(&db);
        t.set_cell(0, "qty", Value::Int(99)).unwrap();
        t.add_row(vec![Value::Int(4), Value::text("nut"), Value::Int(1)])
            .unwrap();
        t.delete_row(1).unwrap();
        let states: Vec<RowState> = t.changes().iter().map(|r| r.state()).collect();
        assert!(states.contains(&RowState::Modified));
        assert!(states.contains(&RowState::Added));
        assert!(states.contains(&RowState::Deleted));
        assert_eq!(t.len(), 3); // 3 original − 1 deleted + 1 added
    }

    #[test]
    fn deleting_added_row_vanishes() {
        let db = seeded_db();
        let mut t = filled_table(&db);
        t.add_row(vec![Value::Int(4), Value::text("nut"), Value::Int(1)])
            .unwrap();
        t.delete_row(3).unwrap();
        assert_eq!(t.len(), 3);
        assert!(t.changes().is_empty());
    }

    #[test]
    fn reject_changes_restores_originals() {
        let db = seeded_db();
        let mut t = filled_table(&db);
        t.set_cell(0, "qty", Value::Int(99)).unwrap();
        t.add_row(vec![Value::Int(4), Value::text("nut"), Value::Int(1)])
            .unwrap();
        t.delete_row(1).unwrap();
        t.reject_changes();
        assert_eq!(t.len(), 3);
        assert_eq!(t.cell(0, "qty").unwrap(), Value::Int(10));
        assert!(t.changes().is_empty());
    }

    #[test]
    fn adapter_syncs_all_change_kinds() {
        let db = seeded_db();
        let mut t = filled_table(&db);
        t.set_cell(0, "qty", Value::Int(99)).unwrap(); // widget → 99
        t.delete_row(1).unwrap(); // gadget gone
        t.add_row(vec![Value::Int(4), Value::text("nut"), Value::Int(1)])
            .unwrap();
        let conn = db.connect();
        let n = DataAdapter::update(&conn, &mut t, "items").unwrap();
        assert_eq!(n, 3);
        // Cache accepted.
        assert!(t.changes().is_empty());
        // Source reflects the cache.
        let rs = conn
            .query("SELECT id, name, qty FROM items ORDER BY id", &[])
            .unwrap();
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::Int(1), Value::text("widget"), Value::Int(99)],
                vec![Value::Int(3), Value::text("cog"), Value::Int(7)],
                vec![Value::Int(4), Value::text("nut"), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn adapter_addresses_rows_by_original_key() {
        // Changing the key itself must still target the original row.
        let db = seeded_db();
        let mut t = filled_table(&db);
        t.set_cell(0, "id", Value::Int(100)).unwrap();
        let conn = db.connect();
        DataAdapter::update(&conn, &mut t, "items").unwrap();
        let rs = conn.query("SELECT id FROM items ORDER BY id", &[]).unwrap();
        assert_eq!(rs.rows[2], vec![Value::Int(100)]);
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn adapter_requires_key_columns() {
        let db = seeded_db();
        let rs = db.connect().query("SELECT * FROM items", &[]).unwrap();
        let mut t = DataTable::from_result("items", &rs);
        t.set_cell(0, "qty", Value::Int(0)).unwrap();
        let conn = db.connect();
        assert!(DataAdapter::update(&conn, &mut t, "items").is_err());
    }

    #[test]
    fn retrying_adapter_recovers_from_transient_faults() {
        use sqlkernel::fault::{Fault, FaultPlan, TransientKind};
        let db = seeded_db();
        let mut t = filled_table(&db);
        t.set_cell(0, "qty", Value::Int(99)).unwrap();
        t.delete_row(1).unwrap();
        t.add_row(vec![Value::Int(4), Value::text("nut"), Value::Int(1)])
            .unwrap();
        // Fail the first two sync statements once each (BEGIN is never
        // gated, so indices 0/1 are the first two generated statements).
        db.set_fault_plan(Some(
            FaultPlan::new(3)
                .fault_at(0, Fault::Transient(TransientKind::ConnectionReset))
                .fault_at(1, Fault::Transient(TransientKind::DeadlockVictim)),
        ));
        let conn = db.connect();
        let mut rt = RetryRuntime::new(7);
        let mut log = Vec::new();
        let n = DataAdapter::update_with_retry(&conn, &mut t, "items", &mut rt, &mut log).unwrap();
        assert_eq!(n, 3);
        assert!(t.changes().is_empty(), "cache accepted after recovery");
        assert_eq!(db.stats().retries, 2);
        assert!(log.iter().any(|l| l.contains("retry 1")));
        let rs = conn
            .query("SELECT id, name, qty FROM items ORDER BY id", &[])
            .unwrap();
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::Int(1), Value::text("widget"), Value::Int(99)],
                vec![Value::Int(3), Value::text("cog"), Value::Int(7)],
                vec![Value::Int(4), Value::text("nut"), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn exhausted_retries_roll_back_sync_and_keep_cache_changes() {
        use sqlkernel::fault::FaultPlan;
        let db = seeded_db();
        let mut t = filled_table(&db);
        t.set_cell(0, "qty", Value::Int(99)).unwrap();
        t.delete_row(1).unwrap();
        // Every gated statement fails: the retry budget runs out.
        db.set_fault_plan(Some(FaultPlan::new(1).transient_rate(1.0)));
        let conn = db.connect();
        let mut rt = RetryRuntime::new(7);
        let mut log = Vec::new();
        let err =
            DataAdapter::update_with_retry(&conn, &mut t, "items", &mut rt, &mut log).unwrap_err();
        assert!(err.is_transient());
        assert!(log.iter().any(|l| l.contains("rolled back")));
        // The source is untouched and the cache still holds its changes…
        db.set_fault_plan(None);
        let rs = conn
            .query("SELECT id, name, qty FROM items ORDER BY id", &[])
            .unwrap();
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.rows[0][2], Value::Int(10));
        assert_eq!(t.changes().len(), 2);
        // …so the same sync succeeds once the fault storm passes.
        let n = DataAdapter::update_with_retry(&conn, &mut t, "items", &mut rt, &mut log).unwrap();
        assert_eq!(n, 2);
        assert_eq!(
            conn.query("SELECT qty FROM items WHERE id = 1", &[])
                .unwrap()
                .rows[0][0],
            Value::Int(99)
        );
    }

    #[test]
    fn dataset_table_directory() {
        let db = seeded_db();
        let mut ds = DataSet::new();
        ds.add_table(filled_table(&db));
        assert_eq!(ds.table_count(), 1);
        assert!(ds.table("ITEMS").is_ok());
        assert!(ds.table("other").is_err());
        ds.table_mut("items")
            .unwrap()
            .set_cell(0, "qty", Value::Int(0))
            .unwrap();
        assert_eq!(
            ds.first_table().unwrap().cell(0, "qty").unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn no_connection_to_source_after_fill() {
        // Mutating the source does not affect the cache: it is a cache
        // "holding no connection to the original data".
        let db = seeded_db();
        let t = filled_table(&db);
        db.connect().execute("DELETE FROM items", &[]).unwrap();
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn to_result_round_trip() {
        let db = seeded_db();
        let t = filled_table(&db);
        let rs = t.to_result();
        assert_eq!(rs.columns, vec!["id", "name", "qty"]);
        assert_eq!(rs.rows.len(), 3);
    }
}
