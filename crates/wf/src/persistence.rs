//! The `SqlWorkflowPersistenceService` of the WF host process (Fig. 5).
//!
//! The paper's Figure 5 shows the WF host wiring runtime services into
//! the workflow runtime — among them the SQL persistence service that
//! saves idle workflow instances to a database and reloads them on
//! resumption. This module reproduces that service on top of
//! [`flowcore::persistence`]: instance state lives in the
//! `FLOW_INSTANCES` table of a host-registered database, and when that
//! database is durable (WAL-backed), parked instances survive process
//! crashes.
//!
//! The service keeps WF's shape: it is constructed from a *connection
//! string* resolved through the [`WfHost`] directory (subject to the
//! same SqlServer/Oracle provider restriction as the SQL database
//! activity), and exposes save/load entry points named after the .NET
//! originals.

use flowcore::persistence::{DurableProcess, DurableRun, HydratedInstance, PersistenceService};
use flowcore::retry::RetryRuntime;
use flowcore::scheduler::InstanceScheduler;
use flowcore::value::Variables;
use flowcore::FlowResult;
use sqlkernel::{Database, Value};

use crate::host::WfHost;

/// The WF persistence runtime service.
#[derive(Debug, Clone)]
pub struct SqlWorkflowPersistenceService {
    inner: PersistenceService,
}

impl SqlWorkflowPersistenceService {
    /// Attach directly to a database (creates `FLOW_INSTANCES` if
    /// missing).
    pub fn new(db: &Database) -> FlowResult<SqlWorkflowPersistenceService> {
        Ok(SqlWorkflowPersistenceService {
            inner: PersistenceService::new(db)?,
        })
    }

    /// WF-style construction: resolve `conn_string` through the host
    /// directory. The persistence store rides the same provider
    /// whitelist as the SQL database activity.
    pub fn from_connection_string(
        host: &WfHost,
        conn_string: &str,
    ) -> FlowResult<SqlWorkflowPersistenceService> {
        let db = host.resolve_for_sql_activity(conn_string)?;
        SqlWorkflowPersistenceService::new(&db)
    }

    /// The underlying generic persistence service.
    pub fn service(&self) -> &PersistenceService {
        &self.inner
    }

    /// Park instance state (the .NET `SaveWorkflowInstanceState`).
    pub fn save_workflow_instance_state(
        &self,
        instance_key: &str,
        process: &str,
        pc: usize,
        status: &str,
        vars: &Variables,
        rt: &RetryRuntime,
    ) -> FlowResult<()> {
        self.inner
            .dehydrate(instance_key, process, pc, status, vars, rt)
    }

    /// Reload instance state (the .NET `LoadWorkflowInstanceState`), or
    /// `None` when the key is unknown.
    pub fn load_workflow_instance_state(
        &self,
        instance_key: &str,
    ) -> FlowResult<Option<HydratedInstance>> {
        self.inner.rehydrate(instance_key)
    }

    /// Run (or resume) a durable workflow under the service — each step
    /// checkpoints into the persistence store in its own transaction.
    pub fn run_workflow(
        &self,
        process: &DurableProcess,
        instance_key: &str,
        initial: &Variables,
        rt: &mut RetryRuntime,
    ) -> FlowResult<DurableRun> {
        self.inner.run(process, instance_key, initial, rt)
    }

    /// Run N workflows across `scheduler`'s worker pool — WF's runtime
    /// scheduling many instances onto CLR threads, with this service as
    /// their shared persistence store. `process(index)` builds each
    /// worker's own definition (step bodies are not `Send`);
    /// `runtime(index)` builds each job's retry runtime — seed it with
    /// the index so backoff jitter is per-instance deterministic
    /// regardless of which worker runs it, and size its policy to the
    /// fault environment (the default budget is 4 attempts). Results
    /// come back in job order.
    pub fn run_workflows<P, R>(
        &self,
        process: P,
        instance_keys: &[String],
        initial: &Variables,
        runtime: R,
        scheduler: &InstanceScheduler,
    ) -> Vec<FlowResult<DurableRun>>
    where
        P: Fn(usize) -> DurableProcess + Send + Sync,
        R: Fn(usize) -> RetryRuntime + Send + Sync,
    {
        scheduler.run_indexed(instance_keys.len(), |i| {
            let mut rt = runtime(i);
            self.inner
                .run(&process(i), &instance_keys[i], initial, &mut rt)
        })
    }

    /// Number of instances currently parked in the store.
    pub fn persisted_instance_count(&self) -> FlowResult<usize> {
        let rs = self
            .inner
            .database()
            .connect()
            .query("SELECT COUNT(*) FROM FLOW_INSTANCES", &[])?;
        match rs.rows.first().map(|r| r[0].clone()) {
            Some(Value::Int(n)) => Ok(n as usize),
            _ => Ok(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{connection_string, Provider};
    use flowcore::persistence::{STATUS_COMPLETED, STATUS_RUNNING};
    use flowcore::value::VarValue;
    use sqlkernel::{CrashPoint, Fault, FaultPlan, MemLogStore};
    use std::sync::Arc;

    fn two_step_process() -> DurableProcess {
        DurableProcess::new("order-flow")
            .step("reserve", |conn, vars| {
                conn.execute("INSERT INTO steps VALUES (1, 'reserve')", &[])?;
                vars.set("stage", VarValue::Scalar(Value::text("reserved")));
                Ok(())
            })
            .step("confirm", |conn, vars| {
                conn.execute("INSERT INTO steps VALUES (2, 'confirm')", &[])?;
                vars.set("stage", VarValue::Scalar(Value::text("confirmed")));
                Ok(())
            })
    }

    fn steps_table(db: &Database) {
        db.connect()
            .execute("CREATE TABLE steps (id INT PRIMARY KEY, what TEXT)", &[])
            .unwrap();
    }

    #[test]
    fn host_resolved_persistence_store_honors_provider_whitelist() {
        let host = WfHost::new()
            .with_database(Provider::SqlServer, Database::new("state"))
            .with_database(Provider::Db2, Database::new("legacy"));
        assert!(SqlWorkflowPersistenceService::from_connection_string(
            &host,
            &connection_string(Provider::SqlServer, "state"),
        )
        .is_ok());
        let err = SqlWorkflowPersistenceService::from_connection_string(
            &host,
            &connection_string(Provider::Db2, "legacy"),
        )
        .unwrap_err();
        assert_eq!(err.class(), "service");
    }

    #[test]
    fn save_and_load_round_trip() {
        let db = Database::new("state");
        let svc = SqlWorkflowPersistenceService::new(&db).unwrap();
        let rt = RetryRuntime::new(1);
        let mut vars = Variables::new();
        vars.set("stage", VarValue::Scalar(Value::text("reserved")));
        svc.save_workflow_instance_state("wf-1", "order-flow", 1, STATUS_RUNNING, &vars, &rt)
            .unwrap();
        let h = svc.load_workflow_instance_state("wf-1").unwrap().unwrap();
        assert_eq!(h.pc, 1);
        assert_eq!(h.process, "order-flow");
        assert_eq!(
            h.variables.require_scalar("stage").unwrap(),
            &Value::text("reserved")
        );
        assert_eq!(svc.persisted_instance_count().unwrap(), 1);
        assert!(svc.load_workflow_instance_state("nope").unwrap().is_none());
    }

    #[test]
    fn crashed_workflow_resumes_from_persisted_state() {
        let store = MemLogStore::new();
        {
            let db = Database::with_wal("state", Arc::new(store.clone()));
            steps_table(&db);
        }
        let mut rt = RetryRuntime::new(1);

        let mut crashed = false;
        for idx in 0..24 {
            let db = Database::recover("state", Arc::new(store.clone())).unwrap();
            let svc = SqlWorkflowPersistenceService::new(&db).unwrap();
            db.set_fault_plan(Some(
                FaultPlan::new(11).fault_at(idx, Fault::Crash(CrashPoint::MidApply)),
            ));
            let r = svc.run_workflow(&two_step_process(), "wf-9", &Variables::new(), &mut rt);
            if db.fault_injector().map(|i| i.frozen()).unwrap_or(false) {
                assert!(r.is_err());
                crashed = true;
                break;
            }
            if r.is_ok() {
                let conn = db.connect();
                conn.execute("DELETE FROM FLOW_INSTANCES WHERE InstanceKey = 'wf-9'", &[])
                    .unwrap();
                conn.execute("DELETE FROM steps", &[]).unwrap();
            }
        }
        assert!(crashed, "no probe index produced a crash");

        let db = Database::recover("state", Arc::new(store.clone())).unwrap();
        let svc = SqlWorkflowPersistenceService::new(&db).unwrap();
        let run = svc
            .run_workflow(&two_step_process(), "wf-9", &Variables::new(), &mut rt)
            .unwrap();
        assert!(!run.already_completed);
        assert_eq!(
            run.variables.require_scalar("stage").unwrap(),
            &Value::text("confirmed")
        );
        let rs = db
            .connect()
            .query("SELECT id FROM steps ORDER BY id", &[])
            .unwrap();
        assert_eq!(rs.rows.len(), 2, "each step's insert applied exactly once");
        let h = svc.load_workflow_instance_state("wf-9").unwrap().unwrap();
        assert_eq!(h.status, STATUS_COMPLETED);
    }
}
