//! The tracking runtime service (Fig. 5): *“\[the Runtime Engine\] relies
//! on a group of Runtime Services for, e.g., persisting a workflow's
//! state or tracking its execution …. WF includes standard
//! implementations for these services, but developers may replace them as
//! needed.”*
//!
//! [`TrackingService`] persists every audit event of an instance into a
//! SQL table (`wf_tracking`) at instance completion — workflow telemetry
//! stored through the same data-management substrate the workflows
//! themselves use. The service is installed like any deployment concern:
//! via process-definition hooks.

use flowcore::{ActivityContext, AuditStatus, FlowError, FlowResult, ProcessDefinition};
use sqlkernel::{Database, Value};

/// Table holding tracked events.
pub const TRACKING_TABLE: &str = "wf_tracking";

/// A pluggable tracking service writing the execution log to a database.
#[derive(Clone)]
pub struct TrackingService {
    db: Database,
}

impl TrackingService {
    /// Track into `db` (the table is created on first use).
    pub fn new(db: Database) -> TrackingService {
        TrackingService { db }
    }

    /// Install onto a process definition. Tracking happens in a cleanup
    /// hook so the full trail — including faults — is captured.
    pub fn install(self, def: ProcessDefinition) -> ProcessDefinition {
        let svc = self;
        def.with_cleanup(move |ctx| svc.flush(ctx))
    }

    fn ensure_table(&self) -> FlowResult<()> {
        self.db
            .connect()
            .execute(
                &format!(
                    "CREATE TABLE IF NOT EXISTS {TRACKING_TABLE} (
                        EventId INT PRIMARY KEY,
                        InstanceId INT NOT NULL,
                        Seq INT NOT NULL,
                        Kind TEXT NOT NULL,
                        Name TEXT NOT NULL,
                        Status TEXT NOT NULL,
                        Detail TEXT)"
                ),
                &[],
            )
            .map_err(FlowError::from)?;
        // Sequence for event ids, shared across instances.
        self.db
            .connect()
            .execute(
                "CREATE SEQUENCE IF NOT EXISTS wf_tracking_ids START WITH 1",
                &[],
            )
            .map_err(FlowError::from)?;
        Ok(())
    }

    fn flush(&self, ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
        self.ensure_table()?;
        let conn = self.db.connect();
        let insert = conn
            .prepare(&format!(
                "INSERT INTO {TRACKING_TABLE} VALUES \
                 (NEXTVAL('wf_tracking_ids'), ?, ?, ?, ?, ?, ?)"
            ))
            .map_err(FlowError::from)?;
        conn.execute("BEGIN", &[]).map_err(FlowError::from)?;
        for e in ctx.audit.events() {
            let status = match e.status {
                AuditStatus::Started => "started",
                AuditStatus::Completed => "completed",
                AuditStatus::Faulted => "faulted",
                AuditStatus::Note => "note",
            };
            conn.execute_prepared(
                &insert,
                &[
                    Value::Int(ctx.instance_id as i64),
                    Value::Int(e.seq as i64),
                    Value::text(e.kind.clone()),
                    Value::text(e.name.clone()),
                    Value::text(status),
                    Value::text(e.detail.clone()),
                ],
            )
            .map_err(FlowError::from)?;
        }
        conn.execute("COMMIT", &[]).map_err(FlowError::from)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowcore::builtins::{Empty, Sequence, Throw};
    use flowcore::{Engine, Variables};

    #[test]
    fn tracking_persists_events() {
        let tracking_db = Database::new("telemetry");
        let def = TrackingService::new(tracking_db.clone()).install(ProcessDefinition::new(
            "tracked",
            Sequence::new("main")
                .then(Empty::new("a"))
                .then(Empty::new("b")),
        ));
        let engine = Engine::new();
        let inst = engine.run(&def, Variables::new()).unwrap();
        assert!(inst.is_completed());

        let conn = tracking_db.connect();
        let rs = conn
            .query(
                "SELECT COUNT(*) FROM wf_tracking WHERE InstanceId = ?",
                &[Value::Int(inst.instance_id as i64)],
            )
            .unwrap();
        // Start/complete for main, a, b plus the process-start event
        // (the final process-complete event postdates the cleanup hook).
        assert!(rs.single_value().unwrap().as_i64().unwrap() >= 7);

        // Activity order is queryable via SQL.
        let rs = conn
            .query(
                "SELECT Name FROM wf_tracking WHERE Status = 'started' \
                 AND Kind = 'empty' ORDER BY Seq",
                &[],
            )
            .unwrap();
        let names: Vec<String> = rs.rows.iter().map(|r| r[0].render()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn tracking_captures_faults_and_accumulates_instances() {
        let tracking_db = Database::new("telemetry");
        let def = TrackingService::new(tracking_db.clone()).install(ProcessDefinition::new(
            "faulty",
            Throw::new("t", "boom", ""),
        ));
        let engine = Engine::new();
        let a = engine.run(&def, Variables::new()).unwrap();
        let b = engine.run(&def, Variables::new()).unwrap();
        assert!(a.is_faulted() && b.is_faulted());

        let conn = tracking_db.connect();
        let rs = conn
            .query("SELECT COUNT(DISTINCT InstanceId) FROM wf_tracking", &[])
            .unwrap();
        assert_eq!(rs.single_value().unwrap(), &Value::Int(2));
        let rs = conn
            .query(
                "SELECT COUNT(*) FROM wf_tracking WHERE Status = 'faulted'",
                &[],
            )
            .unwrap();
        assert!(rs.single_value().unwrap().as_i64().unwrap() >= 2);
    }
}
