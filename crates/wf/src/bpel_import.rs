//! BPEL import (Sec. IV-A): *“import and export tools for BPEL as well
//! as an activity library representing BPEL are available. This way, one
//! may also model workflows conforming to the BPEL specification.”*
//!
//! [`import_bpel`] compiles a BPEL document — hand-authored or produced
//! by [`flowcore::export_bpel`] — into an executable activity tree. Like
//! real BPEL tooling, executable bindings that markup cannot carry
//! (conditions, embedded code, vendor extension activities) are resolved
//! against a [`BpelBindings`] registry:
//!
//! * `<condition>ruleName</condition>` → a registered rule,
//! * `<extensionActivity kind="…">` → a registered factory for that kind,
//! * `<invoke>` input/output parts from `<input>`/`<output>` child
//!   elements.

use std::collections::HashMap;
use std::sync::Arc;

use flowcore::builtins::{
    CopyFrom, Empty, Exit, Flow, If, Invoke, RepeatUntil, Scope, Sequence, Throw, While,
};
use flowcore::{Activity, ActivityContext, FlowError, FlowResult};
use xmlval::Element;

/// A condition binding.
pub type Rule = Arc<dyn Fn(&ActivityContext<'_>) -> FlowResult<bool>>;
/// A factory producing an executable activity from an
/// `<extensionActivity>` element.
pub type ExtensionFactory = Arc<dyn Fn(&Element) -> FlowResult<Box<dyn Activity>>>;

/// Executable bindings for the parts BPEL markup cannot express.
#[derive(Clone, Default)]
pub struct BpelBindings {
    rules: HashMap<String, Rule>,
    factories: HashMap<String, ExtensionFactory>,
}

impl BpelBindings {
    /// Empty bindings.
    pub fn new() -> BpelBindings {
        BpelBindings::default()
    }

    /// Register a named condition.
    pub fn rule(
        mut self,
        name: impl Into<String>,
        f: impl Fn(&ActivityContext<'_>) -> FlowResult<bool> + 'static,
    ) -> BpelBindings {
        self.rules.insert(name.into(), Arc::new(f));
        self
    }

    /// Register a factory for an extension-activity kind.
    pub fn extension(
        mut self,
        kind: impl Into<String>,
        f: impl Fn(&Element) -> FlowResult<Box<dyn Activity>> + 'static,
    ) -> BpelBindings {
        self.factories.insert(kind.into(), Arc::new(f));
        self
    }

    fn get_rule(&self, el: &Element, activity_name: &str) -> FlowResult<Rule> {
        // Condition text names the rule; an empty condition (as produced
        // by the exporter) falls back to the activity's own name.
        let key = el
            .child("condition")
            .map(Element::text_content)
            .filter(|t| !t.trim().is_empty())
            .unwrap_or_else(|| activity_name.to_string());
        self.rules.get(key.trim()).cloned().ok_or_else(|| {
            FlowError::Definition(format!("no rule bound for condition '{}'", key.trim()))
        })
    }
}

/// Compile a BPEL document into an executable activity tree. The document
/// root must be `<process>`; its single activity child becomes the root
/// activity.
pub fn import_bpel(markup: &str, bindings: &BpelBindings) -> FlowResult<Box<dyn Activity>> {
    let doc = xmlval::parse(markup).map_err(FlowError::from)?;
    if doc.name != "process" {
        return Err(FlowError::Definition(format!(
            "expected <process> root, found <{}>",
            doc.name
        )));
    }
    let root = doc
        .child_elements()
        .find(|e| e.name != "condition")
        .ok_or_else(|| FlowError::Definition("<process> has no root activity".into()))?;
    build(root, bindings)
}

fn name_of(el: &Element) -> String {
    el.attr("name").unwrap_or(&el.name).to_string()
}

/// Child activity elements (skipping `<condition>` helpers).
fn activity_children(el: &Element) -> impl Iterator<Item = &Element> {
    el.child_elements().filter(|c| c.name != "condition")
}

fn build(el: &Element, bindings: &BpelBindings) -> FlowResult<Box<dyn Activity>> {
    let name = name_of(el);
    match el.name.as_str() {
        "sequence" => {
            let mut seq = Sequence::new(name);
            for c in activity_children(el) {
                seq = seq.then_boxed(build(c, bindings)?);
            }
            Ok(Box::new(seq))
        }
        "flow" => {
            let mut flow = Flow::new(name);
            for c in activity_children(el) {
                let wrapped = Sequence::new(name_of(c)).then_boxed(build(c, bindings)?);
                flow = flow.branch(wrapped);
            }
            Ok(Box::new(flow))
        }
        "while" => {
            let rule = bindings.get_rule(el, &name)?;
            let mut body = Sequence::new(format!("{name} body"));
            for c in activity_children(el) {
                body = body.then_boxed(build(c, bindings)?);
            }
            Ok(Box::new(While::new(
                name,
                move |ctx: &ActivityContext<'_>| rule(ctx),
                body,
            )))
        }
        "repeatUntil" => {
            let rule = bindings.get_rule(el, &name)?;
            let mut body = Sequence::new(format!("{name} body"));
            for c in activity_children(el) {
                body = body.then_boxed(build(c, bindings)?);
            }
            Ok(Box::new(RepeatUntil::new(
                name,
                body,
                move |ctx: &ActivityContext<'_>| rule(ctx),
            )))
        }
        "if" => {
            let rule = bindings.get_rule(el, &name)?;
            let mut branches = activity_children(el);
            let then_el = branches
                .next()
                .ok_or_else(|| FlowError::Definition(format!("<if> '{name}' requires a branch")))?;
            let then = Sequence::new("then").then_boxed(build(then_el, bindings)?);
            let mut activity = If::new(name, move |ctx: &ActivityContext<'_>| rule(ctx), then);
            if let Some(else_el) = branches.next() {
                activity =
                    activity.otherwise(Sequence::new("else").then_boxed(build(else_el, bindings)?));
            }
            Ok(Box::new(activity))
        }
        "invoke" => {
            let service = el
                .attr("partnerService")
                .or_else(|| el.attr("operation"))
                .ok_or_else(|| {
                    FlowError::Definition(format!(
                        "<invoke> '{name}' requires partnerService= or operation="
                    ))
                })?
                .to_string();
            let mut inv = Invoke::new(name, service);
            for part in el.children_named("input") {
                let part_name = part
                    .attr("part")
                    .ok_or_else(|| FlowError::Definition("<input> requires part=".into()))?;
                let from = if let Some(v) = part.attr("variable") {
                    CopyFrom::Variable(v.to_string())
                } else if let (Some(var), Some(path)) = (part.attr("of"), part.attr("path")) {
                    CopyFrom::path(var.to_string(), path)?
                } else {
                    return Err(FlowError::Definition(
                        "<input> requires variable= or of=+path=".into(),
                    ));
                };
                inv = inv.input(part_name.to_string(), from);
            }
            for part in el.children_named("output") {
                let part_name = part
                    .attr("part")
                    .ok_or_else(|| FlowError::Definition("<output> requires part=".into()))?;
                let var = part
                    .attr("variable")
                    .ok_or_else(|| FlowError::Definition("<output> requires variable=".into()))?;
                inv = inv.output(part_name.to_string(), var.to_string());
            }
            Ok(Box::new(inv))
        }
        "empty" => Ok(Box::new(Empty::new(name))),
        "exit" => Ok(Box::new(Exit::new(name))),
        "throw" => Ok(Box::new(Throw::new(
            name,
            el.attr("faultName").unwrap_or("fault").to_string(),
            el.attr("faultMessage").unwrap_or_default().to_string(),
        ))),
        "scope" => {
            let mut children = activity_children(el);
            let body_el = children.next().ok_or_else(|| {
                FlowError::Definition(format!("<scope> '{name}' requires a body"))
            })?;
            let mut scope = Scope::new(
                name,
                Sequence::new("scope body").then_boxed(build(body_el, bindings)?),
            );
            for handler_el in children {
                let handler = Sequence::new("handler").then_boxed(build(handler_el, bindings)?);
                scope = match handler_el.attr("faultName") {
                    Some(f) => scope.catch(f.to_string(), handler),
                    None => scope.catch_all(handler),
                };
            }
            Ok(Box::new(scope))
        }
        "extensionActivity" => {
            let kind = el.attr("kind").ok_or_else(|| {
                FlowError::Definition("<extensionActivity> requires kind=".into())
            })?;
            let factory = bindings.factories.get(kind).ok_or_else(|| {
                FlowError::Definition(format!(
                    "no factory bound for extension activity kind '{kind}'"
                ))
            })?;
            factory(el)
        }
        other => Err(FlowError::Definition(format!(
            "unsupported BPEL element <{other}>"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowcore::builtins::Snippet;
    use flowcore::{activity_count, Engine, ProcessDefinition, Variables};
    use sqlkernel::Value;

    #[test]
    fn import_hand_authored_bpel() {
        let markup = r#"
        <process name="p">
          <sequence name="main">
            <empty name="start"/>
            <while name="loop">
              <condition>keepGoing</condition>
              <extensionActivity name="step" kind="counter"/>
            </while>
            <invoke name="call" partnerService="echo">
              <input part="x" variable="n"/>
              <output part="y" variable="out"/>
            </invoke>
          </sequence>
        </process>"#;

        let bindings = BpelBindings::new()
            .rule("keepGoing", |ctx| {
                Ok(ctx
                    .variables
                    .get("n")
                    .and_then(|v| v.as_scalar())
                    .and_then(Value::as_i64)
                    .unwrap_or(0)
                    < 3)
            })
            .extension("counter", |el| {
                let name = el.attr("name").unwrap_or("step").to_string();
                Ok(Box::new(Snippet::new(name, |ctx| {
                    let n = ctx
                        .variables
                        .get("n")
                        .and_then(|v| v.as_scalar())
                        .and_then(Value::as_i64)
                        .unwrap_or(0);
                    ctx.variables.set("n", Value::Int(n + 1));
                    Ok(())
                })))
            });

        let root = import_bpel(markup, &bindings).unwrap();
        let mut engine = Engine::new();
        engine.services_mut().register_fn("echo", |m| {
            Ok(flowcore::Message::new().with_part("y", m.scalar_part("x")?.clone()))
        });
        let def = ProcessDefinition::new("imported", Sequence::new("root").then_boxed(root));
        let inst = engine.run(&def, Variables::new()).unwrap();
        assert!(inst.is_completed(), "{:?}", inst.outcome);
        assert_eq!(
            inst.variables.require_scalar("out").unwrap(),
            &Value::Int(3)
        );
    }

    #[test]
    fn export_then_import_round_trips_structure() {
        // Build → export (flowcore) → import (wf) → same activity shape.
        let original = ProcessDefinition::new(
            "roundtrip",
            Sequence::new("main")
                .then(Empty::new("a"))
                .then(While::new(
                    "loop",
                    |_: &ActivityContext<'_>| Ok(false),
                    Empty::new("body"),
                ))
                .then(Invoke::new("call", "svc")),
        );
        let markup = flowcore::export_bpel(&original);

        let bindings = BpelBindings::new().rule("loop", |_| Ok(false));
        let imported = import_bpel(&markup, &bindings).unwrap();
        // Exporter writes no parts, importer adds a body-wrapper sequence
        // around while bodies; compare names present instead of count.
        let names = collect_names(imported.as_ref());
        for expected in ["main", "a", "loop", "body", "call"] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
        assert!(activity_count(imported.as_ref()) >= 5);
    }

    fn collect_names(a: &dyn Activity) -> Vec<String> {
        let mut out = vec![a.name().to_string()];
        for c in a.children() {
            out.extend(collect_names(c));
        }
        out
    }

    #[test]
    fn scope_with_handlers_imports() {
        let markup = r#"
        <process name="p">
          <scope name="guard">
            <sequence name="body"><throw name="t" faultName="oops"/></sequence>
            <sequence name="fix" faultName="oops"><empty name="handled"/></sequence>
          </scope>
        </process>"#;
        let root = import_bpel(markup, &BpelBindings::new()).unwrap();
        let def = ProcessDefinition::new("t", Sequence::new("root").then_boxed(root));
        let inst = Engine::new().run(&def, Variables::new()).unwrap();
        assert!(inst.is_completed(), "{:?}", inst.outcome);
        assert!(inst.audit.completed("handled"));
    }

    #[test]
    fn import_errors() {
        let b = BpelBindings::new();
        assert!(import_bpel("<notprocess/>", &b).is_err());
        assert!(import_bpel("<process name='p'/>", &b).is_err());
        assert!(import_bpel(
            "<process name='p'><while name='w'><empty name='e'/></while></process>",
            &b
        )
        .is_err()); // unbound rule
        assert!(import_bpel(
            "<process name='p'><extensionActivity name='x' kind='sql'/></process>",
            &b
        )
        .is_err()); // unbound factory
        assert!(import_bpel("<process name='p'><bogus/></process>", &b).is_err());
        assert!(import_bpel("<process name='p'><invoke name='i'/></process>", &b).is_err());
        // invoke without service
    }
}
