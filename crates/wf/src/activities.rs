//! WF activity model: the Base Activity Library (no SQL!), Custom
//! Activity Libraries, the customized `SqlDatabaseActivity`, code
//! activities, and the while-over-DataSet cursor.

use sqlkernel::sync::Mutex;

use flowcore::builtins::{CopyFrom, Sequence, Snippet, While};
use flowcore::{
    Activity, ActivityContext, FlowError, FlowResult, OpaqueValue, VarValue, Variables,
};
use sqlkernel::{StatementResult, Value};

use crate::dataset::DataSet;
use crate::host::host_of;

/// The activity types of WF's Base Activity Library (Sec. IV-A). Note
/// the absence of any SQL-specific type — the gap the paper highlights:
/// *“Currently, BAL does not provide any activity type considering SQL
/// issues.”*
pub const BASE_ACTIVITY_LIBRARY: &[&str] = &[
    "Sequence",
    "Parallel",
    "While",
    "IfElse",
    "Code",
    "InvokeWebService",
    "InvokeWorkflow",
    "Delay",
    "Listen",
    "EventDriven",
    "HandleExternalEvent",
    "CallExternalMethod",
    "Policy",
    "Replicator",
    "Suspend",
    "Terminate",
    "Throw",
    "TransactionScope",
    "CompensatableSequence",
    "SetState",
    "StateMachine",
];

/// A Custom Activity Library: user-defined activity types for a problem
/// space (Sec. IV-A). The SQL database activity lives in one of these.
#[derive(Debug, Clone, Default)]
pub struct CustomActivityLibrary {
    name: String,
    types: Vec<String>,
}

impl CustomActivityLibrary {
    /// Empty library.
    pub fn new(name: impl Into<String>) -> CustomActivityLibrary {
        CustomActivityLibrary {
            name: name.into(),
            types: Vec::new(),
        }
    }

    /// Register an activity type name.
    pub fn register(mut self, type_name: impl Into<String>) -> CustomActivityLibrary {
        self.types.push(type_name.into());
        self
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registered type names.
    pub fn types(&self) -> &[String] {
        &self.types
    }

    /// Is a type registered?
    pub fn contains(&self, type_name: &str) -> bool {
        self.types.iter().any(|t| t == type_name)
    }
}

/// Does the Base Activity Library provide SQL support? (It does not;
/// this exists so the claim is checked by code, not prose.)
pub fn bal_has_sql_support() -> bool {
    BASE_ACTIVITY_LIBRARY
        .iter()
        .any(|t| t.to_ascii_lowercase().contains("sql"))
}

/// Store a [`DataSet`] in a process variable (shared, internally
/// mutable — code activities mutate it through the ADO.NET-style API).
pub fn dataset_var(ds: DataSet) -> VarValue {
    VarValue::Opaque(OpaqueValue::new("dataset", Mutex::new(ds)))
}

/// Run `f` against the DataSet held in variable `name`.
pub fn with_dataset<R>(
    vars: &Variables,
    name: &str,
    f: impl FnOnce(&mut DataSet) -> FlowResult<R>,
) -> FlowResult<R> {
    let cell = vars.require_opaque::<Mutex<DataSet>>(name)?;
    let mut ds = cell.lock();
    f(&mut ds)
}

/// An event handler attached to a SQL database activity.
pub type Handler = Box<dyn Fn(&mut ActivityContext<'_>) -> FlowResult<()>>;

/// The customized **SQL database activity** (Sec. IV-B): executes one SQL
/// statement — query, DML, DDL or stored procedure call — over a *static*
/// connection string, with host-variable parameters, optional before/
/// after event handlers, and automatic materialization of results into a
/// [`DataSet`] object. The connection is opened per execution and closed
/// afterwards.
pub struct SqlDatabaseActivity {
    name: String,
    connection_string: String,
    sql: String,
    params: Vec<CopyFrom>,
    result_var: Option<String>,
    before: Option<Handler>,
    after: Option<Handler>,
}

impl SqlDatabaseActivity {
    /// Build an activity with a static connection string and SQL text.
    pub fn new(
        name: impl Into<String>,
        connection_string: impl Into<String>,
        sql: impl Into<String>,
    ) -> SqlDatabaseActivity {
        SqlDatabaseActivity {
            name: name.into(),
            connection_string: connection_string.into(),
            sql: sql.into(),
            params: Vec::new(),
            result_var: None,
            before: None,
            after: None,
        }
    }

    /// Builder: bind the next `?` host parameter.
    pub fn param(mut self, from: CopyFrom) -> SqlDatabaseActivity {
        self.params.push(from);
        self
    }

    /// Builder: bind a scalar variable as the next `?` parameter.
    pub fn param_var(self, variable: impl Into<String>) -> SqlDatabaseActivity {
        self.param(CopyFrom::Variable(variable.into()))
    }

    /// Builder: materialize the result into this DataSet variable.
    pub fn result_into(mut self, variable: impl Into<String>) -> SqlDatabaseActivity {
        self.result_var = Some(variable.into());
        self
    }

    /// Builder: code run before the statement (e.g. to initialize
    /// parameter values).
    pub fn before(
        mut self,
        handler: impl Fn(&mut ActivityContext<'_>) -> FlowResult<()> + 'static,
    ) -> SqlDatabaseActivity {
        self.before = Some(Box::new(handler));
        self
    }

    /// Builder: code run after the statement (e.g. to process result
    /// data directly).
    pub fn after(
        mut self,
        handler: impl Fn(&mut ActivityContext<'_>) -> FlowResult<()> + 'static,
    ) -> SqlDatabaseActivity {
        self.after = Some(Box::new(handler));
        self
    }
}

impl Activity for SqlDatabaseActivity {
    fn kind(&self) -> &str {
        "sqlDatabase"
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn export_attributes(&self) -> Vec<(String, String)> {
        let mut out = vec![
            ("sql".into(), self.sql.clone()),
            ("connectionString".into(), self.connection_string.clone()),
        ];
        if let Some(r) = &self.result_var {
            out.push(("resultVariable".into(), r.clone()));
        }
        out
    }
    fn execute(&self, ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
        if let Some(h) = &self.before {
            h(ctx)?;
        }

        let mut params = Vec::with_capacity(self.params.len());
        for p in &self.params {
            let v = p.read(ctx.variables)?;
            params.push(match v {
                VarValue::Scalar(s) => s,
                VarValue::Null => Value::Null,
                VarValue::Xml(x) => Value::Text(x.text_content()),
                VarValue::Opaque(_) => {
                    return Err(FlowError::Variable(
                        "cannot bind an opaque handle as a host variable".into(),
                    ))
                }
            });
        }
        let shown = if params.is_empty() {
            self.sql.clone()
        } else {
            format!(
                "{} ⟨{}⟩",
                self.sql,
                params
                    .iter()
                    .map(Value::render)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        ctx.note("sqlDatabase", &self.name, shown);

        // Static connection string → open, execute, close.
        let db = host_of(ctx)?.resolve_for_sql_activity(&self.connection_string)?;
        let conn = db.connect();
        let result = conn.execute(&self.sql, &params)?;
        drop(conn); // the connection is closed again (Sec. IV-B)

        match result {
            StatementResult::Rows(rs) => {
                // Execution of a query is always aligned with a
                // consecutive materialization step (Sec. IV-B).
                let n = rs.len();
                let ds = DataSet::from_result("Table", &rs);
                match &self.result_var {
                    Some(var) => {
                        ctx.variables.set(var.clone(), dataset_var(ds));
                        ctx.note(
                            "sqlDatabase",
                            &self.name,
                            format!("{n} rows materialized into DataSet variable {var}"),
                        );
                    }
                    None => ctx.note(
                        "sqlDatabase",
                        &self.name,
                        format!("{n} rows materialized and discarded"),
                    ),
                }
            }
            StatementResult::Affected(n) => {
                ctx.note("sqlDatabase", &self.name, format!("{n} rows affected"));
            }
            StatementResult::Ddl => ctx.note("sqlDatabase", &self.name, "DDL executed"),
            StatementResult::TxnControl => {}
        }

        if let Some(h) = &self.after {
            h(ctx)?;
        }
        Ok(())
    }
}

/// A code activity: arbitrary .NET-style code in the workflow — the only
/// way WF reaches the patterns its activity library does not cover.
pub fn code_activity(
    name: impl Into<String>,
    body: impl Fn(&mut ActivityContext<'_>) -> FlowResult<()> + 'static,
) -> Snippet {
    Snippet::with_kind(name, "code", body)
}

/// The current row bound by the while-over-DataSet cursor: a tuple as an
/// array-like structure with attribute-name access (the paper's
/// `CurrentItem["ItemQuantity"]`).
#[derive(Debug, Clone, PartialEq)]
pub struct CurrentRow {
    pub columns: Vec<String>,
    pub values: Vec<Value>,
}

impl CurrentRow {
    /// Access a field by attribute name.
    pub fn get(&self, column: &str) -> Option<&Value> {
        let i = self
            .columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(column))?;
        self.values.get(i)
    }
}

/// A parameter source reading `row_var[column]` (the indexer syntax of
/// the paper's Figure 6).
pub fn row_field(row_var: impl Into<String>, column: impl Into<String>) -> CopyFrom {
    let row_var = row_var.into();
    let column = column.into();
    CopyFrom::Compute(Box::new(move |vars| {
        let row = vars.require_opaque::<CurrentRow>(&row_var)?;
        let v = row.get(&column).ok_or_else(|| {
            FlowError::Variable(format!("row variable '{row_var}' has no column '{column}'"))
        })?;
        Ok(VarValue::Scalar(v.clone()))
    }))
}

/// Hidden iteration-position variable of a DataSet cursor.
fn position_var(dataset_var: &str) -> String {
    format!("{dataset_var}#pos")
}

/// Build the Figure 6 iteration: a while activity whose condition (C#
/// over the ADO.NET API in the paper, a closure here) checks for more
/// rows, and whose body binds the next tuple to `current_var` before
/// running `body`.
pub fn while_over_dataset(
    name: impl Into<String>,
    dataset_variable: impl Into<String>,
    current_var: impl Into<String>,
    body: impl Activity + 'static,
) -> While {
    let dataset_variable = dataset_variable.into();
    let current_var = current_var.into();

    let cond_ds = dataset_variable.clone();
    let fetch_ds = dataset_variable.clone();
    let fetch = code_activity(
        format!("bind next tuple of {dataset_variable} to {current_var}"),
        move |ctx| {
            let pos = ctx
                .variables
                .get(&position_var(&fetch_ds))
                .and_then(|v| v.as_scalar())
                .and_then(Value::as_i64)
                .unwrap_or(0) as usize;
            let (columns, values) = with_dataset(ctx.variables, &fetch_ds, |ds| {
                let t = ds.first_table()?;
                let row = t
                    .row(pos)
                    .ok_or_else(|| FlowError::Variable(format!("cursor past row {pos}")))?;
                Ok((t.columns().to_vec(), row.values().to_vec()))
            })?;
            ctx.variables.set(
                current_var.clone(),
                VarValue::Opaque(OpaqueValue::new(
                    "current-row",
                    CurrentRow { columns, values },
                )),
            );
            ctx.variables
                .set(position_var(&fetch_ds), Value::Int((pos + 1) as i64));
            Ok(())
        },
    );

    While::new(
        name,
        move |ctx: &ActivityContext<'_>| {
            let pos = ctx
                .variables
                .get(&position_var(&cond_ds))
                .and_then(|v| v.as_scalar())
                .and_then(Value::as_i64)
                .unwrap_or(0) as usize;
            let len = with_dataset(ctx.variables, &cond_ds, |ds| Ok(ds.first_table()?.len()))?;
            Ok(pos < len)
        },
        Sequence::new("iteration")
            .then(fetch)
            .then_boxed(Box::new(body)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{connection_string, Provider, WfHost};
    use flowcore::{Engine, ProcessDefinition};
    use sqlkernel::Database;

    #[test]
    fn bal_has_no_sql_activity_type() {
        assert!(!bal_has_sql_support());
        assert!(BASE_ACTIVITY_LIBRARY.contains(&"Code"));
        assert!(BASE_ACTIVITY_LIBRARY.contains(&"While"));
    }

    #[test]
    fn custom_library_registration() {
        let cal = CustomActivityLibrary::new("data activities").register("SqlDatabaseActivity");
        assert!(cal.contains("SqlDatabaseActivity"));
        assert!(!cal.contains("Other"));
        assert_eq!(cal.name(), "data activities");
        assert_eq!(cal.types().len(), 1);
    }

    fn run_with_host(db: &Database, root: impl Activity + 'static) -> flowcore::CompletedInstance {
        let host = WfHost::new().with_database(Provider::SqlServer, db.clone());
        let def = host.install(ProcessDefinition::new("t", root));
        Engine::new().run(&def, Variables::new()).unwrap()
    }

    fn seeded() -> Database {
        let db = Database::new("orders_db");
        db.connect()
            .execute_script(
                "CREATE TABLE t (id INT PRIMARY KEY, v TEXT);
                 INSERT INTO t VALUES (1, 'a'), (2, 'b');",
            )
            .unwrap();
        db
    }

    #[test]
    fn sql_database_activity_materializes_dataset() {
        let db = seeded();
        let cs = connection_string(Provider::SqlServer, "orders_db");
        let inst = run_with_host(
            &db,
            SqlDatabaseActivity::new("q", cs, "SELECT * FROM t ORDER BY id").result_into("SV"),
        );
        assert!(inst.is_completed(), "{:?}", inst.outcome);
        let n = with_dataset(&inst.variables, "SV", |ds| Ok(ds.first_table()?.len())).unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn host_variables_bind() {
        let db = seeded();
        let cs = connection_string(Provider::SqlServer, "orders_db");
        let root = Sequence::new("s")
            .then(code_activity("init", |ctx| {
                ctx.variables.set("id", Value::Int(2));
                Ok(())
            }))
            .then(
                SqlDatabaseActivity::new("q", cs, "SELECT v FROM t WHERE id = ?")
                    .param_var("id")
                    .result_into("SV"),
            );
        let inst = run_with_host(&db, root);
        let v = with_dataset(&inst.variables, "SV", |ds| {
            ds.first_table()?.cell(0, "v").map_err(Into::into)
        })
        .unwrap();
        assert_eq!(v, Value::text("b"));
    }

    #[test]
    fn before_after_handlers_run_in_order() {
        let db = seeded();
        let cs = connection_string(Provider::SqlServer, "orders_db");
        let inst = run_with_host(
            &db,
            SqlDatabaseActivity::new("q", cs, "SELECT * FROM t")
                .before(|ctx| {
                    ctx.variables.set("trace", Value::text("before,"));
                    Ok(())
                })
                .result_into("SV")
                .after(|ctx| {
                    let t = ctx.variables.require_scalar("trace")?.render();
                    ctx.variables.set("trace", Value::Text(format!("{t}after")));
                    Ok(())
                }),
        );
        assert_eq!(
            inst.variables.require_scalar("trace").unwrap(),
            &Value::text("before,after")
        );
    }

    #[test]
    fn unsupported_provider_faults() {
        let db = seeded();
        let host = WfHost::new().with_database(Provider::Db2, db.clone());
        let cs = connection_string(Provider::Db2, "orders_db");
        let def = host.install(ProcessDefinition::new(
            "t",
            SqlDatabaseActivity::new("q", cs, "SELECT 1"),
        ));
        let inst = Engine::new().run(&def, Variables::new()).unwrap();
        assert!(inst.is_faulted());
    }

    #[test]
    fn while_over_dataset_iterates() {
        let db = seeded();
        let cs = connection_string(Provider::SqlServer, "orders_db");
        let body = code_activity("collect", |ctx| {
            let row = ctx.variables.require_opaque::<CurrentRow>("Cur")?.clone();
            let seen = ctx
                .variables
                .get("seen")
                .and_then(|v| v.as_scalar())
                .map(Value::render)
                .unwrap_or_default();
            ctx.variables.set(
                "seen",
                Value::Text(format!("{seen}{}", row.get("v").unwrap())),
            );
            Ok(())
        });
        let root = Sequence::new("s")
            .then(
                SqlDatabaseActivity::new("q", cs, "SELECT * FROM t ORDER BY id").result_into("SV"),
            )
            .then(while_over_dataset("loop", "SV", "Cur", body));
        let inst = run_with_host(&db, root);
        assert!(inst.is_completed(), "{:?}", inst.outcome);
        assert_eq!(
            inst.variables.require_scalar("seen").unwrap(),
            &Value::text("ab")
        );
    }

    #[test]
    fn row_field_reads_by_attribute_name() {
        let mut vars = Variables::new();
        vars.set(
            "Cur",
            VarValue::Opaque(OpaqueValue::new(
                "current-row",
                CurrentRow {
                    columns: vec!["ItemId".into(), "Quantity".into()],
                    values: vec![Value::text("widget"), Value::Int(15)],
                },
            )),
        );
        let f = row_field("Cur", "quantity");
        assert_eq!(f.read(&vars).unwrap().as_scalar().unwrap(), &Value::Int(15));
        let bad = row_field("Cur", "nope");
        assert!(bad.read(&vars).is_err());
    }
}
