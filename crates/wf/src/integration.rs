//! [`SqlIntegration`] implementation for the WF-style stack: Table I
//! column, Figure 5 architecture, and executable demonstrations of all
//! nine data management patterns (Sec. IV-C).

use flowcore::builtins::Sequence;
use flowcore::{CompletedInstance, FlowError, Outcome, ProcessDefinition, Variables};
use patterns::{
    Architecture, DataPattern, Demonstration, ProbeEnv, ProbeError, ProductInfo, SqlIntegration,
    SupportLevel, SupportMatrix,
};
use sqlkernel::Value;

use crate::activities::{
    code_activity, while_over_dataset, with_dataset, CurrentRow, SqlDatabaseActivity,
};
use crate::dataset::DataAdapter;
use crate::host::{connection_string, Provider, WfHost};

/// The Microsoft Workflow Foundation integration style.
pub struct WfProduct;

const MECH_SQL_DB: &str = "SQL Database";
const MECH_WORKAROUND: &str = "Only workarounds possible";

fn run(env: &ProbeEnv, def: ProcessDefinition) -> Result<CompletedInstance, ProbeError> {
    let inst = env.engine.run(&def, Variables::new())?;
    match inst.outcome {
        Outcome::Completed => Ok(inst),
        ref other => Err(ProbeError(format!("instance ended {other:?}"))),
    }
}

fn deploy(env: &ProbeEnv, root: impl flowcore::Activity + 'static) -> ProcessDefinition {
    WfHost::new()
        .with_database(Provider::SqlServer, env.db.clone())
        .install(ProcessDefinition::new("probe", root))
}

fn cs(env: &ProbeEnv) -> String {
    connection_string(Provider::SqlServer, env.db.name())
}

/// Query + automatic materialization into `SV` (reused by the internal
/// pattern demos).
fn fill_item_list(env: &ProbeEnv) -> SqlDatabaseActivity {
    SqlDatabaseActivity::new("SQLDatabase_1", cs(env), crate::sample::SQL_DATABASE_1)
        .result_into("SV")
}

impl SqlIntegration for WfProduct {
    fn product_info(&self) -> ProductInfo {
        ProductInfo {
            vendor: "Microsoft".into(),
            product: "Workflow Foundation (WF)".into(),
            workflow_language: "C#, VB, XOML (BPEL)".into(),
            process_modeling: "graphical, code, markup".into(),
            design_tool: "Workflow Designer".into(),
            sql_inline_support: vec!["customized SQL Activity".into()],
            external_dataset_reference: "static text".into(),
            materialized_set_representation: "DataSet Object".into(),
            external_datasource_reference: "static".into(),
            additional_features: vec![],
        }
    }

    fn architecture(&self) -> Architecture {
        // Figure 5: Process Modeling and Execution in Microsoft WF.
        Architecture::new("Microsoft Windows Workflow Foundation (Fig. 5)")
            .layer(
                "Workflow Designer (Visual Studio)",
                &[
                    "graphical construction",
                    "code-only / markup-only (XOML) / code-separation authoring",
                    "BPEL import/export + BPEL activity library",
                ],
            )
            .layer(
                "Activity Libraries",
                &[
                    "Base Activity Library (control flow, events, state — no SQL)",
                    "Custom Activity Library (e.g. SQL database activity)",
                ],
            )
            .layer(
                "Host Process (any .NET process)",
                &[
                    "Runtime Engine (executes the workflow)",
                    "Runtime Services (persistence, tracking, communication)",
                ],
            )
            .layer(".NET Runtime", &["CLR"])
    }

    fn support_matrix(&self) -> SupportMatrix {
        patterns::paper::microsoft_support()
    }

    fn demonstrate(
        &self,
        pattern: DataPattern,
        env: &mut ProbeEnv,
    ) -> Result<Vec<Demonstration>, ProbeError> {
        match pattern {
            DataPattern::Query => {
                let def = deploy(
                    env,
                    SqlDatabaseActivity::new("q", cs(env), crate::sample::SQL_DATABASE_1)
                        .result_into("SV"),
                );
                let inst = run(env, def)?;
                let n = with_dataset(&inst.variables, "SV", |ds| Ok(ds.first_table()?.len()))?;
                if n != 3 {
                    return Err(ProbeError(format!("query materialized {n} rows")));
                }
                Ok(vec![Demonstration::new(
                    DataPattern::Query,
                    MECH_SQL_DB,
                    SupportLevel::Native,
                )
                .evidence("SQL database activity executed the aggregation query")
                .evidence(
                    "result automatically materialized into a DataSet (3 rows)",
                )])
            }
            DataPattern::SetIud => {
                let def = deploy(
                    env,
                    SqlDatabaseActivity::new(
                        "upd",
                        cs(env),
                        "UPDATE Orders SET Approved = TRUE WHERE Approved = FALSE",
                    ),
                );
                run(env, def)?;
                let n = env
                    .db
                    .connect()
                    .query("SELECT COUNT(*) FROM Orders WHERE Approved = TRUE", &[])?
                    .single_value()?
                    .clone();
                if n != Value::Int(6) {
                    return Err(ProbeError(format!("{n} approved after update")));
                }
                Ok(vec![Demonstration::new(
                    DataPattern::SetIud,
                    MECH_SQL_DB,
                    SupportLevel::Native,
                )
                .evidence("set-oriented UPDATE via SQL database activity")])
            }
            DataPattern::DataSetup => {
                let def = deploy(
                    env,
                    SqlDatabaseActivity::new(
                        "ddl",
                        cs(env),
                        "CREATE TABLE audit_log (Id INT PRIMARY KEY, Note TEXT)",
                    ),
                );
                run(env, def)?;
                if !env.db.has_table("audit_log") {
                    return Err(ProbeError("DDL did not run".into()));
                }
                Ok(vec![Demonstration::new(
                    DataPattern::DataSetup,
                    MECH_SQL_DB,
                    SupportLevel::Native,
                )
                .evidence(
                    "CREATE TABLE executed through the SQL database activity",
                )])
            }
            DataPattern::StoredProcedure => {
                let def = deploy(
                    env,
                    SqlDatabaseActivity::new("call", cs(env), "CALL item_total('widget')")
                        .result_into("SV"),
                );
                let inst = run(env, def)?;
                let total = with_dataset(&inst.variables, "SV", |ds| {
                    ds.first_table()?
                        .cell(0, "Quantity")
                        .map_err(FlowError::from)
                })?;
                if total != Value::Int(15) {
                    return Err(ProbeError(format!("procedure returned {total}")));
                }
                Ok(vec![Demonstration::new(
                    DataPattern::StoredProcedure,
                    MECH_SQL_DB,
                    SupportLevel::Native,
                )
                .evidence(
                    "CALL item_total('widget') returned 15 into a DataSet",
                )])
            }
            DataPattern::SetRetrieval => {
                let def = deploy(env, fill_item_list(env));
                let inst = run(env, def)?;
                let n = with_dataset(&inst.variables, "SV", |ds| Ok(ds.first_table()?.len()))?;
                if n != 3 {
                    return Err(ProbeError(format!("{n} rows in DataSet")));
                }
                Ok(vec![Demonstration::new(
                    DataPattern::SetRetrieval,
                    MECH_SQL_DB,
                    SupportLevel::Native,
                )
                .evidence(
                    "materialization is implicit: the SQL database activity always imports \
                     the result set into the process space as a DataSet",
                )])
            }
            DataPattern::SequentialSetAccess => {
                let body = code_activity("collect", |ctx| {
                    let row = ctx.variables.require_opaque::<CurrentRow>("Cur")?.clone();
                    let seen = ctx
                        .variables
                        .get("seen")
                        .and_then(|v| v.as_scalar())
                        .map(Value::render)
                        .unwrap_or_default();
                    ctx.variables.set(
                        "seen",
                        Value::Text(format!("{seen}{},", row.get("ItemId").unwrap())),
                    );
                    Ok(())
                });
                let def = deploy(
                    env,
                    Sequence::new("s")
                        .then(fill_item_list(env))
                        .then(while_over_dataset("loop", "SV", "Cur", body)),
                );
                let inst = run(env, def)?;
                let seen = inst.variables.require_scalar("seen")?.render();
                if seen != "gadget,sprocket,widget," {
                    return Err(ProbeError(format!("visited {seen}")));
                }
                Ok(vec![Demonstration::new(
                    DataPattern::SequentialSetAccess,
                    MECH_WORKAROUND,
                    SupportLevel::Workaround,
                )
                .evidence("while activity + C#-style condition over the ADO.NET API")
                .evidence(format!("visited in order: {seen}"))])
            }
            DataPattern::RandomSetAccess => {
                let def = deploy(
                    env,
                    Sequence::new("s")
                        .then(fill_item_list(env))
                        .then(code_activity("pick", |ctx| {
                            let v = with_dataset(ctx.variables, "SV", |ds| {
                                let t = ds.first_table()?;
                                // DataTable.Select-style predicate query.
                                let hits = t.select(|r| r.values()[0] == Value::text("sprocket"));
                                let i = *hits
                                    .first()
                                    .ok_or_else(|| FlowError::Variable("no sprocket row".into()))?;
                                t.cell(i, "Quantity").map_err(FlowError::from)
                            })?;
                            ctx.variables.set("picked", v);
                            Ok(())
                        })),
                );
                let inst = run(env, def)?;
                if inst.variables.require_scalar("picked")? != &Value::Int(2) {
                    return Err(ProbeError("random access picked wrong value".into()));
                }
                Ok(vec![Demonstration::new(
                    DataPattern::RandomSetAccess,
                    MECH_WORKAROUND,
                    SupportLevel::Workaround,
                )
                .evidence(
                    "code activity queried a specific tuple via DataTable.Select",
                )])
            }
            DataPattern::TupleIud => {
                let def = deploy(
                    env,
                    Sequence::new("s")
                        .then(fill_item_list(env))
                        .then(code_activity("mutate cache", |ctx| {
                            with_dataset(ctx.variables, "SV", |ds| {
                                let t = ds.first_table_mut()?;
                                t.set_cell(0, "Quantity", Value::Int(99))?;
                                t.delete_row(1)?;
                                t.add_row(vec![Value::text("cog"), Value::Int(7)])?;
                                Ok(())
                            })
                        })),
                );
                let inst = run(env, def)?;
                let (n, first, last) = with_dataset(&inst.variables, "SV", |ds| {
                    let t = ds.first_table()?;
                    Ok((
                        t.len(),
                        t.cell(0, "Quantity")?,
                        t.cell(t.len() - 1, "ItemId")?,
                    ))
                })?;
                if n != 3 || first != Value::Int(99) || last != Value::text("cog") {
                    return Err(ProbeError(format!("cache IUD gave n={n} {first} {last}")));
                }
                Ok(vec![Demonstration::new(
                    DataPattern::TupleIud,
                    MECH_WORKAROUND,
                    SupportLevel::Workaround,
                )
                .evidence(
                    "code activity inserted, updated and deleted tuples of the DataSet",
                )])
            }
            DataPattern::Synchronization => {
                let db_for_sync = env.db.clone();
                let def = deploy(
                    env,
                    Sequence::new("s")
                        .then(
                            SqlDatabaseActivity::new(
                                "fill",
                                cs(env),
                                "SELECT OrderId, ItemId, Quantity, Approved FROM Orders \
                                 ORDER BY OrderId",
                            )
                            .result_into("SV"),
                        )
                        .then(code_activity("mutate + DataAdapter.Update", move |ctx| {
                            with_dataset(ctx.variables, "SV", |ds| {
                                let t = ds.first_table_mut()?;
                                t.set_key_columns(&["OrderId"]).map_err(FlowError::from)?;
                                t.set_cell(0, "Quantity", Value::Int(77))?;
                                t.delete_row(5)?;
                                t.add_row(vec![
                                    Value::Int(7),
                                    Value::text("nut"),
                                    Value::Int(1),
                                    Value::Bool(true),
                                ])?;
                                let conn = db_for_sync.connect();
                                let n = DataAdapter::update(&conn, t, "Orders")
                                    .map_err(FlowError::from)?;
                                if n != 3 {
                                    return Err(FlowError::Variable(format!(
                                        "adapter ran {n} statements"
                                    )));
                                }
                                Ok(())
                            })
                        })),
                );
                run(env, def)?;
                let conn = env.db.connect();
                let q77 = conn
                    .query("SELECT Quantity FROM Orders WHERE OrderId = 1", &[])?
                    .single_value()?
                    .clone();
                let count = conn
                    .query("SELECT COUNT(*) FROM Orders", &[])?
                    .single_value()?
                    .clone();
                if q77 != Value::Int(77) || count != Value::Int(6) {
                    return Err(ProbeError(format!("sync state: q={q77} n={count}")));
                }
                Ok(vec![Demonstration::new(
                    DataPattern::Synchronization,
                    MECH_WORKAROUND,
                    SupportLevel::Workaround,
                )
                .evidence(
                    "code activity reconciled the DataSet with Orders via DataAdapter.Update \
                     (1 UPDATE, 1 DELETE, 1 INSERT)",
                )])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wf_matrix_is_fully_demonstrated() {
        let demos = patterns::verify_support_matrix(&WfProduct).unwrap();
        assert_eq!(demos.len(), 9);
    }

    #[test]
    fn wf_matrix_matches_paper() {
        assert_eq!(
            WfProduct.support_matrix(),
            patterns::paper::microsoft_support()
        );
    }

    #[test]
    fn architecture_and_info() {
        let a = WfProduct.architecture();
        assert!(a.render().contains("Runtime Engine"));
        let i = WfProduct.product_info();
        assert_eq!(i.materialized_set_representation, "DataSet Object");
        assert_eq!(i.external_datasource_reference, "static");
        assert!(i.additional_features.is_empty());
    }
}
