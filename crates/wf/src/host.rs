//! The WF *host process* (Fig. 5) and provider-restricted connection
//! strings.
//!
//! WF activities carry **static** connection strings (Sec. IV-B); the
//! implementation of the SQL database activity surveyed in the paper is
//! *“restricted to SQL Server and Oracle database systems”* (Sec. VI-B).
//! The host process resolves connection strings against its database
//! directory and enforces that restriction.

use std::collections::HashMap;

use flowcore::{ActivityContext, FlowError, FlowResult, ProcessDefinition};
use sqlkernel::Database;

/// Database providers a connection string can name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provider {
    SqlServer,
    Oracle,
    Db2,
    Generic,
}

impl Provider {
    /// Parse a provider token.
    pub fn from_name(s: &str) -> Option<Provider> {
        match s.to_ascii_lowercase().as_str() {
            "sqlserver" => Some(Provider::SqlServer),
            "oracle" => Some(Provider::Oracle),
            "db2" => Some(Provider::Db2),
            "generic" => Some(Provider::Generic),
            _ => None,
        }
    }

    /// Canonical spelling for connection strings.
    pub fn name(&self) -> &'static str {
        match self {
            Provider::SqlServer => "SqlServer",
            Provider::Oracle => "Oracle",
            Provider::Db2 => "Db2",
            Provider::Generic => "Generic",
        }
    }

    /// Is this provider supported by the customized SQL database
    /// activity (the paper's restriction)?
    pub fn supported_by_sql_database_activity(&self) -> bool {
        matches!(self, Provider::SqlServer | Provider::Oracle)
    }
}

/// Build a WF connection string.
pub fn connection_string(provider: Provider, database: &str) -> String {
    format!("Provider={};Database={database}", provider.name())
}

/// Parse a WF connection string into provider and database name.
pub fn parse_connection_string(s: &str) -> FlowResult<(Provider, &str)> {
    let mut provider = None;
    let mut database = None;
    for part in s.split(';') {
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| FlowError::Variable(format!("malformed connection string '{s}'")))?;
        match k.trim().to_ascii_lowercase().as_str() {
            "provider" => {
                provider = Some(
                    Provider::from_name(v.trim())
                        .ok_or_else(|| FlowError::Variable(format!("unknown provider '{v}'")))?,
                )
            }
            "database" => database = Some(v.trim()),
            other => {
                return Err(FlowError::Variable(format!(
                    "unknown connection string key '{other}'"
                )))
            }
        }
    }
    match (provider, database) {
        (Some(p), Some(d)) => Ok((p, d)),
        _ => Err(FlowError::Variable(format!(
            "connection string '{s}' must name Provider and Database"
        ))),
    }
}

/// The host process: owns the runtime services and the database
/// directory visible to activities.
#[derive(Debug, Clone, Default)]
pub struct WfHost {
    databases: HashMap<String, (Provider, Database)>,
}

impl WfHost {
    /// Empty host.
    pub fn new() -> WfHost {
        WfHost::default()
    }

    /// Register a database under a provider.
    pub fn with_database(mut self, provider: Provider, db: Database) -> WfHost {
        self.databases.insert(db.name().to_string(), (provider, db));
        self
    }

    /// Resolve a connection string, enforcing the provider whitelist of
    /// the SQL database activity.
    pub fn resolve_for_sql_activity(&self, conn_string: &str) -> FlowResult<Database> {
        let (provider, name) = parse_connection_string(conn_string)?;
        let Some((registered, db)) = self.databases.get(name) else {
            // Shared-handle fallback: a database another component opened
            // via `Database::open` / published. The provider whitelist
            // still applies to the provider the string claims, and
            // `lookup` never creates, so unknown names still fail.
            if !provider.supported_by_sql_database_activity() {
                return Err(FlowError::Service(format!(
                    "SQL database activity supports SqlServer and Oracle only; '{name}' is {}",
                    provider.name()
                )));
            }
            // `try_lookup`: a poisoned registry surfaces as a DbError
            // instead of a panic, so a crashed shard thread in another
            // stack cannot wedge this resolver.
            return Database::try_lookup(name)
                .map_err(FlowError::Sql)?
                .ok_or_else(|| FlowError::Variable(format!("unknown database '{name}'")));
        };
        if *registered != provider {
            return Err(FlowError::Variable(format!(
                "database '{name}' is registered as {} (connection string says {})",
                registered.name(),
                provider.name()
            )));
        }
        if !provider.supported_by_sql_database_activity() {
            return Err(FlowError::Service(format!(
                "SQL database activity supports SqlServer and Oracle only; '{name}' is {}",
                provider.name()
            )));
        }
        Ok(db.clone())
    }

    /// Install the host into a process definition (setup hook inserting
    /// the directory into the instance extensions).
    pub fn install(self, def: ProcessDefinition) -> ProcessDefinition {
        let host = self;
        def.with_setup(move |ctx| {
            ctx.extensions.insert(host.clone());
            Ok(())
        })
    }
}

/// Fetch the host from the instance extensions.
pub fn host_of<'a>(ctx: &'a ActivityContext<'_>) -> FlowResult<&'a WfHost> {
    ctx.extensions
        .get::<WfHost>()
        .ok_or_else(|| FlowError::Definition("WF host process not installed".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connection_string_round_trip() {
        let s = connection_string(Provider::SqlServer, "orders_db");
        assert_eq!(s, "Provider=SqlServer;Database=orders_db");
        let (p, d) = parse_connection_string(&s).unwrap();
        assert_eq!(p, Provider::SqlServer);
        assert_eq!(d, "orders_db");
    }

    #[test]
    fn malformed_connection_strings() {
        assert!(parse_connection_string("nope").is_err());
        assert!(parse_connection_string("Provider=SqlServer").is_err());
        assert!(parse_connection_string("Provider=Access;Database=x").is_err());
        assert!(parse_connection_string("Foo=1;Database=x").is_err());
    }

    #[test]
    fn provider_whitelist() {
        assert!(Provider::SqlServer.supported_by_sql_database_activity());
        assert!(Provider::Oracle.supported_by_sql_database_activity());
        assert!(!Provider::Db2.supported_by_sql_database_activity());
    }

    #[test]
    fn host_resolution_and_restriction() {
        let host = WfHost::new()
            .with_database(Provider::SqlServer, Database::new("good"))
            .with_database(Provider::Db2, Database::new("legacy"));
        assert!(host
            .resolve_for_sql_activity("Provider=SqlServer;Database=good")
            .is_ok());
        // Wrong provider claim.
        assert!(host
            .resolve_for_sql_activity("Provider=Oracle;Database=good")
            .is_err());
        // Unsupported provider.
        let err = host
            .resolve_for_sql_activity("Provider=Db2;Database=legacy")
            .unwrap_err();
        assert_eq!(err.class(), "service");
        // Unknown database.
        assert!(host
            .resolve_for_sql_activity("Provider=SqlServer;Database=missing")
            .is_err());
    }
}
