//! XOML markup authoring (Sec. IV-A).
//!
//! WF supports three authoring modes: *code-only*, *markup-only* (XOML)
//! and *code-separation* — markup for the workflow structure combined
//! with code-behind implementations. This module implements the
//! code-separation mode: [`load_xoml`] compiles an XOML document into an
//! executable activity tree, resolving `Code` handlers and `While`/
//! `IfElse` conditions against a [`CodeBehind`] registry (the C#/VB
//! code-behind file of real WF).
//!
//! Supported activity elements:
//!
//! ```xml
//! <SequentialWorkflowActivity x:Name="main">
//!   <SqlDatabaseActivity x:Name="q" ConnectionString="Provider=SqlServer;Database=d"
//!                        Sql="SELECT * FROM t WHERE a = ?" ResultVariable="SV">
//!     <Param Variable="x"/>
//!   </SqlDatabaseActivity>
//!   <WhileActivity x:Name="loop" Condition="hasRows">
//!     <CodeActivity x:Name="step" Handler="consumeRow"/>
//!   </WhileActivity>
//!   <IfElseActivity x:Name="gate" Condition="ok">
//!     <Then>…</Then>
//!     <Else>…</Else>
//!   </IfElseActivity>
//!   <ParallelActivity x:Name="par">…</ParallelActivity>
//!   <InvokeWebServiceActivity x:Name="call" Service="OrderFromSupplier">
//!     <Input Part="ItemType" Variable="item"/>
//!     <Output Part="Confirmation" Variable="conf"/>
//!   </InvokeWebServiceActivity>
//!   <TerminateActivity x:Name="stop"/>
//!   <ThrowActivity x:Name="oops" Fault="badOrder" Message="…"/>
//! </SequentialWorkflowActivity>
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use flowcore::builtins::{CopyFrom, Exit, Flow, If, Invoke, Sequence, Snippet, Throw, While};
use flowcore::{Activity, ActivityContext, FlowError, FlowResult};
use xmlval::Element;

use crate::activities::SqlDatabaseActivity;

/// A code-behind handler (the body of a `CodeActivity`).
pub type Handler = Arc<dyn Fn(&mut ActivityContext<'_>) -> FlowResult<()>>;
/// A code-behind condition (for `WhileActivity` / `IfElseActivity`).
pub type Rule = Arc<dyn Fn(&ActivityContext<'_>) -> FlowResult<bool>>;

/// The code-behind file: named handlers and conditions the markup
/// references.
#[derive(Clone, Default)]
pub struct CodeBehind {
    handlers: HashMap<String, Handler>,
    rules: HashMap<String, Rule>,
}

impl CodeBehind {
    /// Empty code-behind.
    pub fn new() -> CodeBehind {
        CodeBehind::default()
    }

    /// Register a `Code` handler.
    pub fn handler(
        mut self,
        name: impl Into<String>,
        f: impl Fn(&mut ActivityContext<'_>) -> FlowResult<()> + 'static,
    ) -> CodeBehind {
        self.handlers.insert(name.into(), Arc::new(f));
        self
    }

    /// Register a condition.
    pub fn rule(
        mut self,
        name: impl Into<String>,
        f: impl Fn(&ActivityContext<'_>) -> FlowResult<bool> + 'static,
    ) -> CodeBehind {
        self.rules.insert(name.into(), Arc::new(f));
        self
    }

    fn get_handler(&self, name: &str) -> FlowResult<Handler> {
        self.handlers
            .get(name)
            .cloned()
            .ok_or_else(|| FlowError::Definition(format!("code-behind has no handler '{name}'")))
    }

    fn get_rule(&self, name: &str) -> FlowResult<Rule> {
        self.rules
            .get(name)
            .cloned()
            .ok_or_else(|| FlowError::Definition(format!("code-behind has no condition '{name}'")))
    }
}

/// Compile an XOML document into an executable activity tree.
pub fn load_xoml(markup: &str, code: &CodeBehind) -> FlowResult<Box<dyn Activity>> {
    let doc = xmlval::parse(markup).map_err(FlowError::from)?;
    build(&doc, code)
}

fn name_of(el: &Element) -> String {
    el.attr("x:Name")
        .or_else(|| el.attr("Name"))
        .unwrap_or(&el.name)
        .to_string()
}

fn require_attr(el: &Element, attr: &str) -> FlowResult<String> {
    el.attr(attr)
        .map(str::to_string)
        .ok_or_else(|| FlowError::Definition(format!("<{}> requires a {attr} attribute", el.name)))
}

fn copy_from_of(el: &Element) -> FlowResult<CopyFrom> {
    if let Some(v) = el.attr("Variable") {
        return Ok(CopyFrom::Variable(v.to_string()));
    }
    if let (Some(var), Some(path)) = (el.attr("Of"), el.attr("Path")) {
        return CopyFrom::path(var.to_string(), path);
    }
    if let Some(lit) = el.attr("Literal") {
        return Ok(CopyFrom::Literal(sqlkernel::Value::text(lit).into()));
    }
    Err(FlowError::Definition(format!(
        "<{}> needs Variable=, Literal=, or Of=+Path=",
        el.name
    )))
}

fn build(el: &Element, code: &CodeBehind) -> FlowResult<Box<dyn Activity>> {
    let name = name_of(el);
    match el.name.as_str() {
        "SequentialWorkflowActivity" | "SequenceActivity" | "Sequence" => {
            let mut seq = Sequence::new(name);
            for child in el.child_elements() {
                seq = seq.then_boxed(build(child, code)?);
            }
            Ok(Box::new(seq))
        }
        "ParallelActivity" | "Parallel" => {
            let mut flow = Flow::new(name);
            for child in el.child_elements() {
                // Flow::branch takes impl Activity; use a one-child
                // sequence wrapper to accept the boxed child.
                let wrapped = Sequence::new(name_of(child)).then_boxed(build(child, code)?);
                flow = flow.branch(wrapped);
            }
            Ok(Box::new(flow))
        }
        "WhileActivity" | "While" => {
            let rule = code.get_rule(&require_attr(el, "Condition")?)?;
            let mut body = Sequence::new(format!("{name} body"));
            for child in el.child_elements() {
                body = body.then_boxed(build(child, code)?);
            }
            Ok(Box::new(While::new(
                name,
                move |ctx: &ActivityContext<'_>| rule(ctx),
                body,
            )))
        }
        "IfElseActivity" | "IfElse" => {
            let rule = code.get_rule(&require_attr(el, "Condition")?)?;
            let then_el = el.child("Then").ok_or_else(|| {
                FlowError::Definition(format!("<{}> '{name}' requires a <Then> branch", el.name))
            })?;
            let mut then_seq = Sequence::new("then");
            for child in then_el.child_elements() {
                then_seq = then_seq.then_boxed(build(child, code)?);
            }
            let mut activity = If::new(name, move |ctx: &ActivityContext<'_>| rule(ctx), then_seq);
            if let Some(else_el) = el.child("Else") {
                let mut else_seq = Sequence::new("else");
                for child in else_el.child_elements() {
                    else_seq = else_seq.then_boxed(build(child, code)?);
                }
                activity = activity.otherwise(else_seq);
            }
            Ok(Box::new(activity))
        }
        "CodeActivity" | "Code" => {
            let handler = code.get_handler(&require_attr(el, "Handler")?)?;
            Ok(Box::new(Snippet::with_kind(name, "code", move |ctx| {
                handler(ctx)
            })))
        }
        "SqlDatabaseActivity" => {
            let mut act = SqlDatabaseActivity::new(
                name,
                require_attr(el, "ConnectionString")?,
                require_attr(el, "Sql")?,
            );
            for p in el.children_named("Param") {
                act = act.param(copy_from_of(p)?);
            }
            if let Some(var) = el.attr("ResultVariable") {
                act = act.result_into(var.to_string());
            }
            Ok(Box::new(act))
        }
        "InvokeWebServiceActivity" | "InvokeWebService" => {
            let mut inv = Invoke::new(name, require_attr(el, "Service")?);
            for part in el.children_named("Input") {
                inv = inv.input(require_attr(part, "Part")?, copy_from_of(part)?);
            }
            for part in el.children_named("Output") {
                inv = inv.output(require_attr(part, "Part")?, require_attr(part, "Variable")?);
            }
            Ok(Box::new(inv))
        }
        "TerminateActivity" | "Terminate" => Ok(Box::new(Exit::new(name))),
        "ThrowActivity" | "Throw" => Ok(Box::new(Throw::new(
            name,
            require_attr(el, "Fault")?,
            el.attr("Message").unwrap_or_default().to_string(),
        ))),
        other => Err(FlowError::Definition(format!(
            "unsupported XOML activity <{other}>"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::{Provider, WfHost};
    use flowcore::{Engine, ProcessDefinition, Variables};
    use sqlkernel::{Database, Value};

    fn seeded() -> Database {
        let db = Database::new("orders_db");
        db.connect()
            .execute_script(
                "CREATE TABLE t (id INT PRIMARY KEY, v TEXT);
                 INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c');",
            )
            .unwrap();
        db
    }

    #[test]
    fn code_separation_workflow_runs() {
        let markup = r#"
            <SequentialWorkflowActivity x:Name="main">
              <SqlDatabaseActivity x:Name="q"
                  ConnectionString="Provider=SqlServer;Database=orders_db"
                  Sql="SELECT id, v FROM t ORDER BY id"
                  ResultVariable="SV"/>
              <CodeActivity x:Name="init" Handler="initPos"/>
              <WhileActivity x:Name="loop" Condition="hasRows">
                <CodeActivity x:Name="consume" Handler="consumeRow"/>
              </WhileActivity>
            </SequentialWorkflowActivity>"#;

        let code = CodeBehind::new()
            .handler("initPos", |ctx| {
                ctx.variables.set("pos", Value::Int(0));
                ctx.variables.set("seen", Value::text(""));
                Ok(())
            })
            .rule("hasRows", |ctx| {
                let pos = ctx.variables.require_scalar("pos")?.as_i64().unwrap();
                let len = crate::activities::with_dataset(ctx.variables, "SV", |ds| {
                    Ok(ds.first_table()?.len())
                })?;
                Ok((pos as usize) < len)
            })
            .handler("consumeRow", |ctx| {
                let pos = ctx.variables.require_scalar("pos")?.as_i64().unwrap() as usize;
                let v = crate::activities::with_dataset(ctx.variables, "SV", |ds| {
                    ds.first_table()?.cell(pos, "v").map_err(Into::into)
                })?;
                let seen = ctx.variables.require_scalar("seen")?.render();
                ctx.variables.set("seen", Value::Text(format!("{seen}{v}")));
                ctx.variables.set("pos", Value::Int(pos as i64 + 1));
                Ok(())
            });

        let root = load_xoml(markup, &code).unwrap();
        let db = seeded();
        let def = WfHost::new()
            .with_database(Provider::SqlServer, db)
            .install(ProcessDefinition::new(
                "xoml",
                Sequence::new("root").then_boxed(root),
            ));
        let inst = Engine::new().run(&def, Variables::new()).unwrap();
        assert!(inst.is_completed(), "{:?}", inst.outcome);
        assert_eq!(
            inst.variables.require_scalar("seen").unwrap(),
            &Value::text("abc")
        );
    }

    #[test]
    fn ifelse_branches_and_invoke() {
        let markup = r#"
            <SequentialWorkflowActivity x:Name="main">
              <CodeActivity x:Name="init" Handler="init"/>
              <IfElseActivity x:Name="gate" Condition="big">
                <Then><CodeActivity x:Name="t" Handler="markThen"/></Then>
                <Else><CodeActivity x:Name="e" Handler="markElse"/></Else>
              </IfElseActivity>
              <InvokeWebServiceActivity x:Name="call" Service="echo">
                <Input Part="x" Variable="n"/>
                <Output Part="y" Variable="out"/>
              </InvokeWebServiceActivity>
            </SequentialWorkflowActivity>"#;
        let code = CodeBehind::new()
            .handler("init", |ctx| {
                ctx.variables.set("n", Value::Int(10));
                Ok(())
            })
            .rule("big", |ctx| {
                Ok(ctx.variables.require_scalar("n")?.as_i64().unwrap() > 5)
            })
            .handler("markThen", |ctx| {
                ctx.variables.set("branch", Value::text("then"));
                Ok(())
            })
            .handler("markElse", |ctx| {
                ctx.variables.set("branch", Value::text("else"));
                Ok(())
            });
        let root = load_xoml(markup, &code).unwrap();
        let mut engine = Engine::new();
        engine.services_mut().register_fn("echo", |m| {
            Ok(flowcore::Message::new().with_part("y", m.scalar_part("x")?.clone()))
        });
        let def = ProcessDefinition::new("t", Sequence::new("root").then_boxed(root));
        let inst = engine.run(&def, Variables::new()).unwrap();
        assert!(inst.is_completed(), "{:?}", inst.outcome);
        assert_eq!(
            inst.variables.require_scalar("branch").unwrap(),
            &Value::text("then")
        );
        assert_eq!(
            inst.variables.require_scalar("out").unwrap(),
            &Value::Int(10)
        );
    }

    #[test]
    fn parallel_terminate_throw() {
        let markup = r#"
            <SequentialWorkflowActivity x:Name="main">
              <ParallelActivity x:Name="par">
                <CodeActivity x:Name="a" Handler="setA"/>
                <CodeActivity x:Name="b" Handler="setB"/>
              </ParallelActivity>
              <TerminateActivity x:Name="stop"/>
              <CodeActivity x:Name="never" Handler="setA"/>
            </SequentialWorkflowActivity>"#;
        let code = CodeBehind::new()
            .handler("setA", |ctx| {
                ctx.variables.set("a", Value::Bool(true));
                Ok(())
            })
            .handler("setB", |ctx| {
                ctx.variables.set("b", Value::Bool(true));
                Ok(())
            });
        let root = load_xoml(markup, &code).unwrap();
        let def = ProcessDefinition::new("t", Sequence::new("root").then_boxed(root));
        let inst = Engine::new().run(&def, Variables::new()).unwrap();
        assert!(inst.is_exited());
        assert!(inst.variables.contains("a"));
        assert!(inst.variables.contains("b"));
    }

    #[test]
    fn missing_pieces_are_definition_errors() {
        let code = CodeBehind::new();
        assert!(load_xoml("<Bogus/>", &code).is_err());
        assert!(load_xoml("<CodeActivity x:Name='c'/>", &code).is_err());
        assert!(load_xoml("<CodeActivity x:Name='c' Handler='missing'/>", &code).is_err());
        assert!(load_xoml("<WhileActivity x:Name='w' Condition='missing'/>", &code).is_err());
        assert!(load_xoml("<IfElseActivity x:Name='i' Condition='x'/>", &code).is_err());
        assert!(load_xoml("not xml", &code).is_err());
    }

    #[test]
    fn xoml_equivalent_of_builder_workflow() {
        // The same query workflow authored in markup and via builders
        // must produce identical DataSet contents.
        let db = seeded();
        let markup = r#"
            <SqlDatabaseActivity x:Name="q"
                ConnectionString="Provider=SqlServer;Database=orders_db"
                Sql="SELECT v FROM t WHERE id &gt; 1 ORDER BY id"
                ResultVariable="SV"/>"#;
        let root = load_xoml(markup, &CodeBehind::new()).unwrap();
        let def = WfHost::new()
            .with_database(Provider::SqlServer, db.clone())
            .install(ProcessDefinition::new(
                "m",
                Sequence::new("root").then_boxed(root),
            ));
        let inst = Engine::new().run(&def, Variables::new()).unwrap();
        assert!(inst.is_completed());
        let via_markup = crate::activities::with_dataset(&inst.variables, "SV", |ds| {
            Ok(ds.first_table()?.to_result())
        })
        .unwrap();
        let direct = db
            .connect()
            .query("SELECT v FROM t WHERE id > 1 ORDER BY id", &[])
            .unwrap();
        assert_eq!(via_markup, direct);
    }
}
