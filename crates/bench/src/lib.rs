//! Shared harness for the table/figure regeneration binaries and the
//! benchmark targets.

pub mod harness;
pub mod rng;

use patterns::SqlIntegration;
use rng::SplitMix64;
use sqlkernel::{Database, Value};

/// All three surveyed products, in Table order.
pub fn all_products() -> Vec<Box<dyn SqlIntegration>> {
    vec![
        Box::new(bis::BisProduct),
        Box::new(wf::WfProduct),
        Box::new(soa::OracleProduct),
    ]
}

/// Item-type vocabulary for synthetic workloads.
pub const ITEM_TYPES: [&str; 8] = [
    "widget", "gadget", "sprocket", "cog", "flange", "bracket", "gear", "bolt",
];

/// Build an order database with `n_orders` synthetic orders over the
/// standard probe schema (deterministic: seeded RNG).
pub fn seeded_orders_db(name: &str, n_orders: usize) -> Database {
    let db = Database::new(name);
    let conn = db.connect();
    conn.execute_script(
        "CREATE TABLE Orders (
            OrderId INT PRIMARY KEY,
            ItemId TEXT NOT NULL,
            Quantity INT NOT NULL,
            Approved BOOL NOT NULL);
         CREATE TABLE OrderConfirmations (
            ConfId INT PRIMARY KEY,
            ItemId TEXT NOT NULL,
            Quantity INT NOT NULL,
            Confirmation TEXT);
         CREATE SEQUENCE conf_ids START WITH 1;",
    )
    .expect("schema is valid");
    let mut rng = SplitMix64::seed_from_u64(0x5EED + n_orders as u64);
    let insert = conn
        .prepare("INSERT INTO Orders VALUES (?, ?, ?, ?)")
        .expect("valid insert");
    for i in 0..n_orders {
        let item = ITEM_TYPES[rng.gen_range(0..ITEM_TYPES.len())];
        let qty = rng.gen_range(1i64..50);
        let approved = rng.gen_bool(0.7);
        conn.execute_prepared(
            &insert,
            &[
                Value::Int(i as i64 + 1),
                Value::text(item),
                Value::Int(qty),
                Value::Bool(approved),
            ],
        )
        .expect("insert succeeds");
    }
    db
}

/// A wide staging table for data-volume sweeps: `n_rows` rows × 4 data
/// columns plus key.
pub fn seeded_wide_db(name: &str, n_rows: usize) -> Database {
    let db = Database::new(name);
    let conn = db.connect();
    conn.execute(
        "CREATE TABLE src (id INT PRIMARY KEY, a TEXT, b INT, c FLOAT, d TEXT)",
        &[],
    )
    .expect("valid ddl");
    conn.execute(
        "CREATE TABLE sink (id INT PRIMARY KEY, a TEXT, b INT, c FLOAT, d TEXT)",
        &[],
    )
    .expect("valid ddl");
    let mut rng = SplitMix64::seed_from_u64(0xDA7A + n_rows as u64);
    let insert = conn
        .prepare("INSERT INTO src VALUES (?, ?, ?, ?, ?)")
        .expect("valid");
    for i in 0..n_rows {
        conn.execute_prepared(
            &insert,
            &[
                Value::Int(i as i64),
                Value::Text(format!("payload-{i:06}")),
                Value::Int(rng.gen_range(0i64..1000)),
                Value::Float(rng.gen_range(0.0f64..1.0)),
                Value::Text(format!("tail-{}", rng.gen_range(0i64..100))),
            ],
        )
        .expect("insert succeeds");
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_orders_are_deterministic() {
        let a = seeded_orders_db("a", 100);
        let b = seeded_orders_db("b", 100);
        let qa = a
            .connect()
            .query("SELECT SUM(Quantity) FROM Orders", &[])
            .unwrap();
        let qb = b
            .connect()
            .query("SELECT SUM(Quantity) FROM Orders", &[])
            .unwrap();
        assert_eq!(qa, qb);
        assert_eq!(a.table_len("Orders").unwrap(), 100);
    }

    #[test]
    fn wide_db_sizes() {
        let db = seeded_wide_db("w", 50);
        assert_eq!(db.table_len("src").unwrap(), 50);
        assert_eq!(db.table_len("sink").unwrap(), 0);
    }

    #[test]
    fn three_products() {
        assert_eq!(all_products().len(), 3);
    }
}
