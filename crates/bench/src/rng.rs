//! Small deterministic PRNG for synthetic workloads.
//!
//! SplitMix64 — the same generator commonly used to seed xoshiro — is
//! statistically adequate for workload synthesis and keeps the workspace
//! free of external crates. Determinism is the property the benches rely
//! on: the same seed always yields the same dataset.

use std::ops::Range;

pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)` from the high 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    pub fn gen_range<T: UniformRange>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait UniformRange: Sized {
    fn sample(rng: &mut SplitMix64, range: Range<Self>) -> Self;
}

impl UniformRange for u64 {
    fn sample(rng: &mut SplitMix64, range: Range<Self>) -> Self {
        let span = range.end - range.start;
        assert!(span > 0, "empty range");
        // Rejection-free modulo is fine here: spans are tiny relative to
        // 2^64, so the bias is negligible for synthetic data.
        range.start + rng.next_u64() % span
    }
}

impl UniformRange for i64 {
    fn sample(rng: &mut SplitMix64, range: Range<Self>) -> Self {
        let span = (range.end - range.start) as u64;
        assert!(span > 0, "empty range");
        range.start + (rng.next_u64() % span) as i64
    }
}

impl UniformRange for usize {
    fn sample(rng: &mut SplitMix64, range: Range<Self>) -> Self {
        let span = (range.end - range.start) as u64;
        assert!(span > 0, "empty range");
        range.start + (rng.next_u64() % span) as usize
    }
}

impl UniformRange for f64 {
    fn sample(rng: &mut SplitMix64, range: Range<Self>) -> Self {
        range.start + rng.next_f64() * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            let u = r.gen_range(3usize..10);
            assert!((3..10).contains(&u));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let f = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = SplitMix64::seed_from_u64(99);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.7)).count();
        assert!((6_500..7_500).contains(&hits), "hits = {hits}");
    }
}
