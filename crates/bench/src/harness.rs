//! Minimal wall-clock benchmark harness with a Criterion-shaped API.
//!
//! The workspace builds hermetically (no registry access), so the real
//! `criterion` crate is not available. This module implements the small
//! subset of its surface the bench targets use — `Criterion`,
//! `BenchmarkId`, benchmark groups, `b.iter` / `b.iter_with_setup`, and
//! the `criterion_group!` / `criterion_main!` macros — reporting the
//! median ns/iter over a fixed number of samples.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall time per sample; iteration counts are calibrated to it.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(2);

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let stats = run_samples(self.sample_size, &mut f);
        report(name, &stats);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let stats = run_samples(self.sample_size, &mut |b: &mut Bencher| {
            b_input(b, input, &mut f)
        });
        report(&format!("{}/{}", self.name, id.0), &stats);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let stats = run_samples(self.sample_size, &mut f);
        report(&format!("{}/{name}", self.name), &stats);
        self
    }

    pub fn finish(self) {}
}

fn b_input<I, F>(b: &mut Bencher, input: &I, f: &mut F)
where
    F: FnMut(&mut Bencher, &I),
{
    f(b, input)
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to benchmark closures; `iter*` methods time the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    pub fn iter_with_setup<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

struct Stats {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

fn run_once<F: FnMut(&mut Bencher)>(iters: u64, f: &mut F) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_samples<F: FnMut(&mut Bencher)>(sample_size: usize, f: &mut F) -> Stats {
    // Calibrate: grow the iteration count until one sample reaches the
    // target wall time (or the routine is clearly slow enough already).
    let mut iters = 1u64;
    loop {
        let t = run_once(iters, f);
        if t >= TARGET_SAMPLE_TIME || iters >= 1 << 20 {
            break;
        }
        let scale = (TARGET_SAMPLE_TIME.as_secs_f64() / t.as_secs_f64().max(1e-9)).ceil();
        iters = (iters.saturating_mul(scale as u64)).clamp(iters + 1, 1 << 20);
    }
    let mut per_iter: Vec<f64> = (0..sample_size)
        .map(|_| run_once(iters, f).as_secs_f64() * 1e9 / iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    Stats {
        median_ns: per_iter[per_iter.len() / 2],
        min_ns: per_iter[0],
        max_ns: per_iter[per_iter.len() - 1],
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn report(name: &str, stats: &Stats) {
    println!(
        "{name:<48} median {:>12}  (min {}, max {})",
        fmt_ns(stats.median_ns),
        fmt_ns(stats.min_ns),
        fmt_ns(stats.max_ns),
    );
}

/// Criterion-compatible group macro: defines a function running each
/// registered benchmark against a fresh `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Criterion-compatible main macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut hits = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(7usize), &7usize, |b, &n| {
            b.iter(|| hits += n as u64)
        });
        group.finish();
        assert!(hits > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter(9).0, "9");
    }
}
