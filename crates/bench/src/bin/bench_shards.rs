//! Regenerates `docs/outputs/BENCH_shards.json` — throughput scaling of
//! sharded multi-engine execution and the price of crossing shards.
//!
//! Two measurements:
//!
//! 1. **Routed traffic**: W workers hash-route single-shard INSERTs
//!    across a fleet of 1/2/4 engines. Each engine has its own WAL and
//!    table locks, so a wider fleet should spread the write path the
//!    same way disjoint tables do inside one engine.
//! 2. **Cross-shard 2PC overhead**: microseconds per committed
//!    transaction for a single-shard `transact` (fast path: plain
//!    COMMIT) versus a two-shard one (prepare → decision → notify,
//!    three WAL forces plus a coordinator write) on the same fleet.
//!
//! `BENCH_SMOKE=1` shrinks the window and skips the JSON write — used
//! by `scripts/verify.sh` to prove the binary runs without clobbering
//! recorded results.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sqlkernel::shard::ShardedDatabase;
use sqlkernel::{LogStore, MemLogStore, Value};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const WORKERS: usize = 4;

struct RoutedPoint {
    shards: usize,
    workers: usize,
    statements: u64,
    stmts_per_sec: f64,
    speedup_vs_1: f64,
}

fn fresh_fleet(shards: usize) -> ShardedDatabase {
    let stores: Vec<Arc<dyn LogStore>> = (0..shards)
        .map(|_| Arc::new(MemLogStore::new()) as Arc<dyn LogStore>)
        .collect();
    let sdb = ShardedDatabase::recover("bench", &stores, Arc::new(MemLogStore::new()), 7).unwrap();
    for shard in sdb.shards() {
        shard
            .connect()
            .execute("CREATE TABLE KV (K TEXT PRIMARY KEY, V INT)", &[])
            .unwrap();
    }
    sdb
}

/// W workers hammering routed single-shard INSERTs until the window
/// closes. Keys are `w{worker}-{id}`, routed by the canonical hash; each
/// worker keeps one connection per shard.
fn measure_routed(shards: usize, window: Duration) -> RoutedPoint {
    let sdb = fresh_fleet(shards);
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    let statements: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                let sdb = sdb.clone();
                let stop = &stop;
                s.spawn(move || {
                    let conns: Vec<_> = sdb.shards().iter().map(|db| db.connect()).collect();
                    let mut done = 0u64;
                    let mut id = 0i64;
                    while !stop.load(Ordering::Relaxed) {
                        let key = format!("w{w}-{id}");
                        let conn = &conns[sdb.shard_for(&key)];
                        conn.execute(
                            "INSERT INTO KV VALUES (?, ?)",
                            &[Value::text(&key), Value::Int(id)],
                        )
                        .unwrap();
                        done += 1;
                        id += 1;
                    }
                    done
                })
            })
            .collect();
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let elapsed = start.elapsed().as_secs_f64();
    RoutedPoint {
        shards,
        workers: WORKERS,
        statements,
        stmts_per_sec: statements as f64 / elapsed,
        speedup_vs_1: 0.0,
    }
}

/// Commit cost: run `transact` bodies touching one shard (fast path) and
/// two shards (full 2PC) back to back on a 2-shard fleet; report µs per
/// committed transaction for each.
fn measure_two_pc(window: Duration) -> (f64, f64, u64) {
    let sdb = fresh_fleet(2);
    // Two keys pinned to different shards.
    let mut keys = (0..64).map(|i| format!("k{i}"));
    let a = keys.by_ref().find(|k| sdb.shard_for(k) == 0).unwrap();
    let b = keys.by_ref().find(|k| sdb.shard_for(k) == 1).unwrap();

    let time_commits = |cross: bool| -> f64 {
        let start = Instant::now();
        let mut commits = 0u64;
        let mut id = 0i64;
        while start.elapsed() < window {
            let second = if cross { &b } else { &a };
            sdb.transact(|txn| {
                txn.execute(
                    &a,
                    "INSERT INTO KV VALUES (?, ?)",
                    &[Value::text(format!("{a}-{cross}-{id}")), Value::Int(id)],
                )?;
                txn.execute(
                    second,
                    "INSERT INTO KV VALUES (?, ?)",
                    &[
                        Value::text(format!("{second}-x{cross}-{id}")),
                        Value::Int(id),
                    ],
                )?;
                Ok(())
            })
            .unwrap();
            commits += 1;
            id += 1;
        }
        start.elapsed().as_secs_f64() * 1e6 / commits as f64
    };

    let single_us = time_commits(false);
    let cross_us = time_commits(true);
    let prepares: u64 = sdb.shards().iter().map(|db| db.stats().wal_prepares).sum();
    assert!(sdb.single_shard_commits() > 0 && sdb.cross_shard_commits() > 0);
    (single_us, cross_us, prepares)
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let window = if smoke {
        Duration::from_millis(40)
    } else {
        Duration::from_millis(400)
    };
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut points = Vec::new();
    let mut base_qps = 0.0f64;
    for &shards in &SHARD_COUNTS {
        let mut p = measure_routed(shards, window);
        if shards == 1 {
            base_qps = p.stmts_per_sec;
        }
        p.speedup_vs_1 = if base_qps > 0.0 {
            p.stmts_per_sec / base_qps
        } else {
            0.0
        };
        eprintln!(
            "{shards} shards, {workers} workers: {qps:>9.0} stmts/s (×{speedup:.2} vs 1 shard)",
            workers = p.workers,
            qps = p.stmts_per_sec,
            speedup = p.speedup_vs_1,
        );
        points.push(p);
    }

    let (single_us, cross_us, prepares) = measure_two_pc(window);
    eprintln!(
        "2PC: {single_us:.1} µs/commit single-shard, {cross_us:.1} µs/commit cross-shard \
         (×{ratio:.2}, {prepares} prepares logged)",
        ratio = cross_us / single_us,
    );

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{ \"shards\": {}, \"workers\": {}, \"statements\": {}, \
                 \"stmts_per_sec\": {:.1}, \"speedup_vs_1\": {:.3} }}",
                p.shards, p.workers, p.statements, p.stmts_per_sec, p.speedup_vs_1,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"sharded_execution\",\n  \
         \"workload\": \"hash-routed single-shard INSERTs across independent engines; \
         then transact() commit cost, 1 vs 2 participants\",\n  \
         \"window_ms\": {window},\n  \"host_cpus\": {cpus},\n  \
         \"note\": \"speedup is bounded by host_cpus; cross-shard overhead buys atomicity \
         across engines (prepare records + coordinator decision write)\",\n  \
         \"routed\": [\n{points}\n  ],\n  \
         \"two_phase_commit\": {{\n    \"single_shard_us_per_commit\": {single_us:.1},\n    \
         \"cross_shard_us_per_commit\": {cross_us:.1},\n    \
         \"overhead_ratio\": {ratio:.3},\n    \"wal_prepares\": {prepares}\n  }}\n}}\n",
        window = window.as_millis(),
        points = rows.join(",\n"),
        ratio = cross_us / single_us,
    );

    if smoke {
        eprintln!("smoke mode: skipping JSON write");
    } else {
        let path = "docs/outputs/BENCH_shards.json";
        std::fs::write(path, &json).expect("write BENCH_shards.json");
        eprintln!("wrote {path}");
    }
    print!("{json}");
}
