//! Regenerates Figure 6 — the sample workflow on Microsoft WF technology
//! — by running it and printing the annotated flow.

use flowcore::Variables;
use patterns::probe::ProbeEnv;

fn main() {
    println!("FIG. 6 — SAMPLE WORKFLOW USING MICROSOFT WF TECHNOLOGY (live run)\n");
    let env = ProbeEnv::fresh();
    let def = wf::figure6_process(env.db.clone());
    let inst = env
        .engine
        .run(&def, Variables::new())
        .expect("engine accepts the definition");
    assert!(inst.is_completed(), "instance faulted: {:?}", inst.outcome);

    println!("Activity trace (▶ start, ✓ complete, · note):\n");
    print!("{}", inst.audit.render());

    let conn = env.db.connect();
    let rs = conn
        .query(
            "SELECT ItemId, Quantity, Confirmation FROM OrderConfirmations ORDER BY ItemId",
            &[],
        )
        .expect("confirmations readable");
    println!("\nResulting OrderConfirmations table:\n\n{}", rs.to_grid());
    println!(
        "Table names are static text inside the SQL; the query result was \
         automatically materialized into the DataSet host variable SV_ItemList, \
         whose lifecycle ended with the process instance."
    );
}
