//! Regenerates `docs/outputs/BENCH_concurrency.json` — read-throughput
//! scaling of the `sqlkernel` concurrent read path, uncontended and
//! **contended** (readers scanning while a writer commits).
//!
//! Phase 1 (uncontended): for each thread count, N reader threads
//! hammer the shared database with the standard aggregation probe for a
//! fixed wall-clock window; throughput is total completed queries over
//! the window.
//!
//! Phase 2 (correctness gate, before any timing): a fixed budget of
//! balance-transfer transactions runs once serialized and once under
//! concurrent snapshot readers; the final table bytes must be identical
//! and no concurrent scan may observe a torn transfer (the quantity sum
//! is invariant). A bench that publishes numbers for a broken engine is
//! worse than no bench.
//!
//! Phase 3 (contended): N readers scan while one writer continuously
//! commits transfers. With MVCC snapshots, readers never block on the
//! writer; the same sweep runs against the legacy table-lock protocol
//! (`Database::set_legacy_locking`) as the A/B baseline. On a
//! multi-core host (≥4 CPUs) MVCC readers must beat legacy readers ≥3×
//! at 4 threads. A single-CPU host cannot show a reader speedup (both
//! sides time-share one core), so the bar there is *utilization*: with
//! R = readers-alone rate and W = writer-alone rate, a non-blocking
//! engine must reach r/R + w/W ≥ 0.9 under contention (blocked time
//! would show up as cycles delivered to neither side); best-of-3
//! windows filters scheduler noise.
//!
//! `BENCH_SMOKE=1` shrinks the windows, skips the JSON write, and skips
//! the timing bars (correctness gates still run) — used by CI.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use sqlkernel::{Database, Value};

const QUERY: &str =
    "SELECT ItemId, SUM(Quantity) FROM Orders WHERE Approved = TRUE GROUP BY ItemId";
const DB_ROWS: usize = 2_000;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const CONTENDED_COUNTS: [usize; 3] = [1, 2, 4];
/// Transfer transactions in the identity gate.
const IDENTITY_TRANSFERS: usize = 600;

fn window(smoke: bool) -> Duration {
    Duration::from_millis(if smoke { 60 } else { 500 })
}

/// One balance transfer: moves one unit between two orders inside a
/// transaction, preserving `SUM(Quantity)` — the torn-read detector.
fn transfer(conn: &sqlkernel::Connection, i: usize, rows: usize) {
    let a = (i % rows) as i64 + 1;
    let b = ((i + rows / 2) % rows) as i64 + 1;
    if a == b {
        return;
    }
    conn.execute("BEGIN", &[]).unwrap();
    conn.execute(
        "UPDATE Orders SET Quantity = Quantity + 1 WHERE OrderId = ?",
        &[Value::Int(a)],
    )
    .unwrap();
    conn.execute(
        "UPDATE Orders SET Quantity = Quantity - 1 WHERE OrderId = ?",
        &[Value::Int(b)],
    )
    .unwrap();
    conn.execute("COMMIT", &[]).unwrap();
}

/// Full-table bytes, for the serialized-vs-concurrent identity check.
fn table_bytes(db: &Database) -> String {
    let rs = db
        .connect()
        .query(
            "SELECT OrderId, ItemId, Quantity, Approved FROM Orders ORDER BY OrderId",
            &[],
        )
        .unwrap();
    format!("{:?}", rs.rows)
}

fn quantity_sum(conn: &sqlkernel::Connection) -> i64 {
    match conn
        .query("SELECT SUM(Quantity) FROM Orders", &[])
        .unwrap()
        .rows[0][0]
    {
        Value::Int(v) => v,
        ref other => panic!("expected int sum, got {other:?}"),
    }
}

/// The correctness gate: same transfer budget serialized and contended
/// must leave identical bytes, and every concurrent scan must see the
/// invariant sum.
fn verify_snapshot_identity(rows: usize, transfers: usize) {
    let serial = bench::seeded_orders_db("ident_serial", rows);
    {
        let conn = serial.connect();
        for i in 0..transfers {
            transfer(&conn, i, rows);
        }
    }
    let want = table_bytes(&serial);

    let db = bench::seeded_orders_db("ident_concurrent", rows);
    let expected_sum = quantity_sum(&db.connect());
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for _ in 0..2 {
            let conn = db.connect();
            let stop = &stop;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    assert_eq!(
                        quantity_sum(&conn),
                        expected_sum,
                        "a concurrent scan observed a torn transfer"
                    );
                }
            });
        }
        let conn = db.connect();
        for i in 0..transfers {
            transfer(&conn, i, rows);
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(
        table_bytes(&db),
        want,
        "contended run diverged from the serialized run"
    );
}

/// Readers-only window (uncontended baseline).
fn measure(db: &Database, threads: usize, win: Duration) -> (u64, f64) {
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    let total: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let conn = db.connect();
                let stop = &stop;
                s.spawn(move || {
                    let mut done = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        std::hint::black_box(conn.query(QUERY, &[]).unwrap());
                        done += 1;
                    }
                    done
                })
            })
            .collect();
        std::thread::sleep(win);
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let elapsed = start.elapsed().as_secs_f64();
    (total, total as f64 / elapsed)
}

/// Writer-alone window: transfer commits/s with no readers running.
fn measure_writer_alone(db: &Database, win: Duration) -> f64 {
    let conn = db.connect();
    let start = Instant::now();
    let mut i = 0usize;
    while start.elapsed() < win {
        transfer(&conn, i, DB_ROWS);
        i += 1;
    }
    i as f64 / start.elapsed().as_secs_f64()
}

/// N readers scanning while one writer commits transfers continuously.
/// Returns (reader queries/s, writer commits/s).
fn measure_contended(db: &Database, threads: usize, win: Duration) -> (f64, f64) {
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    let (reads, commits) = std::thread::scope(|s| {
        let readers: Vec<_> = (0..threads)
            .map(|_| {
                let conn = db.connect();
                let stop = &stop;
                s.spawn(move || {
                    let mut done = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        std::hint::black_box(conn.query(QUERY, &[]).unwrap());
                        done += 1;
                    }
                    done
                })
            })
            .collect();
        let writer = {
            let conn = db.connect();
            let stop = &stop;
            s.spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    transfer(&conn, i, DB_ROWS);
                    i += 1;
                }
                i as u64
            })
        };
        std::thread::sleep(win);
        stop.store(true, Ordering::Relaxed);
        let reads: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
        (reads, writer.join().unwrap())
    });
    let elapsed = start.elapsed().as_secs_f64();
    (reads as f64 / elapsed, commits as f64 / elapsed)
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let win = window(smoke);
    let rows = if smoke { 200 } else { DB_ROWS };
    let transfers = if smoke { 60 } else { IDENTITY_TRANSFERS };

    // Correctness gate first: no timing for an engine that tears reads.
    verify_snapshot_identity(rows, transfers);
    eprintln!("identity gate: serialized and contended runs byte-identical");

    let db = bench::seeded_orders_db("concurrency", DB_ROWS);

    // Warm the statement cache so measurement covers the cached path.
    db.connect().query(QUERY, &[]).unwrap();

    let mut points = Vec::new();
    let mut base_qps = 0.0f64;
    for &threads in &THREAD_COUNTS {
        let (queries, qps) = measure(&db, threads, win);
        if threads == 1 {
            base_qps = qps;
        }
        let speedup = if base_qps > 0.0 { qps / base_qps } else { 0.0 };
        eprintln!("{threads} readers: {qps:>10.0} queries/s  (×{speedup:.2} vs 1 reader)");
        points.push(format!(
            "    {{ \"threads\": {threads}, \"queries\": {queries}, \
             \"queries_per_sec\": {qps:.1}, \"speedup_vs_1\": {speedup:.3} }}"
        ));
    }

    // Writer-alone baseline (headline number; the utilization bar
    // re-measures its own adjacent baselines below).
    let writer_alone = measure_writer_alone(&db, win);
    eprintln!("writer alone: {writer_alone:.0} commits/s");

    // Contended sweep: MVCC snapshots vs the legacy table-lock protocol.
    // Best-of-3 windows per point — a 1-CPU host's scheduler can starve
    // either side for a whole window; the claim is what the engine *can*
    // sustain, not what one unlucky quantum delivered. Each rep measures
    // its *own* readers-alone and writer-alone baselines in the windows
    // directly adjacent to the contended one: on a shared host the
    // available cycles drift minute to minute, and a ratio of windows
    // taken far apart compares two different machines.
    let reps = if smoke { 1 } else { 3 };
    let mut contended_points = Vec::new();
    let mut mvcc_read_qps = std::collections::HashMap::new();
    let mut legacy_read_qps = std::collections::HashMap::new();
    let mut utilization = std::collections::HashMap::new();
    for &threads in &CONTENDED_COUNTS {
        let mut best: Option<(f64, f64, f64)> = None;
        for _ in 0..reps {
            let (_, r_base) = measure(&db, threads, win);
            let w_base = measure_writer_alone(&db, win);
            let (r2, w2) = measure_contended(&db, threads, win);
            let u2 = r2 / r_base.max(1.0) + w2 / w_base.max(1.0);
            if best.is_none_or(|(_, _, u)| u2 > u) {
                best = Some((r2, w2, u2));
            }
        }
        let (rq, wc, util) = best.unwrap();
        mvcc_read_qps.insert(threads, rq);
        utilization.insert(threads, util);

        let legacy_db = bench::seeded_orders_db("concurrency_legacy", DB_ROWS);
        legacy_db.set_legacy_locking(true);
        legacy_db.connect().query(QUERY, &[]).unwrap();
        let (mut lrq, mut lwc) = measure_contended(&legacy_db, threads, win);
        for _ in 1..reps {
            let (r2, w2) = measure_contended(&legacy_db, threads, win);
            if r2 > lrq {
                (lrq, lwc) = (r2, w2);
            }
        }
        legacy_read_qps.insert(threads, lrq);

        let ratio = if lrq > 0.0 { rq / lrq } else { 0.0 };
        eprintln!(
            "{threads} readers + writer: mvcc {rq:>9.0} q/s ({wc:.0} commits/s, \
             util {util:.2}), legacy {lrq:>9.0} q/s ({lwc:.0} commits/s), ×{ratio:.2}"
        );
        contended_points.push(format!(
            "    {{ \"threads\": {threads}, \"mvcc_queries_per_sec\": {rq:.1}, \
             \"mvcc_commits_per_sec\": {wc:.1}, \"utilization\": {util:.3}, \
             \"legacy_queries_per_sec\": {lrq:.1}, \
             \"legacy_commits_per_sec\": {lwc:.1}, \"mvcc_vs_legacy\": {ratio:.3} }}"
        ));
    }

    // Acceptance bars (skipped in smoke mode: windows are too short for
    // stable ratios, and CI runs the correctness gate above regardless).
    if !smoke {
        if cpus >= 4 {
            let mvcc = mvcc_read_qps[&4];
            let legacy = legacy_read_qps[&4];
            assert!(
                mvcc >= 3.0 * legacy,
                "MVCC readers must be ≥3x legacy at 4 threads: {mvcc:.0} vs {legacy:.0}"
            );
        } else {
            for &threads in &CONTENDED_COUNTS {
                let util = utilization[&threads];
                assert!(
                    util >= 0.9,
                    "{threads} readers + writer utilization fell below 0.9: {util:.2} \
                     (blocking is burning cycles)"
                );
            }
        }
    }

    // Force a GC pass so versions_gced reflects reclamation, then prove
    // the MVCC machinery engaged during the sweep.
    db.checkpoint().unwrap();
    let stats = db.stats();
    assert!(stats.snapshots_taken > 0, "no snapshots taken");
    assert!(stats.version_chains_walked > 0, "no version chains walked");
    assert!(stats.versions_gced > 0, "GC never reclaimed a version");

    let json = format!(
        "{{\n  \"bench\": \"concurrent_readers\",\n  \"query\": {query:?},\n  \
         \"db_rows\": {rows},\n  \"window_ms\": {window},\n  \"host_cpus\": {cpus},\n  \
         \"note\": \"speedup is bounded by host_cpus; on a single-core host reads \
         overlap but cannot exceed 1x wall-clock throughput. Contended points run one \
         transfer-committing writer against N snapshot readers; identity gate verified \
         the contended run byte-identical to a serialized run before timing\",\n  \
         \"points\": [\n{points}\n  ],\n  \"contended_points\": [\n{cpoints}\n  ],\n  \
         \"engine_stats\": {{\n    \"statements_executed\": {exec},\n    \"parses\": {parses},\n    \
         \"stmt_cache_hits\": {hits},\n    \"stmt_cache_misses\": {misses},\n    \
         \"plan_binds\": {binds},\n    \"bound_evals\": {bevals},\n    \
         \"index_scans\": {idx},\n    \"range_scans\": {range},\n    \
         \"full_scans\": {full},\n    \"full_scan_rows\": {fsrows},\n    \"topk_sorts\": {topk},\n    \"batch_evals\": {batch},\n    \"batched_rows\": {brows},\n    \"hash_aggs\": {haggs},\n    \
         \"snapshots_taken\": {snaps},\n    \"version_chains_walked\": {chains},\n    \"versions_gced\": {gced}\n  }}\n}}\n",
        query = QUERY,
        rows = DB_ROWS,
        window = win.as_millis(),
        points = points.join(",\n"),
        cpoints = contended_points.join(",\n"),
        exec = stats.statements_executed,
        parses = stats.parses,
        hits = stats.stmt_cache_hits,
        misses = stats.stmt_cache_misses,
        binds = stats.plan_binds,
        bevals = stats.bound_evals,
        idx = stats.index_scans,
        range = stats.range_scans,
        full = stats.full_scans,
        fsrows = stats.full_scan_rows,
        topk = stats.topk_sorts,
        batch = stats.batch_evals,
        brows = stats.batched_rows,
        haggs = stats.hash_aggs,
        snaps = stats.snapshots_taken,
        chains = stats.version_chains_walked,
        gced = stats.versions_gced,
    );

    if smoke {
        eprintln!("BENCH_SMOKE set; skipping JSON write");
        return;
    }
    let path = "docs/outputs/BENCH_concurrency.json";
    std::fs::write(path, &json).expect("write BENCH_concurrency.json");
    print!("{json}");
    eprintln!("wrote {path}");
}
