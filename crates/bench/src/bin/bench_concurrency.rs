//! Regenerates `docs/outputs/BENCH_concurrency.json` — read-throughput
//! scaling of the `sqlkernel` concurrent read path.
//!
//! For each thread count, N reader threads hammer the shared database
//! with the standard aggregation probe for a fixed wall-clock window;
//! throughput is total completed queries over the window. With the
//! catalog behind a reader-writer lock, throughput should scale with
//! the thread count instead of staying flat behind a global mutex. The
//! emitted JSON also records the engine's statement-cache and scan
//! counters, demonstrating that the probe text is parsed once and
//! served from the plan cache thereafter.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

const QUERY: &str =
    "SELECT ItemId, SUM(Quantity) FROM Orders WHERE Approved = TRUE GROUP BY ItemId";
const DB_ROWS: usize = 2_000;
const WINDOW: Duration = Duration::from_millis(500);
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn measure(db: &sqlkernel::Database, threads: usize) -> (u64, f64) {
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    let total: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let conn = db.connect();
                let stop = &stop;
                s.spawn(move || {
                    let mut done = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        std::hint::black_box(conn.query(QUERY, &[]).unwrap());
                        done += 1;
                    }
                    done
                })
            })
            .collect();
        std::thread::sleep(WINDOW);
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let elapsed = start.elapsed().as_secs_f64();
    (total, total as f64 / elapsed)
}

fn main() {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let db = bench::seeded_orders_db("concurrency", DB_ROWS);

    // Warm the statement cache so measurement covers the cached path.
    db.connect().query(QUERY, &[]).unwrap();

    let mut points = Vec::new();
    let mut base_qps = 0.0f64;
    for &threads in &THREAD_COUNTS {
        let (queries, qps) = measure(&db, threads);
        if threads == 1 {
            base_qps = qps;
        }
        let speedup = if base_qps > 0.0 { qps / base_qps } else { 0.0 };
        eprintln!("{threads} readers: {qps:>10.0} queries/s  (×{speedup:.2} vs 1 reader)");
        points.push(format!(
            "    {{ \"threads\": {threads}, \"queries\": {queries}, \
             \"queries_per_sec\": {qps:.1}, \"speedup_vs_1\": {speedup:.3} }}"
        ));
    }

    let stats = db.stats();
    let json = format!(
        "{{\n  \"bench\": \"concurrent_readers\",\n  \"query\": {query:?},\n  \
         \"db_rows\": {rows},\n  \"window_ms\": {window},\n  \"host_cpus\": {cpus},\n  \
         \"note\": \"speedup is bounded by host_cpus; on a single-core host reads \
         overlap but cannot exceed 1x wall-clock throughput\",\n  \"points\": [\n{points}\n  ],\n  \
         \"engine_stats\": {{\n    \"statements_executed\": {exec},\n    \"parses\": {parses},\n    \
         \"stmt_cache_hits\": {hits},\n    \"stmt_cache_misses\": {misses},\n    \
         \"plan_binds\": {binds},\n    \"bound_evals\": {bevals},\n    \
         \"index_scans\": {idx},\n    \"range_scans\": {range},\n    \
         \"full_scans\": {full},\n    \"full_scan_rows\": {fsrows},\n    \"topk_sorts\": {topk},\n    \"batch_evals\": {batch},\n    \"batched_rows\": {brows},\n    \"hash_aggs\": {haggs}\n  }}\n}}\n",
        query = QUERY,
        rows = DB_ROWS,
        window = WINDOW.as_millis(),
        points = points.join(",\n"),
        exec = stats.statements_executed,
        parses = stats.parses,
        hits = stats.stmt_cache_hits,
        misses = stats.stmt_cache_misses,
        binds = stats.plan_binds,
        bevals = stats.bound_evals,
        idx = stats.index_scans,
        range = stats.range_scans,
        full = stats.full_scans,
        fsrows = stats.full_scan_rows,
        topk = stats.topk_sorts,
        batch = stats.batch_evals,
        brows = stats.batched_rows,
        haggs = stats.hash_aggs,
    );

    let path = "docs/outputs/BENCH_concurrency.json";
    std::fs::write(path, &json).expect("write BENCH_concurrency.json");
    print!("{json}");
    eprintln!("wrote {path}");
}
