//! Regenerates `docs/outputs/BENCH_recovery.json` — the cost of
//! crash-consistent durability.
//!
//! Three questions, one section each:
//!
//! * **WAL overhead** — the same auto-commit DML workload runs against a
//!   plain in-memory database and against one logging every write to a
//!   [`MemLogStore`]. The acceptance bar is ≤10% throughput loss.
//! * **Recovery replay** — a log holding N committed operations is
//!   handed to [`Database::recover`] with no surviving in-memory state;
//!   the row records how many logged records per second replay sustains.
//! * **Checkpoint interval** — the identical workload checkpointed every
//!   K statements: more frequent checkpoints keep the log (and therefore
//!   recovery) small at the price of snapshot writes during the run.

use std::sync::Arc;
use std::time::Instant;

use sqlkernel::{Database, MemLogStore, Value};

const OPS: usize = 20_000;
const REPS: usize = 3;

fn schema(db: &Database) {
    db.connect()
        .execute(
            "CREATE TABLE journal (id INT PRIMARY KEY, step TEXT, amount INT)",
            &[],
        )
        .unwrap();
}

/// The DML mix: insert, update the row just written, read it back.
fn run_workload(db: &Database, checkpoint_every: usize) {
    let conn = db.connect();
    for i in 0..OPS {
        let id = Value::Int((i / 3) as i64);
        match i % 3 {
            0 => conn
                .execute("INSERT INTO journal VALUES (?, 'open', 0)", &[id])
                .map(|_| ()),
            1 => conn
                .execute("UPDATE journal SET amount = 7 WHERE id = ?", &[id])
                .map(|_| ()),
            _ => conn
                .execute("SELECT step FROM journal WHERE id = ?", &[id])
                .map(|_| ()),
        }
        .unwrap();
        if checkpoint_every > 0 && (i + 1) % checkpoint_every == 0 {
            db.checkpoint().unwrap();
        }
    }
}

fn best_of<F: FnMut() -> f64>(mut f: F) -> f64 {
    (0..REPS).map(|_| f()).fold(f64::MAX, f64::min)
}

fn main() {
    // -------------------------------------------------- WAL overhead
    let t_mem = best_of(|| {
        let db = Database::new("plain");
        schema(&db);
        let start = Instant::now();
        run_workload(&db, 0);
        start.elapsed().as_secs_f64()
    });
    let t_wal = best_of(|| {
        let db = Database::with_wal("durable", Arc::new(MemLogStore::new()));
        schema(&db);
        let start = Instant::now();
        run_workload(&db, 0);
        start.elapsed().as_secs_f64()
    });
    let mem_sps = OPS as f64 / t_mem;
    let wal_sps = OPS as f64 / t_wal;
    let overhead_pct = (t_wal - t_mem) / t_mem * 100.0;
    eprintln!("plain:   {mem_sps:>10.0} stmts/s");
    eprintln!("wal on:  {wal_sps:>10.0} stmts/s  ({overhead_pct:+.2}% time)");

    // -------------------------------------------------- recovery replay
    let store = MemLogStore::new();
    let db = Database::with_wal("writer", Arc::new(store.clone()));
    schema(&db);
    run_workload(&db, 0);
    let log_bytes = store.bytes();
    let logged = sqlkernel::wal::scan(&log_bytes).records.len();
    drop(db); // the crash: only the log survives
    let t_recover = best_of(|| {
        let replica = Arc::new(MemLogStore::from_bytes(log_bytes.clone()));
        let start = Instant::now();
        let db = Database::recover("reborn", replica).unwrap();
        let elapsed = start.elapsed().as_secs_f64();
        let rows = db
            .connect()
            .execute("SELECT COUNT(*) FROM journal", &[])
            .unwrap();
        let grid = rows.rows().unwrap();
        assert_eq!(grid.rows[0][0], Value::Int(OPS.div_ceil(3) as i64));
        elapsed
    });
    let records_per_sec = logged as f64 / t_recover;
    eprintln!(
        "recovery: {logged} records, {} bytes -> {records_per_sec:>10.0} records/s",
        log_bytes.len()
    );

    // -------------------------------------------------- checkpoint interval
    let mut interval_rows = Vec::new();
    for every in [0usize, 5_000, 1_000, 200] {
        let store = MemLogStore::new();
        let db = Database::with_wal("ckpt", Arc::new(store.clone()));
        schema(&db);
        let start = Instant::now();
        run_workload(&db, every);
        let run_secs = start.elapsed().as_secs_f64();
        let bytes = store.bytes();
        let start = Instant::now();
        Database::recover(
            "ckpt_reborn",
            Arc::new(MemLogStore::from_bytes(bytes.clone())),
        )
        .unwrap();
        let recover_secs = start.elapsed().as_secs_f64();
        eprintln!(
            "checkpoint every {every:>5}: run {:.0} stmts/s, log {:>8} bytes, \
             recover {:.1} ms",
            OPS as f64 / run_secs,
            bytes.len(),
            recover_secs * 1e3,
        );
        interval_rows.push(format!(
            "    {{ \"checkpoint_every\": {every}, \"run_stmts_per_sec\": {:.1}, \
             \"final_log_bytes\": {}, \"recovery_ms\": {:.3} }}",
            OPS as f64 / run_secs,
            bytes.len(),
            recover_secs * 1e3,
        ));
    }

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"crash_recovery\",\n  \"statements_per_run\": {OPS},\n  \
         \"reps\": {REPS},\n  \"host_cpus\": {cpus},\n  \"plain_stmts_per_sec\": {mem_sps:.1},\n  \
         \"wal_stmts_per_sec\": {wal_sps:.1},\n  \
         \"wal_overhead_pct\": {overhead_pct:.2},\n  \
         \"wal_overhead_budget_pct\": 10.0,\n  \
         \"recovery\": {{ \"log_records\": {logged}, \"log_bytes\": {}, \
         \"records_per_sec\": {records_per_sec:.1} }},\n  \
         \"note\": \"checkpoint_every = 0 means never: the whole history replays \
         at recovery; smaller intervals trade run-time snapshot writes for a \
         compact log and near-instant recovery\",\n  \
         \"checkpoint_intervals\": [\n{rows}\n  ]\n}}\n",
        log_bytes.len(),
        cpus = cpus,
        rows = interval_rows.join(",\n"),
    );

    let path = "docs/outputs/BENCH_recovery.json";
    std::fs::write(path, &json).expect("write BENCH_recovery.json");
    print!("{json}");
    eprintln!("wrote {path}");
}
