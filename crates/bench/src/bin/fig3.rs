//! Regenerates Figure 3 — process modeling and execution in IBM BIS.

use patterns::SqlIntegration;

fn main() {
    print!("{}", bis::BisProduct.architecture().render());
}
