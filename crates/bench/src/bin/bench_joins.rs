//! Regenerates `docs/outputs/BENCH_joins.json` — the compiled join
//! executor benchmark.
//!
//! A star-shaped pair of tables (20k-row `fact`, 20k-row `dim` keyed by
//! primary key) plus a small 2k-row `probe` table, each workload run
//! two ways against the same data:
//!
//! - **interpreted**: pre-parsed AST through `execute_ast` — the
//!   row-at-a-time join with per-row `Arc` traffic and name resolution.
//! - **compiled**: warm `execute` through the compiled-plan cache — the
//!   vectorized join executor (predicate pushdown into side scans,
//!   borrowed-key hash join with runtime build-side choice, index
//!   nested-loop for small outers over indexed inners) feeding the
//!   batch engine's fused filter/project/aggregate tails.
//!
//! Workloads sweep the build/probe size ratio: an unfiltered 20k x 20k
//! equi-join aggregate (`hash_join`), the same join with single-side
//! WHERE conjuncts the compiler pushes into both scans
//! (`pushdown_join` — the headline point), a 2k-outer join into the
//! indexed 20k dimension (`index_nl`), and a plain row-returning join
//! with an asymmetric 2k/20k ratio (`build_small`, exercising the
//! build-on-left replay path).
//!
//! Every workload asserts byte-identical results between the two
//! executors *before* timing, and the engine counters afterwards prove
//! the compiled join machinery (not a second interpreter) was timed.
//!
//! `BENCH_SMOKE=1` shrinks the workload and skips the JSON write — used
//! by `scripts/verify.sh` to prove the binary runs without clobbering
//! recorded results.

use std::time::Instant;

use bench::rng::SplitMix64;
use sqlkernel::parser::parse_statement;
use sqlkernel::{Connection, Database, StatementResult, Value};

const FACT_ROWS: usize = 20_000;
const DIM_ROWS: usize = 20_000;
const PROBE_ROWS: usize = 2_000;
const SMOKE_SCALE: usize = 10;

/// Median-of-3 timing of `iters` runs of `f`, in seconds.
fn time_runs(iters: u64, mut f: impl FnMut()) -> f64 {
    let mut samples = [0.0f64; 3];
    for s in &mut samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        *s = start.elapsed().as_secs_f64();
    }
    samples.sort_by(f64::total_cmp);
    samples[1]
}

fn per_stmt_us(secs: f64, iters: u64) -> f64 {
    secs / iters as f64 * 1e6
}

/// The join benchmark database: `fact` fans out over `dim` through
/// `dim_id` (uniform over the dimension), `dim` carries its primary-key
/// backing index (the index-nested-loop target), and `probe` is the
/// small outer for ratio sweeps.
fn seeded_join_db(scale_div: usize) -> Database {
    let (nf, nd, np) = (
        FACT_ROWS / scale_div,
        DIM_ROWS / scale_div,
        PROBE_ROWS / scale_div,
    );
    let db = Database::new("bench_joins");
    let conn = db.connect();
    conn.execute_script(
        "CREATE TABLE fact (id INT PRIMARY KEY, dim_id INT, qty INT, grp INT);
         CREATE TABLE dim (id INT PRIMARY KEY, code INT, price INT);
         CREATE TABLE probe (id INT PRIMARY KEY, dim_id INT);",
    )
    .expect("schema is valid");
    let mut rng = SplitMix64::seed_from_u64(0x101_5EED);
    let ins_fact = conn
        .prepare("INSERT INTO fact VALUES (?, ?, ?, ?)")
        .expect("valid insert");
    for i in 0..nf {
        conn.execute_prepared(
            &ins_fact,
            &[
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..nd as i64)),
                Value::Int(rng.gen_range(1i64..50)),
                Value::Int(rng.gen_range(0i64..32)),
            ],
        )
        .expect("insert succeeds");
    }
    let ins_dim = conn
        .prepare("INSERT INTO dim VALUES (?, ?, ?)")
        .expect("valid insert");
    for i in 0..nd {
        conn.execute_prepared(
            &ins_dim,
            &[
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0i64..64)),
                Value::Int(rng.gen_range(0i64..1000)),
            ],
        )
        .expect("insert succeeds");
    }
    let ins_probe = conn
        .prepare("INSERT INTO probe VALUES (?, ?)")
        .expect("valid insert");
    for i in 0..np {
        conn.execute_prepared(
            &ins_probe,
            &[
                Value::Int(i as i64),
                Value::Int(rng.gen_range(0..nd as i64)),
            ],
        )
        .expect("insert succeeds");
    }
    db
}

/// Time one workload interpreted vs compiled and emit its JSON point.
/// Asserts both executors return byte-identical results first.
fn run_workload(
    conn: &Connection,
    name: &str,
    query: &str,
    iters: u64,
    points: &mut Vec<String>,
) -> (f64, f64) {
    let stmt = parse_statement(query).expect("benchmark query parses");

    // Differential sanity: same rows, same order, both ways.
    let interpreted_rows = match conn.execute_ast(&stmt, &[]).unwrap() {
        StatementResult::Rows(r) => r,
        other => panic!("workload must return rows, got {other:?}"),
    };
    let compiled_rows = conn.query(query, &[]).unwrap();
    assert_eq!(
        interpreted_rows, compiled_rows,
        "{name}: compiled result must be byte-identical to interpreted"
    );

    let interpreted = time_runs(iters, || {
        std::hint::black_box(conn.execute_ast(&stmt, &[]).unwrap());
    });
    let compiled = time_runs(iters, || {
        std::hint::black_box(conn.execute(query, &[]).unwrap());
    });

    points.push(format!(
        "    {{ \"workload\": {name:?}, \"query\": {query:?}, \"iterations\": {iters}, \
         \"interpreted_per_stmt_us\": {i:.2}, \"compiled_per_stmt_us\": {b:.2}, \
         \"speedup\": {s:.2} }}",
        i = per_stmt_us(interpreted, iters),
        b = per_stmt_us(compiled, iters),
        s = interpreted / compiled,
    ));
    eprintln!(
        "{name}: interpreted {:.1}us vs compiled {:.1}us  (x{:.2})",
        per_stmt_us(interpreted, iters),
        per_stmt_us(compiled, iters),
        interpreted / compiled
    );
    (interpreted, compiled)
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let (scale_div, iters) = if smoke { (SMOKE_SCALE, 3) } else { (1, 20) };
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let db = seeded_join_db(scale_div);
    let conn = db.connect();
    let mut points = Vec::new();

    // Unfiltered 20k x 20k equi-join folded into a grouped aggregate.
    run_workload(
        &conn,
        "hash_join",
        "SELECT d.code, COUNT(*) AS n, SUM(f.qty) AS q FROM fact f \
         JOIN dim d ON f.dim_id = d.id GROUP BY d.code ORDER BY d.code",
        iters,
        &mut points,
    );

    // The headline point: the same join with one pushable conjunct per
    // side. The compiler prefilters both scans before the join; the
    // interpreter joins everything and filters after.
    let (push_i, push_c) = run_workload(
        &conn,
        "pushdown_join",
        "SELECT d.code, COUNT(*) AS n, SUM(f.qty) AS q FROM fact f \
         JOIN dim d ON f.dim_id = d.id \
         WHERE f.qty > 45 AND d.price < 100 GROUP BY d.code ORDER BY d.code",
        iters,
        &mut points,
    );

    // Small outer against the dimension's primary-key index: the
    // executor probes the B-tree per outer row instead of hashing 20k.
    run_workload(
        &conn,
        "index_nl",
        "SELECT probe.id, d.price FROM probe JOIN dim d ON probe.dim_id = d.id \
         ORDER BY probe.id",
        iters,
        &mut points,
    );

    // Asymmetric 2k/20k ratio returning plain rows: the compiled
    // executor hashes the small side and replays matches in probe-left
    // order (dim_id > threshold defeats the index, forcing the hash).
    run_workload(
        &conn,
        "build_small",
        "SELECT probe.id, f.qty FROM probe JOIN fact f ON probe.dim_id = f.dim_id \
         WHERE f.qty > 40",
        iters / 2 + 1,
        &mut points,
    );

    // The whole point of the benchmark: prove the compiled join
    // machinery engaged, not just that two interpreters raced.
    let stats = db.stats();
    assert!(
        stats.hash_joins > 0,
        "equi-join workloads must run through the vectorized hash join"
    );
    assert!(
        stats.index_nl_joins > 0,
        "the small-outer workload must probe the dimension index"
    );
    assert!(
        stats.pushed_predicates > 0,
        "the pushdown workload must prefilter its side scans"
    );
    assert!(stats.join_build_rows > 0 && stats.join_probe_rows > 0);
    assert!(stats.hash_aggs > 0, "grouped joins must hash-aggregate");

    let pushdown_speedup = push_i / push_c;

    if smoke {
        eprintln!("BENCH_SMOKE set; skipping JSON write");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"compiled_join_executor\",\n  \
         \"fact_rows\": {FACT_ROWS},\n  \"dim_rows\": {DIM_ROWS},\n  \
         \"probe_rows\": {PROBE_ROWS},\n  \"host_cpus\": {cpus},\n  \
         \"note\": \"per_stmt_us is wall-clock per statement, median of 3 runs; \
         interpreted is the pre-parsed AST through the row-at-a-time join, compiled is \
         the warm plan through the vectorized join executor; results are asserted \
         byte-identical before timing\",\n  \
         \"points\": [\n{points}\n  ],\n  \
         \"pushdown_join_speedup\": {pushdown_speedup:.2},\n  \
         \"engine_stats\": {{\n    \"hash_joins\": {hj},\n    \
         \"index_nl_joins\": {inl},\n    \"join_build_rows\": {jbr},\n    \
         \"join_probe_rows\": {jpr},\n    \"pushed_predicates\": {pp},\n    \
         \"hash_aggs\": {haggs},\n    \"batch_evals\": {batch},\n    \
         \"full_scan_rows\": {fsrows}\n  }}\n}}\n",
        points = points.join(",\n"),
        hj = stats.hash_joins,
        inl = stats.index_nl_joins,
        jbr = stats.join_build_rows,
        jpr = stats.join_probe_rows,
        pp = stats.pushed_predicates,
        haggs = stats.hash_aggs,
        batch = stats.batch_evals,
        fsrows = stats.full_scan_rows,
    );

    let path = "docs/outputs/BENCH_joins.json";
    std::fs::write(path, &json).expect("write BENCH_joins.json");
    print!("{json}");
    eprintln!("wrote {path}");
}
