//! Regenerates Table I — general information and data management
//! capabilities — from the products' introspection APIs.

fn main() {
    let infos: Vec<_> = bench::all_products()
        .iter()
        .map(|p| p.product_info())
        .collect();
    print!("{}", patterns::report::render_table1(&infos));
}
