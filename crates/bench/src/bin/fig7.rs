//! Regenerates Figure 7 — process modeling and execution in Oracle SOA
//! Suite.

use patterns::SqlIntegration;

fn main() {
    print!("{}", soa::OracleProduct.architecture().render());
}
