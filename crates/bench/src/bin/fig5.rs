//! Regenerates Figure 5 — process modeling and execution in Microsoft WF.

use patterns::SqlIntegration;

fn main() {
    print!("{}", wf::WfProduct.architecture().render());
}
