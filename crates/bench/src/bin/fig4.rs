//! Regenerates Figure 4 — the sample workflow on IBM BIS technology —
//! by actually running it and printing the annotated flow (audit trail)
//! plus the resulting database state.

use flowcore::Variables;
use patterns::probe::ProbeEnv;

fn main() {
    println!("FIG. 4 — SAMPLE WORKFLOW USING IBM BIS TECHNOLOGY (live run)\n");
    let env = ProbeEnv::fresh();
    let registry = bis::DataSourceRegistry::new().with(env.db.clone());
    let def = bis::figure4_process(registry, env.db.name());
    let inst = env
        .engine
        .run(&def, Variables::new())
        .expect("engine accepts the definition");
    assert!(inst.is_completed(), "instance faulted: {:?}", inst.outcome);

    println!("Activity trace (▶ start, ✓ complete, · note):\n");
    print!("{}", inst.audit.render());

    let conn = env.db.connect();
    let rs = conn
        .query(
            "SELECT ItemId, Quantity, Confirmation FROM OrderConfirmations ORDER BY ItemId",
            &[],
        )
        .expect("confirmations readable");
    println!(
        "\nResulting SR_OrderConfirmations table:\n\n{}",
        rs.to_grid()
    );
    println!(
        "Set references used: SR_Orders → Orders (input), SR_ItemList → generated \
         per-instance result table (dropped at cleanup), SR_OrderConfirmations → \
         persistent table."
    );
}
