//! Regenerates Table II — the data management pattern support matrix —
//! from *executed* demonstrations.
//!
//! For each product and each of the nine patterns, the pattern is run
//! against a fresh probe environment through the product's integration
//! style. The printed matrix is backed one-to-one by those runs; any
//! divergence between claim and demonstration aborts with a diagnosis.
//! Pass `--evidence` to also print the per-cell evidence lines, and
//! `--check-paper` to additionally compare against the published matrix.

use patterns::report::render_table2;
use patterns::verify_support_matrix;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let show_evidence = args.iter().any(|a| a == "--evidence");
    let check_paper = args.iter().any(|a| a == "--check-paper");

    let products = bench::all_products();
    let mut matrices = Vec::new();
    let mut evidence_blocks = Vec::new();

    for product in &products {
        let matrix = product.support_matrix();
        eprintln!("verifying {} …", matrix.product);
        match verify_support_matrix(product.as_ref()) {
            Ok(demos) => {
                let mut block = format!("\n=== {} ===\n", matrix.product);
                for d in demos {
                    block.push_str(&format!(
                        "  {:<18} [{}] {:?}\n",
                        d.pattern.title(),
                        d.mechanism,
                        d.level
                    ));
                    for e in &d.evidence {
                        block.push_str(&format!("      · {e}\n"));
                    }
                }
                evidence_blocks.push(block);
            }
            Err(e) => {
                eprintln!("VERIFICATION FAILED: {e}");
                std::process::exit(1);
            }
        }
        matrices.push(matrix);
    }

    print!("{}", render_table2(&matrices));

    if check_paper {
        let paper = patterns::paper::paper_table2();
        if matrices == paper {
            println!("\n[check-paper] generated matrix matches the published Table II exactly.");
        } else {
            eprintln!("\n[check-paper] MISMATCH with the published Table II!");
            std::process::exit(1);
        }
    }

    if show_evidence {
        println!("\nEVIDENCE (every cell above was produced by a run):");
        for b in evidence_blocks {
            print!("{b}");
        }
    }
}
