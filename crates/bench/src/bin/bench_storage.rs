//! Regenerates `docs/outputs/BENCH_storage.json` — the cost profile of
//! the disk-backed paged storage engine.
//!
//! Two questions, one section each:
//!
//! * **Working-set sweep** — the same ledger table sized at 0.5×, 1×,
//!   and 4× the buffer pool is checkpointed to pages and recovered from
//!   them. The pool counters (hits, misses, evictions) show the pool
//!   degrading gracefully from fits-in-memory to paging-hard, and the
//!   writeback/recovery times bound what that paging costs.
//! * **Checkpoint interval** — a multiplied row count (10× the sweep's
//!   base) is loaded with a checkpoint every K statements. Each
//!   checkpoint truncates the WAL head, so frequent checkpoints buy
//!   near-instant recovery at the price of page writeback during the
//!   run; `checkpoint_every = 0` (never) pays the whole replay at
//!   recovery.
//!
//! Both sections run on in-memory page/log stores so the numbers profile
//! the engine (checksums, slotted codec, pool, repair machinery), not
//! the host's disk. `BENCH_SMOKE=1` shrinks the row counts and skips the
//! JSON write — used by `scripts/verify.sh` to prove the binary runs
//! without clobbering recorded results; the correctness assertions run
//! in both modes.

use std::sync::Arc;
use std::time::Instant;

use sqlkernel::{Database, MemLogStore, MemPageStore, Value};

/// Buffer-pool frames for the sweep.
const POOL_PAGES: usize = 32;

/// Rows per page: ~140 bytes each against a ~4052-byte payload.
const ROWS_PER_PAGE: usize = 28;

const REPS: usize = 3;

fn pad(id: usize) -> String {
    format!("{id:04}").repeat(30)
}

fn open(log: &MemLogStore, pages: &MemPageStore, pool: usize) -> Database {
    Database::open_paged(
        "bench",
        Arc::new(log.clone()),
        Arc::new(pages.clone()),
        pool,
    )
    .unwrap()
}

/// Insert `rows` ledger rows in multi-row batches, checkpointing every
/// `checkpoint_every` batches (0 = never).
fn load_rows(db: &Database, rows: usize, checkpoint_every: usize) {
    let conn = db.connect();
    conn.execute(
        "CREATE TABLE IF NOT EXISTS ledger (id INT PRIMARY KEY, pad TEXT)",
        &[],
    )
    .unwrap();
    let mut batches = 0usize;
    for lo in (0..rows).step_by(25) {
        let hi = (lo + 25).min(rows);
        let mut sql = String::from("INSERT INTO ledger VALUES ");
        for id in lo..hi {
            if id > lo {
                sql.push_str(", ");
            }
            sql.push_str(&format!("({id}, '{}')", pad(id)));
        }
        conn.execute(&sql, &[]).unwrap();
        batches += 1;
        if checkpoint_every > 0 && batches.is_multiple_of(checkpoint_every) {
            db.checkpoint().unwrap();
        }
    }
}

fn count_rows(db: &Database) -> i64 {
    let rs = db
        .connect()
        .query("SELECT COUNT(*) FROM ledger", &[])
        .unwrap();
    match rs.rows[0][0] {
        Value::Int(n) => n,
        ref v => panic!("COUNT(*) returned {v:?}"),
    }
}

fn best_of<F: FnMut() -> f64>(mut f: F) -> f64 {
    (0..REPS).map(|_| f()).fold(f64::MAX, f64::min)
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let scale = if smoke { 4 } else { 1 };
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // -------------------------------------------------- working-set sweep
    let mut sweep_rows = Vec::new();
    for (label, ratio_num, ratio_den) in [("0.5x", 1usize, 2usize), ("1x", 1, 1), ("4x", 4, 1)] {
        let rows = POOL_PAGES * ROWS_PER_PAGE * ratio_num / ratio_den / scale;
        let log = MemLogStore::new();
        let pages = MemPageStore::new();
        let db = open(&log, &pages, POOL_PAGES);
        load_rows(&db, rows, 0);
        let t_writeback = {
            // First checkpoint writes the whole table through the pool.
            let start = Instant::now();
            db.checkpoint().unwrap();
            start.elapsed().as_secs_f64()
        };
        drop(db);
        let mut stats = None;
        let t_recover = best_of(|| {
            let start = Instant::now();
            let db = open(&log, &pages, POOL_PAGES);
            let elapsed = start.elapsed().as_secs_f64();
            assert_eq!(count_rows(&db) as usize, rows, "sweep {label} lost rows");
            stats = Some(db.stats());
            elapsed
        });
        let stats = stats.unwrap();
        if ratio_num > ratio_den {
            assert!(
                stats.pool_evictions > 0,
                "sweep {label}: a working set past the pool must evict"
            );
        }
        eprintln!(
            "sweep {label:>4}: {rows:>5} rows, store {:>7} bytes, writeback {:>7.2} ms, \
             recover {:>7.2} ms, pool {}h/{}m/{}e",
            pages.len(),
            t_writeback * 1e3,
            t_recover * 1e3,
            stats.pool_hits,
            stats.pool_misses,
            stats.pool_evictions,
        );
        sweep_rows.push(format!(
            "    {{ \"working_set\": \"{label}\", \"rows\": {rows}, \"store_bytes\": {}, \
             \"writeback_ms\": {:.3}, \"recovery_ms\": {:.3}, \"pool_hits\": {}, \
             \"pool_misses\": {}, \"pool_evictions\": {} }}",
            pages.len(),
            t_writeback * 1e3,
            t_recover * 1e3,
            stats.pool_hits,
            stats.pool_misses,
            stats.pool_evictions,
        ));
    }

    // -------------------------------------------------- checkpoint interval
    let big_rows = POOL_PAGES * ROWS_PER_PAGE * 10 / scale;
    let mut interval_rows = Vec::new();
    for every in [0usize, 16, 4, 1] {
        let log = MemLogStore::new();
        let pages = MemPageStore::new();
        let db = open(&log, &pages, POOL_PAGES);
        let start = Instant::now();
        load_rows(&db, big_rows, every);
        let run_secs = start.elapsed().as_secs_f64();
        drop(db);
        let wal_bytes = log.bytes().len();
        let start = Instant::now();
        let db = open(&log, &pages, POOL_PAGES);
        let recover_secs = start.elapsed().as_secs_f64();
        assert_eq!(
            count_rows(&db) as usize,
            big_rows,
            "interval {every} lost rows"
        );
        eprintln!(
            "checkpoint every {every:>2} batches: load {:>7.1} rows/s, wal tail {:>8} bytes, \
             recover {:>7.2} ms",
            big_rows as f64 / run_secs,
            wal_bytes,
            recover_secs * 1e3,
        );
        interval_rows.push(format!(
            "    {{ \"checkpoint_every_batches\": {every}, \"load_rows_per_sec\": {:.1}, \
             \"wal_tail_bytes\": {wal_bytes}, \"recovery_ms\": {:.3} }}",
            big_rows as f64 / run_secs,
            recover_secs * 1e3,
        ));
    }

    if smoke {
        eprintln!("BENCH_SMOKE set: assertions passed, JSON not written");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"paged_storage\",\n  \"pool_pages\": {POOL_PAGES},\n  \
         \"rows_per_page_approx\": {ROWS_PER_PAGE},\n  \"reps\": {REPS},\n  \
         \"host_cpus\": {cpus},\n  \
         \"note\": \"in-memory page/log stores: numbers profile the paged engine \
         (checksummed slotted codec, clock pool, epoch writeback), not disk; \
         checkpoint_every_batches = 0 means never, so the whole WAL replays at \
         recovery, while smaller intervals truncate the log as they go\",\n  \
         \"working_set_sweep\": [\n{sweep}\n  ],\n  \
         \"checkpoint_intervals\": [\n{intervals}\n  ]\n}}\n",
        sweep = sweep_rows.join(",\n"),
        intervals = interval_rows.join(",\n"),
    );

    let path = "docs/outputs/BENCH_storage.json";
    std::fs::write(path, &json).expect("write BENCH_storage.json");
    print!("{json}");
    eprintln!("wrote {path}");
}
