//! Regenerates `docs/outputs/BENCH_vectorized.json` — the vectorized
//! batch-executor benchmark.
//!
//! Four micro-workloads over the standard seeded order database, each
//! run two ways against the same data:
//!
//! - **interpreted**: pre-parsed AST through `execute_ast` — tree
//!   walking with name resolution per row, no compiled plan. Parsing is
//!   excluded, so the comparison isolates execution, not the parser.
//! - **batched**: warm `execute` through the compiled-plan cache — the
//!   batch executor with selection vectors, fused filter+project, and
//!   (for the GROUP BY workload) the one-pass hash aggregator.
//!
//! Workloads: full-table *scan* projection, *filter* selectivity,
//! *fused* filter+compute projection, and the *aggregate* GROUP BY
//! query from `BENCH_concurrency`. Row count is 10x the older read
//! benchmarks (20k vs 2k) so per-row costs dominate fixed overheads.
//!
//! `BENCH_SMOKE=1` shrinks the workload and skips the JSON write — used
//! by `scripts/verify.sh` to prove the binary runs (and that the batch
//! path actually engages) without clobbering recorded results.

use std::time::Instant;

use sqlkernel::parser::parse_statement;
use sqlkernel::{Connection, StatementResult};

const DB_ROWS: usize = 20_000;
const SMOKE_ROWS: usize = 2_000;

/// Median-of-3 timing of `iters` runs of `f`, in seconds.
fn time_runs(iters: u64, mut f: impl FnMut()) -> f64 {
    let mut samples = [0.0f64; 3];
    for s in &mut samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        *s = start.elapsed().as_secs_f64();
    }
    samples.sort_by(f64::total_cmp);
    samples[1]
}

fn per_stmt_us(secs: f64, iters: u64) -> f64 {
    secs / iters as f64 * 1e6
}

/// Time one workload interpreted vs batched and emit its JSON point.
/// Asserts both executors return byte-identical results first.
fn run_workload(
    conn: &Connection,
    name: &str,
    query: &str,
    iters: u64,
    points: &mut Vec<String>,
) -> (f64, f64) {
    let stmt = parse_statement(query).expect("benchmark query parses");

    // Differential sanity: same rows, same order, both ways.
    let interpreted_rows = match conn.execute_ast(&stmt, &[]).unwrap() {
        StatementResult::Rows(r) => r,
        other => panic!("workload must return rows, got {other:?}"),
    };
    let batched_rows = conn.query(query, &[]).unwrap();
    assert_eq!(
        interpreted_rows, batched_rows,
        "{name}: batched result must be byte-identical to interpreted"
    );

    let interpreted = time_runs(iters, || {
        std::hint::black_box(conn.execute_ast(&stmt, &[]).unwrap());
    });
    let batched = time_runs(iters, || {
        std::hint::black_box(conn.execute(query, &[]).unwrap());
    });

    points.push(format!(
        "    {{ \"workload\": {name:?}, \"query\": {query:?}, \"iterations\": {iters}, \
         \"interpreted_per_stmt_us\": {i:.2}, \"batched_per_stmt_us\": {b:.2}, \
         \"speedup\": {s:.2} }}",
        i = per_stmt_us(interpreted, iters),
        b = per_stmt_us(batched, iters),
        s = interpreted / batched,
    ));
    (interpreted, batched)
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let (rows, iters) = if smoke {
        (SMOKE_ROWS, 5)
    } else {
        (DB_ROWS, 100)
    };
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let db = bench::seeded_orders_db("vectorized", rows);
    let conn = db.connect();

    let mut points = Vec::new();
    run_workload(
        &conn,
        "scan",
        "SELECT OrderId, ItemId, Quantity, Approved FROM Orders",
        iters,
        &mut points,
    );
    run_workload(
        &conn,
        "filter",
        "SELECT OrderId FROM Orders WHERE Quantity > 25 AND Approved = TRUE",
        iters,
        &mut points,
    );
    run_workload(
        &conn,
        "fused",
        "SELECT OrderId, Quantity * 2 + 1 FROM Orders WHERE Quantity > 25 AND Approved = TRUE",
        iters,
        &mut points,
    );
    let (agg_i, agg_b) = run_workload(
        &conn,
        "aggregate",
        "SELECT ItemId, SUM(Quantity) FROM Orders WHERE Approved = TRUE GROUP BY ItemId",
        iters,
        &mut points,
    );

    // The whole point of the benchmark: prove the batched path engaged,
    // not just that two interpreters raced each other.
    let stats = db.stats();
    assert!(
        stats.batch_evals > 0,
        "compiled statements must run through the batch executor"
    );
    assert!(
        stats.hash_aggs > 0,
        "the GROUP BY workload must run through the hash aggregator"
    );
    assert!(stats.batched_rows > 0 && stats.full_scan_rows > 0);

    let agg_speedup = agg_i / agg_b;
    eprintln!(
        "aggregate: interpreted {:.1}us vs batched {:.1}us  (×{:.2})",
        per_stmt_us(agg_i, iters),
        per_stmt_us(agg_b, iters),
        agg_speedup
    );

    if smoke {
        eprintln!("BENCH_SMOKE set; skipping JSON write");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"vectorized_batch_executor\",\n  \"db_rows\": {rows},\n  \
         \"host_cpus\": {cpus},\n  \
         \"note\": \"per_stmt_us is wall-clock per statement, median of 3 runs; \
         interpreted is the pre-parsed AST through the tree-walking executor, batched is \
         the warm compiled plan through the batch executor; results are asserted \
         byte-identical before timing\",\n  \
         \"points\": [\n{points}\n  ],\n  \
         \"aggregate_speedup\": {agg_speedup:.2},\n  \
         \"engine_stats\": {{\n    \"statements_executed\": {exec},\n    \
         \"plan_binds\": {binds},\n    \"bound_evals\": {bevals},\n    \
         \"batch_evals\": {batch},\n    \"batched_rows\": {brows},\n    \
         \"hash_aggs\": {haggs},\n    \"full_scans\": {fscans},\n    \
         \"full_scan_rows\": {fsrows}\n  }}\n}}\n",
        points = points.join(",\n"),
        exec = stats.statements_executed,
        binds = stats.plan_binds,
        bevals = stats.bound_evals,
        batch = stats.batch_evals,
        brows = stats.batched_rows,
        haggs = stats.hash_aggs,
        fscans = stats.full_scans,
        fsrows = stats.full_scan_rows,
    );

    let path = "docs/outputs/BENCH_vectorized.json";
    std::fs::write(path, &json).expect("write BENCH_vectorized.json");
    print!("{json}");
    eprintln!("wrote {path}");
}
