//! Regenerates `docs/outputs/BENCH_throughput.json` — write-throughput
//! scaling of the parallel DML path.
//!
//! The workload is the paper's "many parallel instances" shape reduced
//! to its storage essentials: each worker owns a private table and
//! alternates fast-path INSERT/UPDATE statements against it for a fixed
//! wall-clock window. With per-table locking, disjoint writers should
//! scale with the worker count instead of serializing behind a global
//! write lock; with a non-zero group-commit window, concurrent commits
//! should coalesce into fewer WAL appends (`appends_per_commit` < 1).
//!
//! `BENCH_SMOKE=1` shrinks the window and skips the JSON write — used
//! by `scripts/verify.sh` to prove the binary runs without clobbering
//! recorded results.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sqlkernel::{Database, MemLogStore, Value};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const GROUP_WINDOWS: [u64; 2] = [0, 4];

struct Point {
    workers: usize,
    group_window: u64,
    statements: u64,
    stmts_per_sec: f64,
    speedup_vs_1: f64,
    wal_appends: u64,
    wal_commits: u64,
    appends_per_commit: f64,
}

fn fresh_db(workers: usize) -> Database {
    let db = Database::with_wal("throughput", Arc::new(MemLogStore::new()));
    let conn = db.connect();
    for w in 0..workers {
        conn.execute(
            &format!("CREATE TABLE w{w} (id INT PRIMARY KEY, v INT)"),
            &[],
        )
        .unwrap();
    }
    db
}

/// N workers, each hammering its own table with INSERT-then-UPDATE
/// pairs until the window closes. Returns completed statements and the
/// WAL append/commit deltas over the measured region.
fn measure(workers: usize, group_window: u64, window: Duration) -> Point {
    let db = fresh_db(workers);
    db.set_group_commit_window(group_window);
    let base = db.snapshot();

    let stop = AtomicBool::new(false);
    let start = Instant::now();
    let statements: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let conn = db.connect();
                let stop = &stop;
                s.spawn(move || {
                    let insert = format!("INSERT INTO w{w} VALUES (?, ?)");
                    let update = format!("UPDATE w{w} SET v = v + 1 WHERE id = ?");
                    let mut done = 0u64;
                    let mut id = 0i64;
                    while !stop.load(Ordering::Relaxed) {
                        conn.execute(&insert, &[Value::Int(id), Value::Int(0)])
                            .unwrap();
                        conn.execute(&update, &[Value::Int(id)]).unwrap();
                        done += 2;
                        id += 1;
                    }
                    done
                })
            })
            .collect();
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let elapsed = start.elapsed().as_secs_f64();

    let stats = db.snapshot();
    let wal_appends = stats.wal_appends - base.wal_appends;
    let wal_commits = stats.wal_commits - base.wal_commits;
    Point {
        workers,
        group_window,
        statements,
        stmts_per_sec: statements as f64 / elapsed,
        speedup_vs_1: 0.0,
        wal_appends,
        wal_commits,
        appends_per_commit: if wal_commits > 0 {
            wal_appends as f64 / wal_commits as f64
        } else {
            0.0
        },
    }
}

fn main() {
    let smoke = std::env::var("BENCH_SMOKE").is_ok();
    let window = if smoke {
        Duration::from_millis(40)
    } else {
        Duration::from_millis(400)
    };
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut points = Vec::new();
    for &group_window in &GROUP_WINDOWS {
        let mut base_qps = 0.0f64;
        for &workers in &WORKER_COUNTS {
            let mut p = measure(workers, group_window, window);
            if workers == 1 {
                base_qps = p.stmts_per_sec;
            }
            p.speedup_vs_1 = if base_qps > 0.0 {
                p.stmts_per_sec / base_qps
            } else {
                0.0
            };
            eprintln!(
                "{workers} workers, window {group_window}: {qps:>9.0} stmts/s \
                 (×{speedup:.2} vs 1)  {apc:.3} appends/commit",
                qps = p.stmts_per_sec,
                speedup = p.speedup_vs_1,
                apc = p.appends_per_commit,
            );
            points.push(p);
        }
    }

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{ \"workers\": {}, \"group_window\": {}, \"statements\": {}, \
                 \"stmts_per_sec\": {:.1}, \"speedup_vs_1\": {:.3}, \
                 \"wal_appends\": {}, \"wal_commits\": {}, \"appends_per_commit\": {:.3} }}",
                p.workers,
                p.group_window,
                p.statements,
                p.stmts_per_sec,
                p.speedup_vs_1,
                p.wal_appends,
                p.wal_commits,
                p.appends_per_commit,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"parallel_dml_throughput\",\n  \
         \"workload\": \"per-worker private table, INSERT/UPDATE pairs, fast-path DML\",\n  \
         \"window_ms\": {window},\n  \"host_cpus\": {cpus},\n  \
         \"note\": \"speedup is bounded by host_cpus; appends_per_commit < 1 means the \
         group-commit sequencer coalesced concurrent commits into shared appends\",\n  \
         \"points\": [\n{points}\n  ]\n}}\n",
        window = window.as_millis(),
        points = rows.join(",\n"),
    );

    if smoke {
        eprintln!("smoke mode: skipping JSON write");
    } else {
        let path = "docs/outputs/BENCH_throughput.json";
        std::fs::write(path, &json).expect("write BENCH_throughput.json");
        eprintln!("wrote {path}");
    }
    print!("{json}");
}
