//! Regenerates `docs/outputs/BENCH_faults.json` — cost of the fault
//! injection layer and recovered throughput under fault storms.
//!
//! Three questions, one row each:
//!
//! * **0% rate** — what does merely *installing* a fault plan cost?
//!   The same retry-wrapped workload runs once with no plan and once
//!   with a 0%-rate plan; the overhead of the injection gate must stay
//!   within noise (≤5%).
//! * **1% / 10% rate** — how much throughput does the retry layer
//!   *recover* when statements actually fail? Every operation still
//!   completes (the workload never loses a statement); the throughput
//!   row records what the faults and backoff cost.

use std::time::Instant;

use flowcore::retry::{BreakerConfig, RetryPolicy, RetryRuntime};
use flowcore::FlowError;
use sqlkernel::fault::FaultPlan;
use sqlkernel::{Database, Value};

const OPS: usize = 20_000;
const REPS: usize = 3;
const SEED: u64 = 20260807;

fn workload_db(name: &str) -> Database {
    let db = Database::new(name);
    db.connect()
        .execute("CREATE TABLE log (id INT PRIMARY KEY, v TEXT)", &[])
        .unwrap();
    db
}

/// Run `OPS` retry-wrapped statements (alternating INSERT and the
/// re-read of the row just written); returns the best-of-`REPS`
/// elapsed seconds and the retry count of the last rep.
fn measure(rate: f64, with_plan: bool) -> (f64, u64, u64) {
    let mut best = f64::MAX;
    let mut retries = 0;
    let mut faults = 0;
    for rep in 0..REPS {
        let db = workload_db("faults");
        if with_plan {
            db.set_fault_plan(Some(FaultPlan::new(SEED + rep as u64).transient_rate(rate)));
        }
        let mut rt = RetryRuntime::new(SEED)
            .with_policy(RetryPolicy {
                max_attempts: 50,
                base_backoff_ticks: 1,
                jitter_ticks: 1,
                ..RetryPolicy::default()
            })
            .with_breaker(BreakerConfig {
                failure_threshold: 1_000_000,
                cooldown_ticks: 1,
            });
        let conn = db.connect();
        let insert = "INSERT INTO log VALUES (?, 'x')";
        let read = "SELECT v FROM log WHERE id = ?";
        let start = Instant::now();
        for i in 0..OPS {
            let (sql, n) = if i % 2 == 0 {
                (insert, i as i64)
            } else {
                (read, (i - 1) as i64)
            };
            let (r, _) = rt.run(db.name(), Some(&db), || {
                conn.execute(sql, &[Value::Int(n)])
                    .map(|_| ())
                    .map_err(FlowError::from)
            });
            r.unwrap();
        }
        let elapsed = start.elapsed().as_secs_f64();
        best = best.min(elapsed);
        let stats = db.stats();
        retries = stats.retries;
        faults = stats.faults_injected;
    }
    (best, retries, faults)
}

fn main() {
    let (t_none, _, _) = measure(0.0, false);
    let base_ops_per_sec = OPS as f64 / t_none;
    eprintln!("no injector: {base_ops_per_sec:>10.0} stmts/s");

    let mut points = Vec::new();
    let mut overhead_0 = 0.0f64;
    for rate in [0.0f64, 0.01, 0.10] {
        let (t, retries, faults) = measure(rate, true);
        let ops_per_sec = OPS as f64 / t;
        let vs_base = ops_per_sec / base_ops_per_sec;
        if rate == 0.0 {
            overhead_0 = (t - t_none) / t_none;
        }
        eprintln!(
            "{:>4.0}% faults: {ops_per_sec:>10.0} stmts/s  ({:.2}x of no-injector, \
             {faults} injected, {retries} retries)",
            rate * 100.0,
            vs_base,
        );
        points.push(format!(
            "    {{ \"fault_rate\": {rate}, \"statements\": {OPS}, \
             \"stmts_per_sec\": {ops_per_sec:.1}, \"relative_throughput\": {vs_base:.3}, \
             \"faults_injected\": {faults}, \"retries\": {retries} }}"
        ));
    }

    eprintln!("0%-plan overhead vs no plan: {:.2}%", overhead_0 * 100.0);
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"fault_injection\",\n  \"statements_per_run\": {OPS},\n  \
         \"reps\": {REPS},\n  \"seed\": {SEED},\n  \"host_cpus\": {cpus},\n  \
         \"no_injector_stmts_per_sec\": {base_ops_per_sec:.1},\n  \
         \"zero_rate_overhead_pct\": {overhead:.2},\n  \
         \"note\": \"every run completes all statements: faulted ones are retried to \
         success, so the 1%/10% rows are recovered throughput, not loss\",\n  \
         \"points\": [\n{points}\n  ]\n}}\n",
        cpus = cpus,
        overhead = overhead_0 * 100.0,
        points = points.join(",\n"),
    );

    let path = "docs/outputs/BENCH_faults.json";
    std::fs::write(path, &json).expect("write BENCH_faults.json");
    print!("{json}");
    eprintln!("wrote {path}");
}
