//! Regenerates Figure 8 — the sample workflow on Oracle SOA Suite
//! technology — by running it and printing the annotated flow.

use flowcore::Variables;
use patterns::probe::ProbeEnv;

fn main() {
    println!("FIG. 8 — SAMPLE WORKFLOW USING ORACLE SOA SUITE TECHNOLOGY (live run)\n");
    let env = ProbeEnv::fresh();
    let def = soa::figure8_process(env.db.clone());
    let inst = env
        .engine
        .run(&def, Variables::new())
        .expect("engine accepts the definition");
    assert!(inst.is_completed(), "instance faulted: {:?}", inst.outcome);

    println!("Activity trace (▶ start, ✓ complete, · note):\n");
    print!("{}", inst.audit.render());

    let conn = env.db.connect();
    let rs = conn
        .query(
            "SELECT ItemId, Quantity, Confirmation FROM OrderConfirmations ORDER BY ItemId",
            &[],
        )
        .expect("confirmations readable");
    println!("\nResulting OrderConfirmations table:\n\n{}", rs.to_grid());
    println!(
        "Status variable after the last ora:processXSQL call: {}",
        inst.variables
            .require_scalar("Status")
            .expect("status set")
            .render()
    );
}
