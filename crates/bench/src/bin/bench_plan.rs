//! Regenerates `docs/outputs/BENCH_plan.json` — the compiled-plan-cache
//! benchmark.
//!
//! Three comparisons, each isolating one layer of the plan work:
//!
//! 1. **interpreted vs compiled**: the same parameterized SELECT executed
//!    by re-parsing + tree-walking every iteration versus through
//!    `Connection::execute`, which reuses the cached bound plan (ordinal
//!    column access, folded constants) after the first call.
//! 2. **full scan vs index range scan**: an identical `BETWEEN` probe on
//!    twin databases, one with a secondary index on the probed column.
//! 3. **full sort vs top-K heap vs index-ordered walk**: `ORDER BY`
//!    alone, `ORDER BY … LIMIT k` without an index (bounded heap), and
//!    `ORDER BY … LIMIT k` served directly in index key order.
//!
//! All workloads are deterministic (seeded data, fixed iteration
//! counts); wall-clock numbers vary by host but the orderings should
//! not.

use std::time::Instant;

use sqlkernel::parser::parse_statement;
use sqlkernel::{Connection, Database, Value};

const DB_ROWS: usize = 20_000;

/// Engine counters summed over every database the benchmark touches.
#[derive(Default)]
struct Agg {
    statements_executed: u64,
    parses: u64,
    plan_binds: u64,
    bound_evals: u64,
    index_scans: u64,
    range_scans: u64,
    full_scans: u64,
    topk_sorts: u64,
}

impl Agg {
    fn add(&mut self, db: &Database) {
        let s = db.stats();
        self.statements_executed += s.statements_executed;
        self.parses += s.parses;
        self.plan_binds += s.plan_binds;
        self.bound_evals += s.bound_evals;
        self.index_scans += s.index_scans;
        self.range_scans += s.range_scans;
        self.full_scans += s.full_scans;
        self.topk_sorts += s.topk_sorts;
    }
}

/// Median-of-3 timing of `iters` runs of `f`, in seconds.
fn time_runs(iters: u64, mut f: impl FnMut()) -> f64 {
    let mut samples = [0.0f64; 3];
    for s in &mut samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        *s = start.elapsed().as_secs_f64();
    }
    samples.sort_by(f64::total_cmp);
    samples[1]
}

fn per_stmt_us(secs: f64, iters: u64) -> f64 {
    secs / iters as f64 * 1e6
}

fn json_point(name: &str, iters: u64, secs: f64, extra: &str) -> String {
    format!(
        "    {{ \"workload\": {name:?}, \"iterations\": {iters}, \
         \"total_secs\": {secs:.4}, \"per_stmt_us\": {us:.2}{extra} }}",
        us = per_stmt_us(secs, iters),
    )
}

fn bench_interpreted_vs_compiled(conn: &Connection, points: &mut Vec<String>) -> (f64, f64) {
    const Q: &str = "SELECT OrderId, Quantity * 2 + 1 FROM Orders \
                     WHERE Quantity > ? AND Approved = TRUE";
    const ITERS: u64 = 300;
    let params = [Value::Int(25)];

    // Interpreted: parse + tree-walk per iteration (what every execution
    // cost before the statement and plan caches).
    let interpreted = time_runs(ITERS, || {
        let stmt = parse_statement(Q).unwrap();
        std::hint::black_box(conn.execute_ast(&stmt, &params).unwrap());
    });

    // Compiled: warm the plan, then run through the cache.
    conn.execute(Q, &params).unwrap();
    let compiled = time_runs(ITERS, || {
        std::hint::black_box(conn.execute(Q, &params).unwrap());
    });

    points.push(json_point("select_parse_interpret", ITERS, interpreted, ""));
    points.push(json_point(
        "select_compiled_plan",
        ITERS,
        compiled,
        &format!(", \"speedup\": {:.2}", interpreted / compiled),
    ));
    (interpreted, compiled)
}

fn bench_scan_vs_range(points: &mut Vec<String>, agg: &mut Agg) -> (f64, f64) {
    const Q: &str = "SELECT OrderId FROM Orders WHERE Quantity BETWEEN 10 AND 12";
    const ITERS: u64 = 300;

    let plain = bench::seeded_orders_db("plan_scan", DB_ROWS);
    let indexed = bench::seeded_orders_db("plan_range", DB_ROWS);
    indexed
        .connect()
        .execute("CREATE INDEX idx_qty ON Orders (Quantity)", &[])
        .unwrap();

    let c_plain = plain.connect();
    let c_indexed = indexed.connect();
    c_plain.query(Q, &[]).unwrap();
    c_indexed.query(Q, &[]).unwrap();
    assert_eq!(
        c_plain.query(Q, &[]).unwrap().len(),
        c_indexed.query(Q, &[]).unwrap().len(),
        "index must not change the result"
    );

    let full = time_runs(ITERS, || {
        std::hint::black_box(c_plain.query(Q, &[]).unwrap());
    });
    let range = time_runs(ITERS, || {
        std::hint::black_box(c_indexed.query(Q, &[]).unwrap());
    });
    assert!(indexed.stats().range_scans > 0, "range path must be taken");

    points.push(json_point("between_full_scan", ITERS, full, ""));
    points.push(json_point(
        "between_index_range_scan",
        ITERS,
        range,
        &format!(", \"speedup\": {:.2}", full / range),
    ));
    agg.add(&plain);
    agg.add(&indexed);
    (full, range)
}

fn bench_sort_topk_indexorder(points: &mut Vec<String>, agg: &mut Agg) -> (f64, f64, f64) {
    const Q_SORT: &str = "SELECT OrderId FROM Orders ORDER BY Quantity";
    const Q_TOPK: &str = "SELECT OrderId FROM Orders ORDER BY Quantity LIMIT 10";
    const ITERS: u64 = 200;

    let plain = bench::seeded_orders_db("plan_sort", DB_ROWS);
    let indexed = bench::seeded_orders_db("plan_idxorder", DB_ROWS);
    indexed
        .connect()
        .execute("CREATE INDEX idx_qty ON Orders (Quantity)", &[])
        .unwrap();

    let c_plain = plain.connect();
    let c_indexed = indexed.connect();
    c_plain.query(Q_TOPK, &[]).unwrap();
    c_indexed.query(Q_TOPK, &[]).unwrap();

    let full_sort = time_runs(ITERS, || {
        std::hint::black_box(c_plain.query(Q_SORT, &[]).unwrap());
    });
    let topk = time_runs(ITERS, || {
        std::hint::black_box(c_plain.query(Q_TOPK, &[]).unwrap());
    });
    let index_order = time_runs(ITERS, || {
        std::hint::black_box(c_indexed.query(Q_TOPK, &[]).unwrap());
    });
    assert!(plain.stats().topk_sorts > 0, "top-K path must be taken");

    points.push(json_point("order_by_full_sort", ITERS, full_sort, ""));
    points.push(json_point(
        "order_by_limit_topk_heap",
        ITERS,
        topk,
        &format!(", \"speedup_vs_full_sort\": {:.2}", full_sort / topk),
    ));
    points.push(json_point(
        "order_by_limit_index_order",
        ITERS,
        index_order,
        &format!(", \"speedup_vs_full_sort\": {:.2}", full_sort / index_order),
    ));
    agg.add(&plain);
    agg.add(&indexed);
    (full_sort, topk, index_order)
}

fn main() {
    let db = bench::seeded_orders_db("plan_exec", DB_ROWS);
    let conn = db.connect();

    let mut points = Vec::new();
    let mut agg = Agg::default();
    let (interp, compiled) = bench_interpreted_vs_compiled(&conn, &mut points);
    let (full, range) = bench_scan_vs_range(&mut points, &mut agg);
    let (sort, topk, idxord) = bench_sort_topk_indexorder(&mut points, &mut agg);
    agg.add(&db);

    eprintln!(
        "interpreted {:.1}us vs compiled {:.1}us  (×{:.2})",
        per_stmt_us(interp, 300),
        per_stmt_us(compiled, 300),
        interp / compiled
    );
    eprintln!(
        "full scan {:.1}us vs range scan {:.1}us  (×{:.2})",
        per_stmt_us(full, 300),
        per_stmt_us(range, 300),
        full / range
    );
    eprintln!(
        "full sort {:.1}us vs top-K {:.1}us vs index order {:.1}us",
        per_stmt_us(sort, 200),
        per_stmt_us(topk, 200),
        per_stmt_us(idxord, 200)
    );

    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"compiled_plan_cache\",\n  \"db_rows\": {rows},\n  \"host_cpus\": {cpus},\n  \
         \"note\": \"per_stmt_us is wall-clock per statement, median of 3 runs; \
         speedups compare against the first workload of each pair/triple; \
         engine_stats sums counters over all benchmark databases\",\n  \
         \"points\": [\n{points}\n  ],\n  \
         \"engine_stats\": {{\n    \"statements_executed\": {exec},\n    \
         \"parses\": {parses},\n    \"plan_binds\": {binds},\n    \
         \"bound_evals\": {bevals},\n    \"index_scans\": {idx},\n    \
         \"range_scans\": {range_scans},\n    \"full_scans\": {full_scans},\n    \
         \"topk_sorts\": {topk}\n  }}\n}}\n",
        rows = DB_ROWS,
        cpus = cpus,
        points = points.join(",\n"),
        exec = agg.statements_executed,
        parses = agg.parses,
        binds = agg.plan_binds,
        bevals = agg.bound_evals,
        idx = agg.index_scans,
        range_scans = agg.range_scans,
        full_scans = agg.full_scans,
        topk = agg.topk_sorts,
    );

    let path = "docs/outputs/BENCH_plan.json";
    std::fs::write(path, &json).expect("write BENCH_plan.json");
    print!("{json}");
    eprintln!("wrote {path}");
}
