//! Regenerates Figure 1 — the SQL-support taxonomy.

fn main() {
    print!(
        "{}",
        patterns::report::render_figure1(&patterns::figure1_entries())
    );
}
