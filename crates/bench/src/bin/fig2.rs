//! Regenerates Figure 2 — the data management pattern catalog.

fn main() {
    print!("{}", patterns::report::render_figure2());
}
