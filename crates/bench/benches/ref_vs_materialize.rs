//! BENCH-REF: quantify Sec. III-B / VI-B — BIS set references pass
//! external data **by reference**, while WF/SOA-style processing passes
//! it **by value** (materialize into the process space, then push back).
//!
//! Scenario: copy a staging table's content into a sink table across an
//! activity boundary.
//!
//! * `by_reference` — the BIS way: one set-oriented SQL statement
//!   (`INSERT INTO sink SELECT … FROM src`); the rows never leave the
//!   data source.
//! * `by_value` — the materializing way: query `src`, encode the result
//!   as an XML RowSet in the process space, decode it again on the
//!   consuming side, and insert row by row.
//!
//! Expected shape (paper claim): by-reference stays nearly flat with row
//! count, by-value grows linearly and loses by a widening factor.

use bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ref_vs_materialize");
    group.sample_size(10);

    for n in [16usize, 128, 1024, 4096] {
        let db = bench::seeded_wide_db("refmat", n);
        let conn = db.connect();

        group.bench_with_input(BenchmarkId::new("by_reference", n), &n, |b, _| {
            b.iter(|| {
                conn.execute("DELETE FROM sink", &[]).unwrap();
                conn.execute("INSERT INTO sink SELECT * FROM src", &[])
                    .unwrap()
            })
        });

        group.bench_with_input(BenchmarkId::new("by_value", n), &n, |b, _| {
            let insert = conn
                .prepare("INSERT INTO sink VALUES (?, ?, ?, ?, ?)")
                .unwrap();
            b.iter(|| {
                conn.execute("DELETE FROM sink", &[]).unwrap();
                // Materialize into the process space…
                let rs = conn.query("SELECT * FROM src", &[]).unwrap();
                let xml = xmlval::rowset::encode(&rs);
                // …hand the XML across the activity boundary…
                let decoded = xmlval::rowset::decode(black_box(&xml)).unwrap();
                // …and push it back row by row.
                for row in &decoded.rows {
                    conn.execute_prepared(&insert, row).unwrap();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
