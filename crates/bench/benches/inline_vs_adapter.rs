//! BENCH-ADAPTER: quantify the Fig. 1 dichotomy — SQL inline support vs
//! adapter technology.
//!
//! Both sides answer the same query; the adapter path additionally pays
//! the Web-service envelope: serialize the request to XML, parse it in
//! the adapter, serialize the RowSet response, parse it back in the
//! process. Expected shape: inline wins by a factor that grows with the
//! result size (the envelope is O(result bytes)).

use adapter::{build_request, parse_response, AdapterResponse, DataAdapterService};
use bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("inline_vs_adapter");
    group.sample_size(10);

    for n in [16usize, 128, 1024, 4096] {
        let db = bench::seeded_wide_db("adaptvs", n);
        let conn = db.connect();
        let service = DataAdapterService::new(db.clone());
        let sql = "SELECT id, a, b, c, d FROM src";

        group.bench_with_input(BenchmarkId::new("inline", n), &n, |b, _| {
            b.iter(|| {
                // Inline support: direct statement + RowSet
                // materialization (what a retrieve set does).
                let rs = conn.query(black_box(sql), &[]).unwrap();
                xmlval::rowset::encode(&rs)
            })
        });

        group.bench_with_input(BenchmarkId::new("adapter", n), &n, |b, _| {
            b.iter(|| {
                let request = build_request("executeQuery", black_box(sql), &[]);
                let response_text = service.handle(&request).unwrap();
                match parse_response(&response_text).unwrap() {
                    AdapterResponse::Rows(rs) => xmlval::rowset::encode(&rs),
                    other => panic!("unexpected {other:?}"),
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
