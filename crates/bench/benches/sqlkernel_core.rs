//! Substrate sanity benchmarks: parser, executor, DML and index paths of
//! the `sqlkernel` engine (BENCH-SQLKERNEL in DESIGN.md).

use bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlkernel::{parser::parse_statement, Value};
use std::hint::black_box;

fn bench_parse(c: &mut Criterion) {
    let sql = "SELECT o.ItemId, SUM(o.Quantity) AS total, COUNT(*) FROM Orders o \
               JOIN Items i ON o.ItemId = i.ItemId WHERE o.Approved = TRUE \
               AND o.Quantity BETWEEN 1 AND 100 GROUP BY o.ItemId \
               HAVING SUM(o.Quantity) > 5 ORDER BY total DESC LIMIT 10";
    c.bench_function("parse/aggregation_join_query", |b| {
        b.iter(|| parse_statement(black_box(sql)).unwrap())
    });
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("execute/group_by_aggregation");
    group.sample_size(20);
    for n in [100usize, 1_000, 10_000] {
        let db = bench::seeded_orders_db("agg", n);
        let conn = db.connect();
        let q = conn
            .prepare(
                "SELECT ItemId, SUM(Quantity) FROM Orders WHERE Approved = TRUE GROUP BY ItemId",
            )
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| conn.execute_prepared(black_box(&q), &[]).unwrap())
        });
    }
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("execute/insert_row", |b| {
        let db = sqlkernel::Database::new("ins");
        let conn = db.connect();
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)", &[])
            .unwrap();
        let stmt = conn.prepare("INSERT INTO t VALUES (?, ?)").unwrap();
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            conn.execute_prepared(&stmt, &[Value::Int(i), Value::text("payload")])
                .unwrap()
        });
    });
}

fn bench_point_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("execute/point_lookup_10k_rows");
    group.sample_size(30);
    let db = bench::seeded_wide_db("look", 10_000);
    let conn = db.connect();
    // Scan: predicate over a non-indexed column.
    let scan = conn.prepare("SELECT a FROM src WHERE b = ?").unwrap();
    group.bench_function("full_scan", |b| {
        b.iter(|| conn.execute_prepared(&scan, &[Value::Int(500)]).unwrap())
    });
    // Index fast path: same predicate after CREATE INDEX.
    conn.execute("CREATE INDEX idx_b ON src (b)", &[]).unwrap();
    group.bench_function("index_lookup", |b| {
        b.iter(|| conn.execute_prepared(&scan, &[Value::Int(500)]).unwrap())
    });
    // Primary-key point lookup (unique index).
    let pk = conn.prepare("SELECT a FROM src WHERE id = ?").unwrap();
    group.bench_function("pk_lookup", |b| {
        b.iter(|| conn.execute_prepared(&pk, &[Value::Int(5000)]).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_parse,
    bench_aggregation,
    bench_insert,
    bench_point_lookup
);
criterion_main!(benches);
