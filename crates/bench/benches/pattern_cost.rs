//! BENCH-PATTERNS: the running example end-to-end on every stack.
//!
//! Figures 4, 6 and 8 describe the *same* business logic; this benchmark
//! runs all three realizations (plus the adapter baseline) against
//! identical seed data and measures full-instance wall time. The paper
//! refuses a cross-product performance comparison because the vendors'
//! platforms differ; on this workspace's *uniform* substrate the
//! comparison isolates exactly the integration-style overheads:
//! external result tables + retrieval (BIS), DataSet materialization
//! (WF), XML RowSet + XSQL page parsing (SOA), envelope marshalling
//! (adapter).

use bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};

use flowcore::{Engine, Variables};
use patterns::probe::ProbeEnv;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("running_example");
    group.sample_size(10);

    for n in [50usize, 500] {
        group.bench_with_input(BenchmarkId::new("bis_fig4", n), &n, |b, &n| {
            b.iter_with_setup(
                || {
                    let env = ProbeEnv::fresh();
                    grow_orders(&env, n);
                    let registry = bis::DataSourceRegistry::new().with(env.db.clone());
                    let def = bis::figure4_process(registry, env.db.name());
                    (env, def)
                },
                |(env, def)| {
                    let inst = env.engine.run(&def, Variables::new()).unwrap();
                    assert!(inst.is_completed());
                },
            )
        });

        group.bench_with_input(BenchmarkId::new("wf_fig6", n), &n, |b, &n| {
            b.iter_with_setup(
                || {
                    let env = ProbeEnv::fresh();
                    grow_orders(&env, n);
                    let def = wf::figure6_process(env.db.clone());
                    (env, def)
                },
                |(env, def)| {
                    let inst = env.engine.run(&def, Variables::new()).unwrap();
                    assert!(inst.is_completed());
                },
            )
        });

        group.bench_with_input(BenchmarkId::new("soa_fig8", n), &n, |b, &n| {
            b.iter_with_setup(
                || {
                    let env = ProbeEnv::fresh();
                    grow_orders(&env, n);
                    let def = soa::figure8_process(env.db.clone());
                    (env, def)
                },
                |(env, def)| {
                    let inst = env.engine.run(&def, Variables::new()).unwrap();
                    assert!(inst.is_completed());
                },
            )
        });

        group.bench_with_input(BenchmarkId::new("adapter_baseline", n), &n, |b, &n| {
            b.iter_with_setup(
                || {
                    let env = ProbeEnv::fresh();
                    grow_orders(&env, n);
                    let mut engine = Engine::with_services(env.engine.services().clone());
                    adapter::register_data_adapter(
                        engine.services_mut(),
                        "OrdersDataService",
                        env.db.clone(),
                    );
                    let def = adapter::sample_process_via_adapter("OrdersDataService");
                    (engine, def)
                },
                |(engine, def)| {
                    let inst = engine.run(&def, Variables::new()).unwrap();
                    assert!(inst.is_completed());
                },
            )
        });
    }
    group.finish();
}

/// Add `extra` synthetic orders on top of the probe seed, keeping the
/// item-type cardinality fixed so the aggregated item list stays small
/// while the scanned data grows.
fn grow_orders(env: &ProbeEnv, extra: usize) {
    let conn = env.db.connect();
    let stmt = conn
        .prepare("INSERT INTO Orders VALUES (?, ?, ?, TRUE)")
        .unwrap();
    for i in 0..extra {
        conn.execute_prepared(
            &stmt,
            &[
                sqlkernel::Value::Int(1000 + i as i64),
                sqlkernel::Value::text(bench::ITEM_TYPES[i % bench::ITEM_TYPES.len()]),
                sqlkernel::Value::Int((i % 9) as i64 + 1),
            ],
        )
        .unwrap();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
