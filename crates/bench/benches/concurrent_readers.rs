//! Concurrent read scaling: N reader threads over one shared database.
//!
//! The `sqlkernel` catalog sits behind a reader-writer lock, so SELECTs
//! from independent connections execute concurrently. This bench runs
//! the standard aggregation probe from 1/2/4/8 threads against a seeded
//! orders database; per-thread latency should stay roughly flat as the
//! thread count grows (reads do not serialize).

use bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const QUERY: &str =
    "SELECT ItemId, SUM(Quantity) FROM Orders WHERE Approved = TRUE GROUP BY ItemId";

fn bench(c: &mut Criterion) {
    let db = bench::seeded_orders_db("readers", 2_000);
    let mut group = c.benchmark_group("concurrent_readers");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                // One timed unit = every thread completing one query.
                b.iter(|| {
                    std::thread::scope(|s| {
                        for _ in 0..threads {
                            let conn = db.connect();
                            s.spawn(move || {
                                black_box(conn.query(QUERY, &[]).unwrap());
                            });
                        }
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
