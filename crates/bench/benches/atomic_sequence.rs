//! BENCH-ATOMIC: the atomic SQL sequence (Sec. III-B item 3) — bundling
//! k SQL activities into one transaction vs executing each as its own
//! unit of work in a long-running process.
//!
//! Both variants run through the full BIS stack (engine, deployment,
//! activities). Expected shape: the atomic sequence amortizes
//! connection/transaction setup, winning modestly and increasingly with
//! k.

use bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bis::{AtomicSqlSequence, BisDeployment, DataSourceRegistry, SqlActivity};
use flowcore::builtins::Sequence;
use flowcore::{Engine, ProcessDefinition, Variables};

fn update_activity(i: usize) -> SqlActivity {
    SqlActivity::new(
        format!("SQL_{i}"),
        "DS",
        format!("UPDATE src SET b = b + 1 WHERE id % 16 = {}", i % 16),
    )
}

fn deployed(
    db: &sqlkernel::Database,
    root: impl flowcore::Activity + 'static,
) -> ProcessDefinition {
    BisDeployment::new(DataSourceRegistry::new().with(db.clone()))
        .bind_data_source("DS", db.name())
        .deploy(ProcessDefinition::new("bench", root))
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("atomic_sequence");
    group.sample_size(10);
    let engine = Engine::new();

    for k in [2usize, 8, 32] {
        let db = bench::seeded_wide_db("atomic", 512);

        let mut atomic = AtomicSqlSequence::new("atomic");
        for i in 0..k {
            atomic = atomic.then(update_activity(i));
        }
        let atomic_def = deployed(&db, atomic);

        let mut separate = Sequence::new("separate");
        for i in 0..k {
            separate = separate.then(update_activity(i));
        }
        let separate_def = deployed(&db, separate);

        group.bench_with_input(BenchmarkId::new("one_transaction", k), &k, |b, _| {
            b.iter(|| {
                let inst = engine.run(&atomic_def, Variables::new()).unwrap();
                assert!(inst.is_completed());
            })
        });
        group.bench_with_input(BenchmarkId::new("k_autocommits", k), &k, |b, _| {
            b.iter(|| {
                let inst = engine.run(&separate_def, Variables::new()).unwrap();
                assert!(inst.is_completed());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
