//! BENCH-CURSOR: internal-data access paths over a materialized set
//! (Sec. III-C / IV-C / V-C).
//!
//! * `sequential_cursor_xml` — the while + Java-Snippet cursor over an
//!   XML RowSet (BIS / SOA workaround), full pass.
//! * `sequential_dataset` — WF's code-activity iteration over a DataSet,
//!   full pass.
//! * `random_access_xml` — one positional XPath access
//!   (`/RowSet/Row[k]/…`, the BPEL-specific assign).
//! * `random_access_dataset` — one `DataTable.Select` predicate query.
//!
//! Expected shape: DataSet access is cheaper than XML-tree access (no
//! tree navigation), and random XPath access costs O(k) in the row index.

use bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlkernel::{QueryResult, Value};
use std::hint::black_box;
use wf::{DataSet, DataTable};
use xmlval::Path;

fn result_of(n: usize) -> QueryResult {
    QueryResult {
        columns: vec!["ItemId".into(), "Quantity".into()],
        rows: (0..n)
            .map(|i| vec![Value::Text(format!("item-{i:05}")), Value::Int(i as i64)])
            .collect(),
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_access");
    group.sample_size(10);

    for n in [64usize, 512, 4096] {
        let rs = result_of(n);
        let xml = xmlval::rowset::encode(&rs);
        let root = xml.as_element().unwrap().clone();
        let mut ds = DataSet::new();
        ds.add_table(DataTable::from_result("t", &rs));

        group.bench_with_input(BenchmarkId::new("sequential_cursor_xml", n), &n, |b, _| {
            b.iter(|| {
                let mut total = 0i64;
                for i in 0..n {
                    let v = xmlval::rowset::cell_value(black_box(&xml), i, "Quantity").unwrap();
                    total += v.as_i64().unwrap();
                }
                total
            })
        });

        group.bench_with_input(BenchmarkId::new("sequential_dataset", n), &n, |b, _| {
            b.iter(|| {
                let t = ds.first_table().unwrap();
                let mut total = 0i64;
                for row in t.live_rows() {
                    total += row.values()[1].as_i64().unwrap();
                }
                total
            })
        });

        let mid_path = Path::parse(&format!("/RowSet/Row[{}]/Quantity", n / 2)).unwrap();
        group.bench_with_input(BenchmarkId::new("random_access_xml", n), &n, |b, _| {
            b.iter(|| mid_path.select_strings(black_box(&root)))
        });

        let needle = Value::Text(format!("item-{:05}", n / 2));
        group.bench_with_input(BenchmarkId::new("random_access_dataset", n), &n, |b, _| {
            b.iter(|| {
                let t = ds.first_table().unwrap();
                t.select(|r| r.values()[0] == needle)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
