//! The verification harness must reject products whose support claims
//! diverge from what their demonstrations actually do — in either
//! direction. Without these negative tests, Table II generation could
//! silently rubber-stamp wrong matrices.

use patterns::{
    verify_support_matrix, Architecture, DataPattern, Demonstration, PatternRealization, ProbeEnv,
    ProbeError, ProductInfo, SqlIntegration, SupportLevel, SupportMatrix,
};

/// A toy product whose demonstrations are configurable.
struct FakeProduct {
    matrix: SupportMatrix,
    /// What `demonstrate` actually reports for the Query pattern.
    query_demo: Vec<(String, SupportLevel)>,
}

impl SqlIntegration for FakeProduct {
    fn product_info(&self) -> ProductInfo {
        ProductInfo {
            vendor: "Test".into(),
            product: "Fake".into(),
            workflow_language: "none".into(),
            process_modeling: "none".into(),
            design_tool: "none".into(),
            sql_inline_support: vec![],
            external_dataset_reference: "-".into(),
            materialized_set_representation: "-".into(),
            external_datasource_reference: "-".into(),
            additional_features: vec![],
        }
    }

    fn architecture(&self) -> Architecture {
        Architecture::new("Fake")
    }

    fn support_matrix(&self) -> SupportMatrix {
        self.matrix.clone()
    }

    fn demonstrate(
        &self,
        pattern: DataPattern,
        _env: &mut ProbeEnv,
    ) -> Result<Vec<Demonstration>, ProbeError> {
        if pattern == DataPattern::Query {
            Ok(self
                .query_demo
                .iter()
                .map(|(m, l)| Demonstration::new(pattern, m.clone(), l.clone()).evidence("fake"))
                .collect())
        } else {
            // Everything else honestly claims + demonstrates a workaround.
            Ok(vec![Demonstration::new(
                pattern,
                "Only workarounds possible",
                SupportLevel::Workaround,
            )
            .evidence("fake")])
        }
    }
}

fn honest_matrix() -> SupportMatrix {
    let mut m =
        SupportMatrix::new("Fake").with(PatternRealization::native(DataPattern::Query, "Magic"));
    for p in DataPattern::ALL.into_iter().skip(1) {
        m = m.with(PatternRealization::workaround(p));
    }
    m
}

#[test]
fn honest_product_verifies() {
    let p = FakeProduct {
        matrix: honest_matrix(),
        query_demo: vec![("Magic".into(), SupportLevel::Native)],
    };
    let demos = verify_support_matrix(&p).unwrap();
    assert_eq!(demos.len(), 9);
}

#[test]
fn claim_without_demonstration_is_rejected() {
    // Matrix claims Query natively via "Magic", but the demo reports a
    // workaround instead.
    let p = FakeProduct {
        matrix: honest_matrix(),
        query_demo: vec![("Only workarounds possible".into(), SupportLevel::Workaround)],
    };
    let err = verify_support_matrix(&p).unwrap_err();
    assert!(err.to_string().contains("Query"), "{err}");
}

#[test]
fn demonstration_without_claim_is_rejected() {
    // The demo reports an extra realization the matrix never claimed.
    let p = FakeProduct {
        matrix: honest_matrix(),
        query_demo: vec![
            ("Magic".into(), SupportLevel::Native),
            ("Extra".into(), SupportLevel::Native),
        ],
    };
    assert!(verify_support_matrix(&p).is_err());
}

#[test]
fn wrong_level_is_rejected() {
    // Same mechanism, but demonstrated only partially.
    let p = FakeProduct {
        matrix: honest_matrix(),
        query_demo: vec![(
            "Magic".into(),
            SupportLevel::Partial("only SELECT *".into()),
        )],
    };
    assert!(verify_support_matrix(&p).is_err());
}

#[test]
fn missing_pattern_demonstration_is_rejected() {
    // Matrix claims Synchronization, but demonstrate returns nothing for it.
    struct Silent;
    impl SqlIntegration for Silent {
        fn product_info(&self) -> ProductInfo {
            FakeProduct {
                matrix: honest_matrix(),
                query_demo: vec![],
            }
            .product_info()
        }
        fn architecture(&self) -> Architecture {
            Architecture::new("Silent")
        }
        fn support_matrix(&self) -> SupportMatrix {
            honest_matrix()
        }
        fn demonstrate(
            &self,
            pattern: DataPattern,
            _env: &mut ProbeEnv,
        ) -> Result<Vec<Demonstration>, ProbeError> {
            if pattern == DataPattern::Synchronization {
                Ok(vec![]) // claims it, never shows it
            } else if pattern == DataPattern::Query {
                Ok(vec![Demonstration::new(
                    pattern,
                    "Magic",
                    SupportLevel::Native,
                )])
            } else {
                Ok(vec![Demonstration::new(
                    pattern,
                    "Only workarounds possible",
                    SupportLevel::Workaround,
                )])
            }
        }
    }
    assert!(verify_support_matrix(&Silent).is_err());
}
