//! The nine data management patterns of Sec. II-B / Figure 2.

use std::fmt;

/// A data management pattern for accessing and processing data in
/// business processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataPattern {
    /// Query external data via SQL; results stay external or are
    /// materialized into the process space.
    Query,
    /// Set-oriented INSERT/UPDATE/DELETE on external data.
    SetIud,
    /// DDL for configuration/setup during process execution.
    DataSetup,
    /// Calling stored procedures on external data.
    StoredProcedure,
    /// Retrieve external data and materialize it as a set-oriented data
    /// structure (a cache) in the process space.
    SetRetrieval,
    /// Sequential (cursor-style) access to the cache.
    SequentialSetAccess,
    /// Random access to the cache.
    RandomSetAccess,
    /// Insert/update/delete of tuples in the cache.
    TupleIud,
    /// Synchronize the cache with the original data source.
    Synchronization,
}

impl DataPattern {
    /// All patterns, in the column order of Table II.
    pub const ALL: [DataPattern; 9] = [
        DataPattern::Query,
        DataPattern::SetIud,
        DataPattern::DataSetup,
        DataPattern::StoredProcedure,
        DataPattern::SetRetrieval,
        DataPattern::SequentialSetAccess,
        DataPattern::RandomSetAccess,
        DataPattern::TupleIud,
        DataPattern::Synchronization,
    ];

    /// Display name as used in Table II column heads.
    pub fn title(&self) -> &'static str {
        match self {
            DataPattern::Query => "Query",
            DataPattern::SetIud => "Set IUD",
            DataPattern::DataSetup => "Data Setup",
            DataPattern::StoredProcedure => "Stored Procedure",
            DataPattern::SetRetrieval => "Set Retrieval",
            DataPattern::SequentialSetAccess => "Seq. Set Access",
            DataPattern::RandomSetAccess => "Random Set Access",
            DataPattern::TupleIud => "Tuple IUD",
            DataPattern::Synchronization => "Synchronization",
        }
    }

    /// Does the pattern operate on *external* data (managed by a DBMS)?
    /// The remaining patterns operate on internal data in the process
    /// space (Figure 2's two-space picture; Set Retrieval bridges the two
    /// and is classified with the internal group as in the paper's
    /// discussion).
    pub fn on_external_data(&self) -> bool {
        matches!(
            self,
            DataPattern::Query
                | DataPattern::SetIud
                | DataPattern::DataSetup
                | DataPattern::StoredProcedure
        )
    }

    /// One-sentence description from Sec. II-B.
    pub fn description(&self) -> &'static str {
        match self {
            DataPattern::Query => {
                "Query external data by means of SQL queries; results are stored \
                 in the external data source or materialized in the process space."
            }
            DataPattern::SetIud => {
                "Perform set-oriented insert, update and delete operations on \
                 external data via SQL statements."
            }
            DataPattern::DataSetup => {
                "Execute DDL statements on a relational database system for \
                 configuration and setup purposes during process execution."
            }
            DataPattern::StoredProcedure => {
                "Express complex processing of external data by calling stored \
                 procedures."
            }
            DataPattern::SetRetrieval => {
                "Retrieve data from an external data source and materialize it in \
                 a set-oriented data structure within the process space; the \
                 structure acts like a data cache holding no connection to the \
                 original source."
            }
            DataPattern::SequentialSetAccess => {
                "Sequential (cursor-style) access to the data cache in the \
                 process space."
            }
            DataPattern::RandomSetAccess => "Random access to specific tuples of the data cache.",
            DataPattern::TupleIud => {
                "Insert, update and delete of individual tuples in the data cache."
            }
            DataPattern::Synchronization => {
                "Synchronize a local data cache with the original data source."
            }
        }
    }
}

impl fmt::Display for DataPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.title())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_patterns_with_unique_titles() {
        let mut titles: Vec<&str> = DataPattern::ALL.iter().map(|p| p.title()).collect();
        titles.sort_unstable();
        titles.dedup();
        assert_eq!(titles.len(), 9);
    }

    #[test]
    fn external_internal_split_matches_figure2() {
        let external: Vec<DataPattern> = DataPattern::ALL
            .into_iter()
            .filter(DataPattern::on_external_data)
            .collect();
        assert_eq!(
            external,
            vec![
                DataPattern::Query,
                DataPattern::SetIud,
                DataPattern::DataSetup,
                DataPattern::StoredProcedure
            ]
        );
        assert_eq!(DataPattern::ALL.len() - external.len(), 5);
    }

    #[test]
    fn descriptions_nonempty() {
        for p in DataPattern::ALL {
            assert!(!p.description().is_empty());
            assert!(!p.to_string().is_empty());
        }
    }
}
