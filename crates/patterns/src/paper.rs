//! The ground truth: Tables I and II exactly as published in the paper.
//!
//! Vendor crates *generate* their support matrices from running code; the
//! integration tests and the Table II benchmark binary compare those
//! generated matrices against the constants below. A reproduction claim
//! lives or dies on this comparison.

use crate::pattern::DataPattern::*;
use crate::support::{PatternRealization, SupportMatrix};

/// Product key for IBM Business Integration Suite.
pub const IBM: &str = "IBM Business Integration Suite";
/// Product key for Microsoft Workflow Foundation.
pub const MICROSOFT: &str = "Microsoft Workflow Foundation";
/// Product key for Oracle SOA Suite.
pub const ORACLE: &str = "Oracle SOA Suite";

/// Table II footnote ¹.
pub const FOOTNOTE_ONLY_UPDATE: &str = "only UPDATE";
/// Table II footnote ².
pub const FOOTNOTE_ONLY_DELETE_INSERT: &str = "only DELETE and INSERT";

/// Table II, block "IBM Business Integration Suite".
pub fn ibm_support() -> SupportMatrix {
    SupportMatrix::new(IBM)
        .with(PatternRealization::native(Query, "SQL"))
        .with(PatternRealization::native(SetIud, "SQL"))
        .with(PatternRealization::native(DataSetup, "SQL"))
        .with(PatternRealization::native(StoredProcedure, "SQL"))
        .with(PatternRealization::native(SetRetrieval, "Retrieve Set"))
        .with(PatternRealization::native(
            RandomSetAccess,
            "Assign (BPEL-specific XPath)",
        ))
        .with(PatternRealization::partial(
            TupleIud,
            "Assign (BPEL-specific XPath)",
            FOOTNOTE_ONLY_UPDATE,
        ))
        .with(PatternRealization::workaround(SequentialSetAccess))
        .with(PatternRealization {
            pattern: TupleIud,
            mechanism: "Only workarounds possible".into(),
            level: crate::support::SupportLevel::Partial(FOOTNOTE_ONLY_DELETE_INSERT.to_string()),
        })
        .with(PatternRealization::workaround(Synchronization))
}

/// Table II, block "Microsoft Workflow Foundation".
pub fn microsoft_support() -> SupportMatrix {
    SupportMatrix::new(MICROSOFT)
        .with(PatternRealization::native(Query, "SQL Database"))
        .with(PatternRealization::native(SetIud, "SQL Database"))
        .with(PatternRealization::native(DataSetup, "SQL Database"))
        .with(PatternRealization::native(StoredProcedure, "SQL Database"))
        .with(PatternRealization::native(SetRetrieval, "SQL Database"))
        .with(PatternRealization::workaround(SequentialSetAccess))
        .with(PatternRealization::workaround(RandomSetAccess))
        .with(PatternRealization::workaround(TupleIud))
        .with(PatternRealization::workaround(Synchronization))
}

/// Table II, block "Oracle SOA Suite".
pub fn oracle_support() -> SupportMatrix {
    SupportMatrix::new(ORACLE)
        .with(PatternRealization::native(
            Query,
            "Assign (XPath Ext. Functions)",
        ))
        .with(PatternRealization::native(
            SetIud,
            "Assign (XPath Ext. Functions)",
        ))
        .with(PatternRealization::native(
            DataSetup,
            "Assign (XPath Ext. Functions)",
        ))
        .with(PatternRealization::native(
            StoredProcedure,
            "Assign (XPath Ext. Functions)",
        ))
        .with(PatternRealization::native(
            SetRetrieval,
            "Assign (XPath Ext. Functions)",
        ))
        .with(PatternRealization::native(
            TupleIud,
            "Assign (XPath Ext. Functions)",
        ))
        .with(PatternRealization::native(
            RandomSetAccess,
            "Assign (BPEL-specific XPath)",
        ))
        .with(PatternRealization::partial(
            TupleIud,
            "Assign (BPEL-specific XPath)",
            FOOTNOTE_ONLY_UPDATE,
        ))
        .with(PatternRealization::workaround(SequentialSetAccess))
        .with(PatternRealization::workaround(Synchronization))
}

/// All three published matrices, in Table II order.
pub fn paper_table2() -> Vec<SupportMatrix> {
    vec![ibm_support(), microsoft_support(), oracle_support()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::DataPattern;

    #[test]
    fn all_products_cover_all_patterns() {
        // Sec. II-A: "we expect a complete coverage from all approaches".
        for m in paper_table2() {
            assert!(m.complete(), "{} does not cover all patterns", m.product);
        }
    }

    #[test]
    fn external_patterns_always_abstract() {
        // Sec. VI-C: all patterns concerning external data are realized at
        // an abstract level in every product.
        for m in paper_table2() {
            for p in DataPattern::ALL
                .into_iter()
                .filter(|p| p.on_external_data())
            {
                assert!(
                    m.abstractly_covered(p),
                    "{}: {} should be native",
                    m.product,
                    p
                );
            }
        }
    }

    #[test]
    fn ibm_workaround_set_matches_paper() {
        // Sec. III "Conclusion": workarounds for Sequential Access, parts
        // of Tuple IUD, and Synchronization.
        let m = ibm_support();
        assert_eq!(
            m.workaround_only(),
            vec![
                DataPattern::SequentialSetAccess,
                DataPattern::Synchronization
            ]
        );
        assert!(!m.abstractly_covered(DataPattern::TupleIud));
    }

    #[test]
    fn microsoft_internal_patterns_are_workarounds() {
        let m = microsoft_support();
        assert_eq!(
            m.workaround_only(),
            vec![
                DataPattern::SequentialSetAccess,
                DataPattern::RandomSetAccess,
                DataPattern::TupleIud,
                DataPattern::Synchronization
            ]
        );
    }

    #[test]
    fn oracle_covers_tuple_iud_abstractly() {
        // Sec. VI-C: "Oracle SOA Suite provides an additional proprietary
        // XPath function for covering the complete Tuple IUD Pattern at an
        // abstract level."
        let m = oracle_support();
        assert!(m.abstractly_covered(DataPattern::TupleIud));
        assert_eq!(
            m.workaround_only(),
            vec![
                DataPattern::SequentialSetAccess,
                DataPattern::Synchronization
            ]
        );
    }

    #[test]
    fn mechanism_row_order_matches_table2() {
        assert_eq!(
            ibm_support().mechanisms(),
            vec![
                "SQL",
                "Retrieve Set",
                "Assign (BPEL-specific XPath)",
                "Only workarounds possible"
            ]
        );
        assert_eq!(
            microsoft_support().mechanisms(),
            vec!["SQL Database", "Only workarounds possible"]
        );
        assert_eq!(
            oracle_support().mechanisms(),
            vec![
                "Assign (XPath Ext. Functions)",
                "Assign (BPEL-specific XPath)",
                "Only workarounds possible"
            ]
        );
    }
}
