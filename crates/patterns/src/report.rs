//! Text renderers that regenerate the paper's tables and figures from
//! live data structures.

use crate::pattern::DataPattern;
use crate::product::ProductInfo;
use crate::support::{SupportLevel, SupportMatrix};
use crate::taxonomy::TaxonomyEntry;

fn row(label: &str, cells: &[String], widths: &[usize], label_width: usize) -> String {
    let mut line = format!("{:label_width$} |", label);
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!(" {:w$} |", c, w = *w));
    }
    line.push('\n');
    line
}

/// Render Table I — general information and data management capabilities.
pub fn render_table1(products: &[ProductInfo]) -> String {
    let label_width = 36;
    let widths: Vec<usize> = products
        .iter()
        .map(|p| {
            p.product
                .len()
                .max(
                    p.sql_inline_support
                        .iter()
                        .map(String::len)
                        .max()
                        .unwrap_or(0),
                )
                .max(
                    p.additional_features
                        .iter()
                        .map(String::len)
                        .max()
                        .unwrap_or(1),
                )
                .max(p.materialized_set_representation.len())
                .max(p.design_tool.len())
                .max(p.workflow_language.len())
                .max(p.process_modeling.len())
                .max(p.external_dataset_reference.len())
                .max(p.external_datasource_reference.len())
                .max(p.vendor.len())
        })
        .collect();

    let mut out = String::new();
    out.push_str("TABLE I — GENERAL INFORMATION AND DATA MANAGEMENT CAPABILITIES\n\n");
    let vendors: Vec<String> = products.iter().map(|p| p.vendor.clone()).collect();
    let names: Vec<String> = products.iter().map(|p| p.product.clone()).collect();
    out.push_str(&row("", &vendors, &widths, label_width));
    out.push_str(&row("", &names, &widths, label_width));
    let sep = format!(
        "{}\n",
        "-".repeat(label_width + 2 + widths.iter().map(|w| w + 3).sum::<usize>())
    );
    out.push_str(&sep);
    out.push_str("General Information\n");
    let field = |f: fn(&ProductInfo) -> String| -> Vec<String> {
        products.iter().map(f).collect::<Vec<String>>()
    };
    out.push_str(&row(
        "  Workflow Language",
        &field(|p| p.workflow_language.clone()),
        &widths,
        label_width,
    ));
    out.push_str(&row(
        "  Level of Process Modeling",
        &field(|p| p.process_modeling.clone()),
        &widths,
        label_width,
    ));
    out.push_str(&row(
        "  Workflow Design Tool",
        &field(|p| p.design_tool.clone()),
        &widths,
        label_width,
    ));
    out.push_str(&sep);
    out.push_str("Data Management Capabilities\n");
    let max_inline = products
        .iter()
        .map(|p| p.sql_inline_support.len())
        .max()
        .unwrap_or(0);
    for i in 0..max_inline {
        let label = if i == 0 { "  SQL Inline Support" } else { "" };
        out.push_str(&row(
            label,
            &field_idx(products, i, |p| &p.sql_inline_support),
            &widths,
            label_width,
        ));
    }
    out.push_str(&row(
        "  Reference to External Data Set",
        &field(|p| p.external_dataset_reference.clone()),
        &widths,
        label_width,
    ));
    out.push_str(&row(
        "  Materialized Set Representation",
        &field(|p| p.materialized_set_representation.clone()),
        &widths,
        label_width,
    ));
    out.push_str(&row(
        "  Reference to External Data Source",
        &field(|p| p.external_datasource_reference.clone()),
        &widths,
        label_width,
    ));
    let max_feat = products
        .iter()
        .map(|p| p.additional_features.len().max(1))
        .max()
        .unwrap_or(1);
    for i in 0..max_feat {
        let label = if i == 0 { "  Additional Features" } else { "" };
        let cells: Vec<String> = products
            .iter()
            .map(|p| {
                p.additional_features.get(i).cloned().unwrap_or_else(|| {
                    if i == 0 {
                        "-".into()
                    } else {
                        String::new()
                    }
                })
            })
            .collect();
        out.push_str(&row(label, &cells, &widths, label_width));
    }
    out
}

fn field_idx<'a>(
    products: &'a [ProductInfo],
    i: usize,
    f: impl Fn(&'a ProductInfo) -> &'a Vec<String>,
) -> Vec<String> {
    products
        .iter()
        .map(|p| f(p).get(i).cloned().unwrap_or_default())
        .collect()
}

/// Render Table II — the pattern support matrix, with footnotes.
pub fn render_table2(matrices: &[SupportMatrix]) -> String {
    let mut out = String::new();
    out.push_str("TABLE II — DATA MANAGEMENT PATTERN SUPPORT\n\n");

    // Collect footnote qualifiers in order of appearance.
    let mut footnotes: Vec<String> = Vec::new();
    for m in matrices {
        for r in &m.realizations {
            if let SupportLevel::Partial(q) = &r.level {
                if !footnotes.contains(q) {
                    footnotes.push(q.clone());
                }
            }
        }
    }
    let footnote_index = |q: &str| footnotes.iter().position(|f| f == q).unwrap() + 1;

    let label_width = matrices
        .iter()
        .flat_map(|m| m.mechanisms().into_iter().map(str::len))
        .max()
        .unwrap_or(10)
        .max(30);
    let col_widths: Vec<usize> = DataPattern::ALL
        .iter()
        .map(|p| p.title().len().max(3))
        .collect();

    // Header.
    let headers: Vec<String> = DataPattern::ALL
        .iter()
        .map(|p| p.title().to_string())
        .collect();
    out.push_str(&row("", &headers, &col_widths, label_width));
    let sep = format!(
        "{}\n",
        "-".repeat(label_width + 2 + col_widths.iter().map(|w| w + 3).sum::<usize>())
    );
    out.push_str(&sep);

    for m in matrices {
        out.push_str(&format!("{}\n", m.product));
        for mech in m.mechanisms() {
            let cells: Vec<String> = DataPattern::ALL
                .iter()
                .map(|p| {
                    m.realizations
                        .iter()
                        .find(|r| r.mechanism == mech && r.pattern == *p)
                        .map(|r| match &r.level {
                            SupportLevel::Partial(q) => {
                                format!("x^{}", footnote_index(q))
                            }
                            _ => "x".to_string(),
                        })
                        .unwrap_or_default()
                })
                .collect();
            out.push_str(&row(&format!("  {mech}"), &cells, &col_widths, label_width));
        }
        out.push_str(&sep);
    }

    if !footnotes.is_empty() {
        let legend: Vec<String> = footnotes
            .iter()
            .enumerate()
            .map(|(i, q)| format!("^{} {}", i + 1, q))
            .collect();
        out.push_str(&legend.join(", "));
        out.push('\n');
    }
    out
}

/// Render Figure 1 — the SQL-support taxonomy.
pub fn render_figure1(entries: &[TaxonomyEntry]) -> String {
    let mut out = String::new();
    out.push_str("FIG. 1 — SQL SUPPORT IN SELECTED WORKFLOW PRODUCTS\n\n");
    out.push_str("SQL support in workflow products\n");
    out.push_str("├── adapter technology (service integration; data management\n");
    out.push_str("│   separated from the process logic)\n");
    out.push_str("└── SQL inline support (tight integration; data management\n");
    out.push_str("    uncovered at the process level)\n\n");
    for e in entries {
        out.push_str(&format!("  {:<36} {}\n", e.product, e.approach));
        out.push_str(&format!("  {:<36}   {}\n", "", e.note));
    }
    out
}

/// Render Figure 2 — the data management pattern catalog.
pub fn render_figure2() -> String {
    let mut out = String::new();
    out.push_str("FIG. 2 — DATA MANAGEMENT PATTERNS\n\n");
    out.push_str("External data (managed by a DBMS, outside the process space):\n");
    for p in DataPattern::ALL.iter().filter(|p| p.on_external_data()) {
        out.push_str(&format!(
            "  • {:<18} {}\n",
            format!("{p} Pattern"),
            p.description()
        ));
    }
    out.push_str("\nInternal data (the data cache in the process space):\n");
    for p in DataPattern::ALL.iter().filter(|p| !p.on_external_data()) {
        out.push_str(&format!(
            "  • {:<18} {}\n",
            format!("{p} Pattern"),
            p.description()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use crate::taxonomy::figure1_entries;

    fn sample_product() -> ProductInfo {
        ProductInfo {
            vendor: "IBM".into(),
            product: "Business Integration Suite (BIS)".into(),
            workflow_language: "BPEL".into(),
            process_modeling: "graphical, (markup)".into(),
            design_tool: "WebSphere Integration Developer".into(),
            sql_inline_support: vec![
                "SQL Activity".into(),
                "Retrieve Set Activity".into(),
                "Atomic SQL Sequence".into(),
            ],
            external_dataset_reference: "Set Reference, static text".into(),
            materialized_set_representation: "proprietary XML RowSet".into(),
            external_datasource_reference: "dynamic, static".into(),
            additional_features: vec!["Lifecycle Management for DB Entities".into()],
        }
    }

    #[test]
    fn table1_contains_all_fields() {
        let s = render_table1(&[sample_product()]);
        assert!(s.contains("Workflow Language"));
        assert!(s.contains("BPEL"));
        assert!(s.contains("Atomic SQL Sequence"));
        assert!(s.contains("Lifecycle Management"));
        assert!(s.contains("dynamic, static"));
    }

    #[test]
    fn table2_matches_paper_shape() {
        let s = render_table2(&paper::paper_table2());
        assert!(s.contains("IBM Business Integration Suite"));
        assert!(s.contains("Only workarounds possible"));
        // Footnotes present and numbered.
        assert!(s.contains("x^1"));
        assert!(s.contains("x^2"));
        assert!(s.contains("^1 only UPDATE"));
        assert!(s.contains("^2 only DELETE and INSERT"));
    }

    #[test]
    fn figures_render() {
        let f1 = render_figure1(&figure1_entries());
        assert!(f1.contains("adapter technology"));
        assert!(f1.contains("Oracle SOA Suite"));
        let f2 = render_figure2();
        assert!(f2.contains("External data"));
        assert!(f2.contains("Synchronization Pattern"));
        assert_eq!(f2.matches("Pattern").count(), 9);
    }
}
