//! The Figure 1 taxonomy: how SQL support is added to workflow products.

use std::fmt;

/// Styles of *SQL inline support* — tight integration of SQL into the
/// process logic (Sec. II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InlineStyle {
    /// A language extension adding SQL-specific activity types
    /// (IBM BIS information service activities).
    SqlActivities,
    /// An extensible activity library augmented with customized SQL
    /// activity types (Microsoft WF).
    CustomActivityTypes,
    /// Proprietary XPath extension functions inside assign activities
    /// (Oracle SOA Suite).
    XPathExtensionFunctions,
}

impl InlineStyle {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            InlineStyle::SqlActivities => "SQL-specific activity types",
            InlineStyle::CustomActivityTypes => "customized SQL activity types",
            InlineStyle::XPathExtensionFunctions => "XPath extension functions",
        }
    }
}

/// The two top-level approaches of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrationApproach {
    /// Service integration: adapters mask data management operations as
    /// Web services, separating them from the process logic.
    Adapter,
    /// SQL inline support: data management uncovered at the process
    /// level by augmenting the workflow language.
    SqlInline(InlineStyle),
}

impl fmt::Display for IntegrationApproach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrationApproach::Adapter => f.write_str("adapter technology"),
            IntegrationApproach::SqlInline(s) => {
                write!(f, "SQL inline support ({})", s.label())
            }
        }
    }
}

/// One product's position in the taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaxonomyEntry {
    pub product: String,
    pub approach: IntegrationApproach,
    pub note: String,
}

/// The Figure 1 entries for the surveyed products (all of them also
/// provide adapter technology; the inline style is what differentiates
/// them).
pub fn figure1_entries() -> Vec<TaxonomyEntry> {
    vec![
        TaxonomyEntry {
            product: "IBM Business Integration Suite".into(),
            approach: IntegrationApproach::SqlInline(InlineStyle::SqlActivities),
            note: "BPEL language extension: SQL / retrieve set / atomic SQL sequence activities"
                .into(),
        },
        TaxonomyEntry {
            product: "Microsoft Workflow Foundation".into(),
            approach: IntegrationApproach::SqlInline(InlineStyle::CustomActivityTypes),
            note: "extensible activity set augmented to customized SQL activities".into(),
        },
        TaxonomyEntry {
            product: "Oracle SOA Suite".into(),
            approach: IntegrationApproach::SqlInline(InlineStyle::XPathExtensionFunctions),
            note: "proprietary XPath extension functions executing SQL on a database system".into(),
        },
        TaxonomyEntry {
            product: "all vendors".into(),
            approach: IntegrationApproach::Adapter,
            note: "data management operations masked as Web services, outside the process logic"
                .into(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_inline_styles_one_adapter() {
        let entries = figure1_entries();
        let inline: Vec<_> = entries
            .iter()
            .filter(|e| matches!(e.approach, IntegrationApproach::SqlInline(_)))
            .collect();
        assert_eq!(inline.len(), 3);
        assert_eq!(entries.len() - inline.len(), 1);
    }

    #[test]
    fn styles_distinct() {
        let entries = figure1_entries();
        let mut styles: Vec<String> = entries.iter().map(|e| e.approach.to_string()).collect();
        styles.sort();
        styles.dedup();
        assert_eq!(styles.len(), 4);
    }

    #[test]
    fn display_text() {
        assert!(IntegrationApproach::Adapter.to_string().contains("adapter"));
        assert!(IntegrationApproach::SqlInline(InlineStyle::SqlActivities)
            .to_string()
            .contains("inline"));
    }
}
