//! Product descriptions (Table I) and architecture inventories
//! (Figures 3, 5, 7), plus the [`SqlIntegration`] trait every vendor
//! crate implements.

use crate::pattern::DataPattern;
use crate::probe::{Demonstration, ProbeEnv, ProbeError};
use crate::support::SupportMatrix;

/// The Table I row set for one product.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProductInfo {
    pub vendor: String,
    pub product: String,
    // --- General information ---
    pub workflow_language: String,
    pub process_modeling: String,
    pub design_tool: String,
    // --- Data management capabilities ---
    pub sql_inline_support: Vec<String>,
    pub external_dataset_reference: String,
    pub materialized_set_representation: String,
    pub external_datasource_reference: String,
    pub additional_features: Vec<String>,
}

/// One architecture layer with its components (a box row in
/// Figures 3/5/7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchLayer {
    pub name: String,
    pub components: Vec<String>,
}

/// A product architecture: ordered layers from design tool down to
/// runtime substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Architecture {
    pub product: String,
    pub layers: Vec<ArchLayer>,
}

impl Architecture {
    /// Build an architecture description.
    pub fn new(product: impl Into<String>) -> Architecture {
        Architecture {
            product: product.into(),
            layers: Vec::new(),
        }
    }

    /// Builder: append a layer.
    pub fn layer(mut self, name: impl Into<String>, components: &[&str]) -> Architecture {
        self.layers.push(ArchLayer {
            name: name.into(),
            components: components.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Render as a boxed text diagram.
    pub fn render(&self) -> String {
        let mut out = format!("Architecture: {}\n", self.product);
        let width = self
            .layers
            .iter()
            .flat_map(|l| {
                l.components
                    .iter()
                    .map(String::len)
                    .chain(std::iter::once(l.name.len() + 2))
            })
            .max()
            .unwrap_or(20)
            .max(28);
        out.push_str(&format!("┌{}┐\n", "─".repeat(width + 2)));
        for (i, layer) in self.layers.iter().enumerate() {
            if i > 0 {
                out.push_str(&format!("├{}┤\n", "─".repeat(width + 2)));
            }
            out.push_str(&format!("│ {:w$} │\n", layer.name, w = width));
            for c in &layer.components {
                out.push_str(&format!("│   {:w$} │\n", format!("· {c}"), w = width - 2));
            }
        }
        out.push_str(&format!("└{}┘\n", "─".repeat(width + 2)));
        out
    }
}

/// The contract every SQL-integration approach fulfills. Implemented by
/// the `bis`, `wf` and `soa` crates; consumed by the benchmark harness to
/// regenerate Tables I and II and Figures 3-8 from *running code*.
pub trait SqlIntegration {
    /// Table I rows.
    fn product_info(&self) -> ProductInfo;

    /// Figure 3/5/7 component inventory.
    fn architecture(&self) -> Architecture;

    /// The product's support claim (row layout of Table II).
    fn support_matrix(&self) -> SupportMatrix;

    /// Execute `pattern` against the probe environment using this
    /// product's integration style, returning evidence for *every*
    /// realization (Table II may mark one pattern in several mechanism
    /// rows). The benchmark harness cross-checks the demonstrations
    /// against [`SqlIntegration::support_matrix`]: a claim without a
    /// passing demonstration — or a demonstration without a claim —
    /// fails Table II generation.
    fn demonstrate(
        &self,
        pattern: DataPattern,
        env: &mut ProbeEnv,
    ) -> Result<Vec<Demonstration>, ProbeError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn architecture_renders_layers() {
        let a = Architecture::new("Demo")
            .layer("Design", &["Editor"])
            .layer("Runtime", &["Engine", "Services"]);
        let s = a.render();
        assert!(s.contains("Design"));
        assert!(s.contains("· Engine"));
        assert!(s.lines().count() >= 7);
    }

    #[test]
    fn product_info_fields() {
        let p = ProductInfo {
            vendor: "IBM".into(),
            product: "BIS".into(),
            workflow_language: "BPEL".into(),
            process_modeling: "graphical".into(),
            design_tool: "WID".into(),
            sql_inline_support: vec!["SQL Activity".into()],
            external_dataset_reference: "Set Reference".into(),
            materialized_set_representation: "XML RowSet".into(),
            external_datasource_reference: "dynamic, static".into(),
            additional_features: vec!["Lifecycle Management".into()],
        };
        assert_eq!(p.vendor, "IBM");
        assert_eq!(p.sql_inline_support.len(), 1);
    }
}
