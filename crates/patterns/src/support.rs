//! The support model behind Table II: which mechanism realizes which
//! pattern, at what abstraction level.

use crate::pattern::DataPattern;

/// How abstractly a pattern is realized (Sec. VI-C: the more
/// implementation details are hidden from the process designer, the
/// better).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupportLevel {
    /// A dedicated abstract mechanism covers the pattern.
    Native,
    /// A dedicated mechanism covers part of the pattern (Table II's
    /// footnotes, e.g. “only UPDATE”).
    Partial(String),
    /// Only realizable through user-specific code (Java-Snippets, code
    /// activities, manual SQL).
    Workaround,
}

impl SupportLevel {
    /// Table II cell mark.
    pub fn mark(&self) -> String {
        match self {
            SupportLevel::Native => "x".to_string(),
            SupportLevel::Partial(q) => format!("x ({q})"),
            SupportLevel::Workaround => "x".to_string(),
        }
    }

    /// Is this a workaround-level realization?
    pub fn is_workaround(&self) -> bool {
        matches!(self, SupportLevel::Workaround)
    }
}

/// One realization of one pattern by one mechanism — one `x` in Table II.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternRealization {
    pub pattern: DataPattern,
    /// Row label in Table II (e.g. "SQL", "Retrieve Set",
    /// "Assign (BPEL-specific XPath)", "Only workarounds possible").
    pub mechanism: String,
    pub level: SupportLevel,
}

impl PatternRealization {
    /// Native realization.
    pub fn native(pattern: DataPattern, mechanism: impl Into<String>) -> PatternRealization {
        PatternRealization {
            pattern,
            mechanism: mechanism.into(),
            level: SupportLevel::Native,
        }
    }

    /// Partial realization with a footnote qualifier.
    pub fn partial(
        pattern: DataPattern,
        mechanism: impl Into<String>,
        qualifier: impl Into<String>,
    ) -> PatternRealization {
        PatternRealization {
            pattern,
            mechanism: mechanism.into(),
            level: SupportLevel::Partial(qualifier.into()),
        }
    }

    /// Workaround realization.
    pub fn workaround(pattern: DataPattern) -> PatternRealization {
        PatternRealization {
            pattern,
            mechanism: "Only workarounds possible".into(),
            level: SupportLevel::Workaround,
        }
    }
}

/// The full pattern-support claim of one product: an ordered list of
/// mechanism rows, each marking the patterns it realizes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SupportMatrix {
    pub product: String,
    pub realizations: Vec<PatternRealization>,
}

impl SupportMatrix {
    /// Empty matrix for a product.
    pub fn new(product: impl Into<String>) -> SupportMatrix {
        SupportMatrix {
            product: product.into(),
            realizations: Vec::new(),
        }
    }

    /// Builder: add a realization.
    pub fn with(mut self, r: PatternRealization) -> SupportMatrix {
        self.realizations.push(r);
        self
    }

    /// Mechanism row labels, in first-appearance order.
    pub fn mechanisms(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for r in &self.realizations {
            if !out.contains(&r.mechanism.as_str()) {
                out.push(&r.mechanism);
            }
        }
        out
    }

    /// The realization(s) of a pattern.
    pub fn for_pattern(&self, pattern: DataPattern) -> Vec<&PatternRealization> {
        self.realizations
            .iter()
            .filter(|r| r.pattern == pattern)
            .collect()
    }

    /// Is the pattern realized at all?
    pub fn covers(&self, pattern: DataPattern) -> bool {
        !self.for_pattern(pattern).is_empty()
    }

    /// Is the pattern *fully* covered without workarounds?
    /// (Partial + workaround combinations count as needing workarounds.)
    pub fn abstractly_covered(&self, pattern: DataPattern) -> bool {
        let rs = self.for_pattern(pattern);
        !rs.is_empty() && rs.iter().any(|r| r.level == SupportLevel::Native)
    }

    /// Patterns realizable only through workarounds.
    pub fn workaround_only(&self) -> Vec<DataPattern> {
        DataPattern::ALL
            .into_iter()
            .filter(|p| {
                let rs = self.for_pattern(*p);
                !rs.is_empty() && rs.iter().all(|r| r.level.is_workaround())
            })
            .collect()
    }

    /// All nine patterns covered (the completeness expectation of
    /// Sec. II-A)?
    pub fn complete(&self) -> bool {
        DataPattern::ALL.into_iter().all(|p| self.covers(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SupportMatrix {
        SupportMatrix::new("Test Suite")
            .with(PatternRealization::native(DataPattern::Query, "SQL"))
            .with(PatternRealization::native(
                DataPattern::SetRetrieval,
                "Retrieve Set",
            ))
            .with(PatternRealization::partial(
                DataPattern::TupleIud,
                "Assign",
                "only UPDATE",
            ))
            .with(PatternRealization::workaround(DataPattern::TupleIud))
            .with(PatternRealization::workaround(DataPattern::Synchronization))
    }

    #[test]
    fn mechanisms_in_order() {
        let m = sample();
        assert_eq!(
            m.mechanisms(),
            vec!["SQL", "Retrieve Set", "Assign", "Only workarounds possible"]
        );
    }

    #[test]
    fn coverage_queries() {
        let m = sample();
        assert!(m.covers(DataPattern::Query));
        assert!(m.abstractly_covered(DataPattern::Query));
        assert!(!m.covers(DataPattern::DataSetup));
        assert!(!m.complete());
        // Tuple IUD has a partial + a workaround → not abstractly covered,
        // but also not workaround-only.
        assert!(!m.abstractly_covered(DataPattern::TupleIud));
        assert_eq!(m.workaround_only(), vec![DataPattern::Synchronization]);
    }

    #[test]
    fn marks() {
        assert_eq!(SupportLevel::Native.mark(), "x");
        assert_eq!(
            SupportLevel::Partial("only UPDATE".into()).mark(),
            "x (only UPDATE)"
        );
        assert!(SupportLevel::Workaround.is_workaround());
    }
}
