//! `patterns` — the paper's analytical core, made executable.
//!
//! *“An Overview of SQL Support in Workflow Products”* compares three
//! commercial stacks along (a) general product information, (b) data
//! management capabilities, and (c) a catalog of nine **data management
//! patterns**. This crate turns that comparison framework into code:
//!
//! * [`pattern::DataPattern`] — the nine patterns of Figure 2,
//! * [`support`] — the Table II support model (native / partial /
//!   workaround realizations per mechanism row),
//! * [`product`] — Table I product descriptions, Figure 3/5/7
//!   architecture inventories, and the [`product::SqlIntegration`] trait
//!   that the `bis`, `wf` and `soa` crates implement,
//! * [`probe`] — the running-example environment (order database +
//!   `OrderFromSupplier` service) that every pattern is *demonstrated*
//!   against: the support matrices this workspace reports are backed by
//!   executed code, not by hand-written claims,
//! * [`taxonomy`] — the Figure 1 adapter-vs-inline taxonomy,
//! * [`paper`] — the published Tables as ground-truth constants,
//! * [`report`] — text renderers that regenerate every table and figure.

pub mod chaos;
pub mod paper;
pub mod pattern;
pub mod probe;
pub mod product;
pub mod report;
pub mod support;
pub mod taxonomy;

pub use chaos::{
    combined_storm, crash_storm, db_fingerprint, db_fingerprint_excluding, rows_fingerprint,
    scripted_storm, storm_longest_run, CrashSchedule,
};
pub use pattern::DataPattern;
pub use probe::{Demonstration, ProbeEnv, ProbeError, ORDER_FROM_SUPPLIER};
pub use product::{ArchLayer, Architecture, ProductInfo, SqlIntegration};
pub use support::{PatternRealization, SupportLevel, SupportMatrix};
pub use taxonomy::{figure1_entries, InlineStyle, IntegrationApproach, TaxonomyEntry};

/// Verify a product's support claim against executed demonstrations.
///
/// For every pattern, the set of `(mechanism, level)` pairs returned by
/// [`SqlIntegration::demonstrate`] must equal the set claimed by
/// [`SqlIntegration::support_matrix`] — a claim without a witnessing run,
/// or a run the matrix does not claim, is a reproduction failure.
///
/// Returns the demonstrations (for evidence rendering) or the first
/// discrepancy.
pub fn verify_support_matrix(
    product: &dyn SqlIntegration,
) -> Result<Vec<Demonstration>, ProbeError> {
    let matrix = product.support_matrix();
    let mut all_demos = Vec::new();
    for pattern in DataPattern::ALL {
        let mut env = ProbeEnv::fresh();
        let demos = product.demonstrate(pattern, &mut env)?;
        let mut claimed: Vec<(String, SupportLevel)> = matrix
            .for_pattern(pattern)
            .into_iter()
            .map(|r| (r.mechanism.clone(), r.level.clone()))
            .collect();
        let mut witnessed: Vec<(String, SupportLevel)> = demos
            .iter()
            .map(|d| (d.mechanism.clone(), d.level.clone()))
            .collect();
        claimed.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| format!("{:?}", a.1).cmp(&format!("{:?}", b.1)))
        });
        witnessed.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| format!("{:?}", a.1).cmp(&format!("{:?}", b.1)))
        });
        if claimed != witnessed {
            return Err(ProbeError(format!(
                "{}: {pattern} — claimed {claimed:?} but demonstrated {witnessed:?}",
                matrix.product,
            )));
        }
        all_demos.extend(demos);
    }
    Ok(all_demos)
}
