//! Chaos harness: deterministic fault storms and logical-state
//! fingerprints for differential (exactly-once) testing.
//!
//! The robustness claim the workspace makes is differential: for any
//! fault schedule that eventually permits success, a workflow run under
//! injected faults must leave the database — and emit rowsets —
//! **byte-identical** to the fault-free run. [`db_fingerprint`] and
//! [`rows_fingerprint`] produce the canonical byte strings compared;
//! [`scripted_storm`] produces the seeded schedules.

use sqlkernel::fault::{Fault, FaultPlan, SplitMix64, TransientKind};
use sqlkernel::{Database, QueryResult};

/// Canonical fingerprint of a database's full logical state: every table
/// (sorted by name) with its column list and its rows rendered and
/// sorted. Two databases with the same fingerprint hold the same data,
/// whatever order statements arrived in.
///
/// The fingerprint runs plain SELECTs, so clear any active fault plan
/// (`db.set_fault_plan(None)`) before calling.
pub fn db_fingerprint(db: &Database) -> String {
    let conn = db.connect();
    let mut tables = db.table_names();
    tables.sort_unstable();
    let mut out = String::new();
    for t in &tables {
        let rs = conn
            .query(&format!("SELECT * FROM {t}"), &[])
            .expect("fingerprint SELECT on an existing table");
        out.push_str("== ");
        out.push_str(t);
        out.push_str(" (");
        out.push_str(&rs.columns.join(", "));
        out.push_str(")\n");
        let mut rows: Vec<String> = rs
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .map(sqlkernel::Value::render)
                    .collect::<Vec<_>>()
                    .join("|")
            })
            .collect();
        rows.sort_unstable();
        for row in rows {
            out.push_str(&row);
            out.push('\n');
        }
    }
    out
}

/// Canonical fingerprint of an emitted rowset, order preserved — emitted
/// results must match the fault-free run row-for-row, not merely as a
/// set.
pub fn rows_fingerprint(rs: &QueryResult) -> String {
    let mut out = rs.columns.join(", ");
    out.push('\n');
    for r in &rs.rows {
        out.push_str(
            &r.iter()
                .map(sqlkernel::Value::render)
                .collect::<Vec<_>>()
                .join("|"),
        );
        out.push('\n');
    }
    out
}

/// Build a scripted fault storm: over the next `horizon` gated
/// statement executions, each index independently faults with
/// `percent`% probability, drawn from a PRNG seeded by `seed` — fully
/// deterministic and replayable.
///
/// Because the injector assigns indices per *execution* (a retry gets a
/// fresh index), runs of consecutive faulted indices behave as
/// fail-k-times schedules. A retry budget larger than the longest run
/// makes the schedule "eventually permitting success".
pub fn scripted_storm(seed: u64, horizon: u64, percent: u64) -> FaultPlan {
    let mut rng = SplitMix64::new(seed);
    let mut plan = FaultPlan::new(seed);
    for i in 0..horizon {
        if rng.next_below(100) < percent {
            plan = plan.fault_at(
                i,
                Fault::Transient(TransientKind::from_index(rng.next_u64())),
            );
        }
    }
    plan
}

/// Longest run of consecutive faulted indices a [`scripted_storm`] with
/// these arguments contains — callers size their retry budget above it.
pub fn storm_longest_run(seed: u64, horizon: u64, percent: u64) -> u32 {
    let mut rng = SplitMix64::new(seed);
    let (mut longest, mut current) = (0u32, 0u32);
    for _ in 0..horizon {
        if rng.next_below(100) < percent {
            rng.next_u64(); // the kind draw consumed by scripted_storm
            current += 1;
            longest = longest.max(current);
        } else {
            current = 0;
        }
    }
    longest
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlkernel::Value;

    fn small_db(name: &str) -> Database {
        let db = Database::new(name);
        db.connect()
            .execute_script(
                "CREATE TABLE a (x INT PRIMARY KEY, y TEXT);
                 INSERT INTO a VALUES (2, 'two'), (1, 'one');
                 CREATE TABLE b (z INT PRIMARY KEY);",
            )
            .unwrap();
        db
    }

    #[test]
    fn fingerprint_is_insertion_order_independent() {
        let d1 = small_db("d1");
        let d2 = Database::new("d2");
        d2.connect()
            .execute_script(
                "CREATE TABLE b (z INT PRIMARY KEY);
                 CREATE TABLE a (x INT PRIMARY KEY, y TEXT);
                 INSERT INTO a VALUES (1, 'one');
                 INSERT INTO a VALUES (2, 'two');",
            )
            .unwrap();
        assert_eq!(db_fingerprint(&d1), db_fingerprint(&d2));
    }

    #[test]
    fn fingerprint_detects_differences() {
        let d1 = small_db("d1");
        let d2 = small_db("d2");
        d2.connect()
            .execute("UPDATE a SET y = 'TWO' WHERE x = 2", &[])
            .unwrap();
        assert_ne!(db_fingerprint(&d1), db_fingerprint(&d2));
    }

    #[test]
    fn rows_fingerprint_is_order_sensitive() {
        let a = QueryResult {
            columns: vec!["c".into()],
            rows: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        };
        let b = QueryResult {
            columns: vec!["c".into()],
            rows: vec![vec![Value::Int(2)], vec![Value::Int(1)]],
        };
        assert_ne!(rows_fingerprint(&a), rows_fingerprint(&b));
    }

    #[test]
    fn storms_are_deterministic_and_seed_sensitive() {
        let runs = |seed| {
            let db = small_db("s");
            db.set_fault_plan(Some(scripted_storm(seed, 50, 30)));
            let conn = db.connect();
            let hits: Vec<bool> = (0..50)
                .map(|_| conn.query("SELECT COUNT(*) FROM a", &[]).is_err())
                .collect();
            hits
        };
        assert_eq!(runs(42), runs(42));
        assert_ne!(runs(42), runs(43));
    }

    #[test]
    fn longest_run_matches_the_storm() {
        // Re-derive the storm's faulted indices and verify the run
        // length helper agrees.
        for seed in [1u64, 7, 99] {
            let mut rng = SplitMix64::new(seed);
            let mut faulted = Vec::new();
            for i in 0..200u64 {
                if rng.next_below(100) < 25 {
                    rng.next_u64();
                    faulted.push(i);
                }
            }
            let (mut longest, mut current, mut prev) = (0u32, 0u32, None::<u64>);
            for &i in &faulted {
                current = match prev {
                    Some(p) if p + 1 == i => current + 1,
                    _ => 1,
                };
                longest = longest.max(current);
                prev = Some(i);
            }
            assert_eq!(storm_longest_run(seed, 200, 25), longest);
        }
    }
}
