//! Chaos harness: deterministic fault storms and logical-state
//! fingerprints for differential (exactly-once) testing.
//!
//! The robustness claim the workspace makes is differential: for any
//! fault schedule that eventually permits success, a workflow run under
//! injected faults must leave the database — and emit rowsets —
//! **byte-identical** to the fault-free run. [`db_fingerprint`] and
//! [`rows_fingerprint`] produce the canonical byte strings compared;
//! [`scripted_storm`] produces the seeded schedules.

use sqlkernel::fault::{CrashPoint, Fault, FaultPlan, PrepareCrash, SplitMix64, TransientKind};
use sqlkernel::shard::ShardedDatabase;
use sqlkernel::{Database, QueryResult};

/// Canonical fingerprint of a database's full logical state: every table
/// (sorted by name) with its column list and its rows rendered and
/// sorted. Two databases with the same fingerprint hold the same data,
/// whatever order statements arrived in.
///
/// The fingerprint runs plain SELECTs, so clear any active fault plan
/// (`db.set_fault_plan(None)`) before calling.
pub fn db_fingerprint(db: &Database) -> String {
    db_fingerprint_excluding(db, &[])
}

/// [`db_fingerprint`] over every table EXCEPT the named ones. The crash
/// tests use this to compare user data while skipping bookkeeping whose
/// bytes legitimately differ between a crashed and a clean run (the
/// `FLOW_INSTANCES` breaker column records retry clocks).
pub fn db_fingerprint_excluding(db: &Database, exclude: &[&str]) -> String {
    let conn = db.connect();
    let mut tables = db.table_names();
    tables.retain(|t| !exclude.iter().any(|e| e.eq_ignore_ascii_case(t)));
    tables.sort_unstable();
    let mut out = String::new();
    for t in &tables {
        let rs = conn
            .query(&format!("SELECT * FROM {t}"), &[])
            .expect("fingerprint SELECT on an existing table");
        out.push_str("== ");
        out.push_str(t);
        out.push_str(" (");
        out.push_str(&rs.columns.join(", "));
        out.push_str(")\n");
        let mut rows: Vec<String> = rs
            .rows
            .iter()
            .map(|r| {
                r.iter()
                    .map(sqlkernel::Value::render)
                    .collect::<Vec<_>>()
                    .join("|")
            })
            .collect();
        rows.sort_unstable();
        for row in rows {
            out.push_str(&row);
            out.push('\n');
        }
    }
    out
}

/// Canonical fingerprint of an emitted rowset, order preserved — emitted
/// results must match the fault-free run row-for-row, not merely as a
/// set.
pub fn rows_fingerprint(rs: &QueryResult) -> String {
    let mut out = rs.columns.join(", ");
    out.push('\n');
    for r in &rs.rows {
        out.push_str(
            &r.iter()
                .map(sqlkernel::Value::render)
                .collect::<Vec<_>>()
                .join("|"),
        );
        out.push('\n');
    }
    out
}

/// Build a scripted fault storm: over the next `horizon` gated
/// statement executions, each index independently faults with
/// `percent`% probability, drawn from a PRNG seeded by `seed` — fully
/// deterministic and replayable.
///
/// Because the injector assigns indices per *execution* (a retry gets a
/// fresh index), runs of consecutive faulted indices behave as
/// fail-k-times schedules. A retry budget larger than the longest run
/// makes the schedule "eventually permitting success".
pub fn scripted_storm(seed: u64, horizon: u64, percent: u64) -> FaultPlan {
    let mut rng = SplitMix64::new(seed);
    let mut plan = FaultPlan::new(seed);
    for i in 0..horizon {
        if rng.next_below(100) < percent {
            plan = plan.fault_at(
                i,
                Fault::Transient(TransientKind::from_index(rng.next_u64())),
            );
        }
    }
    plan
}

/// A crash schedule: `statement_crashes` pins [`Fault::Crash`] points to
/// statement indices, `checkpoint_crashes` kills the process during the
/// given checkpoint attempts. Built by [`crash_storm`] /
/// [`combined_storm`]; applied with [`CrashSchedule::plan`].
///
/// Unlike transient storms, a crash storm describes a *sequence of
/// process lifetimes*: each crash freezes the injector, the test
/// "reboots" with `Database::recover`, installs the schedule's next
/// crash, and continues. [`CrashSchedule::crashes`] is the number of
/// lifetimes minus one.
#[derive(Debug, Clone, Default)]
pub struct CrashSchedule {
    /// `(statement_index, crash_point)` pairs, one per process lifetime.
    pub statement_crashes: Vec<(u64, CrashPoint)>,
    /// Checkpoint indices at which `DuringCheckpoint` crashes fire.
    pub checkpoint_crashes: Vec<u64>,
    /// Transient-fault plan mixed into every lifetime (empty horizon =
    /// pure crash storm).
    pub transient: Option<(u64, u64, u64)>,
}

impl CrashSchedule {
    /// Number of scheduled crashes across all lifetimes.
    pub fn crashes(&self) -> usize {
        self.statement_crashes.len() + self.checkpoint_crashes.len()
    }

    /// The fault plan for process lifetime `life` (0-based): the
    /// lifetime's scheduled crash (if any) plus the shared transient
    /// storm. Lifetimes past the schedule run crash-free — the final,
    /// completing lifetime.
    pub fn plan(&self, life: usize) -> FaultPlan {
        let seed = match self.transient {
            Some((seed, _, _)) => seed,
            None => 0,
        };
        let mut plan = match self.transient {
            Some((seed, horizon, percent)) => scripted_storm(seed, horizon, percent),
            None => FaultPlan::new(seed),
        };
        if let Some((idx, point)) = self.statement_crashes.get(life) {
            plan = plan.fault_at(*idx, Fault::Crash(*point));
        }
        let ckpt_life = life.saturating_sub(self.statement_crashes.len());
        if self.statement_crashes.get(life).is_none() {
            if let Some(ckpt) = self.checkpoint_crashes.get(ckpt_life) {
                plan = plan.crash_at_checkpoint(*ckpt);
            }
        }
        plan
    }
}

/// Build a pure crash storm: `crashes` process deaths at seeded
/// statement indices below `horizon`, cycling through the crash points
/// (`BeforeLog`, `AfterLog`, `MidApply`) so every protocol window is
/// exercised. Deterministic in `seed`.
pub fn crash_storm(seed: u64, horizon: u64, crashes: usize) -> CrashSchedule {
    let mut rng = SplitMix64::new(seed);
    let points = [
        CrashPoint::BeforeLog,
        CrashPoint::AfterLog,
        CrashPoint::MidApply,
    ];
    let mut schedule = CrashSchedule::default();
    for i in 0..crashes {
        let idx = rng.next_below(horizon.max(1));
        schedule
            .statement_crashes
            .push((idx, points[i % points.len()]));
    }
    schedule
}

/// Build a combined storm: the crash schedule of [`crash_storm`] with a
/// [`scripted_storm`] of transient faults layered onto every lifetime.
/// This is the harshest schedule the differential tests run: statements
/// are failing transiently *and* the process keeps dying, yet the final
/// database fingerprint must equal the clean run's.
pub fn combined_storm(
    seed: u64,
    horizon: u64,
    crashes: usize,
    transient_percent: u64,
) -> CrashSchedule {
    let mut schedule = crash_storm(seed, horizon, crashes);
    schedule.transient = Some((seed.wrapping_add(1), horizon, transient_percent));
    schedule
}

/// Merged fingerprint of a *sharded* database: same-named tables across
/// the given engines are unioned row-wise before sorting, producing
/// exactly the [`db_fingerprint_excluding`] byte format — so a sharded
/// run compares directly against its unsharded baseline. Hash routing
/// partitions rows disjointly, so the union is a true merge.
pub fn merged_fingerprint(dbs: &[Database], exclude: &[&str]) -> String {
    use std::collections::BTreeMap;
    // table name → (columns header, merged rendered rows)
    let mut tables: BTreeMap<String, (String, Vec<String>)> = BTreeMap::new();
    for db in dbs {
        let conn = db.connect();
        let mut names = db.table_names();
        names.retain(|t| !exclude.iter().any(|e| e.eq_ignore_ascii_case(t)));
        for t in names {
            let rs = conn
                .query(&format!("SELECT * FROM {t}"), &[])
                .expect("fingerprint SELECT on an existing table");
            let entry = tables
                .entry(t)
                .or_insert_with(|| (rs.columns.join(", "), Vec::new()));
            entry.1.extend(rs.rows.iter().map(|r| {
                r.iter()
                    .map(sqlkernel::Value::render)
                    .collect::<Vec<_>>()
                    .join("|")
            }));
        }
    }
    let mut out = String::new();
    for (name, (columns, mut rows)) in tables {
        out.push_str("== ");
        out.push_str(&name);
        out.push_str(" (");
        out.push_str(&columns);
        out.push_str(")\n");
        rows.sort_unstable();
        for row in rows {
            out.push_str(&row);
            out.push('\n');
        }
    }
    out
}

/// One scheduled process death inside a sharded 2PC deployment — each
/// variant targets a different protocol window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardCrash {
    /// Kill shard `shard` right after its `prepare_index`-th prepare is
    /// acknowledged: the classic in-doubt window, where only the
    /// coordinator's decision log knows the transaction's fate.
    ParticipantPrepared { shard: usize, prepare_index: u64 },
    /// Kill the coordinator after its `statement_index`-th gated
    /// statement (a decision `INSERT`) is durably logged but before any
    /// participant is notified: the decision exists, nobody heard it.
    CoordinatorPreNotify { statement_index: u64 },
    /// Kill shard `shard` mid-append of its `prepare_index`-th prepare,
    /// leaving a torn `Prepare` frame: a torn vote is no vote, so
    /// recovery treats the transaction as a loser.
    TornPrepare { shard: usize, prepare_index: u64 },
    /// Plain statement crash on shard `shard` (the PR 4 crash points,
    /// aimed at one shard of the fleet).
    Statement {
        shard: usize,
        index: u64,
        point: CrashPoint,
    },
}

/// A shard-targeted crash schedule: one process death per lifetime,
/// cycling through every 2PC protocol window. Applied per lifetime with
/// [`ShardCrashSchedule::install`]; lifetimes past the schedule run
/// crash-free (the final, completing lifetime).
#[derive(Debug, Clone, Default)]
pub struct ShardCrashSchedule {
    /// The crash for each lifetime, in order.
    pub crashes: Vec<ShardCrash>,
    seed: u64,
}

impl ShardCrashSchedule {
    /// Number of scheduled crashes (= lifetimes minus the clean last one).
    pub fn crashes(&self) -> usize {
        self.crashes.len()
    }

    /// Install lifetime `life`'s fault plans across the fleet: the
    /// targeted engine gets the scheduled crash, everyone else an empty
    /// plan (cleared), so exactly one process dies per lifetime.
    pub fn install(&self, life: usize, sdb: &ShardedDatabase) {
        for shard in sdb.shards() {
            shard.set_fault_plan(None);
        }
        sdb.coordinator().set_fault_plan(None);
        let Some(crash) = self.crashes.get(life) else {
            return;
        };
        let seed = self.seed ^ (life as u64);
        match *crash {
            ShardCrash::ParticipantPrepared {
                shard,
                prepare_index,
            } => sdb.shard(shard % sdb.num_shards()).set_fault_plan(Some(
                FaultPlan::new(seed).crash_at_prepare(prepare_index, PrepareCrash::AfterAck),
            )),
            ShardCrash::TornPrepare {
                shard,
                prepare_index,
            } => sdb.shard(shard % sdb.num_shards()).set_fault_plan(Some(
                FaultPlan::new(seed).crash_at_prepare(prepare_index, PrepareCrash::Torn),
            )),
            ShardCrash::CoordinatorPreNotify { statement_index } => {
                // The coordinator's gated statements are the decision
                // INSERTs; AfterLog lands the decision durably and then
                // kills the process before anyone hears it.
                sdb.coordinator().set_fault_plan(Some(
                    FaultPlan::new(seed)
                        .fault_at(statement_index, Fault::Crash(CrashPoint::AfterLog)),
                ));
            }
            ShardCrash::Statement {
                shard,
                index,
                point,
            } => sdb.shard(shard % sdb.num_shards()).set_fault_plan(Some(
                FaultPlan::new(seed).fault_at(index, Fault::Crash(point)),
            )),
        }
    }
}

/// Build a shard-targeted crash storm: `crashes` process deaths cycling
/// through the four [`ShardCrash`] variants, aimed at seeded shards and
/// protocol indices. `xshard_txns` bounds the prepare/decision indices
/// (how many cross-shard commits a lifetime attempts); `horizon` bounds
/// plain statement indices. Deterministic in `seed`.
pub fn sharded_crash_storm(
    seed: u64,
    num_shards: usize,
    horizon: u64,
    xshard_txns: u64,
    crashes: usize,
) -> ShardCrashSchedule {
    let mut rng = SplitMix64::new(seed);
    let points = [
        CrashPoint::BeforeLog,
        CrashPoint::AfterLog,
        CrashPoint::MidApply,
    ];
    let mut schedule = ShardCrashSchedule {
        crashes: Vec::with_capacity(crashes),
        seed,
    };
    for i in 0..crashes {
        let shard = rng.next_below(num_shards.max(1) as u64) as usize;
        let prepare_index = rng.next_below(xshard_txns.max(1));
        let crash = match i % 4 {
            0 => ShardCrash::ParticipantPrepared {
                shard,
                prepare_index,
            },
            1 => ShardCrash::CoordinatorPreNotify {
                statement_index: prepare_index,
            },
            2 => ShardCrash::TornPrepare {
                shard,
                prepare_index,
            },
            _ => ShardCrash::Statement {
                shard,
                index: rng.next_below(horizon.max(1)),
                point: points[(i / 4) % points.len()],
            },
        };
        schedule.crashes.push(crash);
    }
    schedule
}

/// Longest run of consecutive faulted indices a [`scripted_storm`] with
/// these arguments contains — callers size their retry budget above it.
pub fn storm_longest_run(seed: u64, horizon: u64, percent: u64) -> u32 {
    let mut rng = SplitMix64::new(seed);
    let (mut longest, mut current) = (0u32, 0u32);
    for _ in 0..horizon {
        if rng.next_below(100) < percent {
            rng.next_u64(); // the kind draw consumed by scripted_storm
            current += 1;
            longest = longest.max(current);
        } else {
            current = 0;
        }
    }
    longest
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlkernel::Value;

    fn small_db(name: &str) -> Database {
        let db = Database::new(name);
        db.connect()
            .execute_script(
                "CREATE TABLE a (x INT PRIMARY KEY, y TEXT);
                 INSERT INTO a VALUES (2, 'two'), (1, 'one');
                 CREATE TABLE b (z INT PRIMARY KEY);",
            )
            .unwrap();
        db
    }

    #[test]
    fn fingerprint_is_insertion_order_independent() {
        let d1 = small_db("d1");
        let d2 = Database::new("d2");
        d2.connect()
            .execute_script(
                "CREATE TABLE b (z INT PRIMARY KEY);
                 CREATE TABLE a (x INT PRIMARY KEY, y TEXT);
                 INSERT INTO a VALUES (1, 'one');
                 INSERT INTO a VALUES (2, 'two');",
            )
            .unwrap();
        assert_eq!(db_fingerprint(&d1), db_fingerprint(&d2));
    }

    #[test]
    fn fingerprint_detects_differences() {
        let d1 = small_db("d1");
        let d2 = small_db("d2");
        d2.connect()
            .execute("UPDATE a SET y = 'TWO' WHERE x = 2", &[])
            .unwrap();
        assert_ne!(db_fingerprint(&d1), db_fingerprint(&d2));
    }

    #[test]
    fn rows_fingerprint_is_order_sensitive() {
        let a = QueryResult {
            columns: vec!["c".into()],
            rows: vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        };
        let b = QueryResult {
            columns: vec!["c".into()],
            rows: vec![vec![Value::Int(2)], vec![Value::Int(1)]],
        };
        assert_ne!(rows_fingerprint(&a), rows_fingerprint(&b));
    }

    #[test]
    fn storms_are_deterministic_and_seed_sensitive() {
        let runs = |seed| {
            let db = small_db("s");
            db.set_fault_plan(Some(scripted_storm(seed, 50, 30)));
            let conn = db.connect();
            let hits: Vec<bool> = (0..50)
                .map(|_| conn.query("SELECT COUNT(*) FROM a", &[]).is_err())
                .collect();
            hits
        };
        assert_eq!(runs(42), runs(42));
        assert_ne!(runs(42), runs(43));
    }

    #[test]
    fn crash_storms_are_deterministic_and_cycle_crash_points() {
        let a = crash_storm(9, 40, 4);
        let b = crash_storm(9, 40, 4);
        assert_eq!(a.statement_crashes, b.statement_crashes);
        assert_eq!(a.crashes(), 4);
        let points: Vec<CrashPoint> = a.statement_crashes.iter().map(|(_, p)| *p).collect();
        assert_eq!(points[0], CrashPoint::BeforeLog);
        assert_eq!(points[1], CrashPoint::AfterLog);
        assert_eq!(points[2], CrashPoint::MidApply);
        assert_eq!(points[3], CrashPoint::BeforeLog);
        assert_ne!(
            crash_storm(9, 40, 4).statement_crashes,
            crash_storm(10, 40, 4).statement_crashes,
        );
    }

    #[test]
    fn crash_schedule_plans_one_crash_per_lifetime() {
        let mut schedule = crash_storm(3, 30, 2);
        schedule.checkpoint_crashes.push(0);
        assert_eq!(schedule.crashes(), 3);
        // Lifetimes 0..=1 carry statement crashes, lifetime 2 the
        // checkpoint crash, lifetime 3 is clean. Verify by driving a
        // database with each plan and watching which ones freeze.
        for life in 0..4 {
            let db = Database::new("c");
            let store = std::sync::Arc::new(sqlkernel::MemLogStore::new());
            let db = {
                drop(db);
                Database::with_wal("c", store)
            };
            db.connect()
                .execute("CREATE TABLE t (v INT PRIMARY KEY)", &[])
                .unwrap();
            db.set_fault_plan(Some(schedule.plan(life)));
            let conn = db.connect();
            for i in 0..40 {
                let _ = conn.execute(&format!("INSERT INTO t VALUES ({i})"), &[]);
            }
            let _ = db.checkpoint();
            let frozen = db.fault_injector().map(|i| i.frozen()).unwrap_or(false);
            assert_eq!(frozen, life < 3, "lifetime {life}");
        }
    }

    #[test]
    fn combined_storm_layers_transients_onto_crashes() {
        let schedule = combined_storm(5, 50, 2, 30);
        assert_eq!(schedule.crashes(), 2);
        assert!(schedule.transient.is_some());
        // A late lifetime's plan still carries the transient storm.
        let db = small_db("m");
        db.set_fault_plan(Some(schedule.plan(9)));
        let conn = db.connect();
        let failures = (0..50)
            .filter(|_| conn.query("SELECT COUNT(*) FROM a", &[]).is_err())
            .count();
        assert!(failures > 0, "transient layer must fire");
        assert!(
            !db.fault_injector().unwrap().frozen(),
            "no crash scheduled past the storm"
        );
    }

    #[test]
    fn merged_fingerprint_equals_unsharded_fingerprint() {
        // The same logical rows, whole on one engine vs split across
        // two, must fingerprint byte-identically.
        let whole = Database::new("whole");
        whole
            .connect()
            .execute_script(
                "CREATE TABLE kv (k TEXT PRIMARY KEY, v INT);
                 INSERT INTO kv VALUES ('a', 1), ('b', 2), ('c', 3);",
            )
            .unwrap();
        let s0 = Database::new("s0");
        let s1 = Database::new("s1");
        for s in [&s0, &s1] {
            s.connect()
                .execute("CREATE TABLE kv (k TEXT PRIMARY KEY, v INT)", &[])
                .unwrap();
        }
        s0.connect()
            .execute("INSERT INTO kv VALUES ('b', 2)", &[])
            .unwrap();
        s1.connect()
            .execute_script("INSERT INTO kv VALUES ('c', 3); INSERT INTO kv VALUES ('a', 1);")
            .unwrap();
        assert_eq!(merged_fingerprint(&[s0, s1], &[]), db_fingerprint(&whole),);
    }

    #[test]
    fn sharded_storms_are_deterministic_and_cycle_variants() {
        let a = sharded_crash_storm(17, 4, 100, 10, 8);
        let b = sharded_crash_storm(17, 4, 100, 10, 8);
        assert_eq!(a.crashes, b.crashes);
        assert_eq!(a.crashes(), 8);
        assert!(matches!(
            a.crashes[0],
            ShardCrash::ParticipantPrepared { .. }
        ));
        assert!(matches!(
            a.crashes[1],
            ShardCrash::CoordinatorPreNotify { .. }
        ));
        assert!(matches!(a.crashes[2], ShardCrash::TornPrepare { .. }));
        assert!(matches!(a.crashes[3], ShardCrash::Statement { .. }));
        assert_ne!(
            sharded_crash_storm(18, 4, 100, 10, 8).crashes,
            a.crashes,
            "seed must matter"
        );
    }

    #[test]
    fn longest_run_matches_the_storm() {
        // Re-derive the storm's faulted indices and verify the run
        // length helper agrees.
        for seed in [1u64, 7, 99] {
            let mut rng = SplitMix64::new(seed);
            let mut faulted = Vec::new();
            for i in 0..200u64 {
                if rng.next_below(100) < 25 {
                    rng.next_u64();
                    faulted.push(i);
                }
            }
            let (mut longest, mut current, mut prev) = (0u32, 0u32, None::<u64>);
            for &i in &faulted {
                current = match prev {
                    Some(p) if p + 1 == i => current + 1,
                    _ => 1,
                };
                longest = longest.max(current);
                prev = Some(i);
            }
            assert_eq!(storm_longest_run(seed, 200, 25), longest);
        }
    }
}
