//! The probe environment: the paper's running example as an executable
//! scenario.
//!
//! Sections III-C, IV-C and V-C all realize the *same* sample workflow —
//! aggregate approved orders per item type, order each item from a
//! supplier, record the confirmations. [`ProbeEnv`] provides that world:
//! an order database, the `OrderFromSupplier` web service, and a workflow
//! engine wired to it. Vendor crates demonstrate each data management
//! pattern against it and return [`Demonstration`] evidence.

use flowcore::{Engine, FlowError, Message, ServiceRegistry};
use sqlkernel::{Database, SqlError, Value};

use crate::pattern::DataPattern;
use crate::support::SupportLevel;

/// Name of the supplier service used by all sample workflows.
pub const ORDER_FROM_SUPPLIER: &str = "OrderFromSupplier";

/// A probe failure: the integration style could not realize the pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeError(pub String);

impl std::fmt::Display for ProbeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "probe failed: {}", self.0)
    }
}

impl std::error::Error for ProbeError {}

impl From<FlowError> for ProbeError {
    fn from(e: FlowError) -> Self {
        ProbeError(e.to_string())
    }
}

impl From<SqlError> for ProbeError {
    fn from(e: SqlError) -> Self {
        ProbeError(e.to_string())
    }
}

impl From<xmlval::XmlError> for ProbeError {
    fn from(e: xmlval::XmlError) -> Self {
        ProbeError(e.to_string())
    }
}

/// Evidence that one pattern was realized by one mechanism.
#[derive(Debug, Clone, PartialEq)]
pub struct Demonstration {
    pub pattern: DataPattern,
    /// The mechanism used (must match a Table II row of the product).
    pub mechanism: String,
    pub level: SupportLevel,
    /// Human-readable proof lines (statements run, values observed).
    pub evidence: Vec<String>,
}

impl Demonstration {
    /// Build a demonstration record.
    pub fn new(
        pattern: DataPattern,
        mechanism: impl Into<String>,
        level: SupportLevel,
    ) -> Demonstration {
        Demonstration {
            pattern,
            mechanism: mechanism.into(),
            level,
            evidence: Vec::new(),
        }
    }

    /// Builder: attach an evidence line.
    pub fn evidence(mut self, line: impl Into<String>) -> Demonstration {
        self.evidence.push(line.into());
        self
    }
}

/// The running-example world.
pub struct ProbeEnv {
    /// The order database (`orders_db`).
    pub db: Database,
    /// A second database, used to demonstrate dynamic data-source
    /// binding (BIS) and its absence elsewhere.
    pub alt_db: Database,
    /// The workflow engine with `OrderFromSupplier` registered.
    pub engine: Engine,
    /// Confirmations issued by the supplier service during this probe.
    confirmations: std::sync::Arc<sqlkernel::sync::Mutex<Vec<String>>>,
}

impl ProbeEnv {
    /// A fresh environment with the paper's order data seeded.
    pub fn fresh() -> ProbeEnv {
        let db = Database::new("orders_db");
        seed_orders(&db);
        let alt_db = Database::new("orders_db_test");
        seed_orders(&alt_db);

        let confirmations = std::sync::Arc::new(sqlkernel::sync::Mutex::new(Vec::<String>::new()));
        let mut services = ServiceRegistry::new();
        let log = confirmations.clone();
        services.register_fn(ORDER_FROM_SUPPLIER, move |input: &Message| {
            let item = input.scalar_part("ItemType")?.render();
            let qty = input.scalar_part("Quantity")?.render();
            let confirmation = format!("confirmed:{item}:{qty}");
            log.lock().push(confirmation.clone());
            Ok(Message::new().with_part("Confirmation", Value::Text(confirmation)))
        });
        let engine = Engine::with_services(services);
        ProbeEnv {
            db,
            alt_db,
            engine,
            confirmations,
        }
    }

    /// Confirmations issued so far by the supplier service.
    pub fn confirmations(&self) -> Vec<String> {
        self.confirmations.lock().clone()
    }
}

/// The seed schema and data shared by every probe and example:
/// Figure 4's `Orders` (via `SR_Orders`) and the persistent
/// `OrderConfirmations` table, plus a stored procedure and a sequence
/// exercised by the Stored Procedure / Data Setup probes.
pub fn seed_orders(db: &Database) {
    let conn = db.connect();
    conn.execute_script(
        "CREATE TABLE Orders (
            OrderId INT PRIMARY KEY,
            ItemId TEXT NOT NULL,
            Quantity INT NOT NULL,
            Approved BOOL NOT NULL);
         INSERT INTO Orders VALUES
            (1, 'widget', 10, TRUE),
            (2, 'widget', 5, TRUE),
            (3, 'gadget', 7, FALSE),
            (4, 'gadget', 3, TRUE),
            (5, 'sprocket', 2, TRUE),
            (6, 'widget', 4, FALSE);
         CREATE TABLE OrderConfirmations (
            ConfId INT PRIMARY KEY,
            ItemId TEXT NOT NULL,
            Quantity INT NOT NULL,
            Confirmation TEXT);
         CREATE SEQUENCE conf_ids START WITH 1;
         CREATE PROCEDURE item_total(item) AS BEGIN
            SELECT ItemId, SUM(Quantity) AS Quantity FROM Orders
              WHERE ItemId = :item AND Approved = TRUE GROUP BY ItemId;
         END;",
    )
    .expect("probe seed script is valid");
}

/// The aggregation query of activity SQL_1 in Figures 4/6/8, with the
/// table name templated (BIS binds it through a set reference; WF and
/// SOA embed it as static text).
pub fn aggregation_query(orders_table: &str) -> String {
    format!(
        "SELECT ItemId, SUM(Quantity) AS Quantity FROM {orders_table} \
         WHERE Approved = TRUE GROUP BY ItemId ORDER BY ItemId"
    )
}

/// The expected aggregation result over the seed data.
pub fn expected_item_list() -> Vec<(&'static str, i64)> {
    vec![("gadget", 3), ("sprocket", 2), ("widget", 15)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_data_matches_expected_aggregation() {
        let env = ProbeEnv::fresh();
        let conn = env.db.connect();
        let rs = conn.query(&aggregation_query("Orders"), &[]).unwrap();
        let got: Vec<(String, i64)> = rs
            .rows
            .iter()
            .map(|r| (r[0].render(), r[1].as_i64().unwrap()))
            .collect();
        let want: Vec<(String, i64)> = expected_item_list()
            .into_iter()
            .map(|(s, n)| (s.to_string(), n))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn supplier_service_confirms_and_logs() {
        let env = ProbeEnv::fresh();
        let out = env
            .engine
            .services()
            .invoke(
                ORDER_FROM_SUPPLIER,
                &Message::new()
                    .with_part("ItemType", Value::text("widget"))
                    .with_part("Quantity", Value::Int(15)),
            )
            .unwrap();
        assert_eq!(
            out.scalar_part("Confirmation").unwrap(),
            &Value::text("confirmed:widget:15")
        );
        assert_eq!(env.confirmations(), vec!["confirmed:widget:15"]);
    }

    #[test]
    fn both_databases_seeded_identically() {
        let env = ProbeEnv::fresh();
        assert_eq!(env.db.table_len("Orders").unwrap(), 6);
        assert_eq!(env.alt_db.table_len("Orders").unwrap(), 6);
        assert!(!env.db.same_as(&env.alt_db));
    }

    #[test]
    fn stored_procedure_seeded() {
        let env = ProbeEnv::fresh();
        let conn = env.db.connect();
        let rs = conn
            .execute("CALL item_total('widget')", &[])
            .unwrap()
            .rows()
            .unwrap();
        assert_eq!(rs.rows[0][1], Value::Int(15));
    }

    #[test]
    fn probe_error_conversions() {
        let e: ProbeError = FlowError::Variable("v".into()).into();
        assert!(e.to_string().contains("v"));
        let e: ProbeError = SqlError::Runtime("r".into()).into();
        assert!(e.to_string().contains("r"));
    }
}
