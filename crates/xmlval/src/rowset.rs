//! The XML RowSet codec.
//!
//! Sec. V-C of the paper: *“Each output tuple of an XML RowSet becomes a
//! numbered XML element with a text node for every attribute value.”*
//! Both IBM BIS (`set` variables) and Oracle SOA Suite (`query-database`
//! results) use this materialized representation; Microsoft WF uses an
//! ADO.NET `DataSet` instead (see the `wf` crate).
//!
//! Encoding shape:
//!
//! ```xml
//! <RowSet columns="ItemId,Quantity">
//!   <Row num="1">
//!     <ItemId type="TEXT">widget</ItemId>
//!     <Quantity type="INT">15</Quantity>
//!   </Row>
//! </RowSet>
//! ```
//!
//! Cell elements carry a `type` attribute so decoding restores the exact
//! [`Value`] variants; NULL cells are empty elements with `null="true"`.

use sqlkernel::{DataType, QueryResult, Value};

use crate::error::{XmlError, XmlResult};
use crate::node::{Element, XmlNode};

/// Root element name of an encoded RowSet.
pub const ROWSET_ELEM: &str = "RowSet";
/// Row element name.
pub const ROW_ELEM: &str = "Row";

/// Encode a query result into its XML RowSet materialization.
pub fn encode(result: &QueryResult) -> XmlNode {
    let mut root = Element::new(ROWSET_ELEM).with_attr("columns", result.columns.join(","));
    for (i, row) in result.rows.iter().enumerate() {
        let mut row_el = Element::new(ROW_ELEM).with_attr("num", (i + 1).to_string());
        for (col, v) in result.columns.iter().zip(row) {
            row_el.children.push(XmlNode::Element(encode_cell(col, v)));
        }
        root.children.push(XmlNode::Element(row_el));
    }
    XmlNode::Element(root)
}

fn encode_cell(column: &str, v: &Value) -> Element {
    let mut cell = Element::new(column);
    match v {
        Value::Null => cell.set_attr("null", "true"),
        other => {
            let ty = other.data_type().expect("non-null value has a type");
            cell.set_attr("type", ty.sql_name());
            cell.children.push(XmlNode::text(other.render()));
        }
    }
    cell
}

/// Decode an XML RowSet back into a query result.
pub fn decode(node: &XmlNode) -> XmlResult<QueryResult> {
    let root = node
        .as_element()
        .ok_or_else(|| XmlError::Codec("rowset root must be an element".into()))?;
    if root.name != ROWSET_ELEM {
        return Err(XmlError::Codec(format!(
            "expected <{ROWSET_ELEM}>, found <{}>",
            root.name
        )));
    }
    let columns: Vec<String> = match root.attr("columns") {
        Some(c) if !c.is_empty() => c.split(',').map(str::to_string).collect(),
        _ => {
            // Fall back to the first row's cell names.
            match root.child(ROW_ELEM) {
                Some(row) => row.child_elements().map(|e| e.name.clone()).collect(),
                None => Vec::new(),
            }
        }
    };
    let mut rows = Vec::new();
    for row_el in root.children_named(ROW_ELEM) {
        let mut row = Vec::with_capacity(columns.len());
        for col in &columns {
            let cell = row_el
                .child(col)
                .ok_or_else(|| XmlError::Codec(format!("row missing cell for column '{col}'")))?;
            row.push(decode_cell(cell)?);
        }
        rows.push(row);
    }
    Ok(QueryResult { columns, rows })
}

fn decode_cell(cell: &Element) -> XmlResult<Value> {
    if cell.attr("null") == Some("true") {
        return Ok(Value::Null);
    }
    let text = cell.text_content();
    let ty = match cell.attr("type") {
        Some(t) => DataType::from_name(t)
            .ok_or_else(|| XmlError::Codec(format!("unknown cell type '{t}'")))?,
        None => DataType::Text,
    };
    Value::Text(text)
        .coerce(ty)
        .map_err(|m| XmlError::Codec(format!("cell '{}': {m}", cell.name)))
}

/// Number of rows in an encoded RowSet (0 if malformed).
pub fn row_count(node: &XmlNode) -> usize {
    node.as_element()
        .map(|e| e.children_named(ROW_ELEM).count())
        .unwrap_or(0)
}

/// Fetch one decoded row (0-based) from an encoded RowSet.
pub fn row_values(node: &XmlNode, index: usize) -> XmlResult<Vec<Value>> {
    let decoded = decode(node)?;
    decoded
        .rows
        .get(index)
        .cloned()
        .ok_or_else(|| XmlError::NotFound(format!("row {index} of rowset")))
}

/// Fetch one cell by 0-based row index and column name.
pub fn cell_value(node: &XmlNode, row: usize, column: &str) -> XmlResult<Value> {
    let root = node
        .as_element()
        .ok_or_else(|| XmlError::Codec("rowset root must be an element".into()))?;
    let row_el = root
        .children_named(ROW_ELEM)
        .nth(row)
        .ok_or_else(|| XmlError::NotFound(format!("row {row} of rowset")))?;
    let cell = row_el
        .child_elements()
        .find(|e| e.name.eq_ignore_ascii_case(column))
        .ok_or_else(|| XmlError::NotFound(format!("column '{column}' in row {row}")))?;
    decode_cell(cell)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryResult {
        QueryResult {
            columns: vec![
                "ItemId".into(),
                "Quantity".into(),
                "Price".into(),
                "Ok".into(),
            ],
            rows: vec![
                vec![
                    Value::text("widget"),
                    Value::Int(15),
                    Value::Float(2.5),
                    Value::Bool(true),
                ],
                vec![
                    Value::text("gadget"),
                    Value::Int(3),
                    Value::Null,
                    Value::Bool(false),
                ],
            ],
        }
    }

    #[test]
    fn encode_shape_matches_paper() {
        let xml = encode(&sample());
        let root = xml.as_element().unwrap();
        assert_eq!(root.name, "RowSet");
        let rows: Vec<&Element> = root.children_named("Row").collect();
        assert_eq!(rows.len(), 2);
        // Numbered row elements…
        assert_eq!(rows[0].attr("num"), Some("1"));
        assert_eq!(rows[1].attr("num"), Some("2"));
        // …with a text node for every attribute value.
        assert_eq!(rows[0].child_text("ItemId").as_deref(), Some("widget"));
        assert_eq!(rows[0].child_text("Quantity").as_deref(), Some("15"));
    }

    #[test]
    fn round_trip_preserves_types() {
        let rs = sample();
        let back = decode(&encode(&rs)).unwrap();
        assert_eq!(back, rs);
    }

    #[test]
    fn round_trip_through_serialized_text() {
        let rs = sample();
        let xml_text = encode(&rs).to_pretty_xml();
        let parsed = crate::parse::parse(&xml_text).unwrap();
        let back = decode(&XmlNode::Element(parsed)).unwrap();
        assert_eq!(back, rs);
    }

    #[test]
    fn empty_result_keeps_columns() {
        let rs = QueryResult::empty(vec!["a".into(), "b".into()]);
        let back = decode(&encode(&rs)).unwrap();
        assert_eq!(back.columns, vec!["a", "b"]);
        assert!(back.rows.is_empty());
    }

    #[test]
    fn null_cells() {
        let xml = encode(&sample());
        assert_eq!(cell_value(&xml, 1, "Price").unwrap(), Value::Null);
    }

    #[test]
    fn accessors() {
        let xml = encode(&sample());
        assert_eq!(row_count(&xml), 2);
        assert_eq!(cell_value(&xml, 0, "quantity").unwrap(), Value::Int(15));
        assert_eq!(row_values(&xml, 1).unwrap()[0], Value::text("gadget"));
        assert!(row_values(&xml, 5).is_err());
        assert!(cell_value(&xml, 0, "nope").is_err());
    }

    #[test]
    fn decode_rejects_wrong_root() {
        let e = XmlNode::Element(Element::new("NotARowSet"));
        assert_eq!(decode(&e).unwrap_err().class(), "codec");
        assert_eq!(decode(&XmlNode::text("x")).unwrap_err().class(), "codec");
    }

    #[test]
    fn decode_without_columns_attr_uses_first_row() {
        let parsed =
            crate::parse::parse("<RowSet><Row><a type=\"INT\">1</a><b>t</b></Row></RowSet>")
                .unwrap();
        let rs = decode(&XmlNode::Element(parsed)).unwrap();
        assert_eq!(rs.columns, vec!["a", "b"]);
        assert_eq!(rs.rows[0], vec![Value::Int(1), Value::text("t")]);
    }

    #[test]
    fn decode_missing_cell_errors() {
        let parsed = crate::parse::parse(
            "<RowSet columns=\"a,b\"><Row><a type=\"INT\">1</a></Row></RowSet>",
        )
        .unwrap();
        assert_eq!(
            decode(&XmlNode::Element(parsed)).unwrap_err().class(),
            "codec"
        );
    }

    #[test]
    fn text_values_with_markup_characters_survive() {
        let rs = QueryResult {
            columns: vec!["c".into()],
            rows: vec![vec![Value::text("<a & \"b\">")]],
        };
        let text = encode(&rs).to_xml();
        let parsed = crate::parse::parse(&text).unwrap();
        let back = decode(&XmlNode::Element(parsed)).unwrap();
        assert_eq!(back, rs);
    }
}
