//! Error type for XML parsing, path evaluation and RowSet codecs.

use std::fmt;

/// Convenient alias.
pub type XmlResult<T> = Result<T, XmlError>;

/// Everything that can go wrong in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Malformed XML text.
    Parse(String),
    /// Malformed or unsupported path expression.
    Path(String),
    /// A path selected nothing where something was required.
    NotFound(String),
    /// RowSet encode/decode failure.
    Codec(String),
}

impl XmlError {
    /// Machine-readable class, for test assertions.
    pub fn class(&self) -> &'static str {
        match self {
            XmlError::Parse(_) => "parse",
            XmlError::Path(_) => "path",
            XmlError::NotFound(_) => "not_found",
            XmlError::Codec(_) => "codec",
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Parse(m) => write!(f, "xml parse error: {m}"),
            XmlError::Path(m) => write!(f, "path error: {m}"),
            XmlError::NotFound(m) => write!(f, "not found: {m}"),
            XmlError::Codec(m) => write!(f, "rowset codec error: {m}"),
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_and_display() {
        assert_eq!(XmlError::Parse("x".into()).class(), "parse");
        assert!(XmlError::Path("bad".into()).to_string().contains("bad"));
    }
}
