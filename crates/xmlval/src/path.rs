//! The path language — the XPath subset BPEL assign activities use in the
//! paper's examples.
//!
//! Supported syntax:
//!
//! ```text
//! path      := '/'? step ('/' step)* ('/@' name)?
//! step      := (name | '*') ('[' integer ']')?
//! ```
//!
//! Absolute paths test the root element with their first step; relative
//! paths start at the context element's children. Numeric predicates are
//! 1-based and apply after name filtering, as in XPath.
//!
//! Besides read-only selection, paths can resolve to *chains* — sequences
//! of child indices — which support in-place mutation. The Oracle-style
//! `bpelx` insert/update/delete operations and the IBM-style assign
//! activity are both built on chains.

use crate::error::{XmlError, XmlResult};
use crate::node::{Element, XmlNode};

/// A name test within a step.
#[derive(Debug, Clone, PartialEq, Eq)]
enum NameTest {
    Named(String),
    Any,
}

/// One location step.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Step {
    name: NameTest,
    /// 1-based positional predicate.
    index: Option<usize>,
}

impl Step {
    fn matches(&self, name: &str) -> bool {
        match &self.name {
            NameTest::Named(n) => n == name,
            NameTest::Any => true,
        }
    }
}

/// A parsed path expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    absolute: bool,
    steps: Vec<Step>,
    /// Trailing attribute selection (`…/@name`).
    attr: Option<String>,
    source: String,
}

impl Path {
    /// Parse a path expression.
    pub fn parse(src: &str) -> XmlResult<Path> {
        let trimmed = src.trim();
        if trimmed.is_empty() {
            return Err(XmlError::Path("empty path".into()));
        }
        let absolute = trimmed.starts_with('/');
        let body = if absolute { &trimmed[1..] } else { trimmed };
        let mut steps = Vec::new();
        let mut attr = None;
        if body.is_empty() {
            if !absolute {
                return Err(XmlError::Path("empty path".into()));
            }
            return Ok(Path {
                absolute,
                steps,
                attr,
                source: trimmed.to_string(),
            });
        }
        let segments: Vec<&str> = body.split('/').collect();
        for (i, seg) in segments.iter().enumerate() {
            let seg = seg.trim();
            if seg.is_empty() {
                return Err(XmlError::Path(format!("empty step in '{src}'")));
            }
            if let Some(attr_name) = seg.strip_prefix('@') {
                if i != segments.len() - 1 {
                    return Err(XmlError::Path(format!(
                        "attribute step must be last in '{src}'"
                    )));
                }
                if attr_name.is_empty() {
                    return Err(XmlError::Path(format!("empty attribute name in '{src}'")));
                }
                attr = Some(attr_name.to_string());
                continue;
            }
            let (name_part, index) = match seg.find('[') {
                Some(b) => {
                    let close = seg
                        .rfind(']')
                        .ok_or_else(|| XmlError::Path(format!("missing ']' in '{seg}'")))?;
                    if close != seg.len() - 1 {
                        return Err(XmlError::Path(format!(
                            "trailing content after predicate in '{seg}'"
                        )));
                    }
                    let idx: usize = seg[b + 1..close].trim().parse().map_err(|_| {
                        XmlError::Path(format!("predicate must be a positive integer in '{seg}'"))
                    })?;
                    if idx == 0 {
                        return Err(XmlError::Path("predicate indexes are 1-based".into()));
                    }
                    (&seg[..b], Some(idx))
                }
                None => (seg, None),
            };
            let name = if name_part == "*" {
                NameTest::Any
            } else if name_part.is_empty()
                || !name_part
                    .chars()
                    .all(|c| c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':'))
            {
                return Err(XmlError::Path(format!("invalid step name '{name_part}'")));
            } else {
                NameTest::Named(name_part.to_string())
            };
            steps.push(Step { name, index });
        }
        Ok(Path {
            absolute,
            steps,
            attr,
            source: trimmed.to_string(),
        })
    }

    /// The original path text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Does the path end in an attribute step?
    pub fn is_attribute(&self) -> bool {
        self.attr.is_some()
    }

    /// Select matching elements (ignoring any trailing attribute step).
    pub fn select_elements<'a>(&self, root: &'a Element) -> Vec<&'a Element> {
        let mut current: Vec<&Element> = Vec::new();
        let mut steps: &[Step] = &self.steps;
        if self.absolute {
            match steps.first() {
                None => return vec![root],
                Some(first) => {
                    if first.matches(&root.name) && first.index.is_none_or(|i| i == 1) {
                        current.push(root);
                    }
                    steps = &steps[1..];
                }
            }
        } else {
            current.push(root);
        }
        for step in steps {
            let mut next = Vec::new();
            for el in current {
                let named: Vec<&Element> = el
                    .child_elements()
                    .filter(|c| step.matches(&c.name))
                    .collect();
                match step.index {
                    Some(i) => {
                        if i <= named.len() {
                            next.push(named[i - 1]);
                        }
                    }
                    None => next.extend(named),
                }
            }
            current = next;
        }
        current
    }

    /// Select string values: attribute values for attribute paths,
    /// text content otherwise.
    pub fn select_strings(&self, root: &Element) -> Vec<String> {
        let elements = self.select_elements(root);
        match &self.attr {
            Some(a) => elements
                .into_iter()
                .filter_map(|e| e.attr(a).map(str::to_string))
                .collect(),
            None => elements.into_iter().map(Element::text_content).collect(),
        }
    }

    /// First string value selected, if any. Accepts a node for convenience.
    pub fn select_text(&self, root: &XmlNode) -> Option<String> {
        let el = root.as_element()?;
        self.select_strings(el).into_iter().next()
    }

    /// Number of matches (the `count()` XPath function).
    pub fn count(&self, root: &Element) -> usize {
        match &self.attr {
            Some(a) => self
                .select_elements(root)
                .into_iter()
                .filter(|e| e.attr(a).is_some())
                .count(),
            None => self.select_elements(root).len(),
        }
    }

    /// Resolve to chains of `children`-vector indices, enabling mutation.
    /// Attribute paths are rejected — mutate attributes on the selected
    /// element instead.
    pub fn select_chains(&self, root: &Element) -> XmlResult<Vec<Vec<usize>>> {
        if self.attr.is_some() {
            return Err(XmlError::Path(format!(
                "cannot take a mutable chain through attribute path '{}'",
                self.source
            )));
        }
        let mut current: Vec<Vec<usize>> = Vec::new();
        let mut steps: &[Step] = &self.steps;
        if self.absolute {
            match steps.first() {
                None => return Ok(vec![Vec::new()]),
                Some(first) => {
                    if first.matches(&root.name) && first.index.is_none_or(|i| i == 1) {
                        current.push(Vec::new());
                    }
                    steps = &steps[1..];
                }
            }
        } else {
            current.push(Vec::new());
        }
        for step in steps {
            let mut next = Vec::new();
            for chain in current {
                let el = element_by_chain(root, &chain)
                    .expect("chains constructed here are always valid");
                let named: Vec<usize> = el
                    .children
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.as_element().is_some_and(|e| step.matches(&e.name)))
                    .map(|(i, _)| i)
                    .collect();
                match step.index {
                    Some(i) => {
                        if i <= named.len() {
                            let mut c = chain.clone();
                            c.push(named[i - 1]);
                            next.push(c);
                        }
                    }
                    None => {
                        for idx in named {
                            let mut c = chain.clone();
                            c.push(idx);
                            next.push(c);
                        }
                    }
                }
            }
            current = next;
        }
        Ok(current)
    }
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.source)
    }
}

/// Navigate a chain produced by [`Path::select_chains`].
pub fn element_by_chain<'a>(root: &'a Element, chain: &[usize]) -> Option<&'a Element> {
    let mut cur = root;
    for &i in chain {
        cur = cur.children.get(i)?.as_element()?;
    }
    Some(cur)
}

/// Mutable navigation of a chain.
pub fn element_by_chain_mut<'a>(root: &'a mut Element, chain: &[usize]) -> Option<&'a mut Element> {
    let mut cur = root;
    for &i in chain {
        cur = cur.children.get_mut(i)?.as_element_mut()?;
    }
    Some(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn doc() -> Element {
        parse(
            "<RowSet table=\"ItemList\">\
               <Row num=\"1\"><ItemId>widget</ItemId><Quantity>15</Quantity></Row>\
               <Row num=\"2\"><ItemId>gadget</ItemId><Quantity>3</Quantity></Row>\
               <Row num=\"3\"><ItemId>sprocket</ItemId><Quantity>2</Quantity></Row>\
             </RowSet>",
        )
        .unwrap()
    }

    #[test]
    fn absolute_selection() {
        let d = doc();
        let p = Path::parse("/RowSet/Row/ItemId").unwrap();
        let texts = p.select_strings(&d);
        assert_eq!(texts, vec!["widget", "gadget", "sprocket"]);
    }

    #[test]
    fn absolute_root_mismatch_selects_nothing() {
        let d = doc();
        let p = Path::parse("/Other/Row").unwrap();
        assert!(p.select_elements(&d).is_empty());
    }

    #[test]
    fn positional_predicates() {
        let d = doc();
        let p = Path::parse("/RowSet/Row[2]/ItemId").unwrap();
        assert_eq!(p.select_strings(&d), vec!["gadget"]);
        let p = Path::parse("/RowSet/Row[9]").unwrap();
        assert!(p.select_elements(&d).is_empty());
    }

    #[test]
    fn relative_paths_start_at_children() {
        let d = doc();
        let p = Path::parse("Row[1]/Quantity").unwrap();
        assert_eq!(p.select_strings(&d), vec!["15"]);
    }

    #[test]
    fn wildcard_step() {
        let d = doc();
        let p = Path::parse("/RowSet/Row[1]/*").unwrap();
        assert_eq!(p.select_elements(&d).len(), 2);
    }

    #[test]
    fn attribute_selection_and_count() {
        let d = doc();
        let p = Path::parse("/RowSet/Row/@num").unwrap();
        assert_eq!(p.select_strings(&d), vec!["1", "2", "3"]);
        assert!(p.is_attribute());
        assert_eq!(p.count(&d), 3);
        let p = Path::parse("/RowSet/@table").unwrap();
        assert_eq!(p.select_strings(&d), vec!["ItemList"]);
        let p = Path::parse("/RowSet/Row").unwrap();
        assert_eq!(p.count(&d), 3);
    }

    #[test]
    fn select_text_via_node() {
        let d = XmlNode::Element(doc());
        let p = Path::parse("/RowSet/Row[3]/ItemId").unwrap();
        assert_eq!(p.select_text(&d).as_deref(), Some("sprocket"));
        let p = Path::parse("/RowSet/Row[4]/ItemId").unwrap();
        assert_eq!(p.select_text(&d), None);
    }

    #[test]
    fn root_only_absolute_path() {
        let d = doc();
        let p = Path::parse("/").unwrap();
        assert_eq!(p.select_elements(&d).len(), 1);
    }

    #[test]
    fn chains_allow_mutation() {
        let mut d = doc();
        let p = Path::parse("/RowSet/Row[2]/Quantity").unwrap();
        let chains = p.select_chains(&d).unwrap();
        assert_eq!(chains.len(), 1);
        element_by_chain_mut(&mut d, &chains[0])
            .unwrap()
            .set_text("99");
        assert_eq!(
            Path::parse("/RowSet/Row[2]/Quantity")
                .unwrap()
                .select_strings(&d),
            vec!["99"]
        );
    }

    #[test]
    fn chains_reject_attribute_paths() {
        let d = doc();
        let p = Path::parse("/RowSet/Row/@num").unwrap();
        assert_eq!(p.select_chains(&d).unwrap_err().class(), "path");
    }

    #[test]
    fn chain_navigation_bounds() {
        let d = doc();
        assert!(element_by_chain(&d, &[0, 0]).is_some());
        assert!(element_by_chain(&d, &[9]).is_none());
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "", "//", "a//b", "a[0]", "a[x]", "a[1", "a[1]b", "@a/b", "a/@", "a b/c",
        ] {
            assert!(Path::parse(bad).is_err(), "expected error for '{bad}'");
        }
    }

    #[test]
    fn display_round_trips_source() {
        let p = Path::parse("/RowSet/Row[2]/@num").unwrap();
        assert_eq!(p.to_string(), "/RowSet/Row[2]/@num");
    }
}
