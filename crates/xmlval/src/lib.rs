//! `xmlval` — XML document values for workflow variables.
//!
//! BPEL predetermines XPath as the expression language over process
//! variables, and both IBM BIS and Oracle SOA Suite materialize relational
//! result sets as *XML RowSets* — numbered row elements with one text node
//! per attribute value. This crate provides everything the workflow layers
//! need to model that faithfully:
//!
//! * an XML node tree ([`XmlNode`], [`Element`]) with serialization,
//! * a small XML parser ([`parse()`](parse())) used by the Oracle-style XSQL
//!   framework (which executes SQL embedded in XML documents),
//! * a path language ([`Path`]) — the XPath subset the paper's examples
//!   use: child steps, numeric predicates, attributes, wildcards and
//!   `count()` — including *mutating* selections (the `bpelx`
//!   insert/update/delete operations of Sec. V-C),
//! * the RowSet codec ([`rowset`]) converting between
//!   [`sqlkernel::QueryResult`] grids and their XML materialization.
//!
//! ```
//! use xmlval::{rowset, Path};
//! use sqlkernel::{Database, Value};
//!
//! let db = Database::new("d");
//! let conn = db.connect();
//! conn.execute("CREATE TABLE t (a INT, b TEXT)", &[]).unwrap();
//! conn.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')", &[]).unwrap();
//! let rs = conn.query("SELECT * FROM t ORDER BY a", &[]).unwrap();
//!
//! let xml = rowset::encode(&rs);
//! let p = Path::parse("/RowSet/Row[2]/b").unwrap();
//! assert_eq!(p.select_text(&xml).as_deref(), Some("y"));
//!
//! let back = rowset::decode(&xml).unwrap();
//! assert_eq!(back, rs);
//! ```

pub mod error;
pub mod node;
pub mod parse;
pub mod path;
pub mod rowset;

pub use error::{XmlError, XmlResult};
pub use node::{Element, XmlNode};
pub use parse::parse;
pub use path::Path;
