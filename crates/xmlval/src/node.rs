//! The XML node tree.

use std::fmt;

/// One XML node: an element or a text run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlNode {
    Element(Element),
    Text(String),
}

impl XmlNode {
    /// Shorthand for a text node.
    pub fn text(s: impl Into<String>) -> XmlNode {
        XmlNode::Text(s.into())
    }

    /// Shorthand for an element node.
    pub fn elem(e: Element) -> XmlNode {
        XmlNode::Element(e)
    }

    /// This node as an element, if it is one.
    pub fn as_element(&self) -> Option<&Element> {
        match self {
            XmlNode::Element(e) => Some(e),
            XmlNode::Text(_) => None,
        }
    }

    /// Mutable element view.
    pub fn as_element_mut(&mut self) -> Option<&mut Element> {
        match self {
            XmlNode::Element(e) => Some(e),
            XmlNode::Text(_) => None,
        }
    }

    /// Concatenated text content of this subtree.
    pub fn text_content(&self) -> String {
        match self {
            XmlNode::Text(s) => s.clone(),
            XmlNode::Element(e) => e.text_content(),
        }
    }

    /// Serialize without extra whitespace.
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with 2-space indentation.
    pub fn to_pretty_xml(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            XmlNode::Text(s) => out.push_str(&escape_text(s)),
            XmlNode::Element(e) => e.write(out, indent, depth),
        }
    }
}

/// An XML element: name, attributes, ordered children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    pub name: String,
    pub attributes: Vec<(String, String)>,
    pub children: Vec<XmlNode>,
}

impl Element {
    /// Empty element.
    pub fn new(name: impl Into<String>) -> Element {
        Element {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Builder: add an attribute.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Element {
        self.attributes.push((name.into(), value.into()));
        self
    }

    /// Builder: add a child node.
    pub fn with_child(mut self, child: XmlNode) -> Element {
        self.children.push(child);
        self
    }

    /// Builder: add a child element holding a single text node.
    pub fn with_text_child(self, name: impl Into<String>, text: impl Into<String>) -> Element {
        self.with_child(XmlNode::Element(
            Element::new(name).with_child(XmlNode::text(text)),
        ))
    }

    /// Attribute lookup.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Set (or replace) an attribute.
    pub fn set_attr(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        match self.attributes.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v = value,
            None => self.attributes.push((name, value)),
        }
    }

    /// Child elements (skipping text nodes).
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(XmlNode::as_element)
    }

    /// First child element with the given name.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// All child elements with the given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> {
        self.child_elements().filter(move |e| e.name == name)
    }

    /// Text of the first child element with the given name.
    pub fn child_text(&self, name: &str) -> Option<String> {
        self.child(name).map(Element::text_content)
    }

    /// Concatenated descendant text.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        for c in &self.children {
            match c {
                XmlNode::Text(s) => out.push_str(s),
                XmlNode::Element(e) => out.push_str(&e.text_content()),
            }
        }
        out
    }

    /// Replace all children with a single text node.
    pub fn set_text(&mut self, text: impl Into<String>) {
        self.children = vec![XmlNode::text(text)];
    }

    /// Number of child *elements*.
    pub fn element_count(&self) -> usize {
        self.child_elements().count()
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let pad = |out: &mut String, depth: usize| {
            if let Some(n) = indent {
                out.push_str(&" ".repeat(n * depth));
            }
        };
        pad(out, depth);
        out.push('<');
        out.push_str(&self.name);
        for (n, v) in &self.attributes {
            out.push(' ');
            out.push_str(n);
            out.push_str("=\"");
            out.push_str(&escape_attr(v));
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>");
            if indent.is_some() {
                out.push('\n');
            }
            return;
        }
        out.push('>');
        let only_text = self.children.iter().all(|c| matches!(c, XmlNode::Text(_)));
        if only_text {
            for c in &self.children {
                if let XmlNode::Text(s) = c {
                    out.push_str(&escape_text(s));
                }
            }
        } else {
            if indent.is_some() {
                out.push('\n');
            }
            for c in &self.children {
                c.write(out, indent, depth + 1);
            }
            pad(out, depth);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
        if indent.is_some() {
            out.push('\n');
        }
    }
}

impl fmt::Display for Element {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        f.write_str(&s)
    }
}

fn escape_text(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn escape_attr(s: &str) -> String {
    escape_text(s).replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Element {
        Element::new("RowSet")
            .with_attr("table", "Orders")
            .with_child(XmlNode::Element(
                Element::new("Row")
                    .with_text_child("ItemId", "widget")
                    .with_text_child("Quantity", "15"),
            ))
            .with_child(XmlNode::Element(
                Element::new("Row").with_text_child("ItemId", "gadget"),
            ))
    }

    #[test]
    fn navigation() {
        let e = sample();
        assert_eq!(e.attr("table"), Some("Orders"));
        assert_eq!(e.attr("missing"), None);
        assert_eq!(e.element_count(), 2);
        assert_eq!(e.children_named("Row").count(), 2);
        let row = e.child("Row").unwrap();
        assert_eq!(row.child_text("ItemId").as_deref(), Some("widget"));
        assert_eq!(row.child_text("Quantity").as_deref(), Some("15"));
    }

    #[test]
    fn text_content_concatenates() {
        let e = Element::new("a")
            .with_child(XmlNode::text("x"))
            .with_child(XmlNode::Element(
                Element::new("b").with_child(XmlNode::text("y")),
            ));
        assert_eq!(e.text_content(), "xy");
    }

    #[test]
    fn set_attr_replaces() {
        let mut e = Element::new("a").with_attr("k", "1");
        e.set_attr("k", "2");
        e.set_attr("j", "3");
        assert_eq!(e.attr("k"), Some("2"));
        assert_eq!(e.attr("j"), Some("3"));
        assert_eq!(e.attributes.len(), 2);
    }

    #[test]
    fn set_text_replaces_children() {
        let mut e = sample();
        e.set_text("gone");
        assert_eq!(e.children.len(), 1);
        assert_eq!(e.text_content(), "gone");
    }

    #[test]
    fn serialization_escapes() {
        let e = Element::new("a")
            .with_attr("q", "say \"hi\" & <bye>")
            .with_child(XmlNode::text("1 < 2 & 3 > 2"));
        let xml = XmlNode::Element(e).to_xml();
        assert!(xml.contains("&quot;hi&quot;"));
        assert!(xml.contains("1 &lt; 2 &amp; 3 &gt; 2"));
    }

    #[test]
    fn self_closing_when_empty() {
        assert_eq!(XmlNode::Element(Element::new("e")).to_xml(), "<e/>");
    }

    #[test]
    fn pretty_print_has_structure() {
        let xml = XmlNode::Element(sample()).to_pretty_xml();
        assert!(xml.contains("\n  <Row>"));
        assert!(xml.starts_with("<RowSet"));
    }
}
