//! A compact XML parser: elements, attributes, text, comments, CDATA,
//! processing instructions/declarations (skipped), and the five standard
//! entities. Namespaces are not interpreted — prefixed names are kept
//! verbatim, which matches how the paper's tooling treats `ora:`/`bpelx:`
//! prefixes as plain markers.

use crate::error::{XmlError, XmlResult};
use crate::node::{Element, XmlNode};

/// Parse a document and return its root element.
pub fn parse(input: &str) -> XmlResult<Element> {
    let mut p = XmlParser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_misc()?;
    let root = p.element()?;
    p.skip_misc()?;
    if p.pos < p.bytes.len() {
        return Err(XmlError::Parse(format!(
            "trailing content at byte {}",
            p.pos
        )));
    }
    Ok(root)
}

struct XmlParser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> XmlParser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s)
    }

    fn skip_ws(&mut self) {
        while self
            .peek()
            .is_some_and(|c| (c as char).is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    /// Skip whitespace, comments, PIs and the XML declaration.
    fn skip_misc(&mut self) -> XmlResult<()> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_until(">")?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_until(&mut self, end: &str) -> XmlResult<()> {
        match self.input[self.pos..].find(end) {
            Some(i) => {
                self.pos += i + end.len();
                Ok(())
            }
            None => Err(XmlError::Parse(format!(
                "unterminated construct, expected '{end}'"
            ))),
        }
    }

    fn name(&mut self) -> XmlResult<String> {
        let start = self.pos;
        while self.peek().is_some_and(|c| {
            let c = c as char;
            c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')
        }) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(XmlError::Parse(format!("expected name at byte {start}")));
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn element(&mut self) -> XmlResult<Element> {
        if self.peek() != Some(b'<') {
            return Err(XmlError::Parse(format!(
                "expected '<' at byte {}",
                self.pos
            )));
        }
        self.pos += 1;
        let name = self.name()?;
        let mut elem = Element::new(name.clone());

        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() == Some(b'>') {
                        self.pos += 1;
                        return Ok(elem);
                    }
                    return Err(XmlError::Parse(format!(
                        "expected '/>' at byte {}",
                        self.pos
                    )));
                }
                Some(_) => {
                    let attr_name = self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(XmlError::Parse(format!(
                            "expected '=' after attribute '{attr_name}'"
                        )));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self.peek().ok_or_else(|| {
                        XmlError::Parse("unexpected end in attribute value".into())
                    })?;
                    if quote != b'"' && quote != b'\'' {
                        return Err(XmlError::Parse(format!(
                            "attribute '{attr_name}' value must be quoted"
                        )));
                    }
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != quote) {
                        self.pos += 1;
                    }
                    if self.peek() != Some(quote) {
                        return Err(XmlError::Parse(format!(
                            "unterminated attribute value for '{attr_name}'"
                        )));
                    }
                    let value = unescape(&self.input[start..self.pos])?;
                    self.pos += 1;
                    elem.attributes.push((attr_name, value));
                }
                None => return Err(XmlError::Parse("unexpected end in tag".into())),
            }
        }

        // Children until the matching close tag.
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let close = self.name()?;
                if close != name {
                    return Err(XmlError::Parse(format!(
                        "mismatched close tag: expected </{name}>, found </{close}>"
                    )));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(XmlError::Parse(format!("expected '>' after </{close}")));
                }
                self.pos += 1;
                return Ok(elem);
            }
            if self.starts_with("<!--") {
                self.skip_until("-->")?;
                continue;
            }
            if self.starts_with("<![CDATA[") {
                let start = self.pos + 9;
                let end = self.input[start..]
                    .find("]]>")
                    .ok_or_else(|| XmlError::Parse("unterminated CDATA".into()))?;
                elem.children
                    .push(XmlNode::Text(self.input[start..start + end].to_string()));
                self.pos = start + end + 3;
                continue;
            }
            match self.peek() {
                Some(b'<') => {
                    let child = self.element()?;
                    elem.children.push(XmlNode::Element(child));
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != b'<') {
                        self.pos += 1;
                    }
                    let text = unescape(&self.input[start..self.pos])?;
                    // Drop pure-whitespace runs between elements; keep
                    // meaningful text.
                    if !text.trim().is_empty() {
                        elem.children.push(XmlNode::Text(text));
                    }
                }
                None => {
                    return Err(XmlError::Parse(format!(
                        "unexpected end of input inside <{name}>"
                    )))
                }
            }
        }
    }
}

fn unescape(s: &str) -> XmlResult<String> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find('&') {
        out.push_str(&rest[..i]);
        rest = &rest[i..];
        let end = rest
            .find(';')
            .ok_or_else(|| XmlError::Parse(format!("unterminated entity in '{s}'")))?;
        let entity = &rest[1..end];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            e if e.starts_with("#x") || e.starts_with("#X") => {
                let code = u32::from_str_radix(&e[2..], 16)
                    .map_err(|_| XmlError::Parse(format!("bad char reference '&{e};'")))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| XmlError::Parse(format!("invalid char U+{code:X}")))?,
                );
            }
            e if e.starts_with('#') => {
                let code: u32 = e[1..]
                    .parse()
                    .map_err(|_| XmlError::Parse(format!("bad char reference '&{e};'")))?;
                out.push(
                    char::from_u32(code)
                        .ok_or_else(|| XmlError::Parse(format!("invalid char U+{code:X}")))?,
                );
            }
            other => {
                return Err(XmlError::Parse(format!("unknown entity '&{other};'")));
            }
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_document() {
        let e = parse("<a x=\"1\"><b>hi</b><c/></a>").unwrap();
        assert_eq!(e.name, "a");
        assert_eq!(e.attr("x"), Some("1"));
        assert_eq!(e.child_text("b").as_deref(), Some("hi"));
        assert!(e.child("c").unwrap().children.is_empty());
    }

    #[test]
    fn parse_declaration_comments_doctype() {
        let e = parse(
            "<?xml version=\"1.0\"?>\n<!DOCTYPE a>\n<!-- hello -->\n<a><!-- in --><b>x</b></a>",
        )
        .unwrap();
        assert_eq!(e.child_text("b").as_deref(), Some("x"));
    }

    #[test]
    fn parse_entities_and_char_refs() {
        let e = parse("<a q='&quot;&apos;'>&lt;&amp;&gt; &#65;&#x42;</a>").unwrap();
        assert_eq!(e.attr("q"), Some("\"'"));
        assert_eq!(e.text_content(), "<&> AB");
    }

    #[test]
    fn parse_cdata() {
        let e = parse("<sql><![CDATA[SELECT * FROM t WHERE a < 5 AND b = 'x']]></sql>").unwrap();
        assert_eq!(e.text_content(), "SELECT * FROM t WHERE a < 5 AND b = 'x'");
    }

    #[test]
    fn whitespace_between_elements_dropped_but_text_kept() {
        let e = parse("<a>\n  <b>x</b>\n  <c>y z</c>\n</a>").unwrap();
        assert_eq!(e.children.len(), 2);
        assert_eq!(e.child_text("c").as_deref(), Some("y z"));
    }

    #[test]
    fn namespace_prefixes_kept_verbatim() {
        let e = parse("<ora:query xmlns:ora=\"urn:x\"><bpelx:op/></ora:query>").unwrap();
        assert_eq!(e.name, "ora:query");
        assert_eq!(e.child_elements().next().unwrap().name, "bpelx:op");
    }

    #[test]
    fn round_trip_through_serializer() {
        let src = "<a x=\"1&quot;\"><b>hi &amp; bye</b><c/><d>1 &lt; 2</d></a>";
        let e = parse(src).unwrap();
        let xml = crate::XmlNode::Element(e.clone()).to_xml();
        let e2 = parse(&xml).unwrap();
        assert_eq!(e, e2);
    }

    #[test]
    fn parse_errors() {
        assert!(parse("<a>").is_err());
        assert!(parse("<a></b>").is_err());
        assert!(parse("<a x=1></a>").is_err());
        assert!(parse("<a>&bogus;</a>").is_err());
        assert!(parse("<a/><b/>").is_err());
        assert!(parse("").is_err());
        assert!(parse("<a x='1' x2=></a>").is_err());
    }

    #[test]
    fn single_quoted_attributes() {
        let e = parse("<a x='it\"s'/>").unwrap();
        assert_eq!(e.attr("x"), Some("it\"s"));
    }
}
