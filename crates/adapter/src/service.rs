//! The data-adapter service and a process-side call helper.

use flowcore::{
    Activity, ActivityContext, FlowError, FlowResult, Message, ProcessDefinition, ServiceRegistry,
    VarValue,
};
use sqlkernel::{Database, QueryResult, StatementResult, Value};

use crate::envelope::{
    build_request, build_response, parse_request, parse_response, AdapterResponse,
};

/// A data adapter wrapping one database behind a service interface.
#[derive(Clone)]
pub struct DataAdapterService {
    db: Database,
}

impl DataAdapterService {
    /// Wrap a database.
    pub fn new(db: Database) -> DataAdapterService {
        DataAdapterService { db }
    }

    /// Handle one serialized request envelope, returning the serialized
    /// response envelope.
    pub fn handle(&self, request_text: &str) -> FlowResult<String> {
        let req = parse_request(request_text)?;
        let conn = self.db.connect();
        let outcome = match req.operation.as_str() {
            "executeQuery" | "callProcedure" => {
                conn.execute(&req.sql, &req.params).map(|r| match r {
                    StatementResult::Rows(rs) => AdapterResponse::Rows(rs),
                    StatementResult::Affected(n) => AdapterResponse::Affected(n),
                    _ => AdapterResponse::Affected(0),
                })
            }
            "executeUpdate" => conn.execute(&req.sql, &req.params).map(|r| match r {
                StatementResult::Affected(n) => AdapterResponse::Affected(n),
                StatementResult::Rows(rs) => AdapterResponse::Rows(rs),
                _ => AdapterResponse::Affected(0),
            }),
            other => {
                return Err(FlowError::Service(format!(
                    "unknown adapter operation '{other}'"
                )))
            }
        };
        let response = match outcome {
            Ok(r) => r,
            Err(e) => AdapterResponse::Fault(e.to_string()),
        };
        Ok(build_response(&response))
    }
}

/// Register the adapter under `service_name` in a registry. The service
/// expects a scalar part `request` (the envelope text) and returns a
/// scalar part `response`.
pub fn register_data_adapter(
    registry: &mut ServiceRegistry,
    service_name: impl Into<String>,
    db: Database,
) {
    let adapter = DataAdapterService::new(db);
    registry.register_fn(service_name, move |input: &Message| {
        let request = input
            .scalar_part("request")?
            .as_str()
            .ok_or_else(|| FlowError::Service("adapter request must be text".into()))?
            .to_string();
        let response = adapter.handle(&request)?;
        Ok(Message::new().with_part("response", Value::Text(response)))
    });
}

/// Process-side invocation: marshal, call, unmarshal. Returns rows or the
/// affected count.
pub fn call_adapter(
    ctx: &ActivityContext<'_>,
    service_name: &str,
    operation: &str,
    sql: &str,
    params: &[Value],
) -> FlowResult<AdapterResponse> {
    let request = build_request(operation, sql, params);
    let reply = ctx.services.invoke(
        service_name,
        &Message::new().with_part("request", Value::Text(request)),
    )?;
    let text = reply
        .scalar_part("response")?
        .as_str()
        .ok_or_else(|| FlowError::Service("adapter response must be text".into()))?
        .to_string();
    let response = parse_response(&text)?;
    if let AdapterResponse::Fault(msg) = &response {
        return Err(FlowError::Service(format!("adapter fault: {msg}")));
    }
    Ok(response)
}

/// An activity that calls the adapter service and stores a query result
/// (decoded from the envelope) into a variable as an XML RowSet. This is
/// what the running example looks like with adapter technology: the
/// process sees a generic service invocation, not a SQL activity.
pub struct AdapterCall {
    name: String,
    service: String,
    operation: String,
    sql: String,
    param_vars: Vec<String>,
    target_var: Option<String>,
}

impl AdapterCall {
    /// Build an adapter call.
    pub fn new(
        name: impl Into<String>,
        service: impl Into<String>,
        operation: impl Into<String>,
        sql: impl Into<String>,
    ) -> AdapterCall {
        AdapterCall {
            name: name.into(),
            service: service.into(),
            operation: operation.into(),
            sql: sql.into(),
            param_vars: Vec::new(),
            target_var: None,
        }
    }

    /// Builder: bind a scalar variable as the next parameter.
    pub fn param_var(mut self, variable: impl Into<String>) -> AdapterCall {
        self.param_vars.push(variable.into());
        self
    }

    /// Builder: store the decoded result RowSet into a variable.
    pub fn result_into(mut self, variable: impl Into<String>) -> AdapterCall {
        self.target_var = Some(variable.into());
        self
    }
}

impl Activity for AdapterCall {
    fn kind(&self) -> &str {
        "invoke"
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn execute(&self, ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
        let mut params = Vec::with_capacity(self.param_vars.len());
        for v in &self.param_vars {
            params.push(ctx.variables.require_scalar(v)?.clone());
        }
        ctx.note(
            "invoke",
            &self.name,
            format!("adapter {}::{}", self.service, self.operation),
        );
        let response = call_adapter(ctx, &self.service, &self.operation, &self.sql, &params)?;
        match response {
            AdapterResponse::Rows(rs) => {
                if let Some(var) = &self.target_var {
                    ctx.variables
                        .set(var.clone(), VarValue::Xml(xmlval::rowset::encode(&rs)));
                }
            }
            AdapterResponse::Affected(n) => {
                ctx.note("invoke", &self.name, format!("{n} rows affected"));
            }
            AdapterResponse::Fault(_) => unreachable!("faults raised in call_adapter"),
        }
        Ok(())
    }
}

/// The running example realized purely with adapter technology: the same
/// aggregation + supplier ordering flow, but every data operation is a
/// Web service call with envelope marshalling. Used as the Figure 1
/// contrast and by the `inline_vs_adapter` benchmark.
pub fn sample_process_via_adapter(adapter_service: &str) -> ProcessDefinition {
    use flowcore::builtins::{CopyFrom, Invoke, Sequence, Snippet, While};

    let adapter = adapter_service.to_string();
    let adapter_for_insert = adapter.clone();

    let fetch = Snippet::new("bind next tuple", move |ctx| {
        let pos = ctx
            .variables
            .get("pos")
            .and_then(|v| v.as_scalar())
            .and_then(Value::as_i64)
            .unwrap_or(0) as usize;
        let xml = ctx.variables.require_xml("SV_ItemList")?;
        let row = xml
            .as_element()
            .and_then(|e| e.children_named("Row").nth(pos))
            .ok_or_else(|| FlowError::Variable("cursor past end".into()))?
            .clone();
        ctx.variables
            .set("CurrentItem", xmlval::XmlNode::Element(row));
        ctx.variables.set("pos", Value::Int((pos + 1) as i64));
        Ok(())
    });

    let insert_conf = Snippet::new("record confirmation via adapter", move |ctx| {
        let item = xmlval::Path::parse("/Row/ItemId")
            .expect("valid")
            .select_text(ctx.variables.require_xml("CurrentItem")?)
            .unwrap_or_default();
        let qty = xmlval::Path::parse("/Row/Quantity")
            .expect("valid")
            .select_text(ctx.variables.require_xml("CurrentItem")?)
            .unwrap_or_default();
        let conf = ctx.variables.require_scalar("OrderConfirmation")?.clone();
        call_adapter(
            ctx,
            &adapter_for_insert,
            "executeUpdate",
            "INSERT INTO OrderConfirmations (ConfId, ItemId, Quantity, Confirmation) \
             VALUES (NEXTVAL('conf_ids'), ?, ?, ?)",
            &[Value::Text(item), Value::Text(qty), conf],
        )?;
        Ok(())
    });

    let loop_body = Sequence::new("order item")
        .then(
            Invoke::new("Invoke OrderFromSupplier", patterns::ORDER_FROM_SUPPLIER)
                .input(
                    "ItemType",
                    CopyFrom::path("CurrentItem", "/Row/ItemId").expect("valid"),
                )
                .input(
                    "Quantity",
                    CopyFrom::path("CurrentItem", "/Row/Quantity").expect("valid"),
                )
                .output("Confirmation", "OrderConfirmation"),
        )
        .then(insert_conf);

    let body = Sequence::new("main")
        .then(
            AdapterCall::new(
                "query via adapter",
                adapter.clone(),
                "executeQuery",
                "SELECT ItemId, SUM(Quantity) AS Quantity FROM Orders \
                 WHERE Approved = TRUE GROUP BY ItemId ORDER BY ItemId",
            )
            .result_into("SV_ItemList"),
        )
        .then(While::new(
            "while: more items",
            |ctx: &ActivityContext<'_>| {
                let pos = ctx
                    .variables
                    .get("pos")
                    .and_then(|v| v.as_scalar())
                    .and_then(Value::as_i64)
                    .unwrap_or(0) as usize;
                Ok(pos < xmlval::rowset::row_count(ctx.variables.require_xml("SV_ItemList")?))
            },
            Sequence::new("iteration").then(fetch).then(loop_body),
        ));

    ProcessDefinition::new("OrderAggregation/Adapter (Fig. 1 baseline)", body)
}

/// Convenience for tests/benches: a decoded rows response or an error.
pub fn expect_rows(response: AdapterResponse) -> FlowResult<QueryResult> {
    match response {
        AdapterResponse::Rows(rs) => Ok(rs),
        other => Err(FlowError::Service(format!("expected rows, got {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowcore::{Engine, Variables};
    use patterns::probe::ProbeEnv;

    #[test]
    fn adapter_handles_query_update_fault() {
        let env = ProbeEnv::fresh();
        let adapter = DataAdapterService::new(env.db.clone());
        let resp = adapter
            .handle(&build_request(
                "executeQuery",
                "SELECT COUNT(*) FROM Orders",
                &[],
            ))
            .unwrap();
        match parse_response(&resp).unwrap() {
            AdapterResponse::Rows(rs) => assert_eq!(rs.rows[0][0], Value::Int(6)),
            other => panic!("{other:?}"),
        }
        let resp = adapter
            .handle(&build_request(
                "executeUpdate",
                "DELETE FROM Orders WHERE Approved = FALSE",
                &[],
            ))
            .unwrap();
        assert_eq!(parse_response(&resp).unwrap(), AdapterResponse::Affected(2));
        let resp = adapter
            .handle(&build_request("executeQuery", "SELECT * FROM nosuch", &[]))
            .unwrap();
        assert!(matches!(
            parse_response(&resp).unwrap(),
            AdapterResponse::Fault(_)
        ));
        assert!(adapter
            .handle(&build_request("bogusOp", "SELECT 1", &[]))
            .is_err());
    }

    #[test]
    fn running_example_via_adapter_matches_inline_results() {
        let env = ProbeEnv::fresh();
        let mut engine = Engine::with_services(env.engine.services().clone());
        register_data_adapter(engine.services_mut(), "OrdersDataService", env.db.clone());
        let def = sample_process_via_adapter("OrdersDataService");
        let inst = engine.run(&def, Variables::new()).unwrap();
        assert!(inst.is_completed(), "{:?}", inst.outcome);
        assert_eq!(env.db.table_len("OrderConfirmations").unwrap(), 3);
        // The process logic contains only invokes and snippets — data
        // management is separated from the process logic (Sec. II).
        assert!(inst
            .audit
            .events()
            .iter()
            .all(|e| e.kind != "sql" && e.kind != "sqlDatabase" && e.kind != "assign"));
    }

    #[test]
    fn adapter_call_activity_binds_params() {
        let env = ProbeEnv::fresh();
        let mut engine = Engine::new();
        register_data_adapter(engine.services_mut(), "ds", env.db.clone());
        let root = flowcore::builtins::Sequence::new("s")
            .then(flowcore::builtins::Snippet::new("init", |ctx| {
                ctx.variables.set("item", Value::text("widget"));
                Ok(())
            }))
            .then(
                AdapterCall::new(
                    "q",
                    "ds",
                    "executeQuery",
                    "SELECT OrderId FROM Orders WHERE ItemId = ? ORDER BY OrderId",
                )
                .param_var("item")
                .result_into("R"),
            );
        let inst = engine
            .run(&ProcessDefinition::new("t", root), Variables::new())
            .unwrap();
        assert!(inst.is_completed(), "{:?}", inst.outcome);
        let xml = inst.variables.require_xml("R").unwrap();
        assert_eq!(xmlval::rowset::row_count(xml), 3);
    }
}
