//! XML message envelopes for the data-adapter service.
//!
//! Requests carry the SQL text and positional parameters; responses carry
//! either a RowSet or an update count. Both directions are serialized to
//! text and re-parsed, modeling the wire format of a Web service call.

use flowcore::{FlowError, FlowResult};
use sqlkernel::{DataType, QueryResult, Value};
use xmlval::{Element, XmlNode};

/// A parsed adapter request.
#[derive(Debug, Clone, PartialEq)]
pub struct AdapterRequest {
    /// `executeQuery`, `executeUpdate` or `callProcedure`.
    pub operation: String,
    pub sql: String,
    pub params: Vec<Value>,
}

/// A parsed adapter response.
#[derive(Debug, Clone, PartialEq)]
pub enum AdapterResponse {
    /// Query / procedure result.
    Rows(QueryResult),
    /// DML/DDL acknowledgement.
    Affected(usize),
    /// Fault raised by the adapter.
    Fault(String),
}

/// Serialize a request envelope to XML text.
pub fn build_request(operation: &str, sql: &str, params: &[Value]) -> String {
    let mut root = Element::new("dataRequest").with_attr("operation", operation);
    root.children.push(XmlNode::Element(
        Element::new("sql").with_child(XmlNode::text(sql)),
    ));
    for p in params {
        let mut param = Element::new("param");
        match p {
            Value::Null => param.set_attr("null", "true"),
            other => {
                param.set_attr(
                    "type",
                    other.data_type().expect("non-null has a type").sql_name(),
                );
                param.children.push(XmlNode::text(other.render()));
            }
        }
        root.children.push(XmlNode::Element(param));
    }
    XmlNode::Element(root).to_xml()
}

/// Parse a request envelope from XML text.
pub fn parse_request(text: &str) -> FlowResult<AdapterRequest> {
    let root = xmlval::parse(text).map_err(FlowError::from)?;
    if root.name != "dataRequest" {
        return Err(FlowError::Service(format!(
            "expected <dataRequest>, found <{}>",
            root.name
        )));
    }
    let operation = root
        .attr("operation")
        .ok_or_else(|| FlowError::Service("request missing operation".into()))?
        .to_string();
    let sql = root
        .child_text("sql")
        .ok_or_else(|| FlowError::Service("request missing <sql>".into()))?;
    let mut params = Vec::new();
    for p in root.children_named("param") {
        if p.attr("null") == Some("true") {
            params.push(Value::Null);
            continue;
        }
        let ty = p
            .attr("type")
            .and_then(DataType::from_name)
            .unwrap_or(DataType::Text);
        let v = Value::Text(p.text_content())
            .coerce(ty)
            .map_err(FlowError::Service)?;
        params.push(v);
    }
    Ok(AdapterRequest {
        operation,
        sql,
        params,
    })
}

/// Serialize a response envelope to XML text.
pub fn build_response(response: &AdapterResponse) -> String {
    let root = match response {
        AdapterResponse::Rows(rs) => Element::new("dataResponse")
            .with_attr("kind", "rows")
            .with_child(xmlval::rowset::encode(rs)),
        AdapterResponse::Affected(n) => Element::new("dataResponse")
            .with_attr("kind", "affected")
            .with_attr("rows", n.to_string()),
        AdapterResponse::Fault(msg) => Element::new("dataResponse")
            .with_attr("kind", "fault")
            .with_child(XmlNode::Element(
                Element::new("message").with_child(XmlNode::text(msg.clone())),
            )),
    };
    XmlNode::Element(root).to_xml()
}

/// Parse a response envelope from XML text.
pub fn parse_response(text: &str) -> FlowResult<AdapterResponse> {
    let root = xmlval::parse(text).map_err(FlowError::from)?;
    if root.name != "dataResponse" {
        return Err(FlowError::Service(format!(
            "expected <dataResponse>, found <{}>",
            root.name
        )));
    }
    match root.attr("kind") {
        Some("rows") => {
            let rowset = root
                .child("RowSet")
                .ok_or_else(|| FlowError::Service("rows response missing RowSet".into()))?;
            let rs = xmlval::rowset::decode(&XmlNode::Element(rowset.clone()))
                .map_err(FlowError::from)?;
            Ok(AdapterResponse::Rows(rs))
        }
        Some("affected") => {
            let n = root
                .attr("rows")
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| FlowError::Service("affected response missing rows".into()))?;
            Ok(AdapterResponse::Affected(n))
        }
        Some("fault") => Ok(AdapterResponse::Fault(
            root.child_text("message").unwrap_or_default(),
        )),
        other => Err(FlowError::Service(format!(
            "unknown response kind {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let text = build_request(
            "executeQuery",
            "SELECT * FROM t WHERE a = ? AND b = ?",
            &[Value::Int(1), Value::Null],
        );
        let req = parse_request(&text).unwrap();
        assert_eq!(req.operation, "executeQuery");
        assert_eq!(req.params, vec![Value::Int(1), Value::Null]);
        assert!(req.sql.contains("WHERE a = ?"));
    }

    #[test]
    fn request_escapes_sql_text() {
        let text = build_request("executeQuery", "SELECT 'a<b' FROM t WHERE x < 3", &[]);
        let req = parse_request(&text).unwrap();
        assert_eq!(req.sql, "SELECT 'a<b' FROM t WHERE x < 3");
    }

    #[test]
    fn response_round_trips_all_kinds() {
        let rs = QueryResult {
            columns: vec!["a".into()],
            rows: vec![vec![Value::Int(5)], vec![Value::Null]],
        };
        for r in [
            AdapterResponse::Rows(rs),
            AdapterResponse::Affected(7),
            AdapterResponse::Fault("boom".into()),
        ] {
            let text = build_response(&r);
            assert_eq!(parse_response(&text).unwrap(), r);
        }
    }

    #[test]
    fn malformed_envelopes_error() {
        assert!(parse_request("<wrong/>").is_err());
        assert!(parse_request("<dataRequest operation='q'/>").is_err());
        assert!(parse_response("<dataResponse kind='nope'/>").is_err());
        assert!(parse_response("not xml").is_err());
    }
}
