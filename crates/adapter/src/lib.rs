//! `adapter` — the adapter technology of Figure 1: the *other* way to
//! add SQL support to workflow products.
//!
//! *“An adapter realizes a service that encapsulates SQL-specific
//! functionality and that can be called by other processes. Adapters
//! typically mask data management operations as Web services. […] One
//! important characteristic of this approach is that data management
//! issues are separated from the process logic.”* (Sec. II)
//!
//! This crate implements that baseline so the workspace can contrast it
//! with SQL inline support, both qualitatively (Fig. 1) and
//! quantitatively (the `inline_vs_adapter` benchmark). The contrast is
//! honest about marshalling: every request and response crosses the
//! service boundary as **serialized XML text** that is re-parsed on the
//! other side — exactly the envelope cost a Web service interface implies
//! — and the process logic sees only opaque operations, never SQL
//! activities.

pub mod envelope;
pub mod service;

pub use envelope::{
    build_request, build_response, parse_request, parse_response, AdapterRequest, AdapterResponse,
};
pub use service::{
    call_adapter, expect_rows, register_data_adapter, sample_process_via_adapter, AdapterCall,
    DataAdapterService,
};
