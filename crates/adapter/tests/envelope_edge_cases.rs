//! Envelope robustness: the adapter boundary must survive hostile or
//! awkward payloads, because everything crosses it as text.

use adapter::{
    build_request, build_response, parse_request, parse_response, AdapterRequest, AdapterResponse,
    DataAdapterService,
};
use sqlkernel::{Database, QueryResult, Value};

#[test]
fn sql_with_xml_metacharacters_round_trips() {
    let sql = "SELECT * FROM t WHERE a < 3 AND b > 1 AND c = '<&\"quote\">'";
    let text = build_request("executeQuery", sql, &[]);
    let req = parse_request(&text).unwrap();
    assert_eq!(req.sql, sql);
}

#[test]
fn params_preserve_types_and_nulls() {
    let params = vec![
        Value::Int(-42),
        Value::Float(2.5),
        Value::Bool(true),
        Value::Null,
        Value::text("o'brien & <sons>"),
    ];
    let text = build_request("executeUpdate", "INSERT INTO t VALUES (?,?,?,?,?)", &params);
    let req = parse_request(&text).unwrap();
    assert_eq!(
        req,
        AdapterRequest {
            operation: "executeUpdate".into(),
            sql: "INSERT INTO t VALUES (?,?,?,?,?)".into(),
            params,
        }
    );
}

#[test]
fn empty_result_and_wide_rows_round_trip() {
    let empty = AdapterResponse::Rows(QueryResult::empty(vec!["a".into(), "b".into()]));
    assert_eq!(parse_response(&build_response(&empty)).unwrap(), empty);

    let wide = AdapterResponse::Rows(QueryResult {
        columns: (0..12).map(|i| format!("c{i}")).collect(),
        rows: vec![(0..12).map(Value::Int).collect()],
    });
    assert_eq!(parse_response(&build_response(&wide)).unwrap(), wide);
}

#[test]
fn adapter_executes_parameterized_requests_end_to_end() {
    let db = Database::new("edge");
    db.connect()
        .execute_script(
            "CREATE TABLE t (id INT PRIMARY KEY, v TEXT);
             INSERT INTO t VALUES (1, 'a'), (2, 'b');",
        )
        .unwrap();
    let svc = DataAdapterService::new(db);
    let resp = svc
        .handle(&build_request(
            "executeQuery",
            "SELECT v FROM t WHERE id = ?",
            &[Value::Int(2)],
        ))
        .unwrap();
    match parse_response(&resp).unwrap() {
        AdapterResponse::Rows(rs) => assert_eq!(rs.rows, vec![vec![Value::text("b")]]),
        other => panic!("{other:?}"),
    }
}

#[test]
fn fault_text_is_preserved_verbatim() {
    let db = Database::new("edge");
    let svc = DataAdapterService::new(db);
    let resp = svc
        .handle(&build_request("executeQuery", "SELECT <,> FROM", &[]))
        .unwrap();
    match parse_response(&resp).unwrap() {
        AdapterResponse::Fault(msg) => assert!(msg.contains("error"), "{msg}"),
        other => panic!("{other:?}"),
    }
}

#[test]
fn call_procedure_operation_returns_rows() {
    let db = Database::new("edge");
    db.connect()
        .execute_script(
            "CREATE TABLE t (id INT PRIMARY KEY);
             INSERT INTO t VALUES (1), (2), (3);
             CREATE PROCEDURE total() AS BEGIN SELECT COUNT(*) FROM t; END;",
        )
        .unwrap();
    let svc = DataAdapterService::new(db);
    let resp = svc
        .handle(&build_request("callProcedure", "CALL total()", &[]))
        .unwrap();
    match parse_response(&resp).unwrap() {
        AdapterResponse::Rows(rs) => assert_eq!(rs.rows[0][0], Value::Int(3)),
        other => panic!("{other:?}"),
    }
}
