//! The SOA Suite runtime environment: static connection strings resolved
//! against the BPEL server's data source directory.

use std::collections::HashMap;

use flowcore::{ActivityContext, FlowError, FlowResult, ProcessDefinition};
use sqlkernel::Database;

/// Connection-string prefix (Oracle thin-driver style).
pub const SCHEME: &str = "jdbc:oracle:thin:@";

/// Build a connection string.
pub fn connection_string(db_name: &str) -> String {
    format!("{SCHEME}{db_name}")
}

/// Parse a connection string.
pub fn parse_connection_string(s: &str) -> FlowResult<&str> {
    s.strip_prefix(SCHEME).ok_or_else(|| {
        FlowError::Variable(format!(
            "'{s}' is not a valid connection string (expected {SCHEME}<database>)"
        ))
    })
}

/// The database directory of the BPEL server.
#[derive(Debug, Clone, Default)]
pub struct SoaEnvironment {
    databases: HashMap<String, Database>,
}

impl SoaEnvironment {
    /// Empty environment.
    pub fn new() -> SoaEnvironment {
        SoaEnvironment::default()
    }

    /// Register a database.
    pub fn with_database(mut self, db: Database) -> SoaEnvironment {
        self.databases.insert(db.name().to_string(), db);
        self
    }

    /// Resolve a static connection string. Names missing from the
    /// server directory fall back to the process-wide shared handle
    /// registry ([`Database::lookup`]) — never creating, so unknown
    /// names still fail.
    pub fn resolve(&self, conn_string: &str) -> FlowResult<Database> {
        let name = parse_connection_string(conn_string)?;
        if let Some(db) = self.databases.get(name) {
            return Ok(db.clone());
        }
        // `try_lookup`: a poisoned registry surfaces as a DbError
        // instead of a panic, so a crashed shard thread in another
        // stack cannot wedge this resolver.
        Database::try_lookup(name)
            .map_err(FlowError::Sql)?
            .ok_or_else(|| FlowError::Variable(format!("unknown database '{name}'")))
    }

    /// Install into a process definition (setup hook).
    pub fn install(self, def: ProcessDefinition) -> ProcessDefinition {
        let env = self;
        def.with_setup(move |ctx| {
            ctx.extensions.insert(env.clone());
            Ok(())
        })
    }
}

/// Fetch the environment from the instance extensions.
pub fn env_of<'a>(ctx: &'a ActivityContext<'_>) -> FlowResult<&'a SoaEnvironment> {
    ctx.extensions
        .get::<SoaEnvironment>()
        .ok_or_else(|| FlowError::Definition("SOA environment not installed".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connection_strings() {
        let s = connection_string("orders_db");
        assert_eq!(s, "jdbc:oracle:thin:@orders_db");
        assert_eq!(parse_connection_string(&s).unwrap(), "orders_db");
        assert!(parse_connection_string("sqlkernel://x").is_err());
    }

    #[test]
    fn resolution() {
        let env = SoaEnvironment::new().with_database(Database::new("d"));
        assert_eq!(env.resolve("jdbc:oracle:thin:@d").unwrap().name(), "d");
        assert!(env.resolve("jdbc:oracle:thin:@x").is_err());
    }
}
