//! The `bpelx` extension operations (Sec. V-C): Oracle-specific XPath
//! operations inside assign activities *“that allow to update, insert and
//! delete local XML data”* — this is what lets Oracle cover the complete
//! Tuple IUD pattern at an abstract level (Table II).

use flowcore::builtins::CopyFrom;
use flowcore::{Activity, ActivityContext, FlowError, FlowResult, VarValue};
use xmlval::{path::element_by_chain_mut, Element, Path, XmlNode};

/// One local-data mutation.
pub enum BpelxOp {
    /// `bpelx:copy` — set the text of the selected element(s).
    Update { path: Path, value: CopyFrom },
    /// `bpelx:insertChildInto` — append an element under the selected
    /// parent(s).
    InsertChild { path: Path, child: Element },
    /// `bpelx:remove` — delete the selected element(s).
    Remove { path: Path },
}

impl BpelxOp {
    fn display(&self) -> String {
        match self {
            BpelxOp::Update { path, .. } => format!("bpelx:copy → {path}"),
            BpelxOp::InsertChild { path, child } => {
                format!("bpelx:insertChildInto <{}> under {path}", child.name)
            }
            BpelxOp::Remove { path } => format!("bpelx:remove {path}"),
        }
    }
}

/// An assign activity carrying `bpelx` operations over one XML variable.
pub struct BpelxAssign {
    name: String,
    variable: String,
    ops: Vec<BpelxOp>,
}

impl BpelxAssign {
    /// Operations over `variable`.
    pub fn new(name: impl Into<String>, variable: impl Into<String>) -> BpelxAssign {
        BpelxAssign {
            name: name.into(),
            variable: variable.into(),
            ops: Vec::new(),
        }
    }

    /// Builder: update the text of selected elements.
    pub fn update(mut self, path: &str, value: CopyFrom) -> FlowResult<BpelxAssign> {
        self.ops.push(BpelxOp::Update {
            path: Path::parse(path)?,
            value,
        });
        Ok(self)
    }

    /// Builder: insert a child under selected parents.
    pub fn insert_child(mut self, path: &str, child: Element) -> FlowResult<BpelxAssign> {
        self.ops.push(BpelxOp::InsertChild {
            path: Path::parse(path)?,
            child,
        });
        Ok(self)
    }

    /// Builder: remove selected elements.
    pub fn remove(mut self, path: &str) -> FlowResult<BpelxAssign> {
        self.ops.push(BpelxOp::Remove {
            path: Path::parse(path)?,
        });
        Ok(self)
    }
}

impl Activity for BpelxAssign {
    fn kind(&self) -> &str {
        "assign"
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn execute(&self, ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
        for op in &self.ops {
            ctx.note("assign", &self.name, op.display());
            // Pre-compute any source value before borrowing the target.
            let update_text = match op {
                BpelxOp::Update { value, .. } => Some(match value.read(ctx.variables)? {
                    VarValue::Scalar(v) => v.render(),
                    VarValue::Xml(x) => x.text_content(),
                    VarValue::Null => String::new(),
                    VarValue::Opaque(_) => {
                        return Err(FlowError::Variable(
                            "cannot write an opaque handle into XML".into(),
                        ))
                    }
                }),
                _ => None,
            };

            let xml = ctx.variables.require_xml_mut(&self.variable)?;
            let root = xml.as_element_mut().ok_or_else(|| {
                FlowError::Variable(format!("variable '{}' is not an element", self.variable))
            })?;
            match op {
                BpelxOp::Update { path, .. } => {
                    let chains = path.select_chains(root)?;
                    if chains.is_empty() {
                        return Err(FlowError::Variable(format!(
                            "bpelx:copy selected nothing via {path}"
                        )));
                    }
                    let text = update_text.expect("computed above");
                    for chain in chains {
                        if let Some(el) = element_by_chain_mut(root, &chain) {
                            el.set_text(text.clone());
                        }
                    }
                }
                BpelxOp::InsertChild { path, child } => {
                    let chains = path.select_chains(root)?;
                    if chains.is_empty() {
                        return Err(FlowError::Variable(format!(
                            "bpelx:insertChildInto selected nothing via {path}"
                        )));
                    }
                    for chain in chains {
                        if let Some(el) = element_by_chain_mut(root, &chain) {
                            el.children.push(XmlNode::Element(child.clone()));
                        }
                    }
                }
                BpelxOp::Remove { path } => {
                    let mut chains = path.select_chains(root)?;
                    if chains.is_empty() {
                        return Err(FlowError::Variable(format!(
                            "bpelx:remove selected nothing via {path}"
                        )));
                    }
                    // Remove deepest-last so earlier indices stay valid:
                    // sort descending by the chain itself.
                    chains.sort();
                    for chain in chains.into_iter().rev() {
                        let (last, parent_chain) =
                            chain.split_last().expect("chains select non-root nodes");
                        if let Some(parent) = element_by_chain_mut(root, parent_chain) {
                            if *last < parent.children.len() {
                                parent.children.remove(*last);
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowcore::{Engine, ProcessDefinition, Variables};
    use sqlkernel::{QueryResult, Value};

    fn rowset() -> XmlNode {
        xmlval::rowset::encode(&QueryResult {
            columns: vec!["ItemId".into(), "Quantity".into()],
            rows: vec![
                vec![Value::text("gadget"), Value::Int(3)],
                vec![Value::text("widget"), Value::Int(15)],
            ],
        })
    }

    fn run(root: impl Activity + 'static) -> flowcore::CompletedInstance {
        let def = ProcessDefinition::new("t", root);
        let mut vars = Variables::new();
        vars.set("SV", rowset());
        Engine::new().run(&def, vars).unwrap()
    }

    #[test]
    fn update_insert_delete_cover_tuple_iud() {
        let new_row = Element::new("Row")
            .with_text_child("ItemId", "cog")
            .with_text_child("Quantity", "7");
        let act = BpelxAssign::new("a", "SV")
            .update(
                "/RowSet/Row[1]/Quantity",
                CopyFrom::Literal(Value::Int(99).into()),
            )
            .unwrap()
            .insert_child("/RowSet", new_row)
            .unwrap()
            .remove("/RowSet/Row[2]")
            .unwrap();
        let inst = run(act);
        assert!(inst.is_completed(), "{:?}", inst.outcome);
        let xml = inst.variables.require_xml("SV").unwrap();
        let root = xml.as_element().unwrap();
        let rows: Vec<String> = Path::parse("/RowSet/Row/ItemId")
            .unwrap()
            .select_strings(root);
        assert_eq!(rows, vec!["gadget", "cog"]);
        assert_eq!(
            Path::parse("/RowSet/Row[1]/Quantity")
                .unwrap()
                .select_strings(root),
            vec!["99"]
        );
    }

    #[test]
    fn remove_multiple_selections() {
        let act = BpelxAssign::new("a", "SV").remove("/RowSet/Row").unwrap();
        let inst = run(act);
        let xml = inst.variables.require_xml("SV").unwrap();
        assert_eq!(xmlval::rowset::row_count(xml), 0);
    }

    #[test]
    fn empty_selection_faults() {
        let act = BpelxAssign::new("a", "SV").remove("/RowSet/Nope").unwrap();
        let inst = run(act);
        assert!(inst.is_faulted());
    }

    #[test]
    fn update_from_another_variable() {
        let act = BpelxAssign::new("a", "SV")
            .update("/RowSet/Row[2]/Quantity", CopyFrom::Variable("n".into()))
            .unwrap();
        let def = ProcessDefinition::new("t", act);
        let mut vars = Variables::new();
        vars.set("SV", rowset());
        vars.set("n", Value::Int(42));
        let inst = Engine::new().run(&def, vars).unwrap();
        assert!(inst.is_completed());
        let xml = inst.variables.require_xml("SV").unwrap();
        assert_eq!(
            xmlval::rowset::cell_value(xml, 1, "Quantity").unwrap(),
            Value::Int(42)
        );
    }
}
