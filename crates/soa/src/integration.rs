//! [`SqlIntegration`] implementation for the Oracle SOA Suite style:
//! Table I column, Figure 7 architecture, and executable demonstrations
//! of all nine data management patterns (Sec. V-C).

use flowcore::builtins::{Assign, CopyFrom, CopyTo, Sequence, Snippet};
use flowcore::{CompletedInstance, Outcome, ProcessDefinition, Variables};
use patterns::{
    Architecture, DataPattern, Demonstration, ProbeEnv, ProbeError, ProductInfo, SqlIntegration,
    SupportLevel, SupportMatrix,
};
use sqlkernel::Value;
use xmlval::Element;

use crate::bpelx::BpelxAssign;
use crate::cursor::rowset_while;
use crate::env::{connection_string, SoaEnvironment};
use crate::functions::{ExtFunction, SoaAssign};

/// The Oracle SOA Suite integration style.
pub struct OracleProduct;

const MECH_EXT: &str = "Assign (XPath Ext. Functions)";
const MECH_BPEL_XPATH: &str = "Assign (BPEL-specific XPath)";
const MECH_WORKAROUND: &str = "Only workarounds possible";

fn run(env: &ProbeEnv, def: ProcessDefinition) -> Result<CompletedInstance, ProbeError> {
    let inst = env.engine.run(&def, Variables::new())?;
    match inst.outcome {
        Outcome::Completed => Ok(inst),
        ref other => Err(ProbeError(format!("instance ended {other:?}"))),
    }
}

fn deploy(env: &ProbeEnv, root: impl flowcore::Activity + 'static) -> ProcessDefinition {
    SoaEnvironment::new()
        .with_database(env.db.clone())
        .install(ProcessDefinition::new("probe", root))
}

fn conn(env: &ProbeEnv) -> String {
    connection_string(env.db.name())
}

fn fill_item_list(env: &ProbeEnv) -> SoaAssign {
    SoaAssign::new(
        "Assign_1",
        ExtFunction::QueryDatabase {
            connection: conn(env),
            sql: crate::sample::ASSIGN_1_SQL.into(),
        },
        "SV_ItemList",
    )
}

fn xsql_page(body: &str) -> String {
    format!("<xsql:page xmlns:xsql=\"urn:oracle-xsql\">{body}</xsql:page>")
}

impl SqlIntegration for OracleProduct {
    fn product_info(&self) -> ProductInfo {
        ProductInfo {
            vendor: "Oracle".into(),
            product: "SOA Suite".into(),
            workflow_language: "BPEL".into(),
            process_modeling: "graphical, (markup)".into(),
            design_tool: "Process Designer".into(),
            sql_inline_support: vec!["XPath Extension Functions".into()],
            external_dataset_reference: "static text".into(),
            materialized_set_representation: "proprietary XML RowSet".into(),
            external_datasource_reference: "static".into(),
            additional_features: vec![],
        }
    }

    fn architecture(&self) -> Architecture {
        // Figure 7: Process Modeling and Execution in Oracle SOA Suite.
        Architecture::new("Oracle SOA Suite (Fig. 7)")
            .layer(
                "BPEL Designer (JDeveloper / Eclipse plug-in)",
                &["visual BPEL construction", "deployment"],
            )
            .layer(
                "BPEL Process Manager (BPEL Server)",
                &[
                    "Core BPEL Engine",
                    "WSDL Binding Framework (protocols, message formats)",
                    "Integration Services (XML/XSLT transformations)",
                    "XSQL Framework",
                    "adapters (files, FTP, database tables)",
                ],
            )
            .layer("J2EE Application Server", &["runtime platform"])
    }

    fn support_matrix(&self) -> SupportMatrix {
        patterns::paper::oracle_support()
    }

    fn demonstrate(
        &self,
        pattern: DataPattern,
        env: &mut ProbeEnv,
    ) -> Result<Vec<Demonstration>, ProbeError> {
        match pattern {
            DataPattern::Query => {
                let def = deploy(env, fill_item_list(env));
                let inst = run(env, def)?;
                let n = xmlval::rowset::row_count(inst.variables.require_xml("SV_ItemList")?);
                if n != 3 {
                    return Err(ProbeError(format!("query-database returned {n} rows")));
                }
                Ok(vec![Demonstration::new(
                    DataPattern::Query,
                    MECH_EXT,
                    SupportLevel::Native,
                )
                .evidence("ora:query-database executed the aggregation query inside an assign")
                .evidence(
                    "result materialized as XML RowSet (3 numbered row elements)",
                )])
            }
            DataPattern::SetIud => {
                let def = deploy(
                    env,
                    SoaAssign::new(
                        "upd",
                        ExtFunction::ProcessXsql {
                            connection: conn(env),
                            page: xsql_page(
                                "<xsql:dml>UPDATE Orders SET Approved = TRUE \
                                 WHERE Approved = FALSE</xsql:dml>",
                            ),
                            params: vec![],
                        },
                        "Result",
                    ),
                );
                run(env, def)?;
                let n = env
                    .db
                    .connect()
                    .query("SELECT COUNT(*) FROM Orders WHERE Approved = TRUE", &[])?
                    .single_value()?
                    .clone();
                if n != Value::Int(6) {
                    return Err(ProbeError(format!("{n} approved after update")));
                }
                Ok(vec![Demonstration::new(
                    DataPattern::SetIud,
                    MECH_EXT,
                    SupportLevel::Native,
                )
                .evidence("ora:processXSQL executed a set-oriented UPDATE")])
            }
            DataPattern::DataSetup => {
                let def = deploy(
                    env,
                    SoaAssign::new(
                        "ddl",
                        ExtFunction::ProcessXsql {
                            connection: conn(env),
                            page: xsql_page(
                                "<xsql:ddl>CREATE TABLE audit_log (Id INT PRIMARY KEY, \
                                 Note TEXT)</xsql:ddl>",
                            ),
                            params: vec![],
                        },
                        "Result",
                    ),
                );
                run(env, def)?;
                if !env.db.has_table("audit_log") {
                    return Err(ProbeError("DDL did not run".into()));
                }
                Ok(vec![Demonstration::new(
                    DataPattern::DataSetup,
                    MECH_EXT,
                    SupportLevel::Native,
                )
                .evidence(
                    "ora:processXSQL executed CREATE TABLE during process execution",
                )])
            }
            DataPattern::StoredProcedure => {
                let def = deploy(
                    env,
                    SoaAssign::new(
                        "call",
                        ExtFunction::ProcessXsql {
                            connection: conn(env),
                            page: xsql_page("<xsql:call>CALL item_total({@item})</xsql:call>"),
                            params: vec![(
                                "item".into(),
                                CopyFrom::Literal(Value::text("widget").into()),
                            )],
                        },
                        "Result",
                    ),
                );
                let inst = run(env, def)?;
                let xml = inst.variables.require_xml("Result")?;
                let rowset = xml
                    .as_element()
                    .and_then(|e| e.child("RowSet"))
                    .ok_or_else(|| ProbeError("no RowSet in XSQL result".into()))?;
                let qty = xmlval::rowset::cell_value(
                    &xmlval::XmlNode::Element(rowset.clone()),
                    0,
                    "Quantity",
                )?;
                if qty != Value::Int(15) {
                    return Err(ProbeError(format!("procedure returned {qty}")));
                }
                Ok(vec![Demonstration::new(
                    DataPattern::StoredProcedure,
                    MECH_EXT,
                    SupportLevel::Native,
                )
                .evidence(
                    "ora:processXSQL called item_total('widget'); RowSet result returned",
                )])
            }
            DataPattern::SetRetrieval => {
                let def = deploy(env, fill_item_list(env));
                let inst = run(env, def)?;
                let xml = inst.variables.require_xml("SV_ItemList")?;
                // Every output tuple is a numbered XML element with a
                // text node per attribute value (Sec. V-C).
                let second_num = xml
                    .as_element()
                    .and_then(|e| e.children_named("Row").nth(1))
                    .and_then(|r| r.attr("num").map(str::to_string));
                if second_num.as_deref() != Some("2") {
                    return Err(ProbeError("RowSet rows are not numbered".into()));
                }
                Ok(vec![Demonstration::new(
                    DataPattern::SetRetrieval,
                    MECH_EXT,
                    SupportLevel::Native,
                )
                .evidence(
                    "query-database always materializes the result as an XML RowSet in \
                     the process space",
                )])
            }
            DataPattern::SequentialSetAccess => {
                let body = Snippet::new("collect", |ctx| {
                    let item = xmlval::Path::parse("/Row/ItemId")
                        .expect("valid")
                        .select_text(ctx.variables.require_xml("CurrentItem")?)
                        .unwrap_or_default();
                    let seen = ctx
                        .variables
                        .get("seen")
                        .and_then(|v| v.as_scalar())
                        .map(Value::render)
                        .unwrap_or_default();
                    ctx.variables
                        .set("seen", Value::Text(format!("{seen}{item},")));
                    Ok(())
                });
                let def = deploy(
                    env,
                    Sequence::new("s")
                        .then(fill_item_list(env))
                        .then(rowset_while("loop", "SV_ItemList", "CurrentItem", body)),
                );
                let inst = run(env, def)?;
                let seen = inst.variables.require_scalar("seen")?.render();
                if seen != "gadget,sprocket,widget," {
                    return Err(ProbeError(format!("visited {seen}")));
                }
                Ok(vec![Demonstration::new(
                    DataPattern::SequentialSetAccess,
                    MECH_WORKAROUND,
                    SupportLevel::Workaround,
                )
                .evidence(
                    "while activity + Oracle-specific Java-Snippet iterated the RowSet",
                )])
            }
            DataPattern::RandomSetAccess => {
                // getVariableData inside a plain BPEL assign.
                let def = deploy(
                    env,
                    Sequence::new("s").then(fill_item_list(env)).then(
                        Assign::new("getVariableData").copy(
                            crate::functions::get_variable_data(
                                "SV_ItemList",
                                "/RowSet/Row[2]/ItemId",
                            )
                            .expect("valid"),
                            CopyTo::Variable("picked".into()),
                        ),
                    ),
                );
                let inst = run(env, def)?;
                if inst.variables.require_scalar("picked")?.render() != "sprocket" {
                    return Err(ProbeError("random access picked wrong row".into()));
                }
                Ok(vec![Demonstration::new(
                    DataPattern::RandomSetAccess,
                    MECH_BPEL_XPATH,
                    SupportLevel::Native,
                )
                .evidence(
                    "getVariableData(/RowSet/Row[2]/ItemId) in an assign activity",
                )])
            }
            DataPattern::TupleIud => {
                // Realization 1: complete Tuple IUD via bpelx operations.
                let new_row = Element::new("Row")
                    .with_text_child("ItemId", "cog")
                    .with_text_child("Quantity", "7");
                let bpelx = BpelxAssign::new("bpelx ops", "SV_ItemList")
                    .update(
                        "/RowSet/Row[1]/Quantity",
                        CopyFrom::Literal(Value::Int(99).into()),
                    )
                    .expect("valid")
                    .insert_child("/RowSet", new_row)
                    .expect("valid")
                    .remove("/RowSet/Row[2]")
                    .expect("valid");
                let def = deploy(
                    env,
                    Sequence::new("s").then(fill_item_list(env)).then(bpelx),
                );
                let inst = run(env, def)?;
                let xml = inst.variables.require_xml("SV_ItemList")?;
                let items = xmlval::Path::parse("/RowSet/Row/ItemId")
                    .expect("valid")
                    .select_strings(xml.as_element().expect("rowset"));
                if items != vec!["gadget", "widget", "cog"] {
                    return Err(ProbeError(format!("bpelx IUD produced {items:?}")));
                }

                // Realization 2: update-only via plain BPEL XPath assign.
                let def = deploy(
                    env,
                    Sequence::new("s").then(fill_item_list(env)).then(
                        Assign::new("xpath update").copy(
                            CopyFrom::Literal(Value::Int(5).into()),
                            CopyTo::path("SV_ItemList", "/RowSet/Row[2]/Quantity").expect("valid"),
                        ),
                    ),
                );
                let inst = run(env, def)?;
                let v = xmlval::rowset::cell_value(
                    inst.variables.require_xml("SV_ItemList")?,
                    1,
                    "Quantity",
                )?;
                if v != Value::Int(5) {
                    return Err(ProbeError(format!("assign update produced {v}")));
                }

                Ok(vec![
                    Demonstration::new(DataPattern::TupleIud, MECH_EXT, SupportLevel::Native)
                        .evidence("bpelx update/insertChildInto/remove covered the full pattern"),
                    Demonstration::new(
                        DataPattern::TupleIud,
                        MECH_BPEL_XPATH,
                        SupportLevel::Partial(patterns::paper::FOOTNOTE_ONLY_UPDATE.into()),
                    )
                    .evidence("plain assign + XPath updated a tuple (update only)"),
                ])
            }
            DataPattern::Synchronization => {
                // Manual processXSQL pushing cache changes back
                // (Sec. V-C's workaround).
                let body = Sequence::new("sync")
                    .then(fill_item_list(env))
                    .then(Assign::new("change cache").copy(
                        CopyFrom::Literal(Value::Int(100).into()),
                        CopyTo::path("SV_ItemList", "/RowSet/Row[3]/Quantity").expect("valid"),
                    ))
                    .then(SoaAssign::new(
                        "write back",
                        ExtFunction::ProcessXsql {
                            connection: conn(env),
                            page: xsql_page(
                                "<xsql:dml>UPDATE Orders SET Quantity = {@qty} \
                                     WHERE ItemId = {@item} AND Approved = TRUE</xsql:dml>",
                            ),
                            params: vec![
                                (
                                    "qty".into(),
                                    crate::functions::get_variable_data(
                                        "SV_ItemList",
                                        "/RowSet/Row[3]/Quantity",
                                    )
                                    .expect("valid"),
                                ),
                                (
                                    "item".into(),
                                    crate::functions::get_variable_data(
                                        "SV_ItemList",
                                        "/RowSet/Row[3]/ItemId",
                                    )
                                    .expect("valid"),
                                ),
                            ],
                        },
                        "SyncResult",
                    ));
                let def = deploy(env, body);
                run(env, def)?;
                let n = env
                    .db
                    .connect()
                    .query(
                        "SELECT COUNT(*) FROM Orders WHERE ItemId = 'widget' AND Quantity = 100",
                        &[],
                    )?
                    .single_value()?
                    .clone();
                if n != Value::Int(2) {
                    return Err(ProbeError(format!("sync wrote {n} rows")));
                }
                Ok(vec![Demonstration::new(
                    DataPattern::Synchronization,
                    MECH_WORKAROUND,
                    SupportLevel::Workaround,
                )
                .evidence(
                    "manually added processXSQL ensured cache updates reached the Orders table",
                )])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_matrix_is_fully_demonstrated() {
        let demos = patterns::verify_support_matrix(&OracleProduct).unwrap();
        assert_eq!(demos.len(), 10); // Tuple IUD has two realizations
    }

    #[test]
    fn oracle_matrix_matches_paper() {
        assert_eq!(
            OracleProduct.support_matrix(),
            patterns::paper::oracle_support()
        );
    }

    #[test]
    fn architecture_and_info() {
        let a = OracleProduct.architecture();
        assert!(a.render().contains("Core BPEL Engine"));
        assert!(a.render().contains("XSQL Framework"));
        let i = OracleProduct.product_info();
        assert_eq!(i.sql_inline_support, vec!["XPath Extension Functions"]);
        assert_eq!(i.materialized_set_representation, "proprietary XML RowSet");
    }
}
