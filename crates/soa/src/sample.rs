//! The Figure 8 sample workflow: the running example realized with
//! Oracle SOA Suite technology.
//!
//! All tables are identified by name as static text. `Assign_1` calls
//! `ora:query-database` and stores the XML RowSet in `SV_ItemList`; a
//! while activity with an Oracle-specific Java-Snippet iterates; `Invoke`
//! calls `OrderFromSupplier`; `Assign_2` calls `ora:processXSQL` with an
//! INSERT whose parameters come from `CurrentItem` and
//! `OrderConfirmation`, and `Status` receives the return status.

use flowcore::builtins::{Invoke, Sequence};
use flowcore::ProcessDefinition;

use crate::cursor::rowset_while;
use crate::env::{connection_string, SoaEnvironment};
use crate::functions::{get_variable_data, ExtFunction, SoaAssign};

/// The query executed by `Assign_1` via `ora:query-database`.
pub const ASSIGN_1_SQL: &str = "SELECT ItemId, SUM(Quantity) AS Quantity FROM Orders \
                                WHERE Approved = TRUE GROUP BY ItemId ORDER BY ItemId";

/// The XSQL page executed by `Assign_2` via `ora:processXSQL`.
pub const ASSIGN_2_XSQL: &str = "<xsql:page xmlns:xsql=\"urn:oracle-xsql\">\
    <xsql:dml>INSERT INTO OrderConfirmations (ConfId, ItemId, Quantity, Confirmation) \
    VALUES (NEXTVAL('conf_ids'), {@item}, {@quantity}, {@confirmation})</xsql:dml>\
    </xsql:page>";

/// Build the Figure 8 process over `db` (probe schema expected).
pub fn figure8_process(db: sqlkernel::Database) -> ProcessDefinition {
    let conn = connection_string(db.name());
    let env = SoaEnvironment::new().with_database(db);

    let loop_body = Sequence::new("order item")
        .then(
            Invoke::new("Invoke OrderFromSupplier", patterns::ORDER_FROM_SUPPLIER)
                .input(
                    "ItemType",
                    get_variable_data("CurrentItem", "/Row/ItemId").expect("valid path"),
                )
                .input(
                    "Quantity",
                    get_variable_data("CurrentItem", "/Row/Quantity").expect("valid path"),
                )
                .output("Confirmation", "OrderConfirmation"),
        )
        .then(
            SoaAssign::new(
                "Assign_2",
                ExtFunction::ProcessXsql {
                    connection: conn.clone(),
                    page: ASSIGN_2_XSQL.into(),
                    params: vec![
                        (
                            "item".into(),
                            get_variable_data("CurrentItem", "/Row/ItemId").expect("valid path"),
                        ),
                        (
                            "quantity".into(),
                            get_variable_data("CurrentItem", "/Row/Quantity").expect("valid path"),
                        ),
                        (
                            "confirmation".into(),
                            flowcore::builtins::CopyFrom::Variable("OrderConfirmation".into()),
                        ),
                    ],
                },
                "Assign2Result",
            )
            .with_status("Status"),
        );

    let body = Sequence::new("main")
        .then(SoaAssign::new(
            "Assign_1",
            ExtFunction::QueryDatabase {
                connection: conn,
                sql: ASSIGN_1_SQL.into(),
            },
            "SV_ItemList",
        ))
        .then(rowset_while(
            "while: more rows in SV_ItemList",
            "SV_ItemList",
            "CurrentItem",
            loop_body,
        ));

    env.install(ProcessDefinition::new(
        "OrderAggregation/SOA (Fig. 8)",
        body,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowcore::Variables;
    use patterns::probe::{expected_item_list, ProbeEnv};
    use sqlkernel::Value;

    #[test]
    fn figure8_end_to_end() {
        let env = ProbeEnv::fresh();
        let def = figure8_process(env.db.clone());
        let inst = env.engine.run(&def, Variables::new()).unwrap();
        assert!(inst.is_completed(), "{:?}", inst.outcome);

        assert_eq!(
            env.confirmations(),
            vec![
                "confirmed:gadget:3",
                "confirmed:sprocket:2",
                "confirmed:widget:15"
            ]
        );

        let conn = env.db.connect();
        let rs = conn
            .query(
                "SELECT ItemId, Quantity, Confirmation FROM OrderConfirmations ORDER BY ItemId",
                &[],
            )
            .unwrap();
        let want: Vec<(String, i64)> = expected_item_list()
            .into_iter()
            .map(|(s, n)| (s.to_string(), n))
            .collect();
        let got: Vec<(String, i64)> = rs
            .rows
            .iter()
            .map(|r| (r[0].render(), r[1].as_i64().unwrap()))
            .collect();
        assert_eq!(got, want);

        // Status of the last processXSQL call.
        assert_eq!(
            inst.variables.require_scalar("Status").unwrap(),
            &Value::text("OK")
        );

        // Oracle's audit profile: assigns host the SQL, no sql activity
        // kind at all, Java-Snippets for iteration.
        assert_eq!(inst.audit.completed_count("assign"), 1 + 3);
        assert_eq!(inst.audit.completed_count("sql"), 0);
        assert_eq!(inst.audit.completed_count("sqlDatabase"), 0);
        assert!(inst.audit.events().iter().any(|e| e.kind == "java-snippet"));
    }

    #[test]
    fn figure8_status_surfaces_supplier_data() {
        // Confirmation strings end up in the table via {@confirmation}.
        let env = ProbeEnv::fresh();
        let def = figure8_process(env.db.clone());
        env.engine.run(&def, Variables::new()).unwrap();
        let conn = env.db.connect();
        let rs = conn
            .query(
                "SELECT Confirmation FROM OrderConfirmations WHERE ItemId = 'widget'",
                &[],
            )
            .unwrap();
        assert_eq!(
            rs.single_value().unwrap(),
            &Value::text("confirmed:widget:15")
        );
    }
}
