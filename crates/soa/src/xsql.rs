//! The XSQL framework (Sec. V-B item 4): *“accesses an XML file, which
//! includes an SQL statement, executes it … and returns its result in
//! XML. The XSQL Framework combines XML, XSLT, and SQL. It generates XML
//! results from parameterized SQL queries and supports DML and DDL
//! operations as well as stored procedures.”*
//!
//! An XSQL page is an XML document whose action elements carry SQL:
//!
//! ```xml
//! <xsql:page xmlns:xsql="urn:oracle-xsql">
//!   <xsql:query>SELECT * FROM Orders WHERE ItemId = {@item}</xsql:query>
//!   <xsql:dml>INSERT INTO log VALUES ({@item}, {@qty})</xsql:dml>
//!   <xsql:ddl>CREATE TABLE t (a INT)</xsql:ddl>
//!   <xsql:call>CALL item_total({@item})</xsql:call>
//! </xsql:page>
//! ```
//!
//! `{@name}` references are replaced by the SQL literal of the bound
//! parameter before execution. The page result is an `<xsql-results>`
//! document with one child per action: an XML RowSet for queries and
//! result-returning calls, a `<status rows="…"/>` element for DML/DDL.

use flowcore::retry::RetryRuntime;
use sqlkernel::{Database, StatementResult, Value};
use xmlval::{Element, XmlNode};

use flowcore::{FlowError, FlowResult};

/// The recognized action element names.
const ACTIONS: [&str; 4] = ["xsql:query", "xsql:dml", "xsql:ddl", "xsql:call"];

/// Execute an XSQL page text against a database with named parameters.
pub fn process_xsql(db: &Database, page: &str, params: &[(String, Value)]) -> FlowResult<XmlNode> {
    let mut log = Vec::new();
    process_page(db, page, params, None, &mut log, false)
}

/// [`process_xsql`] with a retry policy: each action retries transient
/// failures under `retry`, and the recovery trace is appended to `log`
/// for the caller's audit trail.
pub fn process_xsql_with_retry(
    db: &Database,
    page: &str,
    params: &[(String, Value)],
    retry: &mut RetryRuntime,
    log: &mut Vec<String>,
) -> FlowResult<XmlNode> {
    process_page(db, page, params, Some(retry), log, true)
}

/// Execute a page's actions on an EXISTING connection, joining whatever
/// transaction it has open (no `BEGIN`/`COMMIT` is issued when the
/// connection is already inside one). This is the dehydration hook: the
/// durable page runner executes each page inside its step transaction so
/// the page's effects and the instance checkpoint commit together.
pub fn process_xsql_on(
    db: &Database,
    conn: &sqlkernel::Connection,
    page: &str,
    params: &[(String, Value)],
) -> FlowResult<XmlNode> {
    let mut log = Vec::new();
    process_page_on(db, conn, page, params, None, &mut log, true)
}

/// Shared page processor. With `atomic`, the whole page runs as one
/// transaction: any action failing (after its retries, when a runtime is
/// given) rolls back every earlier action of the page.
fn process_page(
    db: &Database,
    page: &str,
    params: &[(String, Value)],
    retry: Option<&mut RetryRuntime>,
    log: &mut Vec<String>,
    atomic: bool,
) -> FlowResult<XmlNode> {
    let conn = db.connect();
    process_page_on(db, &conn, page, params, retry, log, atomic)
}

fn process_page_on(
    db: &Database,
    conn: &sqlkernel::Connection,
    page: &str,
    params: &[(String, Value)],
    mut retry: Option<&mut RetryRuntime>,
    log: &mut Vec<String>,
    atomic: bool,
) -> FlowResult<XmlNode> {
    let doc = xmlval::parse(page).map_err(FlowError::from)?;
    if doc.name != "xsql:page" {
        return Err(FlowError::Definition(format!(
            "XSQL page must have an <xsql:page> root, found <{}>",
            doc.name
        )));
    }
    let own_txn = atomic && !conn.in_transaction();
    if own_txn {
        conn.execute("BEGIN", &[])?;
    }
    let body = (|| -> FlowResult<Element> {
        let mut results = Element::new("xsql-results");
        let mut executed = 0usize;
        for action in doc.child_elements() {
            if !ACTIONS.contains(&action.name.as_str()) {
                return Err(FlowError::Definition(format!(
                    "unknown XSQL action <{}>",
                    action.name
                )));
            }
            let sql = substitute_params(&action.text_content(), params)?;
            let result = match retry.as_deref_mut() {
                Some(rt) => {
                    let (r, report) = rt.run(db.name(), Some(db), || {
                        conn.execute(&sql, &[]).map_err(FlowError::from)
                    });
                    log.extend(report.log);
                    r?
                }
                None => conn.execute(&sql, &[]).map_err(FlowError::from)?,
            };
            executed += 1;
            match result {
                StatementResult::Rows(rs) => {
                    results.children.push(xmlval::rowset::encode(&rs));
                }
                StatementResult::Affected(n) => {
                    results.children.push(XmlNode::Element(
                        Element::new("status")
                            .with_attr("action", action.name.clone())
                            .with_attr("rows", n.to_string()),
                    ));
                }
                StatementResult::Ddl => {
                    results.children.push(XmlNode::Element(
                        Element::new("status")
                            .with_attr("action", action.name.clone())
                            .with_attr("rows", "0"),
                    ));
                }
                StatementResult::TxnControl => {}
            }
        }
        if executed == 0 {
            return Err(FlowError::Definition(
                "XSQL page contains no action elements".into(),
            ));
        }
        Ok(results)
    })();
    match body {
        Ok(results) => {
            if own_txn {
                conn.execute("COMMIT", &[])?;
            }
            Ok(XmlNode::Element(results))
        }
        Err(e) => {
            if own_txn {
                conn.rollback_if_open();
                log.push(format!("XSQL page rolled back after {e}"));
            }
            Err(e)
        }
    }
}

/// Replace `{@name}` references with SQL literals.
fn substitute_params(sql: &str, params: &[(String, Value)]) -> FlowResult<String> {
    let mut out = String::with_capacity(sql.len());
    let mut rest = sql;
    while let Some(open) = rest.find("{@") {
        out.push_str(&rest[..open]);
        let close = rest[open..].find('}').ok_or_else(|| {
            FlowError::Definition(format!("unbalanced '{{@' in XSQL statement: {sql}"))
        })? + open;
        let name = &rest[open + 2..close];
        let value = params
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v)
            .ok_or_else(|| FlowError::Variable(format!("XSQL parameter '{name}' is not bound")))?;
        out.push_str(&value.to_sql_literal());
        rest = &rest[close + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let db = Database::new("d");
        db.connect()
            .execute_script(
                "CREATE TABLE t (id INT PRIMARY KEY, name TEXT);
                 INSERT INTO t VALUES (1, 'widget'), (2, 'gadget');
                 CREATE PROCEDURE find_one(k) AS BEGIN
                   SELECT name FROM t WHERE id = :k;
                 END;",
            )
            .unwrap();
        db
    }

    #[test]
    fn query_action_returns_rowset() {
        let out = process_xsql(
            &db(),
            "<xsql:page xmlns:xsql=\"urn:oracle-xsql\">\
               <xsql:query>SELECT name FROM t ORDER BY id</xsql:query>\
             </xsql:page>",
            &[],
        )
        .unwrap();
        let rowset = out.as_element().unwrap().child("RowSet").unwrap();
        assert_eq!(rowset.children_named("Row").count(), 2);
    }

    #[test]
    fn dml_ddl_and_call_actions() {
        let d = db();
        let out = process_xsql(
            &d,
            "<xsql:page xmlns:xsql=\"urn:oracle-xsql\">\
               <xsql:ddl>CREATE TABLE log (v TEXT)</xsql:ddl>\
               <xsql:dml>INSERT INTO log VALUES ('a'), ('b')</xsql:dml>\
               <xsql:call>CALL find_one(2)</xsql:call>\
             </xsql:page>",
            &[],
        )
        .unwrap();
        let root = out.as_element().unwrap();
        assert_eq!(root.children.len(), 3);
        let statuses: Vec<&Element> = root.children_named("status").collect();
        assert_eq!(statuses[0].attr("rows"), Some("0")); // ddl
        assert_eq!(statuses[1].attr("rows"), Some("2")); // dml
        let rowset = root.child("RowSet").unwrap();
        assert!(rowset.to_string().contains("gadget"));
        assert!(d.has_table("log"));
    }

    #[test]
    fn parameter_substitution_quotes_literals() {
        let d = db();
        let out = process_xsql(
            &d,
            "<xsql:page xmlns:xsql=\"urn:oracle-xsql\">\
               <xsql:dml>INSERT INTO t VALUES ({@id}, {@name})</xsql:dml>\
             </xsql:page>",
            &[
                ("id".into(), Value::Int(3)),
                ("name".into(), Value::text("o'brien")),
            ],
        )
        .unwrap();
        assert!(out.to_xml().contains("rows=\"1\""));
        let conn = d.connect();
        let rs = conn.query("SELECT name FROM t WHERE id = 3", &[]).unwrap();
        assert_eq!(rs.single_value().unwrap(), &Value::text("o'brien"));
    }

    #[test]
    fn unbound_parameter_errors() {
        let err = process_xsql(
            &db(),
            "<xsql:page xmlns:xsql=\"urn:x\"><xsql:dml>DELETE FROM t WHERE id = {@missing}</xsql:dml></xsql:page>",
            &[],
        )
        .unwrap_err();
        assert_eq!(err.class(), "variable");
    }

    #[test]
    fn malformed_pages_rejected() {
        assert!(process_xsql(&db(), "<wrong/>", &[]).is_err());
        assert!(process_xsql(
            &db(),
            "<xsql:page xmlns:xsql=\"urn:x\"><xsql:bogus>SELECT 1</xsql:bogus></xsql:page>",
            &[]
        )
        .is_err());
        assert!(process_xsql(&db(), "<xsql:page xmlns:xsql=\"urn:x\"/>", &[]).is_err());
        assert!(process_xsql(&db(), "not xml", &[]).is_err());
    }

    #[test]
    fn retrying_page_recovers_from_transient_faults() {
        use sqlkernel::fault::{Fault, FaultPlan, TransientKind};
        let d = db();
        d.set_fault_plan(Some(
            FaultPlan::new(2).fault_at(0, Fault::Transient(TransientKind::SerializationFailure)),
        ));
        let mut rt = RetryRuntime::new(11);
        let mut log = Vec::new();
        let out = process_xsql_with_retry(
            &d,
            "<xsql:page xmlns:xsql=\"urn:x\">\
               <xsql:dml>INSERT INTO t VALUES (3, 'cog')</xsql:dml>\
               <xsql:query>SELECT COUNT(*) FROM t</xsql:query>\
             </xsql:page>",
            &[],
            &mut rt,
            &mut log,
        )
        .unwrap();
        assert!(out.to_xml().contains(">3<"), "row landed exactly once");
        assert!(log.iter().any(|l| l.contains("retry 1")));
        assert_eq!(d.stats().retries, 1);
    }

    #[test]
    fn exhausted_retries_roll_back_the_whole_page() {
        use sqlkernel::fault::{Fault, FaultPlan, TransientKind};
        let d = db();
        // The second action fails on every attempt (default budget is 4
        // attempts; indices 1..=4 cover them all — index 0 is the first
        // action, BEGIN/COMMIT are never gated).
        let mut plan = FaultPlan::new(2);
        for i in 1..=4 {
            plan = plan.fault_at(i, Fault::Transient(TransientKind::ConnectionReset));
        }
        d.set_fault_plan(Some(plan));
        let mut rt = RetryRuntime::new(11);
        let mut log = Vec::new();
        let err = process_xsql_with_retry(
            &d,
            "<xsql:page xmlns:xsql=\"urn:x\">\
               <xsql:dml>INSERT INTO t VALUES (3, 'cog')</xsql:dml>\
               <xsql:dml>INSERT INTO t VALUES (4, 'nut')</xsql:dml>\
             </xsql:page>",
            &[],
            &mut rt,
            &mut log,
        )
        .unwrap_err();
        assert!(err.is_transient());
        assert!(log.iter().any(|l| l.contains("rolled back")));
        d.set_fault_plan(None);
        // The page is atomic: the first INSERT was rolled back too.
        let rs = d.connect().query("SELECT COUNT(*) FROM t", &[]).unwrap();
        assert_eq!(rs.single_value().unwrap(), &Value::Int(2));
    }

    #[test]
    fn cdata_protects_comparison_operators() {
        let out = process_xsql(
            &db(),
            "<xsql:page xmlns:xsql=\"urn:x\">\
               <xsql:query><![CDATA[SELECT COUNT(*) FROM t WHERE id < 10]]></xsql:query>\
             </xsql:page>",
            &[],
        )
        .unwrap();
        assert!(out.to_xml().contains(">2<"));
    }
}
