//! The XSQL framework (Sec. V-B item 4): *“accesses an XML file, which
//! includes an SQL statement, executes it … and returns its result in
//! XML. The XSQL Framework combines XML, XSLT, and SQL. It generates XML
//! results from parameterized SQL queries and supports DML and DDL
//! operations as well as stored procedures.”*
//!
//! An XSQL page is an XML document whose action elements carry SQL:
//!
//! ```xml
//! <xsql:page xmlns:xsql="urn:oracle-xsql">
//!   <xsql:query>SELECT * FROM Orders WHERE ItemId = {@item}</xsql:query>
//!   <xsql:dml>INSERT INTO log VALUES ({@item}, {@qty})</xsql:dml>
//!   <xsql:ddl>CREATE TABLE t (a INT)</xsql:ddl>
//!   <xsql:call>CALL item_total({@item})</xsql:call>
//! </xsql:page>
//! ```
//!
//! `{@name}` references are replaced by the SQL literal of the bound
//! parameter before execution. The page result is an `<xsql-results>`
//! document with one child per action: an XML RowSet for queries and
//! result-returning calls, a `<status rows="…"/>` element for DML/DDL.

use sqlkernel::{Database, StatementResult, Value};
use xmlval::{Element, XmlNode};

use flowcore::{FlowError, FlowResult};

/// The recognized action element names.
const ACTIONS: [&str; 4] = ["xsql:query", "xsql:dml", "xsql:ddl", "xsql:call"];

/// Execute an XSQL page text against a database with named parameters.
pub fn process_xsql(db: &Database, page: &str, params: &[(String, Value)]) -> FlowResult<XmlNode> {
    let doc = xmlval::parse(page).map_err(FlowError::from)?;
    if doc.name != "xsql:page" {
        return Err(FlowError::Definition(format!(
            "XSQL page must have an <xsql:page> root, found <{}>",
            doc.name
        )));
    }
    let mut results = Element::new("xsql-results");
    let conn = db.connect();
    let mut executed = 0usize;
    for action in doc.child_elements() {
        if !ACTIONS.contains(&action.name.as_str()) {
            return Err(FlowError::Definition(format!(
                "unknown XSQL action <{}>",
                action.name
            )));
        }
        let sql = substitute_params(&action.text_content(), params)?;
        let result = conn.execute(&sql, &[]).map_err(FlowError::from)?;
        executed += 1;
        match result {
            StatementResult::Rows(rs) => {
                results.children.push(xmlval::rowset::encode(&rs));
            }
            StatementResult::Affected(n) => {
                results.children.push(XmlNode::Element(
                    Element::new("status")
                        .with_attr("action", action.name.clone())
                        .with_attr("rows", n.to_string()),
                ));
            }
            StatementResult::Ddl => {
                results.children.push(XmlNode::Element(
                    Element::new("status")
                        .with_attr("action", action.name.clone())
                        .with_attr("rows", "0"),
                ));
            }
            StatementResult::TxnControl => {}
        }
    }
    if executed == 0 {
        return Err(FlowError::Definition(
            "XSQL page contains no action elements".into(),
        ));
    }
    Ok(XmlNode::Element(results))
}

/// Replace `{@name}` references with SQL literals.
fn substitute_params(sql: &str, params: &[(String, Value)]) -> FlowResult<String> {
    let mut out = String::with_capacity(sql.len());
    let mut rest = sql;
    while let Some(open) = rest.find("{@") {
        out.push_str(&rest[..open]);
        let close = rest[open..].find('}').ok_or_else(|| {
            FlowError::Definition(format!("unbalanced '{{@' in XSQL statement: {sql}"))
        })? + open;
        let name = &rest[open + 2..close];
        let value = params
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v)
            .ok_or_else(|| FlowError::Variable(format!("XSQL parameter '{name}' is not bound")))?;
        out.push_str(&value.to_sql_literal());
        rest = &rest[close + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let db = Database::new("d");
        db.connect()
            .execute_script(
                "CREATE TABLE t (id INT PRIMARY KEY, name TEXT);
                 INSERT INTO t VALUES (1, 'widget'), (2, 'gadget');
                 CREATE PROCEDURE find_one(k) AS BEGIN
                   SELECT name FROM t WHERE id = :k;
                 END;",
            )
            .unwrap();
        db
    }

    #[test]
    fn query_action_returns_rowset() {
        let out = process_xsql(
            &db(),
            "<xsql:page xmlns:xsql=\"urn:oracle-xsql\">\
               <xsql:query>SELECT name FROM t ORDER BY id</xsql:query>\
             </xsql:page>",
            &[],
        )
        .unwrap();
        let rowset = out.as_element().unwrap().child("RowSet").unwrap();
        assert_eq!(rowset.children_named("Row").count(), 2);
    }

    #[test]
    fn dml_ddl_and_call_actions() {
        let d = db();
        let out = process_xsql(
            &d,
            "<xsql:page xmlns:xsql=\"urn:oracle-xsql\">\
               <xsql:ddl>CREATE TABLE log (v TEXT)</xsql:ddl>\
               <xsql:dml>INSERT INTO log VALUES ('a'), ('b')</xsql:dml>\
               <xsql:call>CALL find_one(2)</xsql:call>\
             </xsql:page>",
            &[],
        )
        .unwrap();
        let root = out.as_element().unwrap();
        assert_eq!(root.children.len(), 3);
        let statuses: Vec<&Element> = root.children_named("status").collect();
        assert_eq!(statuses[0].attr("rows"), Some("0")); // ddl
        assert_eq!(statuses[1].attr("rows"), Some("2")); // dml
        let rowset = root.child("RowSet").unwrap();
        assert!(rowset.to_string().contains("gadget"));
        assert!(d.has_table("log"));
    }

    #[test]
    fn parameter_substitution_quotes_literals() {
        let d = db();
        let out = process_xsql(
            &d,
            "<xsql:page xmlns:xsql=\"urn:oracle-xsql\">\
               <xsql:dml>INSERT INTO t VALUES ({@id}, {@name})</xsql:dml>\
             </xsql:page>",
            &[
                ("id".into(), Value::Int(3)),
                ("name".into(), Value::text("o'brien")),
            ],
        )
        .unwrap();
        assert!(out.to_xml().contains("rows=\"1\""));
        let conn = d.connect();
        let rs = conn.query("SELECT name FROM t WHERE id = 3", &[]).unwrap();
        assert_eq!(rs.single_value().unwrap(), &Value::text("o'brien"));
    }

    #[test]
    fn unbound_parameter_errors() {
        let err = process_xsql(
            &db(),
            "<xsql:page xmlns:xsql=\"urn:x\"><xsql:dml>DELETE FROM t WHERE id = {@missing}</xsql:dml></xsql:page>",
            &[],
        )
        .unwrap_err();
        assert_eq!(err.class(), "variable");
    }

    #[test]
    fn malformed_pages_rejected() {
        assert!(process_xsql(&db(), "<wrong/>", &[]).is_err());
        assert!(process_xsql(
            &db(),
            "<xsql:page xmlns:xsql=\"urn:x\"><xsql:bogus>SELECT 1</xsql:bogus></xsql:page>",
            &[]
        )
        .is_err());
        assert!(process_xsql(&db(), "<xsql:page xmlns:xsql=\"urn:x\"/>", &[]).is_err());
        assert!(process_xsql(&db(), "not xml", &[]).is_err());
    }

    #[test]
    fn cdata_protects_comparison_operators() {
        let out = process_xsql(
            &db(),
            "<xsql:page xmlns:xsql=\"urn:x\">\
               <xsql:query><![CDATA[SELECT COUNT(*) FROM t WHERE id < 10]]></xsql:query>\
             </xsql:page>",
            &[],
        )
        .unwrap();
        assert!(out.to_xml().contains(">2<"));
    }
}
