//! `soa` — the Oracle SOA Suite integration style (paper Sec. V).
//!
//! Oracle's SQL inline support is based not on SQL activity types but on
//! proprietary **XPath extension functions** called from BPEL assign
//! activities:
//!
//! * [`functions::query_database`] / [`functions::ExtFunction::QueryDatabase`]
//!   — `ora:query-database`: any SQL query, result as XML RowSet,
//! * [`functions::sequence_next_val`] — `ora:sequence-next-val`,
//! * [`functions::lookup_table`] — `orcl:lookup-table` (generated
//!   single-row lookup),
//! * [`xsql::process_xsql`] — `ora:processXSQL`: SQL embedded in XML
//!   documents, covering queries, DML, DDL and stored procedures,
//! * [`functions::SoaAssign`] — the assign activity hosting a function
//!   call, with the Figure 8 `Status` return-status convention,
//! * [`bpelx::BpelxAssign`] — Oracle-specific local-XML mutations
//!   (update / insertChildInto / remove) covering the complete Tuple IUD
//!   pattern at an abstract level,
//! * [`cursor::rowset_while`] — the while + Java-Snippet workaround for
//!   sequential RowSet access,
//! * [`sample::figure8_process`] — the running example (Fig. 8),
//! * [`integration::OracleProduct`] — the [`patterns::SqlIntegration`]
//!   implementation.

pub mod bpelx;
pub mod cursor;
pub mod durable;
pub mod env;
pub mod functions;
pub mod integration;
pub mod sample;
pub mod xsql;

pub use bpelx::{BpelxAssign, BpelxOp};
pub use cursor::rowset_while;
pub use durable::{durable_page_process, run_durable_pages, run_durable_pages_many};
pub use env::{connection_string, SoaEnvironment};
pub use functions::{
    get_variable_data, get_variable_node, java_snippet, lookup_table, query_database,
    sequence_next_val, ExtFunction, SoaAssign,
};
pub use integration::OracleProduct;
pub use sample::figure8_process;
pub use xsql::{process_xsql, process_xsql_on, process_xsql_with_retry};
