//! Dehydration between XSQL pages (paper Sec. V).
//!
//! Oracle BPEL Process Manager parks ("dehydrates") long-running
//! instances in its dehydration store between invoke activities. This
//! module reproduces that behavior for XSQL work: a *durable page
//! sequence* runs each page as one [`flowcore::persistence::DurableStep`],
//! so the page's SQL effects and the instance checkpoint (program
//! counter, variables) commit in the same transaction. A crash between —
//! or inside — pages resumes at the interrupted page after recovery,
//! with every committed page executed exactly once.
//!
//! Page parameters (`{@name}` references) are drawn from the instance's
//! *scalar* variables, which dehydrate with the instance; each page's
//! `<xsql-results>` document is stored back into the variables under
//! `result_<step>`, so page outputs also survive rehydration.

use flowcore::persistence::{DurableProcess, DurableRun, PersistenceService};
use flowcore::retry::RetryRuntime;
use flowcore::scheduler::InstanceScheduler;
use flowcore::value::{VarValue, Variables};
use flowcore::FlowResult;
use sqlkernel::{Database, Value};

use crate::xsql::process_xsql_on;

/// Collect the scalar variables as XSQL parameters (XML-valued results
/// and nulls are not addressable from `{@name}` references).
fn scalar_params(vars: &Variables) -> Vec<(String, Value)> {
    let mut out = Vec::new();
    for name in vars.names() {
        if let Some(VarValue::Scalar(v)) = vars.get(name) {
            out.push((name.to_string(), v.clone()));
        }
    }
    out
}

/// Build the durable process for a page sequence: one step per
/// `(step_name, page_text)` pair, in order.
pub fn durable_page_process(db: &Database, name: &str, pages: &[(&str, &str)]) -> DurableProcess {
    let mut process = DurableProcess::new(name);
    for (step, page) in pages {
        let step_name = (*step).to_string();
        let page = (*page).to_string();
        let db = db.clone();
        process = process.step(step_name.clone(), move |conn, vars| {
            let params = scalar_params(vars);
            let result = process_xsql_on(&db, conn, &page, &params)?;
            vars.set(format!("result_{step_name}"), VarValue::Xml(result));
            Ok(())
        });
    }
    process
}

/// Run (or resume) a durable XSQL page sequence under `instance_key`.
///
/// `initial_params` seed the instance's scalar variables on first run
/// (ignored on resume — the dehydrated state wins). Returns the
/// persistence layer's [`DurableRun`], whose variables hold the
/// `result_<step>` documents of every committed page.
pub fn run_durable_pages(
    db: &Database,
    process_name: &str,
    pages: &[(&str, &str)],
    instance_key: &str,
    initial_params: &[(String, Value)],
    rt: &mut RetryRuntime,
) -> FlowResult<DurableRun> {
    // Bootstrap DDL under the retry envelope: a transient on the first
    // statement of a fresh lifetime must not fail the whole run.
    let (service, _) = rt.run("persistence:init", Some(db), || PersistenceService::new(db));
    let service = service?;
    let mut vars = Variables::new();
    for (name, value) in initial_params {
        vars.set(name.clone(), VarValue::Scalar(value.clone()));
    }
    let process = durable_page_process(db, process_name, pages);
    service.run(&process, instance_key, &vars, rt)
}

/// Run N page-sequence instances across `scheduler`'s worker pool — the
/// BPEL Process Manager dispatcher pulling many dehydrated instances
/// from the store at once. `params(index)` supplies each instance's
/// initial scalar parameters; `runtime(index)` builds each instance's
/// retry runtime — seed it with the index so jitter is per-instance
/// deterministic regardless of worker assignment, and size its policy
/// to the fault environment (the default budget is 4 attempts).
/// Results come back in job order.
pub fn run_durable_pages_many<F, R>(
    db: &Database,
    process_name: &str,
    pages: &[(&str, &str)],
    instance_keys: &[String],
    params: F,
    runtime: R,
    scheduler: &InstanceScheduler,
) -> Vec<FlowResult<DurableRun>>
where
    F: Fn(usize) -> Vec<(String, Value)> + Send + Sync,
    R: Fn(usize) -> RetryRuntime + Send + Sync,
{
    // Create FLOW_INSTANCES before fanning out, so first-step workers
    // never race on its DDL.
    let _ = PersistenceService::new(db);
    scheduler.run_indexed(instance_keys.len(), |i| {
        let mut rt = runtime(i);
        run_durable_pages(
            db,
            process_name,
            pages,
            &instance_keys[i],
            &params(i),
            &mut rt,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowcore::persistence::STATUS_COMPLETED;
    use sqlkernel::{CrashPoint, Fault, FaultPlan, MemLogStore};
    use std::sync::Arc;

    const PAGE_A: &str = "<xsql:page xmlns:xsql=\"urn:oracle-xsql\">\
        <xsql:dml>INSERT INTO audit VALUES (1, {@who})</xsql:dml>\
        </xsql:page>";
    const PAGE_B: &str = "<xsql:page xmlns:xsql=\"urn:oracle-xsql\">\
        <xsql:dml>INSERT INTO audit VALUES (2, {@who})</xsql:dml>\
        <xsql:query>SELECT id FROM audit ORDER BY id</xsql:query>\
        </xsql:page>";

    fn audit_table(db: &Database) {
        db.connect()
            .execute("CREATE TABLE audit (id INT PRIMARY KEY, who TEXT)", &[])
            .unwrap();
    }

    fn pages() -> Vec<(&'static str, &'static str)> {
        vec![("first", PAGE_A), ("second", PAGE_B)]
    }

    #[test]
    fn pages_run_in_order_and_results_dehydrate() {
        let db = Database::new("soa");
        audit_table(&db);
        let mut rt = RetryRuntime::new(1);
        let run = run_durable_pages(
            &db,
            "page-seq",
            &pages(),
            "inst-1",
            &[("who".into(), Value::text("ops"))],
            &mut rt,
        )
        .unwrap();
        assert_eq!(run.steps_executed, 2);
        let result = run.variables.require_xml("result_second").unwrap();
        let rowset = result.as_element().unwrap().child("RowSet").unwrap();
        assert_eq!(rowset.children_named("Row").count(), 2);
        let rs = db
            .connect()
            .query("SELECT id FROM audit ORDER BY id", &[])
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn crash_between_pages_resumes_exactly_once() {
        let store = MemLogStore::new();
        {
            let db = Database::with_wal("soa", Arc::new(store.clone()));
            audit_table(&db);
        }
        let mut rt = RetryRuntime::new(1);
        let params = [("who".into(), Value::text("ops"))];

        // Probe statement indexes until a crash fires mid-sequence.
        let mut crashed = false;
        for idx in 0..24 {
            let db = Database::recover("soa", Arc::new(store.clone())).unwrap();
            db.set_fault_plan(Some(
                FaultPlan::new(3).fault_at(idx, Fault::Crash(CrashPoint::AfterLog)),
            ));
            let r = run_durable_pages(&db, "page-seq", &pages(), "inst-9", &params, &mut rt);
            if db.fault_injector().map(|i| i.frozen()).unwrap_or(false) {
                assert!(r.is_err());
                crashed = true;
                break;
            }
            if r.is_ok() {
                let conn = db.connect();
                conn.execute(
                    "DELETE FROM FLOW_INSTANCES WHERE InstanceKey = 'inst-9'",
                    &[],
                )
                .unwrap();
                conn.execute("DELETE FROM audit", &[]).unwrap();
            }
        }
        assert!(crashed, "no probe index produced a crash");

        let db = Database::recover("soa", Arc::new(store.clone())).unwrap();
        let run = run_durable_pages(&db, "page-seq", &pages(), "inst-9", &params, &mut rt).unwrap();
        assert!(!run.already_completed);
        let rs = db
            .connect()
            .query("SELECT id FROM audit ORDER BY id", &[])
            .unwrap();
        assert_eq!(rs.rows.len(), 2, "each page's DML applied exactly once");
        let svc = PersistenceService::new(&db).unwrap();
        assert_eq!(
            svc.instance_status("inst-9").unwrap(),
            Some((2, STATUS_COMPLETED.into()))
        );
    }
}
