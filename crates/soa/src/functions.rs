//! The XPath extension functions (Sec. V-B) and the assign activity that
//! hosts them.
//!
//! Oracle's SQL inline support is *not* a set of SQL activity types:
//! proprietary XPath extension functions (`ora:` / `orcl:` namespaces)
//! are called from within BPEL assign activities. [`SoaAssign`] models
//! exactly that: an assign whose source is one extension function call
//! and whose target is a process variable.

use flowcore::builtins::CopyFrom;
use flowcore::{Activity, ActivityContext, FlowError, FlowResult, VarValue};
use sqlkernel::{Database, Value};
use xmlval::XmlNode;

use crate::env::env_of;
use crate::xsql::process_xsql;

/// `ora:query-database(sql, connection)` — executes any valid SQL query
/// given as a string and returns the result set as an XML RowSet.
pub fn query_database(db: &Database, sql: &str) -> FlowResult<XmlNode> {
    let rs = db.connect().query(sql, &[]).map_err(FlowError::from)?;
    Ok(xmlval::rowset::encode(&rs))
}

/// `ora:sequence-next-val(sequence, connection)` — the next value of a
/// predefined integer sequence (e.g. for unique primary keys).
pub fn sequence_next_val(db: &Database, sequence: &str) -> FlowResult<Value> {
    let rs = db
        .connect()
        .query("SELECT NEXTVAL(?)", &[Value::text(sequence)])
        .map_err(FlowError::from)?;
    Ok(rs.single_value().map_err(FlowError::from)?.clone())
}

/// `orcl:lookup-table(table, inputColumn, key, outputColumn, connection)`
/// — generates `SELECT outputColumn FROM table WHERE inputColumn = key`
/// and returns exactly one column value.
pub fn lookup_table(
    db: &Database,
    table: &str,
    input_column: &str,
    key: &Value,
    output_column: &str,
) -> FlowResult<Value> {
    let sql = format!("SELECT {output_column} FROM {table} WHERE {input_column} = ?");
    let rs = db
        .connect()
        .query(&sql, std::slice::from_ref(key))
        .map_err(FlowError::from)?;
    match rs.rows.len() {
        1 => Ok(rs.rows[0][0].clone()),
        0 => Err(FlowError::Variable(format!(
            "lookup-table: no row in {table} with {input_column} = {key}"
        ))),
        n => Err(FlowError::Variable(format!(
            "lookup-table: {n} rows matched in {table} (expected exactly one)"
        ))),
    }
}

/// One XPath extension function call, as embeddable in an assign.
pub enum ExtFunction {
    /// `ora:query-database(sql, conn)`.
    QueryDatabase { connection: String, sql: String },
    /// `ora:sequence-next-val(sequence, conn)`.
    SequenceNextVal {
        connection: String,
        sequence: String,
    },
    /// `orcl:lookup-table(table, inputColumn, key, outputColumn, conn)`.
    LookupTable {
        connection: String,
        table: String,
        input_column: String,
        key: CopyFrom,
        output_column: String,
    },
    /// `ora:processXSQL(page, params…, conn)`.
    ProcessXsql {
        connection: String,
        page: String,
        params: Vec<(String, CopyFrom)>,
    },
}

impl ExtFunction {
    /// The `namespace:function` spelling for audit output.
    pub fn display_name(&self) -> &'static str {
        match self {
            ExtFunction::QueryDatabase { .. } => "ora:query-database",
            ExtFunction::SequenceNextVal { .. } => "ora:sequence-next-val",
            ExtFunction::LookupTable { .. } => "orcl:lookup-table",
            ExtFunction::ProcessXsql { .. } => "ora:processXSQL",
        }
    }

    fn evaluate(&self, ctx: &mut ActivityContext<'_>) -> FlowResult<VarValue> {
        match self {
            ExtFunction::QueryDatabase { connection, sql } => {
                let db = env_of(ctx)?.resolve(connection)?;
                Ok(VarValue::Xml(query_database(&db, sql)?))
            }
            ExtFunction::SequenceNextVal {
                connection,
                sequence,
            } => {
                let db = env_of(ctx)?.resolve(connection)?;
                Ok(VarValue::Scalar(sequence_next_val(&db, sequence)?))
            }
            ExtFunction::LookupTable {
                connection,
                table,
                input_column,
                key,
                output_column,
            } => {
                let db = env_of(ctx)?.resolve(connection)?;
                let key = match key.read(ctx.variables)? {
                    VarValue::Scalar(v) => v,
                    VarValue::Xml(x) => Value::Text(x.text_content()),
                    other => {
                        return Err(FlowError::Variable(format!(
                            "lookup-table key must be scalar, got {}",
                            other.type_tag()
                        )))
                    }
                };
                Ok(VarValue::Scalar(lookup_table(
                    &db,
                    table,
                    input_column,
                    &key,
                    output_column,
                )?))
            }
            ExtFunction::ProcessXsql {
                connection,
                page,
                params,
            } => {
                let db = env_of(ctx)?.resolve(connection)?;
                let mut bound = Vec::with_capacity(params.len());
                for (name, from) in params {
                    let v = match from.read(ctx.variables)? {
                        VarValue::Scalar(v) => v,
                        VarValue::Xml(x) => Value::Text(x.text_content()),
                        VarValue::Null => Value::Null,
                        VarValue::Opaque(_) => {
                            return Err(FlowError::Variable(format!(
                                "XSQL parameter '{name}' cannot be an opaque handle"
                            )))
                        }
                    };
                    bound.push((name.clone(), v));
                }
                Ok(VarValue::Xml(process_xsql(&db, page, &bound)?))
            }
        }
    }
}

/// An assign activity whose source is one XPath extension function call.
/// Optionally also stores a return status (for `processXSQL`, the
/// paper's `Status` variable in Figure 8).
pub struct SoaAssign {
    name: String,
    function: ExtFunction,
    target_var: String,
    status_var: Option<String>,
}

impl SoaAssign {
    /// `target_var ← function()`.
    pub fn new(
        name: impl Into<String>,
        function: ExtFunction,
        target_var: impl Into<String>,
    ) -> SoaAssign {
        SoaAssign {
            name: name.into(),
            function,
            target_var: target_var.into(),
            status_var: None,
        }
    }

    /// Builder: also set `status_var` to `"OK"` / the fault text.
    pub fn with_status(mut self, status_var: impl Into<String>) -> SoaAssign {
        self.status_var = Some(status_var.into());
        self
    }
}

impl Activity for SoaAssign {
    fn kind(&self) -> &str {
        "assign"
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn execute(&self, ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
        ctx.note(
            "assign",
            &self.name,
            format!("{}(…) → {}", self.function.display_name(), self.target_var),
        );
        let result = self.function.evaluate(ctx);
        if let Some(status_var) = &self.status_var {
            let status = match &result {
                Ok(_) => "OK".to_string(),
                Err(e) => format!("FAULT: {e}"),
            };
            ctx.variables.set(status_var.clone(), Value::Text(status));
        }
        let value = result?;
        ctx.variables.set(self.target_var.clone(), value);
        Ok(())
    }
}

/// `getVariableData(variable, path)` — the BPEL XPath function for
/// extracting row sets or single node values from an XML RowSet
/// (available both in assigns and Java snippets, Sec. V-C).
pub fn get_variable_data(variable: impl Into<String>, path: &str) -> FlowResult<CopyFrom> {
    CopyFrom::path(variable, path)
}

/// Like [`get_variable_data`] but extracting a whole node (entire row).
pub fn get_variable_node(variable: impl Into<String>, path: &str) -> FlowResult<CopyFrom> {
    Ok(CopyFrom::PathNode {
        variable: variable.into(),
        path: xmlval::Path::parse(path)?,
    })
}

/// An Oracle-specific Java-Snippet activity (the `bpelx:exec` analog used
/// by the paper's sequential-access workaround).
pub fn java_snippet(
    name: impl Into<String>,
    body: impl Fn(&mut ActivityContext<'_>) -> FlowResult<()> + 'static,
) -> flowcore::builtins::Snippet {
    flowcore::builtins::Snippet::with_kind(name, "java-snippet", body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{connection_string, SoaEnvironment};
    use flowcore::{Engine, ProcessDefinition, Variables};

    fn db() -> Database {
        let d = Database::new("orders_db");
        d.connect()
            .execute_script(
                "CREATE TABLE t (id INT PRIMARY KEY, name TEXT);
                 INSERT INTO t VALUES (1, 'widget'), (2, 'gadget');
                 CREATE SEQUENCE s START WITH 500;",
            )
            .unwrap();
        d
    }

    fn run(d: &Database, root: impl Activity + 'static) -> flowcore::CompletedInstance {
        let def = SoaEnvironment::new()
            .with_database(d.clone())
            .install(ProcessDefinition::new("t", root));
        Engine::new().run(&def, Variables::new()).unwrap()
    }

    #[test]
    fn query_database_materializes_rowset() {
        let d = db();
        let inst = run(
            &d,
            SoaAssign::new(
                "Assign_1",
                ExtFunction::QueryDatabase {
                    connection: connection_string("orders_db"),
                    sql: "SELECT name FROM t ORDER BY id".into(),
                },
                "SV",
            ),
        );
        assert!(inst.is_completed(), "{:?}", inst.outcome);
        let xml = inst.variables.require_xml("SV").unwrap();
        assert_eq!(xmlval::rowset::row_count(xml), 2);
    }

    #[test]
    fn sequence_next_val_advances() {
        let d = db();
        let root = flowcore::builtins::Sequence::new("s")
            .then(SoaAssign::new(
                "a1",
                ExtFunction::SequenceNextVal {
                    connection: connection_string("orders_db"),
                    sequence: "s".into(),
                },
                "id1",
            ))
            .then(SoaAssign::new(
                "a2",
                ExtFunction::SequenceNextVal {
                    connection: connection_string("orders_db"),
                    sequence: "s".into(),
                },
                "id2",
            ));
        let inst = run(&d, root);
        assert_eq!(
            inst.variables.require_scalar("id1").unwrap(),
            &Value::Int(500)
        );
        assert_eq!(
            inst.variables.require_scalar("id2").unwrap(),
            &Value::Int(501)
        );
    }

    #[test]
    fn lookup_table_exact_semantics() {
        let d = db();
        let inst = run(
            &d,
            SoaAssign::new(
                "lk",
                ExtFunction::LookupTable {
                    connection: connection_string("orders_db"),
                    table: "t".into(),
                    input_column: "id".into(),
                    key: CopyFrom::Literal(Value::Int(2).into()),
                    output_column: "name".into(),
                },
                "found",
            ),
        );
        assert_eq!(
            inst.variables.require_scalar("found").unwrap(),
            &Value::text("gadget")
        );
        // Missing key faults the instance.
        let inst = run(
            &d,
            SoaAssign::new(
                "lk",
                ExtFunction::LookupTable {
                    connection: connection_string("orders_db"),
                    table: "t".into(),
                    input_column: "id".into(),
                    key: CopyFrom::Literal(Value::Int(99).into()),
                    output_column: "name".into(),
                },
                "found",
            ),
        );
        assert!(inst.is_faulted());
    }

    #[test]
    fn process_xsql_with_status() {
        let d = db();
        let inst = run(
            &d,
            SoaAssign::new(
                "Assign_2",
                ExtFunction::ProcessXsql {
                    connection: connection_string("orders_db"),
                    page: "<xsql:page xmlns:xsql=\"urn:x\">\
                           <xsql:dml>INSERT INTO t VALUES ({@id}, {@name})</xsql:dml>\
                           </xsql:page>"
                        .into(),
                    params: vec![
                        ("id".into(), CopyFrom::Literal(Value::Int(3).into())),
                        ("name".into(), CopyFrom::Literal(Value::text("cog").into())),
                    ],
                },
                "Result",
            )
            .with_status("Status"),
        );
        assert!(inst.is_completed(), "{:?}", inst.outcome);
        assert_eq!(
            inst.variables.require_scalar("Status").unwrap(),
            &Value::text("OK")
        );
        assert_eq!(d.table_len("t").unwrap(), 3);
    }

    #[test]
    fn status_records_faults() {
        let d = db();
        let inst = run(
            &d,
            SoaAssign::new(
                "bad",
                ExtFunction::ProcessXsql {
                    connection: connection_string("orders_db"),
                    page: "<xsql:page xmlns:xsql=\"urn:x\">\
                           <xsql:dml>INSERT INTO nosuch VALUES (1)</xsql:dml>\
                           </xsql:page>"
                        .into(),
                    params: vec![],
                },
                "Result",
            )
            .with_status("Status"),
        );
        assert!(inst.is_faulted());
        assert!(inst
            .variables
            .require_scalar("Status")
            .unwrap()
            .render()
            .starts_with("FAULT"));
    }

    #[test]
    fn get_variable_data_helpers() {
        assert!(get_variable_data("SV", "/RowSet/Row[1]/ItemId").is_ok());
        assert!(get_variable_node("SV", "/RowSet/Row[1]").is_ok());
        assert!(get_variable_data("SV", "a[[").is_err());
    }
}
