//! The sequential-access workaround (Sec. V-C): *“one can use as
//! workaround a while activity and an Oracle-specific Java-Snippet
//! activity for providing sequential access to rows of an XML RowSet.”*

use flowcore::builtins::{Sequence, While};
use flowcore::{Activity, ActivityContext, FlowError};
use sqlkernel::Value;
use xmlval::XmlNode;

use crate::functions::java_snippet;

fn position_var(set_var: &str) -> String {
    format!("{set_var}#pos")
}

fn position(ctx: &ActivityContext<'_>, set_var: &str) -> usize {
    ctx.variables
        .get(&position_var(set_var))
        .and_then(|v| v.as_scalar())
        .and_then(Value::as_i64)
        .unwrap_or(0) as usize
}

/// Build the while + Java-Snippet iteration over an XML RowSet variable,
/// binding each `<Row>` to `current_var`.
pub fn rowset_while(
    name: impl Into<String>,
    rowset_var: impl Into<String>,
    current_var: impl Into<String>,
    body: impl Activity + 'static,
) -> While {
    let rowset_var = rowset_var.into();
    let current_var = current_var.into();
    let cond_var = rowset_var.clone();
    let fetch_var = rowset_var.clone();

    let fetch = java_snippet(
        format!("store next tuple of {rowset_var} into {current_var}"),
        move |ctx| {
            let pos = position(ctx, &fetch_var);
            let xml = ctx.variables.require_xml(&fetch_var)?;
            let row = xml
                .as_element()
                .and_then(|e| e.children_named(xmlval::rowset::ROW_ELEM).nth(pos))
                .ok_or_else(|| {
                    FlowError::Variable(format!("iteration past row {pos} of '{fetch_var}'"))
                })?
                .clone();
            ctx.variables
                .set(current_var.clone(), XmlNode::Element(row));
            ctx.variables
                .set(position_var(&fetch_var), Value::Int((pos + 1) as i64));
            Ok(())
        },
    );

    While::new(
        name,
        move |ctx: &ActivityContext<'_>| {
            let len = xmlval::rowset::row_count(ctx.variables.require_xml(&cond_var)?);
            Ok(position(ctx, &cond_var) < len)
        },
        Sequence::new("iteration")
            .then(fetch)
            .then_boxed(Box::new(body)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowcore::builtins::Snippet;
    use flowcore::{Engine, ProcessDefinition, Variables};
    use sqlkernel::QueryResult;

    #[test]
    fn iterates_rowset() {
        let rs = QueryResult {
            columns: vec!["v".into()],
            rows: vec![
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(3)],
            ],
        };
        let body = Snippet::new("sum", |ctx| {
            let cur = ctx.variables.require_xml("Cur")?;
            let text = cur.text_content().parse::<i64>().unwrap_or(0);
            let acc = ctx
                .variables
                .get("acc")
                .and_then(|x| x.as_scalar())
                .and_then(Value::as_i64)
                .unwrap_or(0);
            ctx.variables.set("acc", Value::Int(acc + text));
            Ok(())
        });
        let def = ProcessDefinition::new("t", rowset_while("loop", "SV", "Cur", body));
        let mut vars = Variables::new();
        vars.set("SV", xmlval::rowset::encode(&rs));
        let inst = Engine::new().run(&def, vars).unwrap();
        assert!(inst.is_completed(), "{:?}", inst.outcome);
        assert_eq!(
            inst.variables.require_scalar("acc").unwrap(),
            &Value::Int(6)
        );
    }
}
