//! Deployment configuration: data-source binding, set-reference
//! declarations, and the lifecycle management of Sec. III-B
//! (“Additional Features”): preparation and cleanup statements for data
//! sources, and per-instance lifecycle of result set tables.

use std::sync::Arc;

use flowcore::persistence::{DurableProcess, DurableRun, PersistenceService};
use flowcore::retry::{BreakerConfig, RetryPolicy, RetryRuntime};
use flowcore::scheduler::InstanceScheduler;
use flowcore::value::Variables;
use flowcore::{ActivityContext, ExecutionMode, FlowError, FlowResult, ProcessDefinition};
use sqlkernel::Value;

use crate::datasource::{connection_string, BisRuntime, DataSourceRegistry};
use crate::setref::SetRef;

/// Declaration of a result set reference variable whose backing table is
/// created per instance (with a generated unique name) and dropped at the
/// end of the workflow.
#[derive(Debug, Clone)]
pub struct ResultSetDecl {
    /// The variable name (e.g. `SR_ItemList`).
    pub var: String,
    /// The data source variable the table lives on.
    pub data_source_var: String,
    /// Column DDL, e.g. `(ItemId TEXT, Quantity INT)`. When `None`, the
    /// table is created lazily by the first SQL activity storing into it.
    pub columns_ddl: Option<String>,
}

/// The deployment descriptor for a BIS process: everything WID would
/// configure outside the flow itself.
#[derive(Debug, Clone, Default)]
pub struct BisDeployment {
    registry: DataSourceRegistry,
    data_source_bindings: Vec<(String, String)>,
    input_sets: Vec<(String, String)>,
    result_sets: Vec<ResultSetDecl>,
    preparations: Vec<(String, String)>,
    cleanups: Vec<(String, String)>,
    retry: Option<RetryConfig>,
}

/// Retry/breaker configuration installed into the instance runtime.
#[derive(Debug, Clone)]
struct RetryConfig {
    seed: u64,
    policy: RetryPolicy,
    breaker: BreakerConfig,
}

impl BisDeployment {
    /// Deployment over a data source registry.
    pub fn new(registry: DataSourceRegistry) -> BisDeployment {
        BisDeployment {
            registry,
            ..Default::default()
        }
    }

    /// Bind a data source variable to a database name (deployment-time
    /// binding; the process may re-bind at runtime with an assign).
    pub fn bind_data_source(
        mut self,
        var: impl Into<String>,
        db_name: impl Into<String>,
    ) -> BisDeployment {
        self.data_source_bindings.push((var.into(), db_name.into()));
        self
    }

    /// Declare an input set reference to an existing table.
    pub fn input_set(mut self, var: impl Into<String>, table: impl Into<String>) -> BisDeployment {
        self.input_sets.push((var.into(), table.into()));
        self
    }

    /// Declare a result set reference with per-instance table lifecycle.
    pub fn result_set(
        mut self,
        var: impl Into<String>,
        data_source_var: impl Into<String>,
        columns_ddl: Option<&str>,
    ) -> BisDeployment {
        self.result_sets.push(ResultSetDecl {
            var: var.into(),
            data_source_var: data_source_var.into(),
            columns_ddl: columns_ddl.map(str::to_string),
        });
        self
    }

    /// Add a preparation script (DDL) run on a data source before the
    /// process body.
    pub fn prepare(
        mut self,
        data_source_var: impl Into<String>,
        script: impl Into<String>,
    ) -> BisDeployment {
        self.preparations
            .push((data_source_var.into(), script.into()));
        self
    }

    /// Add a cleanup script run on a data source after the process body.
    pub fn cleanup(
        mut self,
        data_source_var: impl Into<String>,
        script: impl Into<String>,
    ) -> BisDeployment {
        self.cleanups.push((data_source_var.into(), script.into()));
        self
    }

    /// Configure the recovery layer: every SQL statement an information
    /// service activity sends to a data source runs under `policy`, with
    /// a per-database circuit breaker and backoff jitter seeded by
    /// `seed` (deterministic replay).
    pub fn with_retry(mut self, seed: u64, policy: RetryPolicy) -> BisDeployment {
        let breaker = self.retry.take().map(|c| c.breaker).unwrap_or_default();
        self.retry = Some(RetryConfig {
            seed,
            policy,
            breaker,
        });
        self
    }

    /// Configure the circuit breaker used with [`BisDeployment::with_retry`].
    pub fn with_breaker(mut self, breaker: BreakerConfig) -> BisDeployment {
        let (seed, policy) = self
            .retry
            .take()
            .map(|c| (c.seed, c.policy))
            .unwrap_or((0, RetryPolicy::default()));
        self.retry = Some(RetryConfig {
            seed,
            policy,
            breaker,
        });
        self
    }

    /// The registry (for re-use by probes).
    pub fn registry(&self) -> &DataSourceRegistry {
        &self.registry
    }

    /// Build the recovery runtime this deployment configures (defaults
    /// when [`BisDeployment::with_retry`] was never called).
    pub fn retry_runtime(&self) -> RetryRuntime {
        match &self.retry {
            Some(cfg) => RetryRuntime::new(cfg.seed)
                .with_policy(cfg.policy.clone())
                .with_breaker(cfg.breaker.clone()),
            None => RetryRuntime::new(0).with_policy(RetryPolicy::no_retry()),
        }
    }

    /// Run (or resume) a *durable* activity sequence against one of this
    /// deployment's data sources.
    ///
    /// This is the deployment-resume path: instance state dehydrates into
    /// the data source's `FLOW_INSTANCES` table at every step boundary,
    /// in the same transaction as the step's own SQL. When the data
    /// source is durable (opened with a WAL), re-deploying after a crash
    /// and calling `run_durable` with the same `instance_key` resumes at
    /// the interrupted step — committed steps never re-execute. The
    /// deployment's retry/breaker configuration wraps every step, and the
    /// breaker state itself dehydrates with the instance.
    pub fn run_durable(
        &self,
        db_name: &str,
        process: &DurableProcess,
        instance_key: &str,
        initial: &Variables,
    ) -> FlowResult<DurableRun> {
        let db = self.registry.resolve(&connection_string(db_name))?;
        let mut rt = self.retry_runtime();
        // The FLOW_INSTANCES bootstrap DDL runs under the same retry
        // envelope as the steps — a transient on the first statement of
        // a fresh lifetime must not fail the whole run.
        let (service, _) = rt.run("persistence:init", Some(&db), || {
            PersistenceService::new(&db)
        });
        service?.run(process, instance_key, initial, &mut rt)
    }

    /// Drive N durable instances across `scheduler`'s worker pool — the
    /// BIS analog of WebSphere running many process instances from its
    /// application-server thread pool.
    ///
    /// Step bodies are not `Send`, so each worker builds its own process
    /// definition via `process(index)` rather than sharing one. Results
    /// come back in job order. Each job runs exactly as `run_durable`
    /// would — same dehydration, retry, and breaker behavior — so a
    /// one-worker scheduler is byte-for-byte equivalent to a sequential
    /// loop, and N workers are equivalent whenever the instances touch
    /// disjoint rows (the *multiple parallel instances* pattern the
    /// paper's products all assume).
    pub fn run_many_durable<P>(
        &self,
        db_name: &str,
        process: P,
        instance_keys: &[String],
        initial: &Variables,
        scheduler: &InstanceScheduler,
    ) -> Vec<FlowResult<DurableRun>>
    where
        P: Fn(usize) -> DurableProcess + Send + Sync,
    {
        // Create FLOW_INSTANCES up front so concurrent first-steppers
        // never race on the table's DDL.
        if let Ok(db) = self.registry.resolve(&connection_string(db_name)) {
            let _ = PersistenceService::new(&db);
        }
        scheduler.run_indexed(instance_keys.len(), |i| {
            self.run_durable(db_name, &process(i), &instance_keys[i], initial)
        })
    }

    /// Install this deployment onto a process definition: adds the setup
    /// hook (runtime installation, variable binding, preparation
    /// statements, result-table creation) and the cleanup hook (cleanup
    /// statements, result-table drop, short-running commit).
    pub fn deploy(self, def: ProcessDefinition) -> ProcessDefinition {
        let d = Arc::new(self);
        let setup = d.clone();
        let cleanup = d;
        def.with_setup(move |ctx| setup.run_setup(ctx))
            .with_cleanup(move |ctx| cleanup.run_cleanup(ctx))
    }

    fn run_setup(&self, ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
        let mut runtime = BisRuntime::new(self.registry.clone());
        if let Some(cfg) = &self.retry {
            runtime.retry = Some(
                RetryRuntime::new(cfg.seed)
                    .with_policy(cfg.policy.clone())
                    .with_breaker(cfg.breaker.clone()),
            );
        }
        ctx.extensions.insert(runtime);

        for (var, db_name) in &self.data_source_bindings {
            ctx.variables
                .set(var.clone(), Value::Text(connection_string(db_name)));
        }
        for (var, table) in &self.input_sets {
            ctx.variables
                .set(var.clone(), SetRef::input(table.clone()).into_var());
        }

        let preparations = self.preparations.clone();
        for (ds_var, script) in &preparations {
            self.run_script(ctx, ds_var, script)?;
        }

        for decl in &self.result_sets {
            let table = format!(
                "rs_{}_{}",
                decl.var.to_lowercase().replace(['#', ' '], "_"),
                ctx.instance_id
            );
            if let Some(cols) = &decl.columns_ddl {
                let ddl = format!("CREATE TABLE {table} {cols}");
                self.run_script(ctx, &decl.data_source_var, &ddl)?;
                let db_name = self.db_name_of(ctx, &decl.data_source_var)?;
                let runtime = ctx
                    .extensions
                    .get_mut::<BisRuntime>()
                    .expect("installed above");
                runtime.result_tables.push((db_name, table.clone()));
            }
            ctx.variables
                .set(decl.var.clone(), SetRef::result(table).into_var());
        }

        if ctx.mode == ExecutionMode::ShortRunning {
            let runtime = ctx
                .extensions
                .get_mut::<BisRuntime>()
                .expect("installed above");
            runtime.atomic_active = true;
        }
        Ok(())
    }

    fn run_cleanup(&self, ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
        // Close the instance-level transaction of short-running processes.
        if ctx.mode == ExecutionMode::ShortRunning {
            if let Some(runtime) = ctx.extensions.get_mut::<BisRuntime>() {
                runtime.atomic_active = false;
                let conns: Vec<_> = runtime.atomic_connections.drain().collect();
                for (_, conn) in conns {
                    conn.execute("COMMIT", &[])?;
                }
            }
        }

        let cleanups = self.cleanups.clone();
        for (ds_var, script) in &cleanups {
            self.run_script(ctx, ds_var, script)?;
        }

        // Drop per-instance result set tables.
        let tables = ctx
            .extensions
            .get_mut::<BisRuntime>()
            .map(|r| std::mem::take(&mut r.result_tables))
            .unwrap_or_default();
        for (db_name, table) in tables {
            let db = self.registry.resolve(&connection_string(&db_name))?;
            let conn = db.connect();
            let drop = format!("DROP TABLE IF EXISTS {table}");
            let retry = ctx
                .extensions
                .get_mut::<BisRuntime>()
                .and_then(|r| r.retry.as_mut());
            match retry {
                Some(rt) => {
                    let (r, report) = rt.run(db.name(), Some(&db), || {
                        conn.execute(&drop, &[])
                            .map(|_| ())
                            .map_err(FlowError::from)
                    });
                    for line in report.log {
                        ctx.note("retry", db.name(), line);
                    }
                    r?;
                }
                None => {
                    conn.execute(&drop, &[])?;
                }
            }
        }
        Ok(())
    }

    fn db_name_of(&self, ctx: &ActivityContext<'_>, ds_var: &str) -> FlowResult<String> {
        let conn_string = ctx.variables.require_scalar(ds_var)?.render();
        Ok(self.registry.resolve(&conn_string)?.name().to_string())
    }

    /// Run a deployment script under the instance's retry policy (when
    /// configured). Retries re-run the whole script, so multi-statement
    /// scripts should be idempotent; single-statement scripts (result-set
    /// DDL, drops) always retry safely because a gated fault fires before
    /// anything executes.
    fn run_script(
        &self,
        ctx: &mut ActivityContext<'_>,
        ds_var: &str,
        script: &str,
    ) -> FlowResult<()> {
        let conn_string = ctx.variables.require_scalar(ds_var)?.render();
        let db = self.registry.resolve(&conn_string)?;
        let conn = db.connect();
        let retry = ctx
            .extensions
            .get_mut::<BisRuntime>()
            .and_then(|r| r.retry.as_mut());
        match retry {
            Some(rt) => {
                let (r, report) = rt.run(db.name(), Some(&db), || {
                    conn.execute_script(script)
                        .map(|_| ())
                        .map_err(FlowError::from)
                });
                for line in report.log {
                    ctx.note("retry", db.name(), line);
                }
                r
            }
            None => conn
                .execute_script(script)
                .map(|_| ())
                .map_err(FlowError::from),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowcore::builtins::Empty;
    use flowcore::{Engine, Variables};
    use sqlkernel::Database;

    fn registry_with(db: &Database) -> DataSourceRegistry {
        DataSourceRegistry::new().with(db.clone())
    }

    #[test]
    fn deploys_variables_and_runtime() {
        let db = Database::new("orders_db");
        db.connect()
            .execute("CREATE TABLE Orders (a INT)", &[])
            .unwrap();
        let def = BisDeployment::new(registry_with(&db))
            .bind_data_source("DS_Orders", "orders_db")
            .input_set("SR_Orders", "Orders")
            .deploy(ProcessDefinition::new("p", Empty::new("e")));
        let engine = Engine::new();
        let inst = engine.run(&def, Variables::new()).unwrap();
        assert!(inst.is_completed(), "{:?}", inst.outcome);
        assert_eq!(
            inst.variables.require_scalar("DS_Orders").unwrap().render(),
            "sqlkernel://orders_db"
        );
        let sr = inst
            .variables
            .require_opaque::<SetRef>("SR_Orders")
            .unwrap();
        assert_eq!(sr.table, "Orders");
    }

    #[test]
    fn result_set_lifecycle_creates_and_drops_table() {
        let db = Database::new("orders_db");
        let def = BisDeployment::new(registry_with(&db))
            .bind_data_source("DS", "orders_db")
            .result_set("SR_ItemList", "DS", Some("(ItemId TEXT, Quantity INT)"))
            .deploy(ProcessDefinition::new(
                "p",
                flowcore::builtins::Snippet::new("check", |ctx| {
                    let sr = ctx.variables.require_opaque::<SetRef>("SR_ItemList")?;
                    ctx.variables
                        .set("observed_table", Value::Text(sr.table.clone()));
                    Ok(())
                }),
            ));
        let engine = Engine::new();
        let inst = engine.run(&def, Variables::new()).unwrap();
        assert!(inst.is_completed(), "{:?}", inst.outcome);
        let table = inst
            .variables
            .require_scalar("observed_table")
            .unwrap()
            .render();
        assert!(table.starts_with("rs_sr_itemlist_"));
        // Dropped after the instance finished.
        assert!(!db.has_table(&table));
    }

    #[test]
    fn unique_result_table_names_per_instance() {
        let db = Database::new("d");
        let def = BisDeployment::new(registry_with(&db))
            .bind_data_source("DS", "d")
            .result_set("SR", "DS", Some("(v INT)"))
            .deploy(ProcessDefinition::new(
                "p",
                flowcore::builtins::Snippet::new("remember", |ctx| {
                    let sr = ctx.variables.require_opaque::<SetRef>("SR")?;
                    ctx.variables.set("t", Value::Text(sr.table.clone()));
                    Ok(())
                }),
            ));
        let engine = Engine::new();
        let a = engine.run(&def, Variables::new()).unwrap();
        let b = engine.run(&def, Variables::new()).unwrap();
        assert_ne!(
            a.variables.require_scalar("t").unwrap(),
            b.variables.require_scalar("t").unwrap()
        );
    }

    #[test]
    fn preparation_and_cleanup_scripts_run() {
        let db = Database::new("d");
        let def = BisDeployment::new(registry_with(&db))
            .bind_data_source("DS", "d")
            .prepare(
                "DS",
                "CREATE TABLE staging (v INT); INSERT INTO staging VALUES (1);",
            )
            .cleanup("DS", "DROP TABLE staging")
            .deploy(ProcessDefinition::new(
                "p",
                flowcore::builtins::Snippet::new("observe", |ctx| {
                    ctx.variables.set("present", Value::Bool(true));
                    Ok(())
                }),
            ));
        let engine = Engine::new();
        let inst = engine.run(&def, Variables::new()).unwrap();
        assert!(inst.is_completed(), "{:?}", inst.outcome);
        assert!(!db.has_table("staging"));
    }

    #[test]
    fn run_durable_resumes_after_crash_without_replaying_steps() {
        use flowcore::value::VarValue;
        use sqlkernel::{CrashPoint, Fault, FaultPlan, MemLogStore};
        use std::sync::Arc;

        let two_steps = || {
            DurableProcess::new("intake")
                .step("stage", |conn, vars| {
                    conn.execute("INSERT INTO intake VALUES (1, 'staged')", &[])?;
                    vars.set("phase", VarValue::Scalar(Value::Int(1)));
                    Ok(())
                })
                .step("post", |conn, vars| {
                    conn.execute("INSERT INTO intake VALUES (2, 'posted')", &[])?;
                    vars.set("phase", VarValue::Scalar(Value::Int(2)));
                    Ok(())
                })
        };

        let store = MemLogStore::new();
        {
            let db = Database::with_wal("orders_db", Arc::new(store.clone()));
            db.connect()
                .execute("CREATE TABLE intake (id INT PRIMARY KEY, s TEXT)", &[])
                .unwrap();
        }

        let mut crashed = false;
        for idx in 0..24 {
            let db = Database::recover("orders_db", Arc::new(store.clone())).unwrap();
            let deployment =
                BisDeployment::new(registry_with(&db)).with_retry(5, RetryPolicy::default());
            db.set_fault_plan(Some(
                FaultPlan::new(5).fault_at(idx, Fault::Crash(CrashPoint::AfterLog)),
            ));
            let r = deployment.run_durable("orders_db", &two_steps(), "job-1", &Variables::new());
            if db.fault_injector().map(|i| i.frozen()).unwrap_or(false) {
                assert!(r.is_err());
                crashed = true;
                break;
            }
            if r.is_ok() {
                let conn = db.connect();
                conn.execute(
                    "DELETE FROM FLOW_INSTANCES WHERE InstanceKey = 'job-1'",
                    &[],
                )
                .unwrap();
                conn.execute("DELETE FROM intake", &[]).unwrap();
            }
        }
        assert!(crashed, "no probe index produced a crash");

        // Re-deploy over the recovered database and resume.
        let db = Database::recover("orders_db", Arc::new(store.clone())).unwrap();
        let deployment =
            BisDeployment::new(registry_with(&db)).with_retry(5, RetryPolicy::default());
        let run = deployment
            .run_durable("orders_db", &two_steps(), "job-1", &Variables::new())
            .unwrap();
        assert!(!run.already_completed);
        assert_eq!(
            run.variables.require_scalar("phase").unwrap(),
            &Value::Int(2)
        );
        let rs = db
            .connect()
            .query("SELECT id FROM intake ORDER BY id", &[])
            .unwrap();
        assert_eq!(rs.rows.len(), 2, "each step committed exactly once");
    }

    #[test]
    fn bad_preparation_fails_instance_start() {
        let db = Database::new("d");
        let def = BisDeployment::new(registry_with(&db))
            .bind_data_source("DS", "d")
            .prepare("DS", "CREATE BOGUS")
            .deploy(ProcessDefinition::new("p", Empty::new("e")));
        let engine = Engine::new();
        assert!(engine.run(&def, Variables::new()).is_err());
    }
}
