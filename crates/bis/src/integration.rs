//! [`SqlIntegration`] implementation for the BIS-style stack: Table I
//! column, Figure 3 architecture, and executable demonstrations of all
//! nine data management patterns (Sec. III-C).

use flowcore::builtins::{Assign, CopyFrom, CopyTo, Sequence, Snippet};
use flowcore::{CompletedInstance, Outcome, ProcessDefinition, Variables};
use patterns::{
    Architecture, DataPattern, Demonstration, ProbeEnv, ProbeError, ProductInfo, SqlIntegration,
    SupportLevel, SupportMatrix,
};
use sqlkernel::Value;
use xmlval::{Element, XmlNode};

use crate::activities::{execute_on_data_source, java_snippet, RetrieveSetActivity, SqlActivity};
use crate::cursor::cursor_loop;
use crate::datasource::DataSourceRegistry;
use crate::deployment::BisDeployment;

/// The IBM Business Integration Suite integration style.
pub struct BisProduct;

/// Mechanism row labels (Table II).
const MECH_SQL: &str = "SQL";
const MECH_RETRIEVE: &str = "Retrieve Set";
const MECH_ASSIGN: &str = "Assign (BPEL-specific XPath)";
const MECH_WORKAROUND: &str = "Only workarounds possible";

fn run(env: &ProbeEnv, def: ProcessDefinition) -> Result<CompletedInstance, ProbeError> {
    let inst = env.engine.run(&def, Variables::new())?;
    match inst.outcome {
        Outcome::Completed => Ok(inst),
        ref other => Err(ProbeError(format!("instance ended {other:?}"))),
    }
}

fn base_deployment(env: &ProbeEnv) -> BisDeployment {
    BisDeployment::new(
        DataSourceRegistry::new()
            .with(env.db.clone())
            .with(env.alt_db.clone()),
    )
    .bind_data_source("DS_Orders", env.db.name())
    .input_set("SR_Orders", "Orders")
    .input_set("SR_OrderConfirmations", "OrderConfirmations")
}

/// Body that fills `SV_ItemList` with the aggregated item list (used by
/// every internal-data pattern demo).
fn retrieval_prefix() -> Sequence {
    Sequence::new("prepare SV_ItemList")
        .then(
            SqlActivity::new("SQL_1", "DS_Orders", crate::sample::SQL_1).result_into("SR_ItemList"),
        )
        .then(RetrieveSetActivity::new(
            "Retrieve Set",
            "DS_Orders",
            "SR_ItemList",
            "SV_ItemList",
        ))
}

fn with_item_list(env: &ProbeEnv, tail: impl flowcore::Activity + 'static) -> ProcessDefinition {
    base_deployment(env)
        .result_set(
            "SR_ItemList",
            "DS_Orders",
            Some("(ItemId TEXT, Quantity INT)"),
        )
        .deploy(ProcessDefinition::new(
            "probe",
            retrieval_prefix().then_boxed(Box::new(tail)),
        ))
}

impl SqlIntegration for BisProduct {
    fn product_info(&self) -> ProductInfo {
        ProductInfo {
            vendor: "IBM".into(),
            product: "Business Integration Suite (BIS)".into(),
            workflow_language: "BPEL".into(),
            process_modeling: "graphical, (markup)".into(),
            design_tool: "WebSphere Integration Developer".into(),
            sql_inline_support: vec![
                "SQL Activity".into(),
                "Retrieve Set Activity".into(),
                "Atomic SQL Sequence".into(),
            ],
            external_dataset_reference: "Set Reference, static text".into(),
            materialized_set_representation: "proprietary XML RowSet".into(),
            external_datasource_reference: "dynamic, static".into(),
            additional_features: vec!["Lifecycle Management for DB Entities".into()],
        }
    }

    fn architecture(&self) -> Architecture {
        // Figure 3: Process Modeling and Execution in IBM BIS.
        Architecture::new("IBM Business Integration Suite (Fig. 3)")
            .layer(
                "WebSphere Integration Developer (modeling)",
                &[
                    "Process Editor (graphical, BPEL output)",
                    "Information Server Plugin (information service activities)",
                    "code generation & deployment",
                ],
            )
            .layer(
                "WebSphere Process Server — Service Components",
                &["BPEL Process Engine", "human task / state machine services"],
            )
            .layer(
                "WebSphere Process Server — Supporting Services",
                &["data maps", "relationships", "selectors"],
            )
            .layer(
                "SOA Core",
                &[
                    "service component invocation",
                    "interaction with external services & systems",
                ],
            )
            .layer("J2EE Runtime & SOA Infrastructure", &["application server"])
    }

    fn support_matrix(&self) -> SupportMatrix {
        patterns::paper::ibm_support()
    }

    fn demonstrate(
        &self,
        pattern: DataPattern,
        env: &mut ProbeEnv,
    ) -> Result<Vec<Demonstration>, ProbeError> {
        match pattern {
            DataPattern::Query => self.demo_query(env),
            DataPattern::SetIud => self.demo_set_iud(env),
            DataPattern::DataSetup => self.demo_data_setup(env),
            DataPattern::StoredProcedure => self.demo_stored_procedure(env),
            DataPattern::SetRetrieval => self.demo_set_retrieval(env),
            DataPattern::SequentialSetAccess => self.demo_sequential_access(env),
            DataPattern::RandomSetAccess => self.demo_random_access(env),
            DataPattern::TupleIud => self.demo_tuple_iud(env),
            DataPattern::Synchronization => self.demo_synchronization(env),
        }
    }
}

impl BisProduct {
    fn demo_query(&self, env: &ProbeEnv) -> Result<Vec<Demonstration>, ProbeError> {
        // SQL activity with input + result set references; the result
        // stays in the data source and is only referenced.
        let def = base_deployment(env)
            .result_set(
                "SR_ItemList",
                "DS_Orders",
                Some("(ItemId TEXT, Quantity INT)"),
            )
            .deploy(ProcessDefinition::new(
                "query-probe",
                Sequence::new("main")
                    .then(
                        SqlActivity::new("SQL_1", "DS_Orders", crate::sample::SQL_1)
                            .result_into("SR_ItemList"),
                    )
                    .then(Snippet::new("count external rows", |ctx| {
                        let n = execute_on_data_source(
                            ctx,
                            "DS_Orders",
                            "SELECT COUNT(*) FROM {SR_ItemList}",
                            &[],
                        );
                        // Placeholder substitution happens in SqlActivity,
                        // not raw strings — do it explicitly here.
                        let _ = n;
                        let sql = crate::setref::substitute_set_refs(
                            ctx,
                            "SELECT COUNT(*) FROM {SR_ItemList}",
                        )?;
                        let r = execute_on_data_source(ctx, "DS_Orders", &sql, &[])?
                            .rows()
                            .expect("count query returns rows");
                        ctx.variables.set("external_rows", r.rows[0][0].clone());
                        Ok(())
                    })),
            ));
        let inst = run(env, def)?;
        let n = inst.variables.require_scalar("external_rows")?.render();
        if n != "3" {
            return Err(ProbeError(format!("expected 3 external rows, got {n}")));
        }
        Ok(vec![Demonstration::new(
            DataPattern::Query,
            MECH_SQL,
            SupportLevel::Native,
        )
        .evidence(format!("SQL activity ran: {}", crate::sample::SQL_1))
        .evidence(
            "result set remained external, referenced by SR_ItemList (3 rows)",
        )])
    }

    fn demo_set_iud(&self, env: &ProbeEnv) -> Result<Vec<Demonstration>, ProbeError> {
        let def = base_deployment(env).deploy(ProcessDefinition::new(
            "iud-probe",
            SqlActivity::new(
                "SQL_upd",
                "DS_Orders",
                "UPDATE {SR_Orders} SET Approved = TRUE WHERE Approved = FALSE",
            ),
        ));
        run(env, def)?;
        let conn = env.db.connect();
        let approved = conn
            .query("SELECT COUNT(*) FROM Orders WHERE Approved = TRUE", &[])?
            .single_value()?
            .clone();
        if approved != Value::Int(6) {
            return Err(ProbeError(format!(
                "expected 6 approved orders, got {approved}"
            )));
        }
        Ok(vec![Demonstration::new(
            DataPattern::SetIud,
            MECH_SQL,
            SupportLevel::Native,
        )
        .evidence(
            "set-oriented UPDATE via SQL activity affected 2 rows",
        )])
    }

    fn demo_data_setup(&self, env: &ProbeEnv) -> Result<Vec<Demonstration>, ProbeError> {
        let def = base_deployment(env).deploy(ProcessDefinition::new(
            "setup-probe",
            Sequence::new("main")
                .then(SqlActivity::new(
                    "SQL_ddl",
                    "DS_Orders",
                    "CREATE TABLE audit_log (Id INT PRIMARY KEY, Note TEXT)",
                ))
                .then(SqlActivity::new(
                    "SQL_ddl2",
                    "DS_Orders",
                    "CREATE INDEX idx_orders_item ON Orders (ItemId)",
                )),
        ));
        run(env, def)?;
        if !env.db.has_table("audit_log") {
            return Err(ProbeError("DDL did not create audit_log".into()));
        }
        Ok(vec![Demonstration::new(
            DataPattern::DataSetup,
            MECH_SQL,
            SupportLevel::Native,
        )
        .evidence(
            "CREATE TABLE and CREATE INDEX executed at process runtime via SQL activities",
        )])
    }

    fn demo_stored_procedure(&self, env: &ProbeEnv) -> Result<Vec<Demonstration>, ProbeError> {
        let def = base_deployment(env)
            .result_set(
                "SR_Totals",
                "DS_Orders",
                Some("(ItemId TEXT, Quantity INT)"),
            )
            .deploy(ProcessDefinition::new(
                "proc-probe",
                Sequence::new("main")
                    .then(
                        SqlActivity::new("SQL_call", "DS_Orders", "CALL item_total('widget')")
                            .result_into("SR_Totals"),
                    )
                    .then(Snippet::new("read result", |ctx| {
                        let sql = crate::setref::substitute_set_refs(
                            ctx,
                            "SELECT Quantity FROM {SR_Totals}",
                        )?;
                        let r = execute_on_data_source(ctx, "DS_Orders", &sql, &[])?
                            .rows()
                            .expect("rows");
                        ctx.variables.set("total", r.rows[0][0].clone());
                        Ok(())
                    })),
            ));
        let inst = run(env, def)?;
        if inst.variables.require_scalar("total")? != &Value::Int(15) {
            return Err(ProbeError("stored procedure result wrong".into()));
        }
        Ok(vec![Demonstration::new(
            DataPattern::StoredProcedure,
            MECH_SQL,
            SupportLevel::Native,
        )
        .evidence(
            "CALL item_total('widget') via SQL activity; result referenced externally",
        )])
    }

    fn demo_set_retrieval(&self, env: &ProbeEnv) -> Result<Vec<Demonstration>, ProbeError> {
        let def = with_item_list(env, flowcore::builtins::Empty::new("done"));
        let inst = run(env, def)?;
        let rowset = inst.variables.require_xml("SV_ItemList")?;
        let n = xmlval::rowset::row_count(rowset);
        if n != 3 {
            return Err(ProbeError(format!("expected 3 materialized rows, got {n}")));
        }
        Ok(vec![Demonstration::new(
            DataPattern::SetRetrieval,
            MECH_RETRIEVE,
            SupportLevel::Native,
        )
        .evidence("retrieve set activity materialized SR_ItemList into set variable SV_ItemList")
        .evidence(
            "explicit materialization step — result set treated as external until retrieved",
        )])
    }

    fn demo_sequential_access(&self, env: &ProbeEnv) -> Result<Vec<Demonstration>, ProbeError> {
        let collect = Snippet::new("collect item", |ctx| {
            let item = xmlval::Path::parse("/Row/ItemId")
                .expect("valid")
                .select_text(ctx.variables.require_xml("CurrentItem")?)
                .unwrap_or_default();
            let seen = ctx
                .variables
                .get("seen")
                .and_then(|v| v.as_scalar())
                .map(Value::render)
                .unwrap_or_default();
            ctx.variables
                .set("seen", Value::Text(format!("{seen}{item},")));
            Ok(())
        });
        let def = with_item_list(
            env,
            cursor_loop("cursor", "SV_ItemList", "CurrentItem", collect),
        );
        let inst = run(env, def)?;
        let seen = inst.variables.require_scalar("seen")?.render();
        if seen != "gadget,sprocket,widget," {
            return Err(ProbeError(format!("cursor visited: {seen}")));
        }
        Ok(vec![Demonstration::new(
            DataPattern::SequentialSetAccess,
            MECH_WORKAROUND,
            SupportLevel::Workaround,
        )
        .evidence("while activity + Java-Snippet advanced a cursor over SV_ItemList")
        .evidence(format!("visited in order: {seen}"))])
    }

    fn demo_random_access(&self, env: &ProbeEnv) -> Result<Vec<Demonstration>, ProbeError> {
        let def = with_item_list(
            env,
            Assign::new("pick second row").copy(
                CopyFrom::path("SV_ItemList", "/RowSet/Row[2]/ItemId").expect("valid"),
                CopyTo::Variable("picked".into()),
            ),
        );
        let inst = run(env, def)?;
        let picked = inst.variables.require_scalar("picked")?.render();
        if picked != "sprocket" {
            return Err(ProbeError(format!("random access picked '{picked}'")));
        }
        Ok(vec![Demonstration::new(
            DataPattern::RandomSetAccess,
            MECH_ASSIGN,
            SupportLevel::Native,
        )
        .evidence(
            "assign with XPath /RowSet/Row[2]/ItemId selected a specific tuple",
        )])
    }

    fn demo_tuple_iud(&self, env: &ProbeEnv) -> Result<Vec<Demonstration>, ProbeError> {
        // Part 1 — UPDATE via assign + XPath (abstract level).
        let def = with_item_list(
            env,
            Assign::new("update first quantity").copy(
                CopyFrom::Literal(Value::Int(99).into()),
                CopyTo::path("SV_ItemList", "/RowSet/Row[1]/Quantity").expect("valid"),
            ),
        );
        let inst = run(env, def)?;
        let updated =
            xmlval::rowset::cell_value(inst.variables.require_xml("SV_ItemList")?, 0, "Quantity")?;
        if updated.render() != "99" {
            return Err(ProbeError(format!("assign-update produced {updated}")));
        }

        // Part 2 — INSERT and DELETE need a Java-Snippet workaround.
        let mutate = java_snippet("insert+delete tuples", |ctx| {
            let xml = ctx.variables.require_xml_mut("SV_ItemList")?;
            let root = xml
                .as_element_mut()
                .ok_or_else(|| flowcore::FlowError::Variable("rowset not an element".into()))?;
            // Delete the first row…
            let first = root
                .children
                .iter()
                .position(|c| c.as_element().is_some_and(|e| e.name == "Row"))
                .ok_or_else(|| flowcore::FlowError::Variable("no rows".into()))?;
            root.children.remove(first);
            // …and insert a new one.
            let row = Element::new("Row")
                .with_child(XmlNode::Element(
                    Element::new("ItemId")
                        .with_attr("type", "TEXT")
                        .with_child(XmlNode::text("cog")),
                ))
                .with_child(XmlNode::Element(
                    Element::new("Quantity")
                        .with_attr("type", "INT")
                        .with_child(XmlNode::text("7")),
                ));
            root.children.push(XmlNode::Element(row));
            Ok(())
        });
        let def = with_item_list(env, mutate);
        let inst = run(env, def)?;
        let rowset = inst.variables.require_xml("SV_ItemList")?;
        let n = xmlval::rowset::row_count(rowset);
        let last = xmlval::rowset::cell_value(rowset, n - 1, "ItemId")?;
        if n != 3 || last.render() != "cog" {
            return Err(ProbeError(format!(
                "snippet IUD produced {n} rows, last item {last}"
            )));
        }

        Ok(vec![
            Demonstration::new(
                DataPattern::TupleIud,
                MECH_ASSIGN,
                SupportLevel::Partial(patterns::paper::FOOTNOTE_ONLY_UPDATE.into()),
            )
            .evidence("assign set /RowSet/Row[1]/Quantity to 99 — update only"),
            Demonstration::new(
                DataPattern::TupleIud,
                MECH_WORKAROUND,
                SupportLevel::Partial(patterns::paper::FOOTNOTE_ONLY_DELETE_INSERT.into()),
            )
            .evidence("Java-Snippet deleted one tuple and inserted tuple ('cog', 7)"),
        ])
    }

    fn demo_synchronization(&self, env: &ProbeEnv) -> Result<Vec<Demonstration>, ProbeError> {
        // Local change to the cache, then a hand-written UPDATE pushes it
        // back to the source (Sec. III-C: “As a simple workaround, one may
        // specify appropriate UPDATE statements in an SQL activity”).
        let body = Sequence::new("sync")
            .then(Assign::new("change cache").copy(
                CopyFrom::Literal(Value::Int(100).into()),
                CopyTo::path("SV_ItemList", "/RowSet/Row[3]/Quantity").expect("valid"),
            ))
            .then(java_snippet("write back changed tuple", |ctx| {
                let rowset = ctx.variables.require_xml("SV_ItemList")?.clone();
                let item = xmlval::rowset::cell_value(&rowset, 2, "ItemId")?;
                let qty = xmlval::rowset::cell_value(&rowset, 2, "Quantity")?;
                execute_on_data_source(
                    ctx,
                    "DS_Orders",
                    "UPDATE Orders SET Quantity = ? WHERE ItemId = ? AND Approved = TRUE",
                    &[qty, item],
                )?;
                Ok(())
            }));
        let def = with_item_list(env, body);
        run(env, def)?;
        let conn = env.db.connect();
        let synced = conn
            .query(
                "SELECT COUNT(*) FROM Orders WHERE ItemId = 'widget' AND Quantity = 100",
                &[],
            )?
            .single_value()?
            .clone();
        if synced != Value::Int(2) {
            return Err(ProbeError(format!("sync wrote {synced} rows")));
        }
        Ok(vec![Demonstration::new(
            DataPattern::Synchronization,
            MECH_WORKAROUND,
            SupportLevel::Workaround,
        )
        .evidence(
            "manual UPDATE statements propagated cache changes to the Orders table",
        )])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bis_matrix_is_fully_demonstrated() {
        let demos = patterns::verify_support_matrix(&BisProduct).unwrap();
        // 9 patterns, Tuple IUD twice.
        assert_eq!(demos.len(), 10);
        assert!(demos.iter().all(|d| !d.evidence.is_empty()));
    }

    #[test]
    fn bis_matrix_matches_paper() {
        assert_eq!(BisProduct.support_matrix(), patterns::paper::ibm_support());
    }

    #[test]
    fn architecture_and_info() {
        let a = BisProduct.architecture();
        assert!(a.render().contains("BPEL Process Engine"));
        let i = BisProduct.product_info();
        assert_eq!(i.workflow_language, "BPEL");
        assert_eq!(i.external_datasource_reference, "dynamic, static");
    }
}
