//! `bis` — the IBM Business Integration Suite integration style
//! (paper Sec. III).
//!
//! BIS adds *information service activities* to BPEL:
//!
//! * [`activities::SqlActivity`] — embeds any SQL statement (query, DML,
//!   DDL, stored procedure call); query results **stay in the data
//!   source**, referenced by a result set reference,
//! * [`activities::RetrieveSetActivity`] — the explicit materialization
//!   step loading external data into an XML RowSet set variable,
//! * [`activities::AtomicSqlSequence`] — bundles SQL activities into one
//!   transaction in long-running processes,
//! * [`setref`] — input/result set references: handles to external
//!   tables usable in place of static table names (pass-by-reference of
//!   external data),
//! * [`datasource`] — data source variables with **dynamic binding**:
//!   connection strings held in process variables, re-bindable at
//!   deployment time or runtime,
//! * [`deployment`] — lifecycle management: preparation/cleanup
//!   statements and per-instance result-set tables with generated names,
//! * [`cursor`] — the while + Java-Snippet cursor workaround for
//!   sequential set access,
//! * [`sample`] — the Figure 4 running example,
//! * [`integration::BisProduct`] — the [`patterns::SqlIntegration`]
//!   implementation with executable demonstrations of all nine data
//!   management patterns.

pub mod activities;
pub mod cursor;
pub mod datasource;
pub mod deployment;
pub mod integration;
pub mod sample;
pub mod setref;

pub use activities::{
    execute_on_data_source, java_snippet, AtomicSqlSequence, RetrieveSetActivity, SqlActivity,
};
pub use cursor::cursor_loop;
pub use datasource::{connection_string, BisRuntime, DataSourceRegistry};
pub use deployment::BisDeployment;
pub use integration::BisProduct;
pub use sample::{figure4_process, figure4_process_with_recovery};
pub use setref::{SetRef, SetRefKind};
