//! The information service activities (Sec. III-B): `SQL activity`,
//! `retrieve set activity` and `atomic SQL sequence`.

use flowcore::builtins::CopyFrom;
use flowcore::retry::RetryRuntime;
use flowcore::{
    exec_activity, Activity, ActivityContext, ExecutionMode, FlowError, FlowResult, VarValue,
    Variables,
};
use sqlkernel::{Database, StatementResult, Value};

use crate::datasource::BisRuntime;
use crate::setref::{get_set_ref, substitute_set_refs, SetRef};

/// Read a parameter source as a scalar SQL value.
fn param_value(from: &CopyFrom, vars: &Variables) -> FlowResult<Value> {
    var_to_scalar(from.read(vars)?)
}

fn var_to_scalar(v: VarValue) -> FlowResult<Value> {
    match v {
        VarValue::Scalar(v) => Ok(v),
        VarValue::Null => Ok(Value::Null),
        VarValue::Xml(x) => Ok(Value::Text(x.text_content())),
        VarValue::Opaque(_) => Err(FlowError::Variable(
            "cannot bind an opaque handle as a SQL parameter".into(),
        )),
    }
}

/// Run `op` under the instance's retry runtime (when the deployment
/// configured one), returning the result plus the recovery log the
/// caller must surface in the audit trail.
fn run_with_retry<T>(
    retry: Option<&mut RetryRuntime>,
    key: &str,
    db: &Database,
    mut op: impl FnMut() -> FlowResult<T>,
) -> (FlowResult<T>, Vec<String>) {
    match retry {
        Some(rt) => {
            let (r, report) = rt.run(key, Some(db), op);
            (r, report.log)
        }
        None => (op(), Vec::new()),
    }
}

/// Execute SQL against the database a data source variable points to,
/// routing through the open transactional connection when an atomic
/// scope is active. When the deployment configured a retry policy,
/// transient failures are retried under it and every retry is recorded
/// in the audit trail.
pub fn execute_on_data_source(
    ctx: &mut ActivityContext<'_>,
    data_source_var: &str,
    sql: &str,
    params: &[Value],
) -> FlowResult<StatementResult> {
    let conn_string = ctx
        .variables
        .require_scalar(data_source_var)?
        .as_str()
        .ok_or_else(|| {
            FlowError::Variable(format!(
                "data source variable '{data_source_var}' must hold a connection string"
            ))
        })?
        .to_string();
    let runtime = ctx
        .extensions
        .get_mut::<BisRuntime>()
        .ok_or_else(|| FlowError::Definition("BIS runtime not installed".into()))?;
    let db = runtime.registry.resolve(&conn_string)?;
    let key = db.name().to_string();
    let BisRuntime {
        retry,
        atomic_connections,
        atomic_active,
        ..
    } = runtime;
    let (result, log) = if *atomic_active {
        let conn = atomic_connections.entry(key.clone()).or_insert_with(|| {
            let c = db.connect();
            c.execute("BEGIN", &[])
                .expect("BEGIN on a fresh connection cannot fail");
            c
        });
        run_with_retry(retry.as_mut(), &key, &db, || {
            conn.execute(sql, params).map_err(Into::into)
        })
    } else {
        let conn = db.connect();
        run_with_retry(retry.as_mut(), &key, &db, || {
            conn.execute(sql, params).map_err(Into::into)
        })
    };
    for line in log {
        ctx.note("retry", &key, line);
    }
    result
}

/// Execute one parameterized statement once per binding in `rows`,
/// preparing the plan a single time. This is the runtime half of the
/// paper's deployment-time preparation: the SQL text is parsed once and
/// the cached plan is re-bound for every row. Transaction routing
/// matches [`execute_on_data_source`] — an active atomic scope funnels
/// every binding through the open transactional connection.
pub fn execute_many_on_data_source(
    ctx: &mut ActivityContext<'_>,
    data_source_var: &str,
    sql: &str,
    rows: &[Vec<Value>],
) -> FlowResult<usize> {
    let conn_string = ctx
        .variables
        .require_scalar(data_source_var)?
        .as_str()
        .ok_or_else(|| {
            FlowError::Variable(format!(
                "data source variable '{data_source_var}' must hold a connection string"
            ))
        })?
        .to_string();
    let runtime = ctx
        .extensions
        .get_mut::<BisRuntime>()
        .ok_or_else(|| FlowError::Definition("BIS runtime not installed".into()))?;
    let db = runtime.registry.resolve(&conn_string)?;
    let key = db.name().to_string();
    let BisRuntime {
        retry,
        atomic_connections,
        atomic_active,
        ..
    } = runtime;
    let mut logs: Vec<String> = Vec::new();
    let mut retry = retry.as_mut();
    let mut outcome = Ok(rows.len());
    {
        let fresh;
        let conn = if *atomic_active {
            &*atomic_connections.entry(key.clone()).or_insert_with(|| {
                let c = db.connect();
                c.execute("BEGIN", &[])
                    .expect("BEGIN on a fresh connection cannot fail");
                c
            })
        } else {
            fresh = db.connect();
            &fresh
        };
        match conn.prepare(sql) {
            Ok(prepared) => {
                // Per-row retry: a transient abort rolls back only that
                // statement, so re-running it is safe and the rows already
                // applied stand.
                for row in rows {
                    let (r, log) = run_with_retry(retry.as_deref_mut(), &key, &db, || {
                        conn.execute_prepared(&prepared, row).map_err(Into::into)
                    });
                    logs.extend(log);
                    if let Err(e) = r {
                        outcome = Err(e);
                        break;
                    }
                }
            }
            Err(e) => outcome = Err(e.into()),
        }
    }
    for line in logs {
        ctx.note("retry", &key, line);
    }
    outcome
}

/// The SQL activity: embeds one SQL statement — query, DML, DDL or stored
/// procedure call — that is sent to the referenced database system and
/// processed there. Query / CALL results are **not** passed into the
/// process space: they are stored into the table referenced by the result
/// set reference and remain external (Sec. III-B item 1).
pub struct SqlActivity {
    name: String,
    /// SQL text with `{SetRefVar}` placeholders for set references.
    sql_template: String,
    data_source_var: String,
    params: Vec<CopyFrom>,
    /// Result set reference variable receiving query/CALL output.
    result_set_ref: Option<String>,
}

impl SqlActivity {
    /// Build a SQL activity.
    pub fn new(
        name: impl Into<String>,
        data_source_var: impl Into<String>,
        sql_template: impl Into<String>,
    ) -> SqlActivity {
        SqlActivity {
            name: name.into(),
            sql_template: sql_template.into(),
            data_source_var: data_source_var.into(),
            params: Vec::new(),
            result_set_ref: None,
        }
    }

    /// Builder: bind the next `?` host parameter.
    pub fn param(mut self, from: CopyFrom) -> SqlActivity {
        self.params.push(from);
        self
    }

    /// Builder: bind a scalar variable as the next `?` parameter.
    pub fn param_var(self, variable: impl Into<String>) -> SqlActivity {
        self.param(CopyFrom::Variable(variable.into()))
    }

    /// Builder: store the result set into the table referenced by this
    /// result set reference variable.
    pub fn result_into(mut self, set_ref_var: impl Into<String>) -> SqlActivity {
        self.result_set_ref = Some(set_ref_var.into());
        self
    }
}

impl Activity for SqlActivity {
    fn kind(&self) -> &str {
        "sql"
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn export_attributes(&self) -> Vec<(String, String)> {
        let mut out = vec![
            ("sql".into(), self.sql_template.clone()),
            ("dataSource".into(), self.data_source_var.clone()),
        ];
        if let Some(r) = &self.result_set_ref {
            out.push(("resultSetReference".into(), r.clone()));
        }
        out
    }
    fn execute(&self, ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
        let sql = substitute_set_refs(ctx, &self.sql_template)?;
        let mut params = Vec::with_capacity(self.params.len());
        for p in &self.params {
            params.push(param_value(p, ctx.variables)?);
        }
        let shown = if params.is_empty() {
            sql.clone()
        } else {
            format!(
                "{sql} ⟨{}⟩",
                params
                    .iter()
                    .map(Value::render)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        ctx.note("sql", &self.name, shown);

        let result = execute_on_data_source(ctx, &self.data_source_var, &sql, &params)?;
        match result {
            StatementResult::Rows(rs) => {
                let Some(ref_var) = &self.result_set_ref else {
                    ctx.note(
                        "sql",
                        &self.name,
                        format!(
                            "{} result rows discarded (no result set reference)",
                            rs.len()
                        ),
                    );
                    return Ok(());
                };
                let set_ref = get_set_ref(ctx, ref_var)?;
                store_result_externally(ctx, &self.data_source_var, &set_ref, &rs)?;
                ctx.note(
                    "sql",
                    &self.name,
                    format!(
                        "{} rows stored in external table {} (referenced by {ref_var})",
                        rs.len(),
                        set_ref.table
                    ),
                );
            }
            StatementResult::Affected(n) => {
                ctx.note("sql", &self.name, format!("{n} rows affected"));
            }
            StatementResult::Ddl => {
                ctx.note("sql", &self.name, "DDL executed");
            }
            StatementResult::TxnControl => {}
        }
        Ok(())
    }
}

/// Store a query result in the external table a result set reference
/// points at, creating the table on first use if the deployment did not
/// pre-create it (the paper's lifecycle management normally handles
/// creation via preparation statements).
fn store_result_externally(
    ctx: &mut ActivityContext<'_>,
    data_source_var: &str,
    set_ref: &SetRef,
    rs: &sqlkernel::QueryResult,
) -> FlowResult<()> {
    let table = &set_ref.table;
    // Create on demand with column types inferred from the data.
    let conn_string = ctx.variables.require_scalar(data_source_var)?.render();
    {
        let runtime = ctx
            .extensions
            .get_mut::<BisRuntime>()
            .ok_or_else(|| FlowError::Definition("BIS runtime not installed".into()))?;
        let db = runtime.registry.resolve(&conn_string)?;
        if !db.has_table(table) {
            let cols: Vec<String> = rs
                .columns
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let ty = rs
                        .rows
                        .iter()
                        .find_map(|r| r[i].data_type())
                        .unwrap_or(sqlkernel::DataType::Text);
                    format!("{c} {}", ty.sql_name())
                })
                .collect();
            let ddl = format!("CREATE TABLE {table} ({})", cols.join(", "));
            db.connect().execute(&ddl, &[])?;
            runtime
                .result_tables
                .push((db.name().to_string(), table.clone()));
        }
    }
    let placeholders = vec!["?"; rs.columns.len()].join(", ");
    let insert = format!("INSERT INTO {table} VALUES ({placeholders})");
    execute_many_on_data_source(ctx, data_source_var, &insert, &rs.rows)?;
    Ok(())
}

/// The retrieve set activity: bridges external and internal data
/// processing by loading the table a set reference points at into the
/// process space as an XML RowSet (Sec. III-B item 2).
pub struct RetrieveSetActivity {
    name: String,
    set_ref_var: String,
    data_source_var: String,
    target_set_var: String,
}

impl RetrieveSetActivity {
    /// Build a retrieve set activity.
    pub fn new(
        name: impl Into<String>,
        data_source_var: impl Into<String>,
        set_ref_var: impl Into<String>,
        target_set_var: impl Into<String>,
    ) -> RetrieveSetActivity {
        RetrieveSetActivity {
            name: name.into(),
            set_ref_var: set_ref_var.into(),
            data_source_var: data_source_var.into(),
            target_set_var: target_set_var.into(),
        }
    }
}

impl Activity for RetrieveSetActivity {
    fn kind(&self) -> &str {
        "retrieveSet"
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn export_attributes(&self) -> Vec<(String, String)> {
        vec![
            ("setReference".into(), self.set_ref_var.clone()),
            ("setVariable".into(), self.target_set_var.clone()),
            ("dataSource".into(), self.data_source_var.clone()),
        ]
    }
    fn execute(&self, ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
        let set_ref = get_set_ref(ctx, &self.set_ref_var)?;
        let sql = format!("SELECT * FROM {}", set_ref.table);
        let result = execute_on_data_source(ctx, &self.data_source_var, &sql, &[])?;
        let rs = result
            .rows()
            .ok_or_else(|| FlowError::Definition("retrieve set expected a query result".into()))?;
        let n = rs.len();
        let rowset = xmlval::rowset::encode(&rs);
        ctx.variables.set(self.target_set_var.clone(), rowset);
        ctx.note(
            "retrieveSet",
            &self.name,
            format!(
                "materialized {n} rows from {} into set variable {} (XML RowSet)",
                set_ref.table, self.target_set_var
            ),
        );
        Ok(())
    }
}

/// The atomic SQL sequence (Sec. III-B item 3): in long-running processes
/// its embedded SQL / retrieve set activities execute as a single
/// transaction. In short-running processes the whole instance already is
/// one transaction, so the activity is a plain sequence there.
pub struct AtomicSqlSequence {
    name: String,
    children: Vec<Box<dyn Activity>>,
}

impl AtomicSqlSequence {
    /// Empty atomic sequence.
    pub fn new(name: impl Into<String>) -> AtomicSqlSequence {
        AtomicSqlSequence {
            name: name.into(),
            children: Vec::new(),
        }
    }

    /// Builder: append an activity.
    pub fn then(mut self, child: impl Activity + 'static) -> AtomicSqlSequence {
        self.children.push(Box::new(child));
        self
    }
}

impl Activity for AtomicSqlSequence {
    fn kind(&self) -> &str {
        "atomicSqlSequence"
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn children(&self) -> Vec<&dyn Activity> {
        self.children.iter().map(|c| c.as_ref()).collect()
    }
    fn execute(&self, ctx: &mut ActivityContext<'_>) -> FlowResult<()> {
        if ctx.mode == ExecutionMode::ShortRunning {
            // Whole instance is one transaction already.
            ctx.note(
                "atomicSqlSequence",
                &self.name,
                "short-running process: instance-level transaction applies",
            );
            for child in &self.children {
                exec_activity(child.as_ref(), ctx)?;
            }
            return Ok(());
        }

        {
            let runtime = ctx
                .extensions
                .get_mut::<BisRuntime>()
                .ok_or_else(|| FlowError::Definition("BIS runtime not installed".into()))?;
            if runtime.atomic_active {
                return Err(FlowError::Definition(
                    "atomic SQL sequences cannot be nested".into(),
                ));
            }
            runtime.atomic_active = true;
        }
        ctx.note("atomicSqlSequence", &self.name, "transaction started");

        let mut result = Ok(());
        for child in &self.children {
            result = exec_activity(child.as_ref(), ctx);
            if result.is_err() {
                break;
            }
        }

        let runtime = ctx
            .extensions
            .get_mut::<BisRuntime>()
            .expect("installed above");
        runtime.atomic_active = false;
        let conns: Vec<_> = runtime.atomic_connections.drain().collect();
        match &result {
            Ok(()) => {
                for (_, conn) in conns {
                    conn.execute("COMMIT", &[])?;
                }
                ctx.note("atomicSqlSequence", &self.name, "transaction committed");
            }
            Err(_) => {
                for (_, conn) in conns {
                    conn.rollback_if_open();
                }
                ctx.note("atomicSqlSequence", &self.name, "transaction rolled back");
            }
        }
        result
    }
}

/// A Java-Snippet: IBM's extension for embedding code directly in the
/// process logic (used by the paper's workarounds for sequential access,
/// tuple insert/delete, and synchronization).
pub fn java_snippet(
    name: impl Into<String>,
    body: impl Fn(&mut ActivityContext<'_>) -> FlowResult<()> + 'static,
) -> flowcore::builtins::Snippet {
    flowcore::builtins::Snippet::with_kind(name, "java-snippet", body)
}
