//! Set reference variables (Sec. III-B, “Referencing External Data Sets”).
//!
//! A set reference is a handle to an external table, usable *in place of a
//! static table name* inside an information service activity. Passing a
//! result set reference into a consecutive activity passes external data
//! **by reference instead of by value** — the paper's key contrast with
//! the WF/SOA approaches, and the subject of the `ref_vs_materialize`
//! benchmark.

use flowcore::{ActivityContext, FlowError, FlowResult, OpaqueValue, VarValue};

/// The role a set reference plays in an activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetRefKind {
    /// Refers to an existing table an activity reads or changes.
    Input,
    /// Refers to a (typically generated) table holding a query or
    /// procedure result. May be re-used as input by later activities.
    Result,
}

/// A handle to an external table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetRef {
    pub kind: SetRefKind,
    /// The referenced table name (generated and unique per instance for
    /// result set references).
    pub table: String,
}

impl SetRef {
    /// An input set reference to a named table.
    pub fn input(table: impl Into<String>) -> SetRef {
        SetRef {
            kind: SetRefKind::Input,
            table: table.into(),
        }
    }

    /// A result set reference to a generated table.
    pub fn result(table: impl Into<String>) -> SetRef {
        SetRef {
            kind: SetRefKind::Result,
            table: table.into(),
        }
    }

    /// Wrap as a workflow variable value.
    pub fn into_var(self) -> VarValue {
        VarValue::Opaque(OpaqueValue::new("set-reference", self))
    }
}

/// Read a set reference variable.
pub fn get_set_ref(ctx: &ActivityContext<'_>, var: &str) -> FlowResult<SetRef> {
    Ok(ctx.variables.require_opaque::<SetRef>(var)?.clone())
}

/// Substitute `{VarName}` placeholders in a SQL template with the tables
/// their set reference variables point at. This is how an information
/// service activity uses set references “in place of static table names”.
pub fn substitute_set_refs(ctx: &ActivityContext<'_>, sql_template: &str) -> FlowResult<String> {
    let mut out = String::with_capacity(sql_template.len());
    let mut rest = sql_template;
    while let Some(open) = rest.find('{') {
        out.push_str(&rest[..open]);
        let close = rest[open..].find('}').ok_or_else(|| {
            FlowError::Definition(format!("unbalanced '{{' in SQL template: {sql_template}"))
        })? + open;
        let var = &rest[open + 1..close];
        let set_ref = get_set_ref(ctx, var)?;
        out.push_str(&set_ref.table);
        rest = &rest[close + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowcore::{AuditTrail, Extensions, ServiceRegistry, Variables};

    fn with_ctx<R>(vars: &mut Variables, f: impl FnOnce(&ActivityContext<'_>) -> R) -> R {
        let services = ServiceRegistry::new();
        let mut audit = AuditTrail::new();
        let mut ext = Extensions::new();
        let ctx = ActivityContext {
            instance_id: 1,
            variables: vars,
            services: &services,
            audit: &mut audit,
            mode: flowcore::ExecutionMode::LongRunning,
            extensions: &mut ext,
            depth: 0,
        };
        f(&ctx)
    }

    #[test]
    fn set_ref_as_variable() {
        let mut vars = Variables::new();
        vars.set("SR_Orders", SetRef::input("Orders").into_var());
        with_ctx(&mut vars, |ctx| {
            let sr = get_set_ref(ctx, "SR_Orders").unwrap();
            assert_eq!(sr.table, "Orders");
            assert_eq!(sr.kind, SetRefKind::Input);
        });
    }

    #[test]
    fn template_substitution() {
        let mut vars = Variables::new();
        vars.set("SR_Orders", SetRef::input("Orders").into_var());
        vars.set("SR_ItemList", SetRef::result("rs_itemlist_17").into_var());
        with_ctx(&mut vars, |ctx| {
            let sql = substitute_set_refs(
                ctx,
                "INSERT INTO {SR_ItemList} SELECT ItemId FROM {SR_Orders}",
            )
            .unwrap();
            assert_eq!(sql, "INSERT INTO rs_itemlist_17 SELECT ItemId FROM Orders");
        });
    }

    #[test]
    fn substitution_errors() {
        let mut vars = Variables::new();
        vars.set("NotASetRef", sqlkernel::Value::Int(1));
        with_ctx(&mut vars, |ctx| {
            assert!(substitute_set_refs(ctx, "SELECT * FROM {Missing}").is_err());
            assert!(substitute_set_refs(ctx, "SELECT * FROM {NotASetRef}").is_err());
            assert!(substitute_set_refs(ctx, "SELECT * FROM {Broken").is_err());
        });
    }

    #[test]
    fn no_placeholders_is_identity() {
        let mut vars = Variables::new();
        with_ctx(&mut vars, |ctx| {
            assert_eq!(substitute_set_refs(ctx, "SELECT 1").unwrap(), "SELECT 1");
        });
    }
}
