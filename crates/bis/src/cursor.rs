//! The cursor workaround for the Sequential Set Access pattern
//! (Sec. III-C): *“Such a cursor functionality is based on a while
//! activity and on a Java-Snippet. A Java-Snippet accesses the set
//! variable as Java object and retrieves the next tuple in each
//! iteration.”*

use flowcore::builtins::{Sequence, While};
use flowcore::{Activity, ActivityContext, FlowError, FlowResult};
use xmlval::XmlNode;

use crate::activities::java_snippet;

/// Name of the hidden position variable for a set variable's cursor.
pub fn cursor_position_var(set_var: &str) -> String {
    format!("{set_var}#pos")
}

/// Number of rows in a set variable (an XML RowSet).
pub fn rowset_len(ctx: &ActivityContext<'_>, set_var: &str) -> FlowResult<usize> {
    let xml = ctx.variables.require_xml(set_var)?;
    Ok(xmlval::rowset::row_count(xml))
}

/// Current cursor position (0 if never advanced).
pub fn cursor_position(ctx: &ActivityContext<'_>, set_var: &str) -> FlowResult<usize> {
    match ctx.variables.get(&cursor_position_var(set_var)) {
        None => Ok(0),
        Some(v) => v
            .as_scalar()
            .and_then(|s| s.as_i64())
            .map(|i| i as usize)
            .ok_or_else(|| FlowError::Variable("corrupt cursor position".into())),
    }
}

/// Build the while + Java-Snippet cursor: iterates over the rows of
/// `set_var`, binding each row (as a `<Row>` element) to `current_var`,
/// then executing `body`.
pub fn cursor_loop(
    name: impl Into<String>,
    set_var: impl Into<String>,
    current_var: impl Into<String>,
    body: impl Activity + 'static,
) -> While {
    let name = name.into();
    let set_var = set_var.into();
    let current_var = current_var.into();

    let cond_set_var = set_var.clone();
    let fetch_set_var = set_var.clone();
    let fetch = java_snippet(
        format!("fetch next tuple of {set_var} into {current_var}"),
        move |ctx| {
            let pos = cursor_position(ctx, &fetch_set_var)?;
            let xml = ctx.variables.require_xml(&fetch_set_var)?;
            let row = xml
                .as_element()
                .and_then(|e| e.children_named(xmlval::rowset::ROW_ELEM).nth(pos))
                .ok_or_else(|| {
                    FlowError::Variable(format!("cursor over '{fetch_set_var}' ran past row {pos}"))
                })?
                .clone();
            ctx.variables
                .set(current_var.clone(), XmlNode::Element(row));
            ctx.variables.set(
                cursor_position_var(&fetch_set_var),
                sqlkernel::Value::Int((pos + 1) as i64),
            );
            Ok(())
        },
    );

    While::new(
        name,
        move |ctx: &ActivityContext<'_>| {
            Ok(cursor_position(ctx, &cond_set_var)? < rowset_len(ctx, &cond_set_var)?)
        },
        Sequence::new("cursor body")
            .then(fetch)
            .then_boxed(Box::new(body)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowcore::builtins::Snippet;
    use flowcore::{Engine, ProcessDefinition, Variables};
    use sqlkernel::{QueryResult, Value};

    fn rowset_var() -> XmlNode {
        let rs = QueryResult {
            columns: vec!["ItemId".into(), "Quantity".into()],
            rows: vec![
                vec![Value::text("gadget"), Value::Int(3)],
                vec![Value::text("sprocket"), Value::Int(2)],
                vec![Value::text("widget"), Value::Int(15)],
            ],
        };
        xmlval::rowset::encode(&rs)
    }

    #[test]
    fn cursor_visits_every_row_in_order() {
        let engine = Engine::new();
        let body = Snippet::new("collect", |ctx| {
            let cur = ctx.variables.require_xml("CurrentItem")?;
            let item = xmlval::Path::parse("/Row/ItemId")
                .unwrap()
                .select_text(cur)
                .unwrap();
            let seen = match ctx.variables.get("seen") {
                Some(v) => v.as_scalar().unwrap().render(),
                None => String::new(),
            };
            ctx.variables
                .set("seen", Value::Text(format!("{seen}{item},")));
            Ok(())
        });
        let def = ProcessDefinition::new(
            "cursor-test",
            cursor_loop("iterate", "SV_ItemList", "CurrentItem", body),
        );
        let mut vars = Variables::new();
        vars.set("SV_ItemList", rowset_var());
        let inst = engine.run(&def, vars).unwrap();
        assert!(inst.is_completed(), "{:?}", inst.outcome);
        assert_eq!(
            inst.variables.require_scalar("seen").unwrap(),
            &Value::text("gadget,sprocket,widget,")
        );
        // Java-Snippet shows up in the audit trail (the paper's workaround
        // marker).
        assert!(inst.audit.events().iter().any(|e| e.kind == "java-snippet"));
    }

    #[test]
    fn cursor_over_empty_rowset_never_enters_body() {
        let engine = Engine::new();
        let def = ProcessDefinition::new(
            "empty",
            cursor_loop(
                "iterate",
                "SV",
                "Cur",
                Snippet::new("boom", |_| {
                    panic!("body must not run");
                }),
            ),
        );
        let mut vars = Variables::new();
        vars.set(
            "SV",
            xmlval::rowset::encode(&QueryResult::empty(vec!["a".into()])),
        );
        let inst = engine.run(&def, vars).unwrap();
        assert!(inst.is_completed());
    }

    #[test]
    fn position_helpers() {
        assert_eq!(cursor_position_var("SV"), "SV#pos");
    }
}
