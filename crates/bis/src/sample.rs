//! The Figure 4 sample workflow: the paper's running example realized
//! with IBM BIS technology.
//!
//! The flow aggregates approved orders per item type (SQL activity
//! `SQL_1` with input set reference `SR_Orders` and result set reference
//! `SR_ItemList`), materializes the item list into the process space
//! (retrieve set activity → set variable `SV_ItemList`), iterates with
//! the while + Java-Snippet cursor, calls the `OrderFromSupplier` Web
//! service per item, and records each confirmation via `SQL_2` into the
//! persistent table referenced by `SR_OrderConfirmations`.

use flowcore::builtins::{CopyFrom, Invoke, Sequence};
use flowcore::ProcessDefinition;

use crate::activities::{RetrieveSetActivity, SqlActivity};
use crate::cursor::cursor_loop;
use crate::datasource::DataSourceRegistry;
use crate::deployment::BisDeployment;

/// The aggregation query of activity `SQL_1`, over set references.
pub const SQL_1: &str = "SELECT ItemId, SUM(Quantity) AS Quantity FROM {SR_Orders} \
                         WHERE Approved = TRUE GROUP BY ItemId ORDER BY ItemId";

/// The insert of activity `SQL_2`, over a set reference.
pub const SQL_2: &str = "INSERT INTO {SR_OrderConfirmations} \
                         (ConfId, ItemId, Quantity, Confirmation) \
                         VALUES (NEXTVAL('conf_ids'), ?, ?, ?)";

/// Build the Figure 4 process, deployed against `orders_db` (which must
/// be registered in `registry` and carry the probe schema of
/// [`patterns::probe::seed_orders`]).
pub fn figure4_process(registry: DataSourceRegistry, orders_db: &str) -> ProcessDefinition {
    figure4_deployment(registry, orders_db).deploy(figure4_definition())
}

/// [`figure4_process`] with the recovery layer enabled: every SQL
/// statement the instance sends retries transient faults under `policy`
/// with jitter seeded by `seed`, guarded by a per-database circuit
/// breaker configured by `breaker`.
pub fn figure4_process_with_recovery(
    registry: DataSourceRegistry,
    orders_db: &str,
    seed: u64,
    policy: flowcore::retry::RetryPolicy,
    breaker: flowcore::retry::BreakerConfig,
) -> ProcessDefinition {
    figure4_deployment(registry, orders_db)
        .with_retry(seed, policy)
        .with_breaker(breaker)
        .deploy(figure4_definition())
}

fn figure4_deployment(registry: DataSourceRegistry, orders_db: &str) -> BisDeployment {
    BisDeployment::new(registry)
        .bind_data_source("DS_Orders", orders_db)
        .input_set("SR_Orders", "Orders")
        .input_set("SR_OrderConfirmations", "OrderConfirmations")
        .result_set(
            "SR_ItemList",
            "DS_Orders",
            Some("(ItemId TEXT, Quantity INT)"),
        )
}

fn figure4_definition() -> ProcessDefinition {
    let loop_body = Sequence::new("order item")
        .then(
            Invoke::new("Invoke OrderFromSupplier", patterns::ORDER_FROM_SUPPLIER)
                .input(
                    "ItemType",
                    CopyFrom::path("CurrentItem", "/Row/ItemId").expect("valid path"),
                )
                .input(
                    "Quantity",
                    CopyFrom::path("CurrentItem", "/Row/Quantity").expect("valid path"),
                )
                .output("Confirmation", "OrderConfirmation"),
        )
        .then(
            SqlActivity::new("SQL_2", "DS_Orders", SQL_2)
                .param(CopyFrom::path("CurrentItem", "/Row/ItemId").expect("valid path"))
                .param(CopyFrom::path("CurrentItem", "/Row/Quantity").expect("valid path"))
                .param_var("OrderConfirmation"),
        );

    let body = Sequence::new("main")
        .then(SqlActivity::new("SQL_1", "DS_Orders", SQL_1).result_into("SR_ItemList"))
        .then(RetrieveSetActivity::new(
            "Retrieve Set",
            "DS_Orders",
            "SR_ItemList",
            "SV_ItemList",
        ))
        .then(cursor_loop(
            "while: SV_ItemList has more tuples",
            "SV_ItemList",
            "CurrentItem",
            loop_body,
        ));

    ProcessDefinition::new("OrderAggregation/BIS (Fig. 4)", body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowcore::Variables;
    use patterns::probe::{expected_item_list, ProbeEnv};
    use sqlkernel::Value;

    #[test]
    fn figure4_end_to_end() {
        let env = ProbeEnv::fresh();
        let registry = DataSourceRegistry::new().with(env.db.clone());
        let def = figure4_process(registry, env.db.name());
        let inst = env.engine.run(&def, Variables::new()).unwrap();
        assert!(inst.is_completed(), "{:?}", inst.outcome);

        // One supplier order per aggregated item type, in item order.
        assert_eq!(
            env.confirmations(),
            vec![
                "confirmed:gadget:3",
                "confirmed:sprocket:2",
                "confirmed:widget:15"
            ]
        );

        // Confirmations persisted with aggregated quantities.
        let conn = env.db.connect();
        let rs = conn
            .query(
                "SELECT ItemId, Quantity, Confirmation FROM OrderConfirmations ORDER BY ItemId",
                &[],
            )
            .unwrap();
        let want: Vec<(String, i64)> = expected_item_list()
            .into_iter()
            .map(|(s, n)| (s.to_string(), n))
            .collect();
        let got: Vec<(String, i64)> = rs
            .rows
            .iter()
            .map(|r| (r[0].render(), r[1].as_i64().unwrap()))
            .collect();
        assert_eq!(got, want);
        assert_eq!(rs.rows[0][2], Value::text("confirmed:gadget:3"));

        // The per-instance result set table was dropped at cleanup.
        assert!(env
            .db
            .table_names()
            .iter()
            .all(|t| !t.starts_with("rs_sr_itemlist")));

        // The audit trail shows the paper's activity mix.
        assert!(inst.audit.completed("SQL_1"));
        assert!(inst.audit.completed("Retrieve Set"));
        assert_eq!(inst.audit.completed_count("sql"), 1 + 3); // SQL_1 + 3×SQL_2
        assert_eq!(inst.audit.completed_count("invoke"), 3);
        assert!(inst.audit.events().iter().any(|e| e.kind == "java-snippet"));
    }

    #[test]
    fn figure4_runs_twice_thanks_to_lifecycle_management() {
        let env = ProbeEnv::fresh();
        let registry = DataSourceRegistry::new().with(env.db.clone());
        let def = figure4_process(registry, env.db.name());
        env.engine.run(&def, Variables::new()).unwrap();
        let second = env.engine.run(&def, Variables::new()).unwrap();
        assert!(second.is_completed(), "{:?}", second.outcome);
        // Confirmations from both instances persisted.
        assert_eq!(env.db.table_len("OrderConfirmations").unwrap(), 6);
    }
}
