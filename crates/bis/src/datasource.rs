//! Data source variables and dynamic binding (Sec. III-B).
//!
//! IBM's signature capability: *“WID provides data source variables that
//! hold the connection string to refer to a database system. […] This
//! allows to dynamically switch between different databases without
//! re-deploying the process.”* Binding happens either at deployment time
//! or at runtime (an assign overwriting the connection string).

use std::collections::HashMap;

use flowcore::retry::RetryRuntime;
use flowcore::{ActivityContext, FlowError, FlowResult};
use sqlkernel::{Connection, Database};

/// Connection-string scheme used by the whole workspace.
pub const SCHEME: &str = "sqlkernel://";

/// Build a connection string for a database name.
pub fn connection_string(db_name: &str) -> String {
    format!("{SCHEME}{db_name}")
}

/// Parse a connection string back to a database name.
pub fn parse_connection_string(s: &str) -> FlowResult<&str> {
    s.strip_prefix(SCHEME).ok_or_else(|| {
        FlowError::Variable(format!(
            "'{s}' is not a valid connection string (expected {SCHEME}<database>)"
        ))
    })
}

/// The set of reachable database systems, keyed by name. Plays the role
/// of the JNDI / data-source directory a WPS installation would provide.
#[derive(Debug, Clone, Default)]
pub struct DataSourceRegistry {
    databases: HashMap<String, Database>,
}

impl DataSourceRegistry {
    /// Empty registry.
    pub fn new() -> DataSourceRegistry {
        DataSourceRegistry::default()
    }

    /// Register a database.
    pub fn add(&mut self, db: Database) {
        self.databases.insert(db.name().to_string(), db);
    }

    /// Builder form of [`DataSourceRegistry::add`].
    pub fn with(mut self, db: Database) -> DataSourceRegistry {
        self.add(db);
        self
    }

    /// Resolve a connection string to a database. Names missing from
    /// the local directory fall back to the process-wide shared handle
    /// registry ([`Database::lookup`]), so a database another component
    /// opened via [`Database::open`] (or published with
    /// [`Database::publish`]) is reachable without re-registering it
    /// here. The fallback never creates: unknown names still fail.
    pub fn resolve(&self, conn_string: &str) -> FlowResult<Database> {
        let name = parse_connection_string(conn_string)?;
        if let Some(db) = self.databases.get(name) {
            return Ok(db.clone());
        }
        // `try_lookup`: a poisoned registry (a crashed shard thread died
        // holding the lock) surfaces as a DbError here instead of a
        // panic, so one dead stack cannot wedge this resolver.
        Database::try_lookup(name)
            .map_err(FlowError::Sql)?
            .ok_or_else(|| FlowError::Variable(format!("unknown data source '{name}'")))
    }

    /// Registered database names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.databases.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }
}

/// Per-instance BIS runtime state, installed into the context extensions
/// by [`crate::deployment::BisDeployment`].
pub struct BisRuntime {
    /// The reachable data sources.
    pub registry: DataSourceRegistry,
    /// Open transactional connections, keyed by database name — present
    /// only inside an atomic SQL sequence (or for the whole instance in
    /// short-running mode).
    pub atomic_connections: HashMap<String, Connection>,
    /// Is an atomic scope currently active?
    pub atomic_active: bool,
    /// Result-set tables created for this instance: `(database, table)`
    /// pairs dropped at cleanup.
    pub result_tables: Vec<(String, String)>,
    /// The recovery layer: when configured by the deployment, every SQL
    /// sent to a data source runs under this retry policy and its
    /// per-database circuit breakers.
    pub retry: Option<RetryRuntime>,
}

impl BisRuntime {
    /// Fresh runtime around a registry.
    pub fn new(registry: DataSourceRegistry) -> BisRuntime {
        BisRuntime {
            registry,
            atomic_connections: HashMap::new(),
            atomic_active: false,
            result_tables: Vec::new(),
            retry: None,
        }
    }
}

/// Read a data source variable and resolve it against the instance
/// runtime. The variable holds the connection string as a scalar — which
/// is exactly what makes runtime re-binding a plain assign.
pub fn resolve_data_source(
    ctx: &ActivityContext<'_>,
    data_source_var: &str,
) -> FlowResult<Database> {
    let conn_string = ctx
        .variables
        .require_scalar(data_source_var)?
        .as_str()
        .ok_or_else(|| {
            FlowError::Variable(format!(
                "data source variable '{data_source_var}' must hold a connection string"
            ))
        })?
        .to_string();
    let runtime = ctx
        .extensions
        .get::<BisRuntime>()
        .ok_or_else(|| FlowError::Definition("BIS runtime not installed".into()))?;
    runtime.registry.resolve(&conn_string)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connection_string_round_trip() {
        let s = connection_string("orders_db");
        assert_eq!(s, "sqlkernel://orders_db");
        assert_eq!(parse_connection_string(&s).unwrap(), "orders_db");
        assert!(parse_connection_string("jdbc:db2://x").is_err());
    }

    #[test]
    fn registry_resolution() {
        let reg = DataSourceRegistry::new()
            .with(Database::new("a"))
            .with(Database::new("b"));
        assert_eq!(reg.names(), vec!["a", "b"]);
        assert_eq!(reg.resolve("sqlkernel://a").unwrap().name(), "a");
        assert!(reg.resolve("sqlkernel://c").is_err());
    }

    #[test]
    fn runtime_initial_state() {
        let rt = BisRuntime::new(DataSourceRegistry::new());
        assert!(!rt.atomic_active);
        assert!(rt.atomic_connections.is_empty());
        assert!(rt.result_tables.is_empty());
    }
}
