//! Transaction-boundary semantics of the atomic SQL sequence
//! (Sec. III-B item 3), exercised through the full stack.

use bis::{AtomicSqlSequence, BisDeployment, DataSourceRegistry, SqlActivity};
use flowcore::builtins::{Scope, Sequence, Snippet};
use flowcore::{Engine, ExecutionMode, ProcessDefinition, Variables};
use sqlkernel::{Database, Value};

fn seeded() -> Database {
    let db = Database::new("orders_db");
    db.connect()
        .execute_script(
            "CREATE TABLE t (id INT PRIMARY KEY, v INT);
             INSERT INTO t VALUES (1, 10), (2, 20);",
        )
        .unwrap();
    db
}

fn deploy(db: &Database, root: impl flowcore::Activity + 'static) -> ProcessDefinition {
    BisDeployment::new(DataSourceRegistry::new().with(db.clone()))
        .bind_data_source("DS", db.name())
        .deploy(ProcessDefinition::new("atomic-test", root))
}

fn count(db: &Database, pred: &str) -> i64 {
    db.connect()
        .query(&format!("SELECT COUNT(*) FROM t WHERE {pred}"), &[])
        .unwrap()
        .single_value()
        .unwrap()
        .as_i64()
        .unwrap()
}

#[test]
fn atomic_sequence_commits_all_children() {
    let db = seeded();
    let def = deploy(
        &db,
        AtomicSqlSequence::new("bundle")
            .then(SqlActivity::new(
                "a",
                "DS",
                "UPDATE t SET v = v + 1 WHERE id = 1",
            ))
            .then(SqlActivity::new("b", "DS", "INSERT INTO t VALUES (3, 30)"))
            .then(SqlActivity::new("c", "DS", "DELETE FROM t WHERE id = 2")),
    );
    let inst = Engine::new().run(&def, Variables::new()).unwrap();
    assert!(inst.is_completed(), "{:?}", inst.outcome);
    assert_eq!(count(&db, "id = 1 AND v = 11"), 1);
    assert_eq!(count(&db, "id = 3"), 1);
    assert_eq!(count(&db, "id = 2"), 0);
}

#[test]
fn atomic_sequence_rolls_back_everything_on_fault() {
    let db = seeded();
    let def = deploy(
        &db,
        AtomicSqlSequence::new("bundle")
            .then(SqlActivity::new("a", "DS", "UPDATE t SET v = 999"))
            .then(SqlActivity::new("b", "DS", "INSERT INTO t VALUES (3, 30)"))
            // Primary-key violation faults the sequence.
            .then(SqlActivity::new(
                "boom",
                "DS",
                "INSERT INTO t VALUES (1, 0)",
            )),
    );
    let inst = Engine::new().run(&def, Variables::new()).unwrap();
    assert!(inst.is_faulted());
    // Nothing from the bundle survived.
    assert_eq!(count(&db, "v = 999"), 0);
    assert_eq!(count(&db, "id = 3"), 0);
    assert_eq!(count(&db, "TRUE"), 2);
}

#[test]
fn separate_activities_do_not_roll_back_each_other() {
    // The contrast case: without the atomic sequence, the first update
    // sticks even though the second activity faults.
    let db = seeded();
    let def = deploy(
        &db,
        Sequence::new("unbundled")
            .then(SqlActivity::new("a", "DS", "UPDATE t SET v = 999"))
            .then(SqlActivity::new(
                "boom",
                "DS",
                "INSERT INTO t VALUES (1, 0)",
            )),
    );
    let inst = Engine::new().run(&def, Variables::new()).unwrap();
    assert!(inst.is_faulted());
    assert_eq!(count(&db, "v = 999"), 2);
}

#[test]
fn fault_handler_sees_rolled_back_state() {
    let db = seeded();
    let atomic = AtomicSqlSequence::new("bundle")
        .then(SqlActivity::new("a", "DS", "DELETE FROM t"))
        .then(SqlActivity::new("boom", "DS", "SELECT * FROM nosuch"));
    let def = deploy(
        &db,
        Scope::new("guard", atomic).catch_all(Snippet::new("observe", |ctx| {
            let n = bis::execute_on_data_source(ctx, "DS", "SELECT COUNT(*) FROM t", &[])?
                .rows()
                .expect("rows");
            ctx.variables.set("seen", n.rows[0][0].clone());
            Ok(())
        })),
    );
    let inst = Engine::new().run(&def, Variables::new()).unwrap();
    assert!(inst.is_completed(), "{:?}", inst.outcome);
    // The handler observed the restored table, not the deleted one.
    assert_eq!(
        inst.variables.require_scalar("seen").unwrap(),
        &Value::Int(2)
    );
}

#[test]
fn nested_atomic_sequences_rejected() {
    let db = seeded();
    let def = deploy(
        &db,
        AtomicSqlSequence::new("outer")
            .then(AtomicSqlSequence::new("inner").then(SqlActivity::new("a", "DS", "SELECT 1"))),
    );
    let inst = Engine::new().run(&def, Variables::new()).unwrap();
    assert!(inst.is_faulted());
    // And the failure text names the problem.
    let fault = format!("{:?}", inst.outcome);
    assert!(fault.contains("nested"), "{fault}");
}

#[test]
fn short_running_mode_spans_the_whole_instance() {
    // In short-running processes all SQL activities of the process run
    // in one transaction — even outside an atomic sequence — and commit
    // at instance end (Sec. III-B).
    let db = seeded();
    let def = BisDeployment::new(DataSourceRegistry::new().with(db.clone()))
        .bind_data_source("DS", db.name())
        .deploy(
            ProcessDefinition::new(
                "micro-flow",
                Sequence::new("main")
                    .then(SqlActivity::new("a", "DS", "UPDATE t SET v = v * 2"))
                    .then(SqlActivity::new("b", "DS", "INSERT INTO t VALUES (4, 40)")),
            )
            .with_mode(ExecutionMode::ShortRunning),
        );
    let inst = Engine::new().run(&def, Variables::new()).unwrap();
    assert!(inst.is_completed(), "{:?}", inst.outcome);
    assert_eq!(count(&db, "id = 4"), 1);
    assert_eq!(count(&db, "v = 20 OR v = 40"), 3);
}

#[test]
fn atomic_sequence_is_transparent_in_short_running_mode() {
    let db = seeded();
    let def = BisDeployment::new(DataSourceRegistry::new().with(db.clone()))
        .bind_data_source("DS", db.name())
        .deploy(
            ProcessDefinition::new(
                "micro-flow",
                AtomicSqlSequence::new("bundle").then(SqlActivity::new(
                    "a",
                    "DS",
                    "INSERT INTO t VALUES (5, 50)",
                )),
            )
            .with_mode(ExecutionMode::ShortRunning),
        );
    let inst = Engine::new().run(&def, Variables::new()).unwrap();
    assert!(inst.is_completed(), "{:?}", inst.outcome);
    assert_eq!(count(&db, "id = 5"), 1);
}

#[test]
fn atomic_sequence_spanning_two_data_sources() {
    let db_a = seeded();
    let db_b = Database::new("other_db");
    db_b.connect()
        .execute("CREATE TABLE u (id INT PRIMARY KEY)", &[])
        .unwrap();
    let def = BisDeployment::new(
        DataSourceRegistry::new()
            .with(db_a.clone())
            .with(db_b.clone()),
    )
    .bind_data_source("DS_A", db_a.name())
    .bind_data_source("DS_B", db_b.name())
    .deploy(ProcessDefinition::new(
        "two-phase-ish",
        AtomicSqlSequence::new("bundle")
            .then(SqlActivity::new(
                "a",
                "DS_A",
                "INSERT INTO t VALUES (9, 90)",
            ))
            .then(SqlActivity::new("b", "DS_B", "INSERT INTO u VALUES (1)"))
            // fault after both wrote
            .then(SqlActivity::new(
                "boom",
                "DS_A",
                "INSERT INTO t VALUES (9, 0)",
            )),
    ));
    let inst = Engine::new().run(&def, Variables::new()).unwrap();
    assert!(inst.is_faulted());
    // Both participants rolled back.
    assert_eq!(count(&db_a, "id = 9"), 0);
    assert_eq!(db_b.table_len("u").unwrap(), 0);
}
