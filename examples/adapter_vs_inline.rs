//! Figure 1's two approaches side by side: the running example executed
//! once with SQL inline support (BIS) and once through adapter
//! technology, with identical seed data.
//!
//! The printed traces show the qualitative difference the paper
//! describes: inline support *uncovers* the data management at the
//! process level (SQL activities with visible statements), the adapter
//! *masks* it behind generic service invocations. The engine statement
//! counters also show the marshalling asymmetry.
//!
//! ```text
//! cargo run --example adapter_vs_inline
//! ```

use flowsql::adapter;
use flowsql::bis;
use flowsql::flowcore::{Engine, Variables};
use flowsql::patterns::probe::ProbeEnv;

fn main() {
    // --- inline (BIS, Fig. 4) ---
    let env = ProbeEnv::fresh();
    let registry = bis::DataSourceRegistry::new().with(env.db.clone());
    let def = bis::figure4_process(registry, env.db.name());
    let inline_inst = env.engine.run(&def, Variables::new()).expect("runs");
    assert!(inline_inst.is_completed());
    let inline_kinds = kinds_histogram(&inline_inst.audit);

    // --- adapter baseline ---
    let env2 = ProbeEnv::fresh();
    let mut engine = Engine::with_services(env2.engine.services().clone());
    adapter::register_data_adapter(engine.services_mut(), "OrdersDataService", env2.db.clone());
    let def = adapter::sample_process_via_adapter("OrdersDataService");
    let adapter_inst = engine.run(&def, Variables::new()).expect("runs");
    assert!(adapter_inst.is_completed());
    let adapter_kinds = kinds_histogram(&adapter_inst.audit);

    println!("== SQL INLINE SUPPORT (BIS) — activity kinds used ==");
    for (k, n) in &inline_kinds {
        println!("  {k:<18} ×{n}");
    }
    println!("\n== ADAPTER TECHNOLOGY — activity kinds used ==");
    for (k, n) in &adapter_kinds {
        println!("  {k:<18} ×{n}");
    }

    println!(
        "\nBoth produced identical results: {} vs {} confirmations",
        env.db.table_len("OrderConfirmations").unwrap(),
        env2.db.table_len("OrderConfirmations").unwrap(),
    );
    println!(
        "\nThe inline trace exposes 'sql' and 'retrieveSet' activities — data \
         management is part of the process logic (optimizable, analyzable). \
         The adapter trace shows only 'invoke' and snippets — the SQL is \
         hidden inside the service, separated from the process logic."
    );
}

fn kinds_histogram(audit: &flowsql::flowcore::AuditTrail) -> Vec<(String, usize)> {
    let mut map = std::collections::BTreeMap::new();
    for e in audit.events() {
        if e.status == flowsql::flowcore::AuditStatus::Started {
            *map.entry(e.kind.clone()).or_insert(0usize) += 1;
        }
    }
    map.into_iter().collect()
}
