//! The paper's running example on the IBM BIS stack (Figure 4).
//!
//! Aggregates approved orders per item type with `SQL_1` (result stays
//! *external*, referenced by `SR_ItemList`), materializes it with a
//! retrieve set activity, iterates with the while + Java-Snippet cursor,
//! orders each item from the `OrderFromSupplier` Web service, and records
//! the confirmations through `SQL_2`.
//!
//! ```text
//! cargo run --example order_fulfillment_bis
//! ```

use flowsql::bis;
use flowsql::flowcore::Variables;
use flowsql::patterns::probe::ProbeEnv;

fn main() {
    let env = ProbeEnv::fresh();
    println!(
        "Seed: {} orders ({} approved)\n",
        env.db.table_len("Orders").unwrap(),
        env.db
            .connect()
            .query("SELECT COUNT(*) FROM Orders WHERE Approved = TRUE", &[])
            .unwrap()
            .single_value()
            .unwrap()
    );

    let registry = bis::DataSourceRegistry::new().with(env.db.clone());
    let def = bis::figure4_process(registry, env.db.name());
    let inst = env.engine.run(&def, Variables::new()).expect("runs");
    assert!(inst.is_completed(), "{:?}", inst.outcome);

    println!("Activity trace:\n\n{}", inst.audit.render());
    println!("Supplier confirmations issued: {:?}\n", env.confirmations());
    let rs = env
        .db
        .connect()
        .query(
            "SELECT ConfId, ItemId, Quantity, Confirmation FROM OrderConfirmations \
             ORDER BY ConfId",
            &[],
        )
        .unwrap();
    println!("OrderConfirmations:\n\n{}", rs.to_grid());
    println!(
        "Note: the per-instance result table behind SR_ItemList was dropped at \
         cleanup — tables now in the database: {:?}",
        env.db.table_names()
    );
}
