//! The paper's running example on the Oracle SOA Suite stack (Figure 8).
//!
//! Same business logic, realized with XPath extension functions inside
//! assign activities: `ora:query-database` for the aggregation,
//! `ora:processXSQL` for the parameterized INSERT (with the `Status`
//! return-status variable), and a while + Oracle-specific Java-Snippet
//! for iteration.
//!
//! ```text
//! cargo run --example order_fulfillment_soa
//! ```

use flowsql::flowcore::Variables;
use flowsql::patterns::probe::ProbeEnv;
use flowsql::soa;

fn main() {
    let env = ProbeEnv::fresh();
    let def = soa::figure8_process(env.db.clone());
    let inst = env.engine.run(&def, Variables::new()).expect("runs");
    assert!(inst.is_completed(), "{:?}", inst.outcome);

    println!("Activity trace:\n\n{}", inst.audit.render());
    println!("Supplier confirmations issued: {:?}\n", env.confirmations());
    let rs = env
        .db
        .connect()
        .query(
            "SELECT ItemId, Quantity, Confirmation FROM OrderConfirmations ORDER BY ItemId",
            &[],
        )
        .unwrap();
    println!("OrderConfirmations:\n\n{}", rs.to_grid());
    println!(
        "Status of the final ora:processXSQL call: {}",
        inst.variables.require_scalar("Status").unwrap().render()
    );
    println!(
        "\nThe XSQL page executed by Assign_2:\n{}",
        soa::sample::ASSIGN_2_XSQL
    );
}
