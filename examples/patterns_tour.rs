//! A tour of the nine data management patterns (Figure 2), executed on
//! all three integration styles with evidence.
//!
//! This is the Table II generator in narrative form: for every pattern ×
//! product combination, the pattern is *run* against a fresh copy of the
//! running-example database, and the mechanism + abstraction level that
//! realized it is printed alongside the evidence.
//!
//! ```text
//! cargo run --example patterns_tour
//! ```

use flowsql::patterns::{DataPattern, ProbeEnv, SqlIntegration, SupportLevel};

fn main() {
    let products: Vec<Box<dyn SqlIntegration>> = vec![
        Box::new(flowsql::bis::BisProduct),
        Box::new(flowsql::wf::WfProduct),
        Box::new(flowsql::soa::OracleProduct),
    ];

    for pattern in DataPattern::ALL {
        println!("━━━ {} Pattern ━━━", pattern.title());
        println!("{}\n", pattern.description());
        for product in &products {
            let info = product.product_info();
            let mut env = ProbeEnv::fresh();
            match product.demonstrate(pattern, &mut env) {
                Ok(demos) => {
                    for d in demos {
                        let level = match &d.level {
                            SupportLevel::Native => "native".to_string(),
                            SupportLevel::Partial(q) => format!("partial ({q})"),
                            SupportLevel::Workaround => "workaround".to_string(),
                        };
                        println!("  {:<38} {:<12} via {}", info.product, level, d.mechanism);
                        for e in &d.evidence {
                            println!("      · {e}");
                        }
                    }
                }
                Err(e) => {
                    println!("  {:<38} FAILED: {e}", info.product);
                    std::process::exit(1);
                }
            }
        }
        println!();
    }
    println!(
        "Every line above was produced by executing the pattern on that stack — \
         this is Table II with receipts."
    );
}
