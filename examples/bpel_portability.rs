//! BPEL as the interchange format (Sec. II):
//!
//! *“In order to enhance independence, substitutability and migration,
//! the most important vendors of workflow technology started a
//! standardization process. As a first result, the business process
//! execution language BPEL was published…”*
//!
//! This example builds the running example with IBM BIS technology,
//! **exports** it to BPEL markup (what WID produces), and **imports**
//! that document into the WF stack (which provides “import and export
//! tools for BPEL”). The structured activities travel as standard BPEL
//! elements; the proprietary information service activities surface as
//! `<extensionActivity kind="sql">` / `kind="retrieveSet"` — showing
//! exactly where vendor lock-in lives. The import re-binds those
//! extension points to WF-native equivalents and runs the process to the
//! same result.
//!
//! ```text
//! cargo run --example bpel_portability
//! ```

use flowsql::bis;
use flowsql::flowcore::{self, Variables};
use flowsql::patterns::probe::ProbeEnv;
use flowsql::wf::{self, BpelBindings};

fn main() {
    // 1. Author on the BIS stack.
    let env = ProbeEnv::fresh();
    let registry = bis::DataSourceRegistry::new().with(env.db.clone());
    let bis_def = bis::figure4_process(registry, env.db.name());

    // 2. Export to BPEL.
    let markup = flowcore::export_bpel(&bis_def);
    println!("=== exported BPEL (from the BIS process) ===\n");
    println!("{markup}");
    println!(
        "extension activities in the export (vendor-specific surface): {}\n",
        flowcore::extension_activity_count(&bis_def)
    );

    // 3. Import into the WF stack, re-binding the extension points.
    //    The SQL extension activities are rebuilt as WF SQL database
    //    activities; the retrieve-set step becomes a no-op because WF
    //    materializes automatically; the cursor's java-snippets are
    //    replaced by the WF DataSet iteration.
    //    For this demo we swap in the native WF realization wholesale —
    //    the portable part (sequence/while/invoke skeleton) came from the
    //    BPEL document.
    let bindings = BpelBindings::new();
    match wf::import_bpel(&markup, &bindings) {
        Ok(_) => println!("import succeeded without bindings (unexpected)"),
        Err(e) => {
            println!("=== import without bindings fails, as it must ===");
            println!("  {e}\n");
            println!(
                "The BPEL skeleton is portable; the SQL extension activities are \
                 not — they need vendor bindings on the importing side. That is \
                 the paper's point about proprietary SQL inline support."
            );
        }
    }

    // 4. With bindings supplied, the import becomes executable.
    let env2 = ProbeEnv::fresh();
    let def = wf::figure6_process(env2.db.clone());
    let inst = env2.engine.run(&def, Variables::new()).expect("runs");
    assert!(inst.is_completed());
    println!(
        "\nRe-realized on WF natively: {} confirmations recorded — same business \
         outcome, different integration style.",
        env2.db.table_len("OrderConfirmations").unwrap()
    );
}
