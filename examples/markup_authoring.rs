//! Workflow authoring modes (Table I, “Level of Process Modeling”).
//!
//! The paper distinguishes graphical, code, and **markup** authoring. WF
//! supports *code-only*, *markup-only* (XOML) and *code-separation*
//! modes (Sec. IV-A); IBM and Oracle produce BPEL markup from their
//! design tools. This example authors the same small workflow twice —
//! once in XOML with a code-behind (WF's code-separation mode), once as
//! BPEL markup imported with bindings — and runs both.
//!
//! ```text
//! cargo run --example markup_authoring
//! ```

use flowsql::flowcore::builtins::Sequence;
use flowsql::flowcore::{Engine, ProcessDefinition, Variables};
use flowsql::sqlkernel::{Database, Value};
use flowsql::wf::{self, BpelBindings, CodeBehind, Provider, WfHost};

fn seeded() -> Database {
    let db = Database::new("orders_db");
    db.connect()
        .execute_script(
            "CREATE TABLE Items (Id INT PRIMARY KEY, Name TEXT);
             INSERT INTO Items VALUES (1, 'widget'), (2, 'gadget'), (3, 'cog');",
        )
        .unwrap();
    db
}

fn main() {
    // ----- 1. XOML + code-behind (WF code-separation authoring) -----
    let xoml = r#"
        <SequentialWorkflowActivity x:Name="main">
          <SqlDatabaseActivity x:Name="load"
              ConnectionString="Provider=SqlServer;Database=orders_db"
              Sql="SELECT Id, Name FROM Items ORDER BY Id"
              ResultVariable="SV"/>
          <CodeActivity x:Name="init" Handler="init"/>
          <WhileActivity x:Name="loop" Condition="hasRows">
            <CodeActivity x:Name="consume" Handler="consume"/>
          </WhileActivity>
        </SequentialWorkflowActivity>"#;

    let code = CodeBehind::new()
        .handler("init", |ctx| {
            ctx.variables.set("pos", Value::Int(0));
            ctx.variables.set("names", Value::text(""));
            Ok(())
        })
        .rule("hasRows", |ctx| {
            let pos = ctx.variables.require_scalar("pos")?.as_i64().unwrap() as usize;
            let len = wf::with_dataset(ctx.variables, "SV", |ds| Ok(ds.first_table()?.len()))?;
            Ok(pos < len)
        })
        .handler("consume", |ctx| {
            let pos = ctx.variables.require_scalar("pos")?.as_i64().unwrap() as usize;
            let name = wf::with_dataset(ctx.variables, "SV", |ds| {
                ds.first_table()?.cell(pos, "Name").map_err(Into::into)
            })?;
            let acc = ctx.variables.require_scalar("names")?.render();
            ctx.variables
                .set("names", Value::Text(format!("{acc}{name} ")));
            ctx.variables.set("pos", Value::Int(pos as i64 + 1));
            Ok(())
        });

    let root = wf::load_xoml(xoml, &code).expect("valid XOML");
    let db = seeded();
    let def = WfHost::new()
        .with_database(Provider::SqlServer, db.clone())
        .install(ProcessDefinition::new(
            "xoml-authored",
            Sequence::new("root").then_boxed(root),
        ));
    let inst = Engine::new().run(&def, Variables::new()).expect("runs");
    assert!(inst.is_completed(), "{:?}", inst.outcome);
    println!(
        "XOML (code-separation) run collected: {}",
        inst.variables.require_scalar("names").unwrap()
    );

    // ----- 2. BPEL markup + bindings -----
    let bpel = r#"
        <process name="markup-demo">
          <sequence name="main">
            <empty name="start"/>
            <while name="count-loop">
              <condition>underThree</condition>
              <extensionActivity name="bump" kind="counter"/>
            </while>
          </sequence>
        </process>"#;

    let bindings = BpelBindings::new()
        .rule("underThree", |ctx| {
            Ok(ctx
                .variables
                .get("n")
                .and_then(|v| v.as_scalar())
                .and_then(Value::as_i64)
                .unwrap_or(0)
                < 3)
        })
        .extension("counter", |el| {
            let name = el.attr("name").unwrap_or("bump").to_string();
            Ok(Box::new(flowsql::flowcore::builtins::Snippet::new(
                name,
                |ctx| {
                    let n = ctx
                        .variables
                        .get("n")
                        .and_then(|v| v.as_scalar())
                        .and_then(Value::as_i64)
                        .unwrap_or(0);
                    ctx.variables.set("n", Value::Int(n + 1));
                    Ok(())
                },
            )))
        });

    let root = wf::import_bpel(bpel, &bindings).expect("valid BPEL");
    let def = ProcessDefinition::new("bpel-authored", Sequence::new("root").then_boxed(root));
    let inst = Engine::new().run(&def, Variables::new()).expect("runs");
    assert!(inst.is_completed());
    println!(
        "BPEL markup run counted to: {}",
        inst.variables.require_scalar("n").unwrap()
    );

    println!("\nBoth authoring modes produced executable activity trees over the same engine.");
}
