//! Dynamic data-source binding (Sec. III-B / VI-B):
//!
//! *“This allows, e.g., to switch between a test environment and a
//! production environment without re-deploying a process.”*
//!
//! The same deployed BIS process runs twice: first bound (at deployment
//! time) to the test database, then re-bound **at runtime** — by a plain
//! assign overwriting the data source variable's connection string — to
//! the production database. WF and SOA cannot express this: their
//! connection strings are static parts of the activity.
//!
//! ```text
//! cargo run --example dynamic_binding
//! ```

use flowsql::bis::{connection_string, BisDeployment, DataSourceRegistry, SqlActivity};
use flowsql::flowcore::builtins::{Assign, CopyFrom, CopyTo, Sequence};
use flowsql::flowcore::{Engine, ProcessDefinition, VarValue, Variables};
use flowsql::sqlkernel::{Database, Value};

fn seeded(name: &str) -> Database {
    let db = Database::new(name);
    db.connect()
        .execute_script("CREATE TABLE audit (entry TEXT);")
        .unwrap();
    db
}

fn main() {
    let test_db = seeded("orders_test");
    let prod_db = seeded("orders_prod");

    // One process, deployed once: write an audit entry through DS, then
    // RE-BIND DS to production at runtime and write again.
    let body = Sequence::new("main")
        .then(SqlActivity::new(
            "write via current binding",
            "DS",
            "INSERT INTO audit VALUES ('written')",
        ))
        .then(Assign::new("re-bind DS to production").copy(
            CopyFrom::Literal(VarValue::Scalar(Value::Text(connection_string(
                "orders_prod",
            )))),
            CopyTo::Variable("DS".into()),
        ))
        .then(SqlActivity::new(
            "write via new binding",
            "DS",
            "INSERT INTO audit VALUES ('written')",
        ));

    let def = BisDeployment::new(
        DataSourceRegistry::new()
            .with(test_db.clone())
            .with(prod_db.clone()),
    )
    .bind_data_source("DS", "orders_test") // deployment-time binding
    .deploy(ProcessDefinition::new("dynamic-binding-demo", body));

    let engine = Engine::new();
    let inst = engine.run(&def, Variables::new()).expect("runs");
    assert!(inst.is_completed(), "{:?}", inst.outcome);

    let count = |db: &Database| {
        db.connect()
            .query("SELECT COUNT(*) FROM audit", &[])
            .unwrap()
            .single_value()
            .unwrap()
            .clone()
    };
    println!("Audit trail:\n\n{}", inst.audit.render());
    println!("rows in orders_test.audit: {}", count(&test_db));
    println!("rows in orders_prod.audit: {}", count(&prod_db));
    assert_eq!(count(&test_db), Value::Int(1));
    assert_eq!(count(&prod_db), Value::Int(1));
    println!("\nOne deployed process wrote to both environments — no re-deployment needed.");
}
