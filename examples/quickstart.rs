//! Quickstart: embed SQL directly into a workflow's process logic.
//!
//! Builds a tiny inventory database, defines a three-activity BPEL-style
//! process using IBM BIS-style information service activities (the
//! tightest SQL integration the paper surveys), runs it, and prints the
//! audit trail.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use flowsql::bis::{BisDeployment, DataSourceRegistry, RetrieveSetActivity, SqlActivity};
use flowsql::flowcore::builtins::Sequence;
use flowsql::flowcore::{Engine, ProcessDefinition, Variables};
use flowsql::sqlkernel::Database;

fn main() {
    // 1. A data source (in-memory relational database).
    let db = Database::new("inventory");
    db.connect()
        .execute_script(
            "CREATE TABLE Stock (Item TEXT PRIMARY KEY, Quantity INT);
             INSERT INTO Stock VALUES ('widget', 10), ('gadget', 0), ('cog', 7);",
        )
        .expect("seed schema");

    // 2. A process: restock empty items, then load the stock list into
    //    the process space as an XML RowSet.
    let body = Sequence::new("main")
        .then(SqlActivity::new(
            "Restock",
            "DS",
            "UPDATE {SR_Stock} SET Quantity = 5 WHERE Quantity = 0",
        ))
        .then(SqlActivity::new("Snapshot", "DS", "SELECT * FROM {SR_Stock}").result_into("SR_Snap"))
        .then(RetrieveSetActivity::new(
            "Load", "DS", "SR_Snap", "SV_Stock",
        ));

    // 3. Deployment: bind the data source variable and declare the set
    //    references (the result set table is created per instance and
    //    dropped afterwards — lifecycle management).
    let process = BisDeployment::new(DataSourceRegistry::new().with(db.clone()))
        .bind_data_source("DS", "inventory")
        .input_set("SR_Stock", "Stock")
        .result_set("SR_Snap", "DS", Some("(Item TEXT, Quantity INT)"))
        .deploy(ProcessDefinition::new("quickstart", body));

    // 4. Run.
    let engine = Engine::new();
    let instance = engine
        .run(&process, Variables::new())
        .expect("engine accepts the definition");
    assert!(instance.is_completed(), "{:?}", instance.outcome);

    println!("Audit trail:\n\n{}", instance.audit.render());
    let rowset = instance
        .variables
        .require_xml("SV_Stock")
        .expect("set variable filled");
    println!(
        "SV_Stock holds {} rows as an XML RowSet:\n\n{}",
        flowsql::xmlval::rowset::row_count(rowset),
        rowset.to_pretty_xml()
    );
}
