//! The paper's running example on the Microsoft WF stack (Figure 6).
//!
//! Same business logic as the BIS version, realized with a customized
//! SQL database activity: static table names in the SQL text, automatic
//! materialization into an ADO.NET-style DataSet, iteration through the
//! ADO.NET API inside a while activity.
//!
//! ```text
//! cargo run --example order_fulfillment_wf
//! ```

use flowsql::flowcore::Variables;
use flowsql::patterns::probe::ProbeEnv;
use flowsql::wf;

fn main() {
    let env = ProbeEnv::fresh();
    let def = wf::figure6_process(env.db.clone());
    let inst = env.engine.run(&def, Variables::new()).expect("runs");
    assert!(inst.is_completed(), "{:?}", inst.outcome);

    println!("Activity trace:\n\n{}", inst.audit.render());
    println!("Supplier confirmations issued: {:?}\n", env.confirmations());
    let rs = env
        .db
        .connect()
        .query(
            "SELECT ItemId, Quantity, Confirmation FROM OrderConfirmations ORDER BY ItemId",
            &[],
        )
        .unwrap();
    println!("OrderConfirmations:\n\n{}", rs.to_grid());

    // WF contrast highlights (Sec. IV / VI):
    println!("WF characteristics visible above:");
    println!(" - no set references: 'Orders' is static text in the SQL");
    println!(" - result lives only in the DataSet variable (no external result table)");
    println!(" - iteration used code activities over the ADO.NET API");
    println!(
        " - the Base Activity Library itself has no SQL activity type (checked: {})",
        !wf::bal_has_sql_support()
    );
}
