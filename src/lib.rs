//! # flowsql
//!
//! A from-scratch Rust reproduction of the ecosystem surveyed in
//! *“An Overview of SQL Support in Workflow Products”* (ICDE 2008):
//! a BPEL-style workflow engine, an in-memory SQL database substrate,
//! and the three vendor styles of embedding SQL into process logic —
//! IBM Business Integration Suite ([`bis`]), Microsoft Windows Workflow
//! Foundation ([`wf`]) and Oracle SOA Suite ([`soa`]) — plus the
//! adapter-technology baseline ([`adapter`]) and the paper's
//! data-management pattern framework ([`patterns`]).
//!
//! This crate is a facade: it re-exports every subsystem so examples and
//! downstream users need a single dependency.

pub use adapter;
pub use bis;
pub use flowcore;
pub use patterns;
pub use soa;
pub use sqlkernel;
pub use wf;
pub use xmlval;
