#!/usr/bin/env bash
# Full verification gate: release build, the whole workspace test suite,
# lints, formatting, and the chaos suite under three fixed fault-storm
# seeds. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
# NB: plain `cargo test` at the root only tests the root `flowsql`
# package — `--workspace` is what runs the crate suites.
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all --check

# Chaos: the differential exactly-once suite under rotating storm seeds
# (each run adds CHAOS_SEED to the three built-in schedules), plus the
# compiled-join differential corpus (CHAOS_SEED adds a corpus seed).
for seed in 20260807 271828 31337; do
  CHAOS_SEED="$seed" cargo test -q --test chaos_exactly_once
  CHAOS_SEED="$seed" cargo test -q -p sqlkernel --test join_exec
done

# Crash recovery: kill-and-recover schedules across all three stacks
# (each run adds CRASH_SEED to the three built-in schedule seeds),
# plus the torn-group-append suite and the sharded 2PC storm (fleet
# deaths in every protocol window, merged bytes vs the unsharded run)
# under the same rotation.
for seed in 20260807 271828 31337; do
  CRASH_SEED="$seed" cargo test -q --test crash_recovery
  CRASH_SEED="$seed" cargo test -q --test paged_storage
  CRASH_SEED="$seed" cargo test -q -p sqlkernel --test group_commit_crash
  CRASH_SEED="$seed" CHAOS_SEED="$seed" cargo test -q --test sharded_2pc
done

# MVCC snapshot isolation: the differential snapshot suite (repeatable
# read, torn-commit scans, GC, shared handles) under the same chaos and
# crash seed rotations — its storm tests pick up both variables.
for seed in 20260807 271828 31337; do
  CHAOS_SEED="$seed" CRASH_SEED="$seed" cargo test -q --test mvcc_snapshots
done

# Bench smokes: prove the binaries run end-to-end without overwriting
# the recorded JSONs (BENCH_SMOKE shortens the workload and skips the
# write). bench_vectorized additionally asserts in-process that the
# batched executor engaged and that batched results are byte-identical
# to the interpreter.
BENCH_SMOKE=1 ./target/release/bench_throughput >/dev/null
BENCH_SMOKE=1 ./target/release/bench_vectorized >/dev/null
# bench_concurrency's smoke runs the read-while-write identity gate:
# a fixed transfer budget under concurrent snapshot readers must leave
# bytes identical to the serialized run, with no torn scans.
BENCH_SMOKE=1 ./target/release/bench_concurrency >/dev/null
# bench_shards' smoke asserts in-process that both the single-shard
# fast path and the cross-shard 2PC path committed.
BENCH_SMOKE=1 ./target/release/bench_shards >/dev/null
# bench_storage's smoke asserts in-process that paged recovery preserves
# every row at each working-set ratio and that a working set past the
# pool actually evicts.
BENCH_SMOKE=1 ./target/release/bench_storage >/dev/null
# bench_joins' smoke asserts in-process that the compiled join executor
# engaged (hash join, index nested loop, pushed predicates) and that
# compiled join results are byte-identical to the interpreter's.
BENCH_SMOKE=1 ./target/release/bench_joins >/dev/null

echo "verify: OK"
