#!/usr/bin/env bash
# Full verification gate: release build, the whole workspace test suite,
# and formatting. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
# NB: plain `cargo test` at the root only tests the root `flowsql`
# package — `--workspace` is what runs the crate suites.
cargo test --workspace -q
cargo fmt --all --check

echo "verify: OK"
