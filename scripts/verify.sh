#!/usr/bin/env bash
# Full verification gate: release build, the whole workspace test suite,
# lints, formatting, and the chaos suite under three fixed fault-storm
# seeds. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
# NB: plain `cargo test` at the root only tests the root `flowsql`
# package — `--workspace` is what runs the crate suites.
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all --check

# Chaos: the differential exactly-once suite under rotating storm seeds
# (each run adds CHAOS_SEED to the three built-in schedules).
for seed in 20260807 271828 31337; do
  CHAOS_SEED="$seed" cargo test -q --test chaos_exactly_once
done

# Crash recovery: kill-and-recover schedules across all three stacks
# (each run adds CRASH_SEED to the three built-in schedule seeds),
# plus the torn-group-append suite under the same rotation.
for seed in 20260807 271828 31337; do
  CRASH_SEED="$seed" cargo test -q --test crash_recovery
  CRASH_SEED="$seed" cargo test -q -p sqlkernel --test group_commit_crash
done

# Throughput bench smoke: prove the binary runs end-to-end without
# overwriting the recorded JSON (BENCH_SMOKE shortens the window and
# skips the write).
BENCH_SMOKE=1 ./target/release/bench_throughput >/dev/null

echo "verify: OK"
