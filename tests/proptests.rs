//! Property-based tests over the workspace's core invariants.
//!
//! Self-contained randomized testing: a deterministic SplitMix64 PRNG
//! drives the generators, so every run exercises the same cases (no
//! external property-testing crate required — the workspace builds
//! hermetically). Each test runs `CASES` generated inputs and reports
//! the case index on failure so a seed can be replayed exactly.

use flowsql::sqlkernel::{DataType, Database, QueryResult, Value};
use flowsql::wf::{DataAdapter, DataTable};
use flowsql::xmlval::{self, rowset, Path, XmlNode};

const CASES: u64 = 64;
const HEAVY_CASES: u64 = 32;

// ---------------------------------------------------------------- PRNG

struct Rng {
    state: u64,
}

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform usize in `[lo, hi)`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Uniform i64 in `[lo, hi)`.
    fn irange(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

// ---------------------------------------------------------------- generators

/// A random SQL value: NULL, bool, full-range int, bounded float, or a
/// short printable-ASCII string (including quotes/brackets).
fn gen_value(rng: &mut Rng) -> Value {
    match rng.range(0, 5) {
        0 => Value::Null,
        1 => Value::Bool(rng.bool()),
        2 => Value::Int(rng.next_u64() as i64),
        3 => Value::Float((rng.f64() - 0.5) * 2.0e12),
        _ => {
            let len = rng.range(0, 25);
            Value::Text(
                (0..len)
                    .map(|_| (0x20 + rng.range(0, 0x7F - 0x20) as u8) as char)
                    .collect(),
            )
        }
    }
}

fn gen_ident(rng: &mut Rng) -> String {
    const FIRST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
    const REST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_";
    let mut s = String::new();
    s.push(FIRST[rng.range(0, FIRST.len())] as char);
    for _ in 0..rng.range(0, 9) {
        s.push(REST[rng.range(0, REST.len())] as char);
    }
    s
}

/// A random query result: 1–4 columns with case-insensitively distinct
/// names, 0–7 rows of random values.
fn gen_result(rng: &mut Rng) -> QueryResult {
    let ncols = rng.range(1, 5);
    let mut columns: Vec<String> = Vec::new();
    while columns.len() < ncols {
        let c = gen_ident(rng);
        if !columns.iter().any(|e| e.eq_ignore_ascii_case(&c)) {
            columns.push(c);
        }
    }
    let rows = (0..rng.range(0, 8))
        .map(|_| (0..ncols).map(|_| gen_value(rng)).collect())
        .collect();
    QueryResult { columns, rows }
}

// ---------------------------------------------------------------- value laws

#[test]
fn total_cmp_is_total_and_antisymmetric() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x1001 ^ case);
        let a = gen_value(&mut rng);
        let b = gen_value(&mut rng);
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        assert_eq!(ab, ba.reverse(), "case {case}: {a:?} vs {b:?}");
    }
}

#[test]
fn total_cmp_is_transitive() {
    use std::cmp::Ordering::Greater;
    for case in 0..CASES {
        let mut rng = Rng::new(0x1002 ^ case);
        let mut v = [
            gen_value(&mut rng),
            gen_value(&mut rng),
            gen_value(&mut rng),
        ];
        v.sort_by(|x, y| x.total_cmp(y));
        // sorted order must be internally consistent
        assert_ne!(v[0].total_cmp(&v[1]), Greater, "case {case}");
        assert_ne!(v[1].total_cmp(&v[2]), Greater, "case {case}");
        assert_ne!(v[0].total_cmp(&v[2]), Greater, "case {case}");
    }
}

#[test]
fn equality_implies_equal_hashes() {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    for case in 0..CASES * 4 {
        let mut rng = Rng::new(0x1003 ^ case);
        let a = gen_value(&mut rng);
        // Mix freshly generated values with clones so the equal branch
        // is actually exercised.
        let b = if case % 2 == 0 {
            a.clone()
        } else {
            gen_value(&mut rng)
        };
        if a == b {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            assert_eq!(ha.finish(), hb.finish(), "case {case}: {a:?}");
        }
    }
}

#[test]
fn sql_cmp_matches_total_cmp_for_non_null() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x1004 ^ case);
        let a = gen_value(&mut rng);
        let b = gen_value(&mut rng);
        if !a.is_null() && !b.is_null() {
            assert_eq!(a.sql_cmp(&b), Some(a.total_cmp(&b)), "case {case}");
        } else {
            assert_eq!(a.sql_cmp(&b), None, "case {case}");
        }
    }
}

#[test]
fn text_coercion_round_trips() {
    // Coercing to TEXT and back to the original type is lossless for
    // ints and bools (floats render with enough precision for the
    // ranges generated here).
    for case in 0..CASES {
        let mut rng = Rng::new(0x1005 ^ case);
        let v = gen_value(&mut rng);
        if let Some(ty) = v.data_type() {
            let as_text = v.coerce(DataType::Text).unwrap();
            if ty == DataType::Int || ty == DataType::Bool {
                assert_eq!(as_text.coerce(ty).unwrap(), v, "case {case}");
            }
        }
    }
}

#[test]
fn sql_literal_round_trips_through_parser() {
    // to_sql_literal must re-parse to an equal constant.
    for case in 0..CASES {
        let mut rng = Rng::new(0x1006 ^ case);
        let v = gen_value(&mut rng);
        let lit = v.to_sql_literal();
        let expr = flowsql::sqlkernel::parser::parse_expression(&lit).unwrap();
        let catalog = flowsql::sqlkernel::catalog::Catalog::new();
        let ctx = flowsql::sqlkernel::expr::EvalCtx::constant(&catalog, &[]);
        let back = flowsql::sqlkernel::expr::eval(&expr, &ctx).unwrap();
        match (&v, &back) {
            (Value::Float(a), Value::Float(b)) => {
                assert!((a - b).abs() <= a.abs() * 1e-12, "case {case}: {a} vs {b}")
            }
            _ => assert_eq!(&back, &v, "case {case}: literal {lit}"),
        }
    }
}

// ---------------------------------------------------------------- rowset codec

#[test]
fn rowset_round_trips() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x2001 ^ case);
        let rs = gen_result(&mut rng);
        let xml = rowset::encode(&rs);
        let back = rowset::decode(&xml).unwrap();
        assert_eq!(&back.columns, &rs.columns, "case {case}");
        assert_eq!(back.rows.len(), rs.rows.len(), "case {case}");
        for (a, b) in back.rows.iter().zip(&rs.rows) {
            for (x, y) in a.iter().zip(b) {
                match (x, y) {
                    (Value::Float(p), Value::Float(q)) => {
                        assert!((p - q).abs() <= q.abs() * 1e-12 + 1e-12, "case {case}")
                    }
                    _ => assert_eq!(x, y, "case {case}"),
                }
            }
        }
    }
}

#[test]
fn rowset_survives_serialization() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x2002 ^ case);
        let rs = gen_result(&mut rng);
        let text = rowset::encode(&rs).to_pretty_xml();
        let parsed = xmlval::parse(&text).unwrap();
        let back = rowset::decode(&XmlNode::Element(parsed)).unwrap();
        assert_eq!(back.rows.len(), rs.rows.len(), "case {case}");
        assert_eq!(&back.columns, &rs.columns, "case {case}");
    }
}

#[test]
fn row_count_consistent() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x2003 ^ case);
        let rs = gen_result(&mut rng);
        let xml = rowset::encode(&rs);
        assert_eq!(rowset::row_count(&xml), rs.rows.len(), "case {case}");
    }
}

// ---------------------------------------------------------------- LIKE

fn gen_lower(rng: &mut Rng, lo: usize, hi: usize) -> String {
    (0..rng.range(lo, hi))
        .map(|_| (b'a' + rng.range(0, 26) as u8) as char)
        .collect()
}

#[test]
fn like_self_match() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x3001 ^ case);
        let s = gen_lower(&mut rng, 0, 13);
        assert!(
            flowsql::sqlkernel::expr::like_match(&s, &s),
            "case {case}: {s}"
        );
    }
}

#[test]
fn like_percent_prefix_suffix() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x3002 ^ case);
        let s = gen_lower(&mut rng, 0, 13);
        let pre = gen_lower(&mut rng, 0, 5);
        let suf = gen_lower(&mut rng, 0, 5);
        let full = format!("{pre}{s}{suf}");
        let pat = format!("%{s}%");
        assert!(
            flowsql::sqlkernel::expr::like_match(&full, &pat),
            "case {case}: {full} LIKE {pat}"
        );
        let pat2 = format!("{pre}%{suf}");
        assert!(
            flowsql::sqlkernel::expr::like_match(&full, &pat2),
            "case {case}: {full} LIKE {pat2}"
        );
    }
}

#[test]
fn like_underscore_matches_any_single() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x3003 ^ case);
        let s = gen_lower(&mut rng, 1, 13);
        let idx = rng.range(0, s.len());
        let mut pattern: Vec<char> = s.chars().collect();
        pattern[idx] = '_';
        let pattern: String = pattern.into_iter().collect();
        assert!(
            flowsql::sqlkernel::expr::like_match(&s, &pattern),
            "case {case}: {s} LIKE {pattern}"
        );
    }
}

// ---------------------------------------------------------------- DataSet model

// Model-based test: a random operation sequence applied to both a
// `DataTable` and a plain vector model must agree — and after
// `DataAdapter::update`, the backing SQL table must equal the model too.
#[test]
fn dataset_agrees_with_model_and_adapter_syncs() {
    for case in 0..HEAVY_CASES {
        let mut rng = Rng::new(0x4001 ^ case);
        let db = Database::new("m");
        let conn = db.connect();
        conn.execute_script(
            "CREATE TABLE t (id INT PRIMARY KEY, v INT);
             INSERT INTO t VALUES (1, 10), (2, 20), (3, 30), (4, 40);",
        )
        .unwrap();
        let rs = conn.query("SELECT id, v FROM t ORDER BY id", &[]).unwrap();
        let mut table = DataTable::from_result("t", &rs);
        table.set_key_columns(&["id"]).unwrap();
        let mut model: Vec<(i64, i64)> = vec![(1, 10), (2, 20), (3, 30), (4, 40)];
        let mut next_id = 100i64;

        for _ in 0..rng.range(0, 24) {
            let op = rng.range(0, 4);
            let pick = rng.range(0, 1 << 16);
            let val = rng.irange(i32::MIN as i64, i32::MAX as i64 + 1);
            match op {
                0 if !model.is_empty() => {
                    // update v of a random live row
                    let i = pick % model.len();
                    table.set_cell(i, "v", Value::Int(val)).unwrap();
                    model[i].1 = val;
                }
                1 if !model.is_empty() => {
                    // delete a random live row
                    let i = pick % model.len();
                    table.delete_row(i).unwrap();
                    model.remove(i);
                }
                2 => {
                    // append a new row
                    table
                        .add_row(vec![Value::Int(next_id), Value::Int(val)])
                        .unwrap();
                    model.push((next_id, val));
                    next_id += 1;
                }
                _ => {} // no-op
            }
            // Cache view matches the model at every step.
            let live: Vec<(i64, i64)> = table
                .live_rows()
                .map(|r| {
                    (
                        r.values()[0].as_i64().unwrap(),
                        r.values()[1].as_i64().unwrap(),
                    )
                })
                .collect();
            assert_eq!(&live, &model, "case {case}");
        }

        // Sync back and compare the database to the model.
        DataAdapter::update(&conn, &mut table, "t").unwrap();
        let mut want = model.clone();
        want.sort();
        let got: Vec<(i64, i64)> = conn
            .query("SELECT id, v FROM t ORDER BY id", &[])
            .unwrap()
            .rows
            .iter()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
            .collect();
        assert_eq!(got, want, "case {case}");
        // And the cache is clean afterwards.
        assert!(table.changes().is_empty(), "case {case}");
    }
}

// ---------------------------------------------------------------- paths

#[test]
fn path_display_round_trips() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x5001 ^ case);
        let names: Vec<String> = (0..rng.range(1, 4))
            .map(|_| {
                // letters/digits only (no underscore) as in the original
                let mut s = gen_lower(&mut rng, 1, 2);
                s.push_str(
                    &(0..rng.range(0, 7))
                        .map(|_| {
                            let c = rng.range(0, 36);
                            if c < 26 {
                                (b'a' + c as u8) as char
                            } else {
                                (b'0' + (c - 26) as u8) as char
                            }
                        })
                        .collect::<String>(),
                );
                s
            })
            .collect();
        let idx = if rng.bool() {
            Some(rng.range(1, 9))
        } else {
            None
        };
        let absolute = rng.bool();
        let mut src = String::new();
        if absolute {
            src.push('/');
        }
        src.push_str(&names.join("/"));
        if let Some(i) = idx {
            src.push_str(&format!("[{i}]"));
        }
        let p = Path::parse(&src).unwrap();
        let p2 = Path::parse(&p.to_string()).unwrap();
        assert_eq!(p, p2, "case {case}: {src}");
    }
}

#[test]
fn chains_and_elements_agree() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x5002 ^ case);
        let nrows = rng.range(0, 8);
        let pick = rng.range(1, 9);
        let rs = QueryResult {
            columns: vec!["a".into()],
            rows: (0..nrows).map(|i| vec![Value::Int(i as i64)]).collect(),
        };
        let xml = rowset::encode(&rs);
        let root = xml.as_element().unwrap();
        for src in [
            "/RowSet/Row".to_string(),
            format!("/RowSet/Row[{pick}]"),
            format!("/RowSet/Row[{pick}]/a"),
            "/RowSet/*/a".to_string(),
        ] {
            let p = Path::parse(&src).unwrap();
            let elements = p.select_elements(root);
            let chains = p.select_chains(root).unwrap();
            assert_eq!(elements.len(), chains.len(), "case {case}: {src}");
            for (el, chain) in elements.iter().zip(&chains) {
                let via_chain = xmlval::path::element_by_chain(root, chain).unwrap();
                assert_eq!(*el, via_chain, "case {case}: {src}");
            }
        }
    }
}

// ---------------------------------------------------------------- transactions

// Any sequence of DML inside BEGIN…ROLLBACK leaves the table exactly
// as it was (transaction atomicity over the undo log).
#[test]
fn rollback_restores_exact_state() {
    for case in 0..HEAVY_CASES {
        let mut rng = Rng::new(0x6001 ^ case);
        let db = Database::new("txn");
        let conn = db.connect();
        conn.execute_script(
            "CREATE TABLE t (id INT PRIMARY KEY, v INT);
             INSERT INTO t VALUES (1, 1), (2, 2), (3, 3);",
        )
        .unwrap();
        let before = conn.query("SELECT * FROM t ORDER BY id", &[]).unwrap();

        conn.execute("BEGIN", &[]).unwrap();
        let mut next = 1000i64;
        for _ in 0..rng.range(1, 16) {
            let op = rng.range(0, 3);
            let pick = rng.range(0, 256) as i64;
            let val = rng.irange(i16::MIN as i64, i16::MAX as i64 + 1);
            let r = match op {
                0 => {
                    next += 1;
                    conn.execute(
                        "INSERT INTO t VALUES (?, ?)",
                        &[Value::Int(next), Value::Int(val)],
                    )
                }
                1 => conn.execute(
                    "UPDATE t SET v = ? WHERE id % 3 = ?",
                    &[Value::Int(val), Value::Int(pick % 3)],
                ),
                _ => conn.execute("DELETE FROM t WHERE id % 5 = ?", &[Value::Int(pick % 5)]),
            };
            assert!(r.is_ok(), "case {case}");
        }
        conn.execute("ROLLBACK", &[]).unwrap();

        let after = conn.query("SELECT * FROM t ORDER BY id", &[]).unwrap();
        assert_eq!(before, after, "case {case}");
    }
}

// ORDER BY produces rows sorted under the engine's total order.
#[test]
fn order_by_sorts() {
    for case in 0..HEAVY_CASES {
        let mut rng = Rng::new(0x6002 ^ case);
        let values: Vec<Value> = (0..rng.range(0, 20)).map(|_| gen_value(&mut rng)).collect();
        let db = Database::new("sort");
        let conn = db.connect();
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)", &[])
            .unwrap();
        for (i, v) in values.iter().enumerate() {
            let as_text = match v {
                Value::Null => Value::Null,
                other => other.coerce(DataType::Text).unwrap(),
            };
            conn.execute(
                "INSERT INTO t VALUES (?, ?)",
                &[Value::Int(i as i64), as_text],
            )
            .unwrap();
        }
        let rs = conn.query("SELECT v FROM t ORDER BY v", &[]).unwrap();
        for w in rs.rows.windows(2) {
            assert_ne!(
                w[0][0].total_cmp(&w[1][0]),
                std::cmp::Ordering::Greater,
                "case {case}"
            );
        }
        assert_eq!(rs.rows.len(), values.len(), "case {case}");
    }
}

// ---------------------------------------------------------------- executor vs model

// The SQL executor compared against a hand-rolled reference model on
// random data: filtering with three-valued logic, grouped aggregation,
// DISTINCT, and UNION semantics.
#[test]
fn where_filter_matches_model() {
    for case in 0..HEAVY_CASES {
        let mut rng = Rng::new(0x7001 ^ case);
        let rows: Vec<Option<i64>> = (0..rng.range(0, 30))
            .map(|_| {
                if rng.range(0, 4) == 0 {
                    None
                } else {
                    Some(rng.irange(-5, 15))
                }
            })
            .collect();
        let threshold = rng.irange(-5, 15);
        let db = Database::new("model1");
        let conn = db.connect();
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)", &[])
            .unwrap();
        for (i, v) in rows.iter().enumerate() {
            conn.execute(
                "INSERT INTO t VALUES (?, ?)",
                &[
                    Value::Int(i as i64),
                    v.map(Value::Int).unwrap_or(Value::Null),
                ],
            )
            .unwrap();
        }
        let got = conn
            .query(
                "SELECT id FROM t WHERE v > ? ORDER BY id",
                &[Value::Int(threshold)],
            )
            .unwrap();
        // Model: NULL comparisons are unknown → row dropped.
        let want: Vec<i64> = rows
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_some_and(|x| x > threshold))
            .map(|(i, _)| i as i64)
            .collect();
        let got_ids: Vec<i64> = got.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(got_ids, want, "case {case}");
    }
}

#[test]
fn group_by_sum_matches_model() {
    for case in 0..HEAVY_CASES {
        let mut rng = Rng::new(0x7002 ^ case);
        let rows: Vec<(i64, i64)> = (0..rng.range(0, 40))
            .map(|_| (rng.irange(0, 5), rng.irange(-100, 100)))
            .collect();
        let db = Database::new("model2");
        let conn = db.connect();
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, grp INT, v INT)", &[])
            .unwrap();
        for (i, (g, v)) in rows.iter().enumerate() {
            conn.execute(
                "INSERT INTO t VALUES (?, ?, ?)",
                &[Value::Int(i as i64), Value::Int(*g), Value::Int(*v)],
            )
            .unwrap();
        }
        let got = conn
            .query(
                "SELECT grp, SUM(v), COUNT(*) FROM t GROUP BY grp ORDER BY grp",
                &[],
            )
            .unwrap();
        let mut model: std::collections::BTreeMap<i64, (i64, i64)> = Default::default();
        for (g, v) in &rows {
            let e = model.entry(*g).or_insert((0, 0));
            e.0 += v;
            e.1 += 1;
        }
        assert_eq!(got.rows.len(), model.len(), "case {case}");
        for row in &got.rows {
            let g = row[0].as_i64().unwrap();
            let (sum, count) = model[&g];
            assert_eq!(row[1].as_i64().unwrap(), sum, "case {case}");
            assert_eq!(row[2].as_i64().unwrap(), count, "case {case}");
        }
    }
}

#[test]
fn distinct_and_union_match_model() {
    for case in 0..HEAVY_CASES {
        let mut rng = Rng::new(0x7003 ^ case);
        let left: Vec<i64> = (0..rng.range(0, 20)).map(|_| rng.irange(0, 8)).collect();
        let right: Vec<i64> = (0..rng.range(0, 20)).map(|_| rng.irange(0, 8)).collect();
        let db = Database::new("model3");
        let conn = db.connect();
        conn.execute("CREATE TABLE a (id INT PRIMARY KEY, v INT)", &[])
            .unwrap();
        conn.execute("CREATE TABLE b (id INT PRIMARY KEY, v INT)", &[])
            .unwrap();
        for (i, v) in left.iter().enumerate() {
            conn.execute(
                "INSERT INTO a VALUES (?, ?)",
                &[Value::Int(i as i64), Value::Int(*v)],
            )
            .unwrap();
        }
        for (i, v) in right.iter().enumerate() {
            conn.execute(
                "INSERT INTO b VALUES (?, ?)",
                &[Value::Int(i as i64), Value::Int(*v)],
            )
            .unwrap();
        }

        // DISTINCT = set semantics.
        let got = conn
            .query("SELECT DISTINCT v FROM a ORDER BY v", &[])
            .unwrap();
        let mut want: Vec<i64> = left.clone();
        want.sort_unstable();
        want.dedup();
        let got_vals: Vec<i64> = got.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(&got_vals, &want, "case {case}");

        // UNION dedupes across both arms; UNION ALL concatenates.
        let got = conn
            .query("SELECT v FROM a UNION SELECT v FROM b ORDER BY v", &[])
            .unwrap();
        let mut union_want: Vec<i64> = left.iter().chain(right.iter()).copied().collect();
        union_want.sort_unstable();
        union_want.dedup();
        let got_vals: Vec<i64> = got.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(&got_vals, &union_want, "case {case}");

        let got = conn
            .query("SELECT v FROM a UNION ALL SELECT v FROM b", &[])
            .unwrap();
        assert_eq!(got.rows.len(), left.len() + right.len(), "case {case}");
    }
}

#[test]
fn inner_join_matches_nested_loop_model() {
    for case in 0..HEAVY_CASES {
        let mut rng = Rng::new(0x7004 ^ case);
        let left: Vec<i64> = (0..rng.range(0, 12)).map(|_| rng.irange(0, 6)).collect();
        let right: Vec<i64> = (0..rng.range(0, 12)).map(|_| rng.irange(0, 6)).collect();
        let db = Database::new("model4");
        let conn = db.connect();
        conn.execute("CREATE TABLE l (id INT PRIMARY KEY, k INT)", &[])
            .unwrap();
        conn.execute("CREATE TABLE r (id INT PRIMARY KEY, k INT)", &[])
            .unwrap();
        for (i, v) in left.iter().enumerate() {
            conn.execute(
                "INSERT INTO l VALUES (?, ?)",
                &[Value::Int(i as i64), Value::Int(*v)],
            )
            .unwrap();
        }
        for (i, v) in right.iter().enumerate() {
            conn.execute(
                "INSERT INTO r VALUES (?, ?)",
                &[Value::Int(i as i64), Value::Int(*v)],
            )
            .unwrap();
        }
        let got = conn
            .query("SELECT COUNT(*) FROM l JOIN r ON l.k = r.k", &[])
            .unwrap();
        let want: usize = left
            .iter()
            .map(|lk| right.iter().filter(|rk| *rk == lk).count())
            .sum();
        assert_eq!(
            got.single_value().unwrap().as_i64().unwrap(),
            want as i64,
            "case {case}"
        );
    }
}

// ---------------------------------------------------------------- WAL codec

use flowsql::sqlkernel::wal::{self, WalOp, WalRecord};
use flowsql::sqlkernel::{Column, TableSchema};

fn gen_row(rng: &mut Rng) -> Vec<Value> {
    (0..rng.range(0, 5)).map(|_| gen_value(rng)).collect()
}

fn gen_wal_op(rng: &mut Rng) -> WalOp {
    match rng.range(0, 6) {
        0 => WalOp::Insert {
            table: gen_ident(rng),
            row_id: rng.next_u64(),
            after: gen_row(rng),
        },
        1 => WalOp::Update {
            table: gen_ident(rng),
            row_id: rng.next_u64(),
            before: gen_row(rng),
            after: gen_row(rng),
        },
        2 => WalOp::Delete {
            table: gen_ident(rng),
            row_id: rng.next_u64(),
            before: gen_row(rng),
        },
        3 => {
            let types = [
                DataType::Int,
                DataType::Float,
                DataType::Text,
                DataType::Bool,
            ];
            let cols = (0..rng.range(1, 5))
                .map(|i| {
                    let mut c = Column::new(
                        format!("c{i}_{}", gen_ident(rng)),
                        types[rng.range(0, types.len())],
                    );
                    c.not_null = rng.bool();
                    c
                })
                .collect();
            WalOp::CreateTable {
                schema: TableSchema::new(gen_ident(rng), cols, false).unwrap(),
            }
        }
        4 => WalOp::CreateSequence {
            name: gen_ident(rng),
            current: rng.irange(-1000, 1000),
            increment: rng.irange(1, 10),
        },
        _ => WalOp::DropSequence {
            name: gen_ident(rng),
            current: rng.irange(-1000, 1000),
            increment: rng.irange(1, 10),
        },
    }
}

fn gen_wal_record(rng: &mut Rng) -> WalRecord {
    match rng.range(0, 6) {
        0 => WalRecord::Begin {
            txn: rng.next_u64(),
        },
        1 => WalRecord::Abort {
            txn: rng.next_u64(),
        },
        2 => WalRecord::Commit {
            txn: rng.next_u64(),
            epoch: rng.next_u64(),
            sequences: (0..rng.range(0, 4))
                .map(|i| {
                    (
                        format!("s{i}_{}", gen_ident(rng)),
                        rng.irange(-1000, 1000),
                        rng.irange(1, 10),
                    )
                })
                .collect(),
        },
        _ => WalRecord::Op {
            txn: rng.next_u64(),
            op: gen_wal_op(rng),
        },
    }
}

/// A random log: concatenated frames plus the frame boundary offsets.
fn gen_log(rng: &mut Rng) -> (Vec<u8>, Vec<usize>, Vec<(u64, WalRecord)>) {
    let mut buf = Vec::new();
    let mut boundaries = vec![0usize];
    let mut records = Vec::new();
    for lsn in 1..=(rng.range(1, 8) as u64) {
        let record = gen_wal_record(rng);
        buf.extend_from_slice(&wal::encode_record(lsn, &record));
        boundaries.push(buf.len());
        records.push((lsn, record));
    }
    (buf, boundaries, records)
}

/// Frame codec round-trip: every generated record survives
/// encode → scan byte-exactly, with the full buffer valid.
#[test]
fn wal_records_round_trip_through_frame_codec() {
    let mut rng = Rng::new(0x0A11_0C47);
    for case in 0..CASES {
        let (buf, _, records) = gen_log(&mut rng);
        let scanned = wal::scan(&buf);
        assert!(!scanned.truncated, "case {case}");
        assert_eq!(scanned.valid_len, buf.len(), "case {case}");
        assert_eq!(scanned.records, records, "case {case}");
    }
}

/// Any single-bit flip is rejected: the scan never returns a record that
/// differs from what was written — it stops at the corrupted frame and
/// keeps the intact prefix.
#[test]
fn wal_single_bit_flips_never_pass_the_checksum() {
    let mut rng = Rng::new(0xB17F11B);
    for case in 0..CASES {
        let (mut buf, boundaries, records) = gen_log(&mut rng);
        let byte = rng.range(0, buf.len());
        let bit = rng.range(0, 8);
        buf[byte] ^= 1 << bit;
        // Which frame did the flip land in?
        let frame = boundaries[1..].iter().filter(|&&end| end <= byte).count();
        let scanned = wal::scan(&buf);
        assert!(scanned.truncated, "case {case}: corruption must be noticed");
        assert!(
            scanned.records.len() <= frame,
            "case {case}: scan read past the corrupted frame"
        );
        assert_eq!(
            scanned.records,
            records[..scanned.records.len()],
            "case {case}: surviving prefix must be byte-exact"
        );
        assert!(scanned.valid_len <= boundaries[frame], "case {case}");
    }
}

/// A log cut at any byte (a torn tail) yields exactly the complete-frame
/// prefix — nothing invented, nothing lost before the cut.
#[test]
fn wal_truncated_tails_yield_the_complete_frame_prefix() {
    let mut rng = Rng::new(0x7047_7A11);
    for case in 0..CASES {
        let (buf, boundaries, records) = gen_log(&mut rng);
        let cut = rng.range(0, buf.len() + 1);
        let scanned = wal::scan(&buf[..cut]);
        let complete = boundaries[1..].iter().filter(|&&end| end <= cut).count();
        assert_eq!(
            scanned.records.len(),
            complete,
            "case {case}: cut at {cut} of {}",
            buf.len()
        );
        assert_eq!(scanned.records, records[..complete], "case {case}");
        assert_eq!(scanned.valid_len, boundaries[complete], "case {case}");
        assert_eq!(
            scanned.truncated,
            cut != boundaries[complete],
            "case {case}"
        );
    }
}

// ---------------------------------------------------------------- page codec

use flowsql::sqlkernel::page::{pack_stream, unpack_stream, PageBuilder, PageView, MAX_CELL};
use flowsql::sqlkernel::{PageKind, PAGE_SIZE};

/// Random cells, bounded so several fit on one page.
fn gen_cells(rng: &mut Rng) -> Vec<Vec<u8>> {
    (0..rng.range(0, 6))
        .map(|_| {
            let len = rng.range(0, MAX_CELL / 8);
            (0..len).map(|_| rng.next_u64() as u8).collect()
        })
        .collect()
}

fn gen_kind(rng: &mut Rng) -> PageKind {
    match rng.range(0, 3) {
        0 => PageKind::Meta,
        1 => PageKind::Directory,
        _ => PageKind::Data,
    }
}

/// Build → parse round-trips every header field and every cell byte.
#[test]
fn page_codec_round_trips_random_cells() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x8001 ^ case);
        let kind = gen_kind(&mut rng);
        let page_no = rng.next_u64() % 1_000_000;
        let (epoch, lsn) = (rng.next_u64() % 9999, rng.next_u64() % 99_999);
        let cells = gen_cells(&mut rng);
        let mut b = PageBuilder::new(kind, page_no);
        let mut pushed = Vec::new();
        for c in &cells {
            if b.try_push(c) {
                pushed.push(c.clone());
            }
        }
        let bytes = b.finalize(epoch, lsn);
        assert_eq!(bytes.len(), PAGE_SIZE, "case {case}");
        let v = PageView::parse(&bytes).unwrap();
        assert_eq!(v.kind(), kind, "case {case}");
        assert_eq!(v.page_no(), page_no, "case {case}");
        assert_eq!(v.epoch(), epoch, "case {case}");
        assert_eq!(v.page_lsn(), lsn, "case {case}");
        assert_eq!(v.cell_count(), pushed.len(), "case {case}");
        for (i, c) in pushed.iter().enumerate() {
            assert_eq!(v.cell(i), &c[..], "case {case} cell {i}");
        }
    }
}

/// Any single flipped bit — header, slot directory, payload, or the
/// checksum field itself — must make the page unreadable. This is the
/// whole torn-page/bit-rot defense: detection is the checksum's job.
#[test]
fn page_single_bit_flip_is_always_rejected() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x8002 ^ case);
        let mut b = PageBuilder::new(gen_kind(&mut rng), rng.next_u64() % 1000);
        for c in gen_cells(&mut rng) {
            b.try_push(&c);
        }
        let mut bytes = b.finalize(1, 7);
        let bit = rng.range(0, PAGE_SIZE * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        assert!(
            PageView::parse(&bytes).is_err(),
            "case {case}: flipped bit {bit} went undetected"
        );
    }
}

/// A torn write leaves a prefix: parsed as-is (short buffer) it must
/// never verify; padded with zeros to a full page (as a zero-filling
/// store returns it) it must fail whenever the tear destroyed any
/// non-zero byte — a tear across already-zero slack reconstructs the
/// identical page, which rightly verifies.
#[test]
fn page_torn_prefix_truncation_is_always_rejected() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x8003 ^ case);
        let mut b = PageBuilder::new(gen_kind(&mut rng), rng.next_u64() % 1000);
        for c in gen_cells(&mut rng) {
            b.try_push(&c);
        }
        let bytes = b.finalize(2, 9);
        let cut = rng.range(0, PAGE_SIZE);
        assert!(
            PageView::parse(&bytes[..cut]).is_err(),
            "case {case}: short buffer of {cut} bytes parsed"
        );
        if bytes[cut..].iter().any(|&b| b != 0) {
            let mut padded = bytes[..cut].to_vec();
            padded.resize(PAGE_SIZE, 0);
            assert!(
                PageView::parse(&padded).is_err(),
                "case {case}: zero-padded torn prefix of {cut} bytes parsed"
            );
        }
    }
}

/// `pack_stream`/`unpack_stream` round-trip arbitrary streams at any
/// length (empty, sub-page, many-page) and detect misdirected writes.
#[test]
fn pack_stream_round_trips_and_catches_misdirected_writes() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x8004 ^ case);
        let len = rng.range(0, 3 * MAX_CELL + 17);
        let stream: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let base = rng.next_u64() % 500;
        let mut next = base;
        let pages = pack_stream(PageKind::Data, &stream, 3, 11, || {
            next += 1;
            next
        });
        assert!(
            !pages.is_empty(),
            "case {case}: even empty streams get a page"
        );
        let back = unpack_stream(PageKind::Data, &pages).unwrap();
        assert_eq!(back, stream, "case {case}");
        // Swapping two page slots (a misdirected write) must be caught
        // by the stamped page number, not silently reassembled.
        if pages.len() >= 2 {
            let mut swapped = pages.clone();
            let a = swapped[0].0;
            let b = swapped[1].0;
            swapped[0].0 = b;
            swapped[1].0 = a;
            assert!(
                unpack_stream(PageKind::Data, &swapped).is_err(),
                "case {case}: misdirected write went undetected"
            );
        }
    }
}
