//! Property-based tests over the workspace's core invariants.

use proptest::prelude::*;

use flowsql::sqlkernel::{DataType, Database, QueryResult, Value};
use flowsql::wf::{DataAdapter, DataTable};
use flowsql::xmlval::{self, rowset, Path, XmlNode};

// ---------------------------------------------------------------- strategies

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1.0e12f64..1.0e12).prop_map(Value::Float),
        "[ -~]{0,24}".prop_map(Value::Text), // printable ASCII incl. quotes/brackets
    ]
}

fn arb_ident() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_]{0,8}".prop_map(|s| s)
}

fn arb_result() -> impl Strategy<Value = QueryResult> {
    (1usize..5)
        .prop_flat_map(|ncols| {
            (
                proptest::collection::vec(arb_ident(), ncols..=ncols),
                proptest::collection::vec(
                    proptest::collection::vec(arb_value(), ncols..=ncols),
                    0..8,
                ),
            )
        })
        .prop_filter("distinct column names", |(cols, _)| {
            let mut lower: Vec<String> = cols.iter().map(|c| c.to_lowercase()).collect();
            lower.sort();
            lower.dedup();
            lower.len() == cols.len()
        })
        .prop_map(|(columns, rows)| QueryResult { columns, rows })
}

// ---------------------------------------------------------------- value laws

proptest! {
    #[test]
    fn total_cmp_is_total_and_antisymmetric(a in arb_value(), b in arb_value()) {
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
    }

    #[test]
    fn total_cmp_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering::*;
        let mut v = [a, b, c];
        v.sort_by(|x, y| x.total_cmp(y));
        // sorted order must be internally consistent
        prop_assert_ne!(v[0].total_cmp(&v[1]), Greater);
        prop_assert_ne!(v[1].total_cmp(&v[2]), Greater);
        prop_assert_ne!(v[0].total_cmp(&v[2]), Greater);
    }

    #[test]
    fn equality_implies_equal_hashes(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        if a == b {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    #[test]
    fn sql_cmp_matches_total_cmp_for_non_null(a in arb_value(), b in arb_value()) {
        if !a.is_null() && !b.is_null() {
            prop_assert_eq!(a.sql_cmp(&b), Some(a.total_cmp(&b)));
        } else {
            prop_assert_eq!(a.sql_cmp(&b), None);
        }
    }

    #[test]
    fn text_coercion_round_trips(v in arb_value()) {
        // Coercing to TEXT and back to the original type is lossless for
        // ints and bools (floats render with enough precision for the
        // ranges generated here).
        if let Some(ty) = v.data_type() {
            let as_text = v.coerce(DataType::Text).unwrap();
            if ty == DataType::Int || ty == DataType::Bool {
                prop_assert_eq!(as_text.coerce(ty).unwrap(), v);
            }
        }
    }

    #[test]
    fn sql_literal_round_trips_through_parser(v in arb_value()) {
        // to_sql_literal must re-parse to an equal constant.
        let lit = v.to_sql_literal();
        let expr = flowsql::sqlkernel::parser::parse_expression(&lit).unwrap();
        let catalog = flowsql::sqlkernel::catalog::Catalog::new();
        let ctx = flowsql::sqlkernel::expr::EvalCtx::constant(&catalog, &[]);
        let back = flowsql::sqlkernel::expr::eval(&expr, &ctx).unwrap();
        match (&v, &back) {
            (Value::Float(a), Value::Float(b)) => prop_assert!((a - b).abs() <= a.abs() * 1e-12),
            _ => prop_assert_eq!(&back, &v),
        }
    }
}

// ---------------------------------------------------------------- rowset codec

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rowset_round_trips(rs in arb_result()) {
        let xml = rowset::encode(&rs);
        let back = rowset::decode(&xml).unwrap();
        prop_assert_eq!(&back.columns, &rs.columns);
        prop_assert_eq!(back.rows.len(), rs.rows.len());
        for (a, b) in back.rows.iter().zip(&rs.rows) {
            for (x, y) in a.iter().zip(b) {
                match (x, y) {
                    (Value::Float(p), Value::Float(q)) => {
                        prop_assert!((p - q).abs() <= q.abs() * 1e-12 + 1e-12)
                    }
                    _ => prop_assert_eq!(x, y),
                }
            }
        }
    }

    #[test]
    fn rowset_survives_serialization(rs in arb_result()) {
        let text = rowset::encode(&rs).to_pretty_xml();
        let parsed = xmlval::parse(&text).unwrap();
        let back = rowset::decode(&XmlNode::Element(parsed)).unwrap();
        prop_assert_eq!(back.rows.len(), rs.rows.len());
        prop_assert_eq!(&back.columns, &rs.columns);
    }

    #[test]
    fn row_count_consistent(rs in arb_result()) {
        let xml = rowset::encode(&rs);
        prop_assert_eq!(rowset::row_count(&xml), rs.rows.len());
    }
}

// ---------------------------------------------------------------- LIKE

proptest! {
    #[test]
    fn like_self_match(s in "[a-z]{0,12}") {
        prop_assert!(flowsql::sqlkernel::expr::like_match(&s, &s));
    }

    #[test]
    fn like_percent_prefix_suffix(s in "[a-z]{0,12}", pre in "[a-z]{0,4}", suf in "[a-z]{0,4}") {
        let full = format!("{pre}{s}{suf}");
        let pat = format!("%{s}%");
        prop_assert!(flowsql::sqlkernel::expr::like_match(&full, &pat));
        let pat2 = format!("{pre}%{suf}");
        prop_assert!(flowsql::sqlkernel::expr::like_match(&full, &pat2));
    }

    #[test]
    fn like_underscore_matches_any_single(s in "[a-z]{1,12}", idx in 0usize..12) {
        let idx = idx % s.len();
        let mut pattern: Vec<char> = s.chars().collect();
        pattern[idx] = '_';
        let pattern: String = pattern.into_iter().collect();
        prop_assert!(flowsql::sqlkernel::expr::like_match(&s, &pattern));
    }
}

// ---------------------------------------------------------------- DataSet model

// Model-based test: a random operation sequence applied to both a
// `DataTable` and a plain vector model must agree — and after
// `DataAdapter::update`, the backing SQL table must equal the model too.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dataset_agrees_with_model_and_adapter_syncs(
        ops in proptest::collection::vec((0u8..4, any::<u16>(), any::<i32>()), 0..24)
    ) {
        let db = Database::new("m");
        let conn = db.connect();
        conn.execute_script(
            "CREATE TABLE t (id INT PRIMARY KEY, v INT);
             INSERT INTO t VALUES (1, 10), (2, 20), (3, 30), (4, 40);",
        ).unwrap();
        let rs = conn.query("SELECT id, v FROM t ORDER BY id", &[]).unwrap();
        let mut table = DataTable::from_result("t", &rs);
        table.set_key_columns(&["id"]).unwrap();
        let mut model: Vec<(i64, i64)> = vec![(1, 10), (2, 20), (3, 30), (4, 40)];
        let mut next_id = 100i64;

        for (op, pick, val) in ops {
            match op {
                0 if !model.is_empty() => {
                    // update v of a random live row
                    let i = pick as usize % model.len();
                    table.set_cell(i, "v", Value::Int(val as i64)).unwrap();
                    model[i].1 = val as i64;
                }
                1 if !model.is_empty() => {
                    // delete a random live row
                    let i = pick as usize % model.len();
                    table.delete_row(i).unwrap();
                    model.remove(i);
                }
                2 => {
                    // append a new row
                    table.add_row(vec![Value::Int(next_id), Value::Int(val as i64)]).unwrap();
                    model.push((next_id, val as i64));
                    next_id += 1;
                }
                _ => {} // no-op
            }
            // Cache view matches the model at every step.
            let live: Vec<(i64, i64)> = table
                .live_rows()
                .map(|r| (r.values()[0].as_i64().unwrap(), r.values()[1].as_i64().unwrap()))
                .collect();
            prop_assert_eq!(&live, &model);
        }

        // Sync back and compare the database to the model.
        DataAdapter::update(&conn, &mut table, "t").unwrap();
        let mut want = model.clone();
        want.sort();
        let got: Vec<(i64, i64)> = conn
            .query("SELECT id, v FROM t ORDER BY id", &[])
            .unwrap()
            .rows
            .iter()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
            .collect();
        prop_assert_eq!(got, want);
        // And the cache is clean afterwards.
        prop_assert!(table.changes().is_empty());
    }
}

// ---------------------------------------------------------------- paths

proptest! {
    #[test]
    fn path_display_round_trips(
        names in proptest::collection::vec("[A-Za-z][A-Za-z0-9]{0,6}", 1..4),
        idx in proptest::option::of(1usize..9),
        absolute in any::<bool>(),
    ) {
        let mut src = String::new();
        if absolute { src.push('/'); }
        src.push_str(&names.join("/"));
        if let Some(i) = idx { src.push_str(&format!("[{i}]")); }
        let p = Path::parse(&src).unwrap();
        let p2 = Path::parse(&p.to_string()).unwrap();
        prop_assert_eq!(p, p2);
    }

    #[test]
    fn chains_and_elements_agree(nrows in 0usize..8, pick in 1usize..9) {
        let rs = QueryResult {
            columns: vec!["a".into()],
            rows: (0..nrows).map(|i| vec![Value::Int(i as i64)]).collect(),
        };
        let xml = rowset::encode(&rs);
        let root = xml.as_element().unwrap();
        for src in [
            "/RowSet/Row".to_string(),
            format!("/RowSet/Row[{pick}]"),
            format!("/RowSet/Row[{pick}]/a"),
            "/RowSet/*/a".to_string(),
        ] {
            let p = Path::parse(&src).unwrap();
            let elements = p.select_elements(root);
            let chains = p.select_chains(root).unwrap();
            prop_assert_eq!(elements.len(), chains.len());
            for (el, chain) in elements.iter().zip(&chains) {
                let via_chain = xmlval::path::element_by_chain(root, chain).unwrap();
                prop_assert_eq!(*el, via_chain);
            }
        }
    }
}

// ---------------------------------------------------------------- transactions

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Any sequence of DML inside BEGIN…ROLLBACK leaves the table exactly
    // as it was (transaction atomicity over the undo log).
    #[test]
    fn rollback_restores_exact_state(
        ops in proptest::collection::vec((0u8..3, any::<u8>(), any::<i16>()), 1..16)
    ) {
        let db = Database::new("txn");
        let conn = db.connect();
        conn.execute_script(
            "CREATE TABLE t (id INT PRIMARY KEY, v INT);
             INSERT INTO t VALUES (1, 1), (2, 2), (3, 3);",
        ).unwrap();
        let before = conn.query("SELECT * FROM t ORDER BY id", &[]).unwrap();

        conn.execute("BEGIN", &[]).unwrap();
        let mut next = 1000i64;
        for (op, pick, val) in ops {
            let r = match op {
                0 => {
                    next += 1;
                    conn.execute(
                        "INSERT INTO t VALUES (?, ?)",
                        &[Value::Int(next), Value::Int(val as i64)],
                    )
                }
                1 => conn.execute(
                    "UPDATE t SET v = ? WHERE id % 3 = ?",
                    &[Value::Int(val as i64), Value::Int((pick % 3) as i64)],
                ),
                _ => conn.execute(
                    "DELETE FROM t WHERE id % 5 = ?",
                    &[Value::Int((pick % 5) as i64)],
                ),
            };
            prop_assert!(r.is_ok());
        }
        conn.execute("ROLLBACK", &[]).unwrap();

        let after = conn.query("SELECT * FROM t ORDER BY id", &[]).unwrap();
        prop_assert_eq!(before, after);
    }

    // ORDER BY produces rows sorted under the engine's total order.
    #[test]
    fn order_by_sorts(values in proptest::collection::vec(arb_value(), 0..20)) {
        let db = Database::new("sort");
        let conn = db.connect();
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)", &[]).unwrap();
        for (i, v) in values.iter().enumerate() {
            let as_text = match v {
                Value::Null => Value::Null,
                other => other.coerce(DataType::Text).unwrap(),
            };
            conn.execute(
                "INSERT INTO t VALUES (?, ?)",
                &[Value::Int(i as i64), as_text],
            ).unwrap();
        }
        let rs = conn.query("SELECT v FROM t ORDER BY v", &[]).unwrap();
        for w in rs.rows.windows(2) {
            prop_assert_ne!(w[0][0].total_cmp(&w[1][0]), std::cmp::Ordering::Greater);
        }
        prop_assert_eq!(rs.rows.len(), values.len());
    }
}

// ---------------------------------------------------------------- executor vs model

// The SQL executor compared against a hand-rolled reference model on
// random data: filtering with three-valued logic, grouped aggregation,
// DISTINCT, and UNION semantics.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn where_filter_matches_model(
        rows in proptest::collection::vec(
            (0i64..20, proptest::option::of(-5i64..15)), 0..30),
        threshold in -5i64..15,
    ) {
        let db = Database::new("model1");
        let conn = db.connect();
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)", &[]).unwrap();
        for (i, (_, v)) in rows.iter().enumerate() {
            conn.execute(
                "INSERT INTO t VALUES (?, ?)",
                &[Value::Int(i as i64), v.map(Value::Int).unwrap_or(Value::Null)],
            ).unwrap();
        }
        let got = conn
            .query("SELECT id FROM t WHERE v > ? ORDER BY id", &[Value::Int(threshold)])
            .unwrap();
        // Model: NULL comparisons are unknown → row dropped.
        let want: Vec<i64> = rows
            .iter()
            .enumerate()
            .filter(|(_, (_, v))| v.is_some_and(|x| x > threshold))
            .map(|(i, _)| i as i64)
            .collect();
        let got_ids: Vec<i64> = got.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        prop_assert_eq!(got_ids, want);
    }

    #[test]
    fn group_by_sum_matches_model(
        rows in proptest::collection::vec((0i64..5, -100i64..100), 0..40),
    ) {
        let db = Database::new("model2");
        let conn = db.connect();
        conn.execute("CREATE TABLE t (id INT PRIMARY KEY, grp INT, v INT)", &[]).unwrap();
        for (i, (g, v)) in rows.iter().enumerate() {
            conn.execute(
                "INSERT INTO t VALUES (?, ?, ?)",
                &[Value::Int(i as i64), Value::Int(*g), Value::Int(*v)],
            ).unwrap();
        }
        let got = conn
            .query("SELECT grp, SUM(v), COUNT(*) FROM t GROUP BY grp ORDER BY grp", &[])
            .unwrap();
        let mut model: std::collections::BTreeMap<i64, (i64, i64)> = Default::default();
        for (g, v) in &rows {
            let e = model.entry(*g).or_insert((0, 0));
            e.0 += v;
            e.1 += 1;
        }
        prop_assert_eq!(got.rows.len(), model.len());
        for row in &got.rows {
            let g = row[0].as_i64().unwrap();
            let (sum, count) = model[&g];
            prop_assert_eq!(row[1].as_i64().unwrap(), sum);
            prop_assert_eq!(row[2].as_i64().unwrap(), count);
        }
    }

    #[test]
    fn distinct_and_union_match_model(
        left in proptest::collection::vec(0i64..8, 0..20),
        right in proptest::collection::vec(0i64..8, 0..20),
    ) {
        let db = Database::new("model3");
        let conn = db.connect();
        conn.execute("CREATE TABLE a (id INT PRIMARY KEY, v INT)", &[]).unwrap();
        conn.execute("CREATE TABLE b (id INT PRIMARY KEY, v INT)", &[]).unwrap();
        for (i, v) in left.iter().enumerate() {
            conn.execute("INSERT INTO a VALUES (?, ?)", &[Value::Int(i as i64), Value::Int(*v)]).unwrap();
        }
        for (i, v) in right.iter().enumerate() {
            conn.execute("INSERT INTO b VALUES (?, ?)", &[Value::Int(i as i64), Value::Int(*v)]).unwrap();
        }

        // DISTINCT = set semantics.
        let got = conn.query("SELECT DISTINCT v FROM a ORDER BY v", &[]).unwrap();
        let mut want: Vec<i64> = left.clone();
        want.sort_unstable();
        want.dedup();
        let got_vals: Vec<i64> = got.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        prop_assert_eq!(&got_vals, &want);

        // UNION dedupes across both arms; UNION ALL concatenates.
        let got = conn
            .query("SELECT v FROM a UNION SELECT v FROM b ORDER BY v", &[])
            .unwrap();
        let mut union_want: Vec<i64> = left.iter().chain(right.iter()).copied().collect();
        union_want.sort_unstable();
        union_want.dedup();
        let got_vals: Vec<i64> = got.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        prop_assert_eq!(&got_vals, &union_want);

        let got = conn
            .query("SELECT v FROM a UNION ALL SELECT v FROM b", &[])
            .unwrap();
        prop_assert_eq!(got.rows.len(), left.len() + right.len());
    }

    #[test]
    fn inner_join_matches_nested_loop_model(
        left in proptest::collection::vec(0i64..6, 0..12),
        right in proptest::collection::vec(0i64..6, 0..12),
    ) {
        let db = Database::new("model4");
        let conn = db.connect();
        conn.execute("CREATE TABLE l (id INT PRIMARY KEY, k INT)", &[]).unwrap();
        conn.execute("CREATE TABLE r (id INT PRIMARY KEY, k INT)", &[]).unwrap();
        for (i, v) in left.iter().enumerate() {
            conn.execute("INSERT INTO l VALUES (?, ?)", &[Value::Int(i as i64), Value::Int(*v)]).unwrap();
        }
        for (i, v) in right.iter().enumerate() {
            conn.execute("INSERT INTO r VALUES (?, ?)", &[Value::Int(i as i64), Value::Int(*v)]).unwrap();
        }
        let got = conn
            .query("SELECT COUNT(*) FROM l JOIN r ON l.k = r.k", &[])
            .unwrap();
        let want: usize = left
            .iter()
            .map(|lk| right.iter().filter(|rk| *rk == lk).count())
            .sum();
        prop_assert_eq!(got.single_value().unwrap().as_i64().unwrap(), want as i64);
    }
}
