//! BPEL markup export across the three stacks: the standardized skeleton
//! travels, the SQL support shows up as vendor extension surface — and
//! the *amount* of that surface differs per integration style, which is
//! the substitutability story of Sec. II.

use flowsql::bis;
use flowsql::flowcore::{export_bpel, extension_activity_count};
use flowsql::patterns::probe::ProbeEnv;
use flowsql::soa;
use flowsql::wf;

#[test]
fn bis_export_names_its_information_service_activities() {
    let env = ProbeEnv::fresh();
    let registry = bis::DataSourceRegistry::new().with(env.db.clone());
    let def = bis::figure4_process(registry, env.db.name());
    let text = export_bpel(&def);
    let doc = flowsql::xmlval::parse(&text).unwrap();
    assert_eq!(doc.name, "process");
    // SQL and retrieve-set activities are extensions; the while/invoke
    // skeleton is standard BPEL.
    assert!(text.contains("kind=\"sql\""));
    assert!(text.contains("kind=\"retrieveSet\""));
    assert!(text.contains("kind=\"java-snippet\""));
    assert!(text.contains("<invoke"));
    assert!(text.contains("<while"));
    // The SQL text itself is carried as an attribute.
    assert!(text.contains("SUM(Quantity)"));
}

#[test]
fn wf_export_carries_sql_database_activities() {
    let env = ProbeEnv::fresh();
    let def = wf::figure6_process(env.db.clone());
    let text = export_bpel(&def);
    assert!(text.contains("kind=\"sqlDatabase\""));
    assert!(text.contains("kind=\"code\""));
    assert!(text.contains("connectionString=\"Provider=SqlServer;Database=orders_db\""));
    assert!(!text.contains("kind=\"sql\"")); // BIS kind absent
}

#[test]
fn soa_export_hosts_sql_in_standard_assigns() {
    let env = ProbeEnv::fresh();
    let def = soa::figure8_process(env.db.clone());
    let text = export_bpel(&def);
    // Oracle's inline support lives in assign activities — *standard*
    // BPEL elements — so the only extensions left are the snippets.
    assert!(text.contains("<assign"));
    assert!(!text.contains("kind=\"sql\""));
    assert!(!text.contains("kind=\"sqlDatabase\""));
    assert!(text.contains("kind=\"java-snippet\""));
}

#[test]
fn extension_surface_ranks_oracle_smallest() {
    // Count proprietary activity types in each export. Oracle hides SQL
    // inside assigns (fewest extensions); BIS and WF add dedicated
    // activity types.
    let env = ProbeEnv::fresh();
    let registry = bis::DataSourceRegistry::new().with(env.db.clone());
    let bis_n = extension_activity_count(&bis::figure4_process(registry, env.db.name()));

    let env = ProbeEnv::fresh();
    let wf_n = extension_activity_count(&wf::figure6_process(env.db.clone()));

    let env = ProbeEnv::fresh();
    let soa_n = extension_activity_count(&soa::figure8_process(env.db.clone()));

    assert!(soa_n < bis_n, "soa={soa_n} bis={bis_n}");
    assert!(soa_n < wf_n, "soa={soa_n} wf={wf_n}");
    assert!(
        bis_n >= 3,
        "BIS uses SQL, retrieve set and snippet extensions"
    );
}

#[test]
fn exports_are_well_formed_and_deterministic() {
    let env = ProbeEnv::fresh();
    let def = wf::figure6_process(env.db.clone());
    let a = export_bpel(&def);
    let b = export_bpel(&def);
    assert_eq!(a, b);
    flowsql::xmlval::parse(&a).unwrap();
}
