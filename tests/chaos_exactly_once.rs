//! The headline robustness claim, tested differentially: for any fault
//! schedule that eventually permits success, a workflow run under
//! injected faults must leave the database — and emit rowsets —
//! **byte-identical** to the fault-free run (exactly-once recovery);
//! and when retries are exhausted, compensation restores the
//! pre-sequence state.
//!
//! Each product stack (BIS information services, WF DataAdapter, SOA
//! XSQL) runs its Figure-4-style scenario fault-free once, then again
//! under ≥3 seeded fault storms with the recovery layer enabled, and the
//! [`patterns::chaos`] fingerprints are compared byte-for-byte.
//!
//! The `CHAOS_SEED` environment variable adds one more storm seed — the
//! CI chaos step uses it to rotate schedules without editing the test.

use flowsql::bis::{
    figure4_process, figure4_process_with_recovery, AtomicSqlSequence, BisDeployment,
    DataSourceRegistry, SqlActivity,
};
use flowsql::flowcore::retry::{BreakerConfig, RetryPolicy, RetryRuntime};
use flowsql::flowcore::{CompensableSequence, Engine, FlowError, ProcessDefinition, Variables};
use flowsql::patterns::chaos::{
    db_fingerprint, rows_fingerprint, scripted_storm, storm_longest_run,
};
use flowsql::patterns::probe::{seed_orders, ProbeEnv};
use flowsql::sqlkernel::Database;
use flowsql::{soa, wf};

/// Indices covered by every storm — comfortably more than any scenario
/// executes, retries included.
const HORIZON: u64 = 400;
/// Per-index fault probability (percent).
const PERCENT: u64 = 25;

/// The three fixed schedules, plus an optional CI-provided one.
fn storm_seeds() -> Vec<u64> {
    let mut seeds = vec![11, 42, 1337];
    if let Some(extra) = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
    {
        if !seeds.contains(&extra) {
            seeds.push(extra);
        }
    }
    seeds
}

/// A retry budget sized above the storm's longest failure run, so the
/// schedule is guaranteed to eventually permit success.
fn storm_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: storm_longest_run(seed, HORIZON, PERCENT) + 2,
        ..RetryPolicy::default()
    }
}

/// A breaker that never trips: the differential claim is about retry
/// pushing through, not about fail-fast (the breaker has its own tests).
fn no_trip() -> BreakerConfig {
    BreakerConfig {
        failure_threshold: 1_000_000,
        cooldown_ticks: 1,
    }
}

fn storm_runtime(seed: u64) -> RetryRuntime {
    RetryRuntime::new(seed)
        .with_policy(storm_policy(seed))
        .with_breaker(no_trip())
}

// ---------------------------------------------------------------------
// BIS: the full Figure 4 process (information service activities,
// retrieve set, per-instance result table lifecycle).
// ---------------------------------------------------------------------

#[test]
fn bis_figure4_storms_are_exactly_once() {
    // Fault-free baseline.
    let baseline = ProbeEnv::fresh();
    let registry = DataSourceRegistry::new().with(baseline.db.clone());
    let def = figure4_process(registry, baseline.db.name());
    let inst = baseline.engine.run(&def, Variables::new()).unwrap();
    assert!(inst.is_completed(), "{:?}", inst.outcome);
    let want_db = db_fingerprint(&baseline.db);
    let want_confirmations = baseline.confirmations();

    let mut total_faults = 0;
    let mut total_retries = 0;
    for seed in storm_seeds() {
        let env = ProbeEnv::fresh();
        env.db
            .set_fault_plan(Some(scripted_storm(seed, HORIZON, PERCENT)));
        let registry = DataSourceRegistry::new().with(env.db.clone());
        let def = figure4_process_with_recovery(
            registry,
            env.db.name(),
            seed,
            storm_policy(seed),
            no_trip(),
        );
        let inst = env.engine.run(&def, Variables::new()).unwrap();
        assert!(inst.is_completed(), "seed {seed}: {:?}", inst.outcome);

        env.db.set_fault_plan(None);
        assert_eq!(
            db_fingerprint(&env.db),
            want_db,
            "seed {seed}: database state diverged from the fault-free run"
        );
        // Emitted effects: the supplier was invoked exactly once per item
        // — statement-level retry never re-runs the service call.
        assert_eq!(
            env.confirmations(),
            want_confirmations,
            "seed {seed}: emitted confirmations diverged"
        );
        let stats = env.db.stats();
        total_faults += stats.faults_injected;
        total_retries += stats.retries;
        // Every recovery left a trace in the audit trail.
        if stats.retries > 0 {
            assert!(
                inst.audit.events().iter().any(|e| e.kind == "retry"),
                "seed {seed}: retries happened but none audited"
            );
        }
    }
    assert!(total_faults > 0, "the storms never injected anything");
    assert!(total_retries > 0, "the storms never forced a retry");
}

// ---------------------------------------------------------------------
// BIS: the Table II atomic-sequence row, re-run under storms — the
// bundle commits exactly once however many statements faulted inside.
// ---------------------------------------------------------------------

fn atomic_db() -> Database {
    let db = Database::new("orders_db");
    db.connect()
        .execute_script(
            "CREATE TABLE t (id INT PRIMARY KEY, v INT);
             INSERT INTO t VALUES (1, 10), (2, 20);",
        )
        .unwrap();
    db
}

fn atomic_bundle() -> AtomicSqlSequence {
    AtomicSqlSequence::new("bundle")
        .then(SqlActivity::new(
            "a",
            "DS",
            "UPDATE t SET v = v + 1 WHERE id = 1",
        ))
        .then(SqlActivity::new("b", "DS", "INSERT INTO t VALUES (3, 30)"))
        .then(SqlActivity::new("c", "DS", "DELETE FROM t WHERE id = 2"))
}

#[test]
fn bis_atomic_sequence_storms_are_exactly_once() {
    let base = atomic_db();
    let def = BisDeployment::new(DataSourceRegistry::new().with(base.clone()))
        .bind_data_source("DS", base.name())
        .deploy(ProcessDefinition::new("atomic", atomic_bundle()));
    let inst = Engine::new().run(&def, Variables::new()).unwrap();
    assert!(inst.is_completed(), "{:?}", inst.outcome);
    let want = db_fingerprint(&base);

    for seed in storm_seeds() {
        let db = atomic_db();
        db.set_fault_plan(Some(scripted_storm(seed, HORIZON, PERCENT)));
        let def = BisDeployment::new(DataSourceRegistry::new().with(db.clone()))
            .bind_data_source("DS", db.name())
            .with_retry(seed, storm_policy(seed))
            .with_breaker(no_trip())
            .deploy(ProcessDefinition::new("atomic", atomic_bundle()));
        let inst = Engine::new().run(&def, Variables::new()).unwrap();
        assert!(inst.is_completed(), "seed {seed}: {:?}", inst.outcome);
        db.set_fault_plan(None);
        assert_eq!(db_fingerprint(&db), want, "seed {seed}: bundle diverged");
    }
}

// ---------------------------------------------------------------------
// WF: DataAdapter fill → offline edits → sync-back, under storms.
// ---------------------------------------------------------------------

/// The offline edit session every WF run performs: bump a quantity,
/// add an order, delete an order.
fn edit_orders(t: &mut wf::DataTable) {
    t.set_key_columns(&["OrderId"]).unwrap();
    let widget_rows = t.select(|r| r.values()[1].render() == "widget");
    t.set_cell(
        widget_rows[0],
        "Quantity",
        flowsql::sqlkernel::Value::Int(11),
    )
    .unwrap();
    t.add_row(vec![
        flowsql::sqlkernel::Value::Int(7),
        flowsql::sqlkernel::Value::text("cog"),
        flowsql::sqlkernel::Value::Int(9),
        flowsql::sqlkernel::Value::Bool(true),
    ])
    .unwrap();
    let gadget_rejected = t.select(|r| r.values()[0].render() == "3");
    t.delete_row(gadget_rejected[0]).unwrap();
}

#[test]
fn wf_dataadapter_storms_are_exactly_once() {
    // Fault-free baseline.
    let base = Database::new("orders_db");
    seed_orders(&base);
    let conn = base.connect();
    let rs = conn.query("SELECT * FROM Orders", &[]).unwrap();
    let mut t = wf::DataTable::from_result("Orders", &rs);
    edit_orders(&mut t);
    wf::DataAdapter::update(&conn, &mut t, "Orders").unwrap();
    let emitted = conn
        .query("SELECT * FROM Orders ORDER BY OrderId", &[])
        .unwrap();
    let want_rows = rows_fingerprint(&emitted);
    let want_db = db_fingerprint(&base);

    for seed in storm_seeds() {
        let db = Database::new("orders_db");
        seed_orders(&db);
        db.set_fault_plan(Some(scripted_storm(seed, HORIZON, PERCENT)));
        let mut rt = storm_runtime(seed);
        let mut log = Vec::new();
        let conn = db.connect();
        // The fill query itself runs under the storm, so retry it too.
        let (fill, report) = rt.run(db.name(), Some(&db), || {
            conn.query("SELECT * FROM Orders", &[])
                .map_err(FlowError::from)
        });
        log.extend(report.log);
        let mut t = wf::DataTable::from_result("Orders", &fill.unwrap());
        edit_orders(&mut t);
        wf::DataAdapter::update_with_retry(&conn, &mut t, "Orders", &mut rt, &mut log)
            .unwrap_or_else(|e| panic!("seed {seed}: sync-back failed: {e}"));
        let (emitted, report) = rt.run(db.name(), Some(&db), || {
            conn.query("SELECT * FROM Orders ORDER BY OrderId", &[])
                .map_err(FlowError::from)
        });
        log.extend(report.log);
        assert_eq!(
            rows_fingerprint(&emitted.unwrap()),
            want_rows,
            "seed {seed}: emitted rowset diverged"
        );
        db.set_fault_plan(None);
        assert_eq!(db_fingerprint(&db), want_db, "seed {seed}: db diverged");
        let stats = db.stats();
        assert_eq!(
            stats.retries as usize,
            log.iter().filter(|l| l.contains("retry ")).count(),
            "seed {seed}: every retry shows up in the recovery trace"
        );
    }
}

// ---------------------------------------------------------------------
// SOA: an XSQL page (DML + query + stored-procedure call) under storms
// — the page's XML result must be byte-identical too.
// ---------------------------------------------------------------------

const XSQL_PAGE: &str = "<xsql:page xmlns:xsql=\"urn:oracle-xsql\">\
     <xsql:dml>UPDATE Orders SET Approved = TRUE WHERE OrderId = 3</xsql:dml>\
     <xsql:dml>INSERT INTO OrderConfirmations VALUES \
       (NEXTVAL('conf_ids'), 'widget', 15, 'confirmed:widget:15')</xsql:dml>\
     <xsql:query>SELECT ItemId, SUM(Quantity) AS Quantity FROM Orders \
       WHERE Approved = TRUE GROUP BY ItemId ORDER BY ItemId</xsql:query>\
     <xsql:call>CALL item_total('widget')</xsql:call>\
   </xsql:page>";

#[test]
fn soa_xsql_storms_are_exactly_once() {
    let base = Database::new("orders_db");
    seed_orders(&base);
    let want_xml = soa::process_xsql(&base, XSQL_PAGE, &[]).unwrap().to_xml();
    let want_db = db_fingerprint(&base);

    for seed in storm_seeds() {
        let db = Database::new("orders_db");
        seed_orders(&db);
        db.set_fault_plan(Some(scripted_storm(seed, HORIZON, PERCENT)));
        let mut rt = storm_runtime(seed);
        let mut log = Vec::new();
        let out = soa::process_xsql_with_retry(&db, XSQL_PAGE, &[], &mut rt, &mut log)
            .unwrap_or_else(|e| panic!("seed {seed}: page failed: {e}"));
        assert_eq!(
            out.to_xml(),
            want_xml,
            "seed {seed}: emitted XML result diverged"
        );
        db.set_fault_plan(None);
        assert_eq!(db_fingerprint(&db), want_db, "seed {seed}: db diverged");
    }
}

// ---------------------------------------------------------------------
// Exhausted retries: the compensable sequence restores the
// pre-sequence state, in reverse completion order.
// ---------------------------------------------------------------------

#[test]
fn exhausted_retries_compensate_back_to_the_pre_sequence_state() {
    use flowsql::sqlkernel::fault::{Fault, FaultPlan, TransientKind};

    let db = atomic_db();
    let before = db_fingerprint(&db);

    // Statement indices: step 1 commits at 0, step 2 at 1; step 3 then
    // faults on every one of its 3 attempts (indices 2..=4), exhausting
    // the budget. The compensations run on clean indices 5 and 6.
    let mut plan = FaultPlan::new(7);
    for i in 2..=4 {
        plan = plan.fault_at(i, Fault::Transient(TransientKind::DeadlockVictim));
    }
    db.set_fault_plan(Some(plan));

    let saga = CompensableSequence::new("saga")
        .step_with(
            SqlActivity::new("book", "DS", "INSERT INTO t VALUES (3, 30)"),
            SqlActivity::new("unbook", "DS", "DELETE FROM t WHERE id = 3"),
        )
        .step_with(
            SqlActivity::new("mark", "DS", "UPDATE t SET v = 999 WHERE id = 1"),
            SqlActivity::new("unmark", "DS", "UPDATE t SET v = 10 WHERE id = 1"),
        )
        .step(SqlActivity::new(
            "doomed",
            "DS",
            "INSERT INTO t VALUES (4, 40)",
        ));

    let def = BisDeployment::new(DataSourceRegistry::new().with(db.clone()))
        .bind_data_source("DS", db.name())
        .with_retry(
            99,
            RetryPolicy {
                max_attempts: 3,
                ..RetryPolicy::default()
            },
        )
        .with_breaker(no_trip())
        .deploy(ProcessDefinition::new("saga-under-fire", saga));

    let inst = Engine::new().run(&def, Variables::new()).unwrap();
    assert!(inst.is_faulted(), "{:?}", inst.outcome);
    assert!(
        inst.fault().unwrap().to_string().contains("transient"),
        "the surviving fault is the exhausted transient: {:?}",
        inst.fault()
    );

    db.set_fault_plan(None);
    assert_eq!(
        db_fingerprint(&db),
        before,
        "compensation must restore the pre-sequence state"
    );

    // The undo is visible in the audit trail, newest compensation first
    // in reverse completion order: unmark before unbook.
    let events = inst.audit.events();
    assert!(events.iter().any(|e| e.kind == "compensate"));
    let pos = |name: &str| {
        events
            .iter()
            .position(|e| e.name == name)
            .unwrap_or_else(|| panic!("no audit record for {name}"))
    };
    assert!(pos("unmark") < pos("unbook"));
    assert_eq!(db.stats().retries, 2, "two retries before exhaustion");
}

// ---------------------------------------------------------------------
// Batched execution under a storm: after a fault storm has pushed the
// Figure 4 process through its retries, the compiled/batched read path
// and the row-at-a-time interpreter must agree byte-for-byte — on every
// table and on a grouped aggregate over the storm's end state.
// ---------------------------------------------------------------------

#[test]
fn batched_reads_match_interpreter_after_fault_storm() {
    use flowsql::sqlkernel::parser::parse_statement;
    use flowsql::sqlkernel::{QueryResult, StatementResult};

    let seed = 1337;
    let env = ProbeEnv::fresh();
    env.db
        .set_fault_plan(Some(scripted_storm(seed, HORIZON, PERCENT)));
    let registry = DataSourceRegistry::new().with(env.db.clone());
    let def =
        figure4_process_with_recovery(registry, env.db.name(), seed, storm_policy(seed), no_trip());
    let inst = env.engine.run(&def, Variables::new()).unwrap();
    assert!(inst.is_completed(), "{:?}", inst.outcome);
    env.db.set_fault_plan(None);

    let conn = env.db.connect();
    let interpreted = |sql: &str| -> QueryResult {
        let stmt = parse_statement(sql).unwrap();
        match conn.execute_ast(&stmt, &[]).unwrap() {
            StatementResult::Rows(rs) => rs,
            other => panic!("expected rows from {sql}, got {other:?}"),
        }
    };

    let before = env.db.stats().batch_evals;
    let mut tables = env.db.table_names();
    tables.sort_unstable();
    for t in &tables {
        let sql = format!("SELECT * FROM {t}");
        let batched = conn.query(&sql, &[]).unwrap();
        assert_eq!(
            rows_fingerprint(&batched),
            rows_fingerprint(&interpreted(&sql)),
            "table {t}: batched read diverged from the interpreter after the storm"
        );
    }
    let agg = "SELECT ItemId, COUNT(*), SUM(Quantity) FROM Orders \
               WHERE Approved = TRUE GROUP BY ItemId";
    let batched = conn.query(agg, &[]).unwrap();
    assert_eq!(
        rows_fingerprint(&batched),
        rows_fingerprint(&interpreted(agg)),
        "grouped aggregate diverged between executors after the storm"
    );

    let stats = env.db.stats();
    assert!(
        stats.batch_evals > before,
        "the batched path must have engaged for the comparison to mean anything"
    );
    assert!(stats.hash_aggs > 0, "the aggregate probe must have hashed");
}

// ---------------------------------------------------------------------
// Compiled joins under a storm: same differential claim, but for the
// vectorized join path. After the storm, join queries over the end
// state (Orders x OrderConfirmations on ItemId, all four join kinds,
// plus a grouped join aggregate) must match the interpreter
// byte-for-byte, and the hash-join counter must prove the compiled
// path actually ran.
// ---------------------------------------------------------------------

#[test]
fn compiled_joins_match_interpreter_after_fault_storm() {
    use flowsql::sqlkernel::parser::parse_statement;
    use flowsql::sqlkernel::{QueryResult, StatementResult};

    let seed = 31337;
    let env = ProbeEnv::fresh();
    env.db
        .set_fault_plan(Some(scripted_storm(seed, HORIZON, PERCENT)));
    let registry = DataSourceRegistry::new().with(env.db.clone());
    let def =
        figure4_process_with_recovery(registry, env.db.name(), seed, storm_policy(seed), no_trip());
    let inst = env.engine.run(&def, Variables::new()).unwrap();
    assert!(inst.is_completed(), "{:?}", inst.outcome);
    env.db.set_fault_plan(None);

    let conn = env.db.connect();
    let interpreted = |sql: &str| -> QueryResult {
        let stmt = parse_statement(sql).unwrap();
        match conn.execute_ast(&stmt, &[]).unwrap() {
            StatementResult::Rows(rs) => rs,
            other => panic!("expected rows from {sql}, got {other:?}"),
        }
    };

    let before = env.db.stats().hash_joins;
    let joins = [
        "SELECT o.OrderId, c.ConfId, c.Confirmation FROM Orders o \
         JOIN OrderConfirmations c ON o.ItemId = c.ItemId \
         ORDER BY o.OrderId, c.ConfId",
        "SELECT o.OrderId, c.ConfId FROM Orders o \
         LEFT JOIN OrderConfirmations c ON o.ItemId = c.ItemId \
         WHERE o.Approved = TRUE ORDER BY o.OrderId, c.ConfId",
        "SELECT o.OrderId, c.ConfId FROM Orders o \
         RIGHT JOIN OrderConfirmations c ON o.ItemId = c.ItemId",
        "SELECT o.ItemId, COUNT(*) AS n, SUM(c.Quantity) AS q FROM Orders o \
         JOIN OrderConfirmations c ON o.ItemId = c.ItemId \
         GROUP BY o.ItemId ORDER BY o.ItemId",
    ];
    for sql in joins {
        let compiled = conn.query(sql, &[]).unwrap();
        assert_eq!(
            rows_fingerprint(&compiled),
            rows_fingerprint(&interpreted(sql)),
            "compiled join diverged from the interpreter after the storm: {sql}"
        );
    }
    assert!(
        env.db.stats().hash_joins > before,
        "the compiled join path must have engaged for the comparison to mean anything"
    );
}
