//! The paged-storage headline: a disk-backed database whose working set
//! is **larger than the buffer pool**, killed mid-writeback and
//! mid-checkpoint and fed corrupted pages, must recover to state
//! byte-identical to an all-in-memory run — no committed transaction
//! lost, none re-applied.
//!
//! The page store under test is fault-injected at the I/O boundary
//! ([`PageFault`]): torn writes kill the process with only a prefix on
//! disk, partial writes and write-path bit flips corrupt pages
//! *silently*, `flip_bit` decays pages at rest, and `IoError`s surface
//! as transient `DbError`s the flowcore retry runtime absorbs. Every
//! "reboot" is a real one — a fresh [`Database::open_paged`] over the
//! surviving log + page bytes, with a fresh (cold) buffer pool.
//!
//! `CRASH_SEED` adds one more schedule seed, as in `crash_recovery.rs`.

use std::sync::Arc;

use flowsql::flowcore::persistence::{DurableProcess, PersistenceService, STATUS_COMPLETED};
use flowsql::flowcore::retry::{BreakerConfig, RetryPolicy, RetryRuntime};
use flowsql::flowcore::value::{VarValue, Variables};
use flowsql::flowcore::FlowError;
use flowsql::patterns::chaos::{crash_storm, db_fingerprint_excluding, rows_fingerprint};
use flowsql::sqlkernel::{
    Database, FaultPlan, MemLogStore, MemPageStore, PageFault, Value, PAGE_SIZE,
};
use flowsql::wf::SqlWorkflowPersistenceService;

/// Statement indices covered by the crash storms. The workload issues
/// a few dozen statements per lifetime, so most scheduled crashes land.
const HORIZON: u64 = 40;

/// Buffer-pool frames. The ledger table alone spans more pages than
/// this, so every checkpoint and every recovery pages in and out.
const POOL_PAGES: usize = 6;

/// Rows in the ledger; with [`pad`] each row is ~140 bytes on a page,
/// so the table image spans well past `POOL_PAGES` pages.
const ROWS: i64 = 240;

fn schedule_seeds() -> Vec<u64> {
    let mut seeds = vec![11, 42, 1337];
    if let Some(extra) = std::env::var("CRASH_SEED")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
    {
        if !seeds.contains(&extra) {
            seeds.push(extra);
        }
    }
    seeds
}

fn storm_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: HORIZON as u32 + 2,
        max_backoff_ticks: 8,
        ..RetryPolicy::default()
    }
}

fn no_trip() -> BreakerConfig {
    BreakerConfig {
        failure_threshold: u32::MAX,
        cooldown_ticks: 1,
    }
}

fn fresh_runtime() -> RetryRuntime {
    RetryRuntime::new(77)
        .with_policy(storm_policy())
        .with_breaker(no_trip())
}

/// 120 bytes of deterministic, row-distinct padding — the bulk that
/// pushes the ledger past the pool.
fn pad(id: i64) -> String {
    format!("{id:03}-").repeat(30)
}

fn ledger_schema(db: &Database) {
    db.connect()
        .execute_script(
            "CREATE TABLE Ledger (Id INT PRIMARY KEY, Tag TEXT, Pad TEXT);
             CREATE TABLE Summary (Seq INT PRIMARY KEY, Note TEXT);
             CREATE SEQUENCE audit_seq START WITH 500;",
        )
        .unwrap();
}

/// A multi-row `INSERT` for ledger ids `lo..hi`.
fn batch_sql(lo: i64, hi: i64) -> String {
    let mut sql = String::from("INSERT INTO Ledger VALUES ");
    for id in lo..hi {
        if id > lo {
            sql.push_str(", ");
        }
        sql.push_str(&format!("({id}, 'tag-{}', '{}')", id % 7, pad(id)));
    }
    sql
}

/// The workload: bulk-load half the ledger, churn it (update + delete +
/// load the other half), then close with an audited summary row. Each
/// step commits atomically with its pc advance, so a crash storm can
/// neither lose nor re-apply a completed step.
fn ledger_process() -> DurableProcess {
    DurableProcess::new("ledger")
        .step("load", |conn, vars| {
            for lo in (0..ROWS / 2).step_by(30) {
                conn.execute(&batch_sql(lo, lo + 30), &[])?;
            }
            vars.set("loaded", VarValue::Scalar(Value::Int(ROWS / 2)));
            Ok(())
        })
        .step("churn", |conn, vars| {
            conn.execute("UPDATE Ledger SET Tag = 'hot' WHERE Id < 40", &[])?;
            conn.execute("DELETE FROM Ledger WHERE Id >= 100 AND Id < 110", &[])?;
            for lo in (ROWS / 2..ROWS).step_by(30) {
                conn.execute(&batch_sql(lo, lo + 30), &[])?;
            }
            vars.set("churned", VarValue::Scalar(Value::Bool(true)));
            Ok(())
        })
        .step("close", |conn, vars| {
            conn.execute(
                "INSERT INTO Summary VALUES (NEXTVAL('audit_seq'), 'closed')",
                &[],
            )?;
            vars.set("closed", VarValue::Scalar(Value::Bool(true)));
            Ok(())
        })
}

fn ledger_run(db: &Database) -> Result<(), FlowError> {
    let svc = SqlWorkflowPersistenceService::new(db)?;
    let mut rt = fresh_runtime();
    svc.run_workflow(&ledger_process(), "ledger-1", &Variables::new(), &mut rt)
        .map(|_| ())
}

/// User tables plus the durable parts of the instance row, as in
/// `crash_recovery.rs`.
fn durable_fingerprint(db: &Database) -> String {
    let user = db_fingerprint_excluding(db, &["FLOW_INSTANCES"]);
    let instances = db
        .connect()
        .query(
            "SELECT InstanceKey, Process, Pc, Status, Vars FROM FLOW_INSTANCES \
             ORDER BY InstanceKey",
            &[],
        )
        .map(|rs| rows_fingerprint(&rs))
        .unwrap_or_default();
    format!("{user}\n-- instances --\n{instances}")
}

/// The crash-free all-in-memory run every paged storm must reproduce.
fn memory_baseline() -> String {
    let db = Database::with_wal("paged_db", Arc::new(MemLogStore::new()));
    ledger_schema(&db);
    ledger_run(&db).unwrap();
    durable_fingerprint(&db)
}

/// A real reboot: a fresh database over the surviving bytes alone.
fn reopen(log: &MemLogStore, pages: &MemPageStore) -> Database {
    Database::open_paged(
        "paged_db",
        Arc::new(log.clone()),
        Arc::new(pages.clone()),
        POOL_PAGES,
    )
    .unwrap()
}

/// Fresh paged store pair with the schema applied (and checkpointed into
/// the first page epoch by the open that follows).
fn fresh_paged() -> (MemLogStore, MemPageStore) {
    let log = MemLogStore::new();
    let pages = MemPageStore::new();
    ledger_schema(&reopen(&log, &pages));
    (log, pages)
}

/// Drive the workload under a crash schedule, one process lifetime per
/// scheduled crash, rebooting through [`reopen`] each time. Mirrors
/// `crash_recovery.rs::run_to_completion`, with the paged open path.
fn run_paged_to_completion(
    log: &MemLogStore,
    pages: &MemPageStore,
    schedule: &flowsql::patterns::chaos::CrashSchedule,
) -> usize {
    let mut fired = 0usize;
    for life in 0..=schedule.crashes() {
        let db = reopen(log, pages);
        db.set_fault_plan(Some(schedule.plan(life)));
        let result = ledger_run(&db);
        let frozen = db.fault_injector().map(|i| i.frozen()).unwrap_or(false);
        if frozen {
            assert!(result.is_err(), "a crash must surface as an error");
            fired += 1;
            continue;
        }
        if result.is_ok() {
            if db.checkpoint().is_err() {
                fired += 1;
            }
            return fired;
        }
        panic!("run failed without a crash: {result:?}");
    }
    let db = reopen(log, pages);
    assert!(
        ledger_run(&db).is_ok(),
        "clean lifetime after the storm must complete"
    );
    fired
}

/// Final verification: reboot once more and compare against the
/// all-in-memory baseline, byte for byte.
fn assert_paged_recovers_to(log: &MemLogStore, pages: &MemPageStore, baseline: &str) {
    let db = reopen(log, pages);
    assert_eq!(
        durable_fingerprint(&db),
        baseline,
        "paged recovery must be byte-identical to the all-in-memory run"
    );
    let svc = PersistenceService::new(&db).unwrap();
    let (_, status) = svc.instance_status("ledger-1").unwrap().unwrap();
    assert_eq!(status, STATUS_COMPLETED);
    let stats = db.stats();
    assert!(stats.recoveries > 0, "recovery counter must report");
    assert!(
        stats.pool_evictions > 0,
        "the working set exceeds the pool, so recovery must have paged"
    );
    assert!(stats.pool_misses > 0, "cold pool must miss");
    // Exactly-once, explicitly: one summary row, carrying the first (and
    // only committed) sequence draw.
    let rs = db
        .connect()
        .query("SELECT Seq FROM Summary ORDER BY Seq", &[])
        .unwrap();
    assert_eq!(rs.rows.len(), 1, "close step committed exactly once");
    assert_eq!(
        rs.rows[0][0],
        Value::Int(500),
        "no lost or re-drawn sequence"
    );
}

// ---------------------------------------------------------------------------
// Headline storm: crash schedules over a working set larger than the pool
// ---------------------------------------------------------------------------

#[test]
fn paged_storage_recovers_identically_under_crash_storms() {
    let baseline = memory_baseline();
    for seed in schedule_seeds() {
        let mut schedule = crash_storm(seed, HORIZON, 3);
        // One kill mid-checkpoint too: new-epoch pages land, the
        // metadata flip never happens, recovery falls back.
        schedule.checkpoint_crashes.push(0);
        let (log, pages) = fresh_paged();
        run_paged_to_completion(&log, &pages, &schedule);
        assert_paged_recovers_to(&log, &pages, &baseline);
    }
}

// ---------------------------------------------------------------------------
// Kill mid-writeback: torn page writes at seeded positions
// ---------------------------------------------------------------------------

/// A torn write during checkpoint writeback kills the process with only
/// a prefix of one page on disk. Because the flip to the new epoch never
/// happened, the torn page is unreferenced garbage: recovery falls back
/// to the intact previous epoch plus the WAL tail, losing nothing. Three
/// write positions cover an early data page, a mid-stream page, and the
/// directory/meta tail of the writeback.
#[test]
fn torn_write_mid_writeback_falls_back_to_the_intact_epoch() {
    let baseline = memory_baseline();
    let (log, pages) = fresh_paged();
    ledger_run(&reopen(&log, &pages)).unwrap();
    for write_index in [0, 4, 9] {
        let db = reopen(&log, &pages);
        // Dirty the ledger so the next checkpoint rewrites its extent.
        db.connect()
            .execute("UPDATE Ledger SET Tag = 'warm' WHERE Id = 1", &[])
            .unwrap();
        let before = durable_fingerprint(&db);
        db.set_fault_plan(Some(
            FaultPlan::new(7).fault_at_page_write(write_index, PageFault::TornWrite),
        ));
        let err = db.checkpoint().unwrap_err();
        assert!(
            db.fault_injector().unwrap().frozen(),
            "torn write at index {write_index} must kill the process (got {err})"
        );
        let recovered = reopen(&log, &pages);
        assert_eq!(
            durable_fingerprint(&recovered),
            before,
            "fallback after torn write at index {write_index} lost state"
        );
        recovered.checkpoint().unwrap();
    }
    assert_ne!(baseline, String::new());
}

// ---------------------------------------------------------------------------
// Silent corruption: partial writes, write-path bit flips, at-rest decay
// ---------------------------------------------------------------------------

/// A partial write (and a write-path bit flip) reports success, so the
/// checkpoint completes and the *new* epoch references a page whose
/// checksum cannot verify. The next open must detect it and rebuild the
/// damaged table from the previous epoch's image plus WAL redo.
#[test]
fn silently_corrupted_pages_are_repaired_on_reopen() {
    for fault in [PageFault::PartialWrite, PageFault::ReadBitFlip] {
        let (log, pages) = fresh_paged();
        ledger_run(&reopen(&log, &pages)).unwrap();
        let db = reopen(&log, &pages);
        db.connect()
            .execute("UPDATE Ledger SET Tag = 'cold' WHERE Id = 2", &[])
            .unwrap();
        let before = durable_fingerprint(&db);
        // Write index 0 is always a new-epoch data page (steal or flush).
        db.set_fault_plan(Some(FaultPlan::new(7).fault_at_page_write(0, fault)));
        db.checkpoint()
            .expect("silent corruption must not fail the checkpoint");
        drop(db);
        let recovered = reopen(&log, &pages);
        assert_eq!(
            durable_fingerprint(&recovered),
            before,
            "repair after {fault:?} diverged"
        );
        assert!(
            recovered.stats().pages_repaired > 0,
            "{fault:?} must be detected and counted as a repair"
        );
    }
}

/// At-rest decay of a *data* page (one flipped bit, as a failing disk
/// would produce) is caught by the page checksum on the next open and
/// repaired from the previous epoch + WAL redo.
#[test]
fn at_rest_bit_flip_in_a_data_page_is_repaired() {
    let (log, pages) = fresh_paged();
    let db = reopen(&log, &pages);
    ledger_run(&db).unwrap();
    let before = durable_fingerprint(&db);
    db.checkpoint().unwrap();
    drop(db);
    // The live epoch is the newest, so its extents sit at the top of the
    // store: data pages, then the directory stream last. Flip one
    // payload bit in a data page just below the directory tail.
    let last_page = (pages.len() / PAGE_SIZE - 1) as u64;
    pages.flip_bit(last_page - 2, 100 * 8);
    let recovered = reopen(&log, &pages);
    assert_eq!(durable_fingerprint(&recovered), before);
    assert!(recovered.stats().pages_repaired > 0);
}

/// At-rest decay of the live epoch's *directory* page forces the
/// whole-epoch fallback: open rolls back to the previous checkpoint
/// image and replays the retained WAL window over it.
#[test]
fn at_rest_bit_flip_in_the_directory_rolls_back_an_epoch() {
    let (log, pages) = fresh_paged();
    let db = reopen(&log, &pages);
    ledger_run(&db).unwrap();
    let before = durable_fingerprint(&db);
    db.checkpoint().unwrap();
    drop(db);
    // The directory is allocated after the data extents, so the highest
    // page of the store belongs to the newest epoch's directory stream.
    let last_page = (pages.len() / PAGE_SIZE - 1) as u64;
    pages.flip_bit(last_page, 64 * 8);
    let recovered = reopen(&log, &pages);
    assert_eq!(durable_fingerprint(&recovered), before);
    assert!(recovered.stats().pages_repaired > 0);
}

// ---------------------------------------------------------------------------
// Transient I/O errors
// ---------------------------------------------------------------------------

/// An injected `IoError` on the page path is a *transient* `DbError`:
/// the checkpoint fails without freezing the process, and the flowcore
/// retry runtime absorbs it — the immediate retry succeeds.
#[test]
fn injected_io_errors_are_transient_and_absorbed_by_retry() {
    let (log, pages) = fresh_paged();
    let db = reopen(&log, &pages);
    ledger_run(&db).unwrap();
    db.connect()
        .execute("UPDATE Ledger SET Tag = 'io' WHERE Id = 3", &[])
        .unwrap();
    db.set_fault_plan(Some(
        FaultPlan::new(7).fault_at_page_write(0, PageFault::IoError),
    ));
    let err = db.checkpoint().unwrap_err();
    assert!(
        err.is_transient(),
        "page IoError must map to transient: {err}"
    );
    assert!(
        !db.fault_injector().unwrap().frozen(),
        "a transient I/O error is not a crash"
    );
    let mut rt = fresh_runtime();
    let (result, report) = rt.run("checkpoint", Some(&db), || {
        db.checkpoint().map_err(FlowError::from)
    });
    result.expect("retry runtime must absorb the consumed IoError");
    assert_eq!(report.retries, 0, "the fault was already consumed");
    let fingerprint = durable_fingerprint(&db);
    drop(db);
    assert_eq!(durable_fingerprint(&reopen(&log, &pages)), fingerprint);
}

// ---------------------------------------------------------------------------
// Disk-backed stores
// ---------------------------------------------------------------------------

/// The file-backed pair under `open_paged_durable` round-trips across a
/// real process-style reopen: everything rebuilt from `wal.log` +
/// `pages.db` alone.
#[test]
fn durable_paged_database_roundtrips_on_disk() {
    let dir = std::env::temp_dir().join(format!(
        "flowsql_paged_storage_{}_{}",
        std::process::id(),
        line!()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Database::open_paged_durable("paged_db", &dir, POOL_PAGES).unwrap();
        ledger_schema(&db);
        ledger_run(&db).unwrap();
        db.checkpoint().unwrap();
    }
    let db = Database::open_paged_durable("paged_db", &dir, POOL_PAGES).unwrap();
    let rs = db
        .connect()
        .query("SELECT COUNT(*) FROM Ledger", &[])
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::Int(ROWS - 10)); // 10 deleted by churn
    let (_, status) = PersistenceService::new(&db)
        .unwrap()
        .instance_status("ledger-1")
        .unwrap()
        .unwrap();
    assert_eq!(status, STATUS_COMPLETED);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}
