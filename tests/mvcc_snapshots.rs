//! MVCC snapshot isolation, tested differentially (PR 7).
//!
//! The engine claim: every SELECT runs against a commit-timestamped
//! snapshot — readers never see a half-committed statement, a
//! transaction re-reads the same data until it commits, and none of
//! this changes what the database *contains*: storms (transient and
//! crash, with and without group commit) must still fingerprint-match
//! the fault-free run byte-for-byte, exactly as they did before MVCC.
//!
//! `CHAOS_SEED` / `CRASH_SEED` add one more storm seed each — the CI
//! chaos step rotates schedules without editing the test.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use flowsql::bis::DataSourceRegistry;
use flowsql::patterns::chaos::{crash_storm, db_fingerprint, scripted_storm};
use flowsql::soa::SoaEnvironment;
use flowsql::sqlkernel::{Database, MemLogStore, Value};
use flowsql::wf::WfHost;

// ---------------------------------------------------------------------------
// Snapshot semantics: what a reader is allowed to observe.
// ---------------------------------------------------------------------------

fn counter_db(name: &str) -> Database {
    let db = Database::new(name);
    db.connect()
        .execute_script(
            "CREATE TABLE t (id INT PRIMARY KEY, v INT);
             INSERT INTO t VALUES (1, 10);
             INSERT INTO t VALUES (2, 20);",
        )
        .unwrap();
    db
}

fn read_v(db: &Database, id: i64) -> i64 {
    match &db
        .connect()
        .query("SELECT v FROM t WHERE id = ?", &[Value::Int(id)])
        .unwrap()
        .rows[0][0]
    {
        Value::Int(v) => *v,
        other => panic!("expected int, got {other:?}"),
    }
}

#[test]
fn uncommitted_writes_are_invisible_to_other_connections() {
    let db = counter_db("mvcc_dirty");
    let writer = db.connect();
    writer.execute("BEGIN", &[]).unwrap();
    writer
        .execute("UPDATE t SET v = 99 WHERE id = 1", &[])
        .unwrap();
    writer.execute("INSERT INTO t VALUES (3, 30)", &[]).unwrap();

    // A concurrent reader sees the pre-transaction state: no dirty reads.
    assert_eq!(read_v(&db, 1), 10);
    assert_eq!(
        db.connect().query("SELECT id FROM t", &[]).unwrap().len(),
        2
    );

    writer.execute("COMMIT", &[]).unwrap();
    assert_eq!(read_v(&db, 1), 99);
    assert_eq!(
        db.connect().query("SELECT id FROM t", &[]).unwrap().len(),
        3
    );
}

#[test]
fn transactions_get_repeatable_reads() {
    let db = counter_db("mvcc_rr");
    let reader = db.connect();
    reader.execute("BEGIN", &[]).unwrap();
    let first = reader.query("SELECT v FROM t ORDER BY id", &[]).unwrap();

    // Another connection commits an update *and* a delete mid-transaction.
    let writer = db.connect();
    writer
        .execute("UPDATE t SET v = 777 WHERE id = 1", &[])
        .unwrap();
    writer.execute("DELETE FROM t WHERE id = 2", &[]).unwrap();

    // The open transaction still sees its BEGIN-time snapshot.
    let again = reader.query("SELECT v FROM t ORDER BY id", &[]).unwrap();
    assert_eq!(first.rows, again.rows, "repeatable read violated");
    reader.execute("COMMIT", &[]).unwrap();

    // A fresh statement sees the committed truth.
    let now = reader.query("SELECT v FROM t ORDER BY id", &[]).unwrap();
    assert_eq!(now.rows, vec![vec![Value::Int(777)]]);
}

#[test]
fn rolled_back_writes_never_become_visible() {
    let db = counter_db("mvcc_rollback");
    let writer = db.connect();
    writer.execute("BEGIN", &[]).unwrap();
    writer
        .execute("UPDATE t SET v = 1000 WHERE id = 1", &[])
        .unwrap();
    writer.execute("DELETE FROM t WHERE id = 2", &[]).unwrap();
    writer.execute("ROLLBACK", &[]).unwrap();

    assert_eq!(read_v(&db, 1), 10);
    assert_eq!(read_v(&db, 2), 20);
}

/// A multi-row commit publishes atomically: scanning readers observe the
/// whole generation pre-commit or post-commit, never a mix of the two.
#[test]
fn scans_never_observe_a_torn_commit() {
    const ROWS: i64 = 16;
    const GENERATIONS: i64 = 60;
    let db = Database::new("mvcc_torn");
    let conn = db.connect();
    conn.execute("CREATE TABLE gen (id INT PRIMARY KEY, g INT)", &[])
        .unwrap();
    for id in 0..ROWS {
        conn.execute("INSERT INTO gen VALUES (?, 0)", &[Value::Int(id)])
            .unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    let torn = Arc::new(AtomicU64::new(0));
    let mut readers = Vec::new();
    for _ in 0..3 {
        let db = db.clone();
        let stop = Arc::clone(&stop);
        let torn = Arc::clone(&torn);
        readers.push(thread::spawn(move || {
            let conn = db.connect();
            while !stop.load(Ordering::Acquire) {
                let rs = conn.query("SELECT g FROM gen", &[]).unwrap();
                assert_eq!(rs.len() as i64, ROWS);
                let first = rs.rows[0][0].clone();
                if rs.rows.iter().any(|r| r[0] != first) {
                    torn.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }

    // One statement bumps every row to the next generation; each commit
    // must flip all sixteen rows at once for every concurrent scan.
    let wconn = db.connect();
    for g in 1..=GENERATIONS {
        wconn
            .execute("UPDATE gen SET g = ?", &[Value::Int(g)])
            .unwrap();
    }
    stop.store(true, Ordering::Release);
    for r in readers {
        r.join().unwrap();
    }
    assert_eq!(torn.load(Ordering::Relaxed), 0, "a scan saw a torn commit");
    assert_eq!(
        db.connect()
            .query(
                "SELECT COUNT(*) FROM gen WHERE g = ?",
                &[Value::Int(GENERATIONS)]
            )
            .unwrap()
            .rows[0][0],
        Value::Int(ROWS)
    );
}

/// Writer-writer conflicts still serialize: concurrent read-modify-write
/// increments lose nothing.
#[test]
fn concurrent_increments_serialize() {
    const THREADS: i64 = 4;
    const PER_THREAD: i64 = 50;
    let db = counter_db("mvcc_incr");
    let mut writers = Vec::new();
    for _ in 0..THREADS {
        let db = db.clone();
        writers.push(thread::spawn(move || {
            let conn = db.connect();
            for _ in 0..PER_THREAD {
                conn.execute("UPDATE t SET v = v + 1 WHERE id = 1", &[])
                    .unwrap();
            }
        }));
    }
    for w in writers {
        w.join().unwrap();
    }
    assert_eq!(read_v(&db, 1), 10 + THREADS * PER_THREAD);
}

// ---------------------------------------------------------------------------
// Engagement: the new DbStats counters must prove MVCC actually ran.
// ---------------------------------------------------------------------------

#[test]
fn mvcc_counters_engage() {
    let db = counter_db("mvcc_stats");
    let conn = db.connect();
    for i in 0..300 {
        conn.execute("UPDATE t SET v = ? WHERE id = 1", &[Value::Int(i)])
            .unwrap();
        conn.query("SELECT v FROM t WHERE id = 1", &[]).unwrap();
    }
    db.checkpoint().unwrap();
    let stats = db.stats();
    assert!(stats.snapshots_taken > 0, "no snapshots were taken");
    assert!(stats.version_chains_walked > 0, "no version chains walked");
    assert!(stats.versions_gced > 0, "GC never reclaimed a version");
}

/// Checkpoint GC reclaims superseded versions and tombstones without
/// changing what any new snapshot reads.
#[test]
fn checkpoint_gc_preserves_visible_state() {
    let db = counter_db("mvcc_gc");
    let conn = db.connect();
    for i in 0..50 {
        conn.execute("UPDATE t SET v = ? WHERE id = 1", &[Value::Int(i)])
            .unwrap();
    }
    conn.execute("DELETE FROM t WHERE id = 2", &[]).unwrap();
    let before = db_fingerprint(&db);
    db.checkpoint().unwrap();
    assert!(db.stats().versions_gced > 0);
    assert_eq!(db_fingerprint(&db), before, "GC changed visible state");
    assert_eq!(read_v(&db, 1), 49);
    assert!(db
        .connect()
        .query("SELECT v FROM t WHERE id = 2", &[])
        .unwrap()
        .is_empty());
}

/// Index access under MVCC: a row whose indexed key moves is found at
/// its new key only, in new-key order — retained old-key entries for
/// older snapshots never leak into a fresh scan.
#[test]
fn index_scans_track_moved_keys() {
    let db = Database::new("mvcc_keys");
    let conn = db.connect();
    conn.execute_script(
        "CREATE TABLE items (id INT PRIMARY KEY, name TEXT);
         INSERT INTO items VALUES (1, 'a');
         INSERT INTO items VALUES (2, 'b');
         INSERT INTO items VALUES (3, 'c');",
    )
    .unwrap();
    conn.execute("UPDATE items SET id = 100 WHERE id = 1", &[])
        .unwrap();

    let ordered = conn.query("SELECT id FROM items ORDER BY id", &[]).unwrap();
    assert_eq!(
        ordered.rows,
        vec![
            vec![Value::Int(2)],
            vec![Value::Int(3)],
            vec![Value::Int(100)]
        ]
    );
    assert!(conn
        .query("SELECT name FROM items WHERE id = 1", &[])
        .unwrap()
        .is_empty());
    assert_eq!(
        conn.query("SELECT name FROM items WHERE id = 100", &[])
            .unwrap()
            .rows,
        vec![vec![Value::Text("a".into())]]
    );
    // The vacated key is genuinely free again.
    conn.execute("INSERT INTO items VALUES (1, 'a2')", &[])
        .unwrap();
    assert_eq!(
        conn.query("SELECT COUNT(*) FROM items", &[]).unwrap().rows,
        vec![vec![Value::Int(4)]]
    );
}

// ---------------------------------------------------------------------------
// Shared handles: the stacks reach one engine through Database::open.
// ---------------------------------------------------------------------------

#[test]
fn stacks_share_one_engine_through_the_handle_registry() {
    // Some component opens (and thereby publishes) the database...
    let db = Database::open("sqlkernel://shared_orders_pr7");
    db.connect()
        .execute_script(
            "CREATE TABLE Orders (OrderId INT PRIMARY KEY, Qty INT);
             INSERT INTO Orders VALUES (1, 3);",
        )
        .unwrap();

    // ...and every stack resolves the *same* engine without registering
    // it in its own directory.
    let bis = DataSourceRegistry::new()
        .resolve("sqlkernel://shared_orders_pr7")
        .unwrap();
    assert!(bis.same_as(&db));

    let wf = WfHost::new()
        .resolve_for_sql_activity("Provider=SqlServer;Database=shared_orders_pr7")
        .unwrap();
    assert!(wf.same_as(&db));

    let soa = SoaEnvironment::new()
        .resolve("jdbc:oracle:thin:@shared_orders_pr7")
        .unwrap();
    assert!(soa.same_as(&db));

    // A write through one stack's handle is a write through all of them.
    bis.connect()
        .execute("UPDATE Orders SET Qty = 7 WHERE OrderId = 1", &[])
        .unwrap();
    assert_eq!(
        soa.connect()
            .query("SELECT Qty FROM Orders", &[])
            .unwrap()
            .rows,
        vec![vec![Value::Int(7)]]
    );

    // The fallback never creates: unknown names still fail everywhere,
    // and the WF provider whitelist still applies to shared handles.
    assert!(DataSourceRegistry::new()
        .resolve("sqlkernel://no_such_db_pr7")
        .is_err());
    assert!(SoaEnvironment::new()
        .resolve("jdbc:oracle:thin:@no_such_db_pr7")
        .is_err());
    assert!(WfHost::new()
        .resolve_for_sql_activity("Provider=Db2;Database=shared_orders_pr7")
        .is_err());

    Database::unpublish("shared_orders_pr7");
}

// ---------------------------------------------------------------------------
// Storms: MVCC must not change what the database contains.
// ---------------------------------------------------------------------------

fn crash_seeds() -> Vec<u64> {
    let mut seeds = vec![11, 42, 1337];
    if let Some(extra) = std::env::var("CRASH_SEED")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
    {
        if !seeds.contains(&extra) {
            seeds.push(extra);
        }
    }
    seeds
}

fn chaos_seeds() -> Vec<u64> {
    let mut seeds = vec![7, 99];
    if let Some(extra) = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
    {
        if !seeds.contains(&extra) {
            seeds.push(extra);
        }
    }
    seeds
}

/// The storm workload: idempotent units (absolute updates, a delete, and
/// one multi-statement transaction), so a unit interrupted by a crash or
/// transient fault can simply run again.
const WORKLOAD: &[&str] = &[
    "UPDATE Ledger SET bal = 150 WHERE id = 1",
    "UPDATE Ledger SET bal = 250 WHERE id = 2",
    "BEGIN; UPDATE Ledger SET bal = 90 WHERE id = 1; \
     UPDATE Ledger SET bal = 310 WHERE id = 2; COMMIT",
    "DELETE FROM Ledger WHERE id = 3",
    "UPDATE Ledger SET bal = 400 WHERE id = 2",
];

fn ledger_schema(db: &Database) {
    db.connect()
        .execute_script(
            "CREATE TABLE Ledger (id INT PRIMARY KEY, bal INT);
             INSERT INTO Ledger VALUES (1, 100);
             INSERT INTO Ledger VALUES (2, 200);
             INSERT INTO Ledger VALUES (3, 300);",
        )
        .unwrap();
}

fn ledger_baseline() -> String {
    let store = MemLogStore::new();
    let db = Database::with_wal("crash_db", Arc::new(store.clone()));
    ledger_schema(&db);
    let conn = db.connect();
    for unit in WORKLOAD {
        conn.execute_script(unit).unwrap();
    }
    db_fingerprint(&db)
}

/// Crash storms against the versioned engine: the commit timestamp is
/// assigned at WAL-ack, so whatever the log retains after a crash must
/// replay to exactly the committed chain — including under group commit.
#[test]
fn crash_storms_recover_the_committed_chain() {
    let baseline = ledger_baseline();
    for group_window in [0u64, 3] {
        for seed in crash_seeds() {
            let schedule = crash_storm(seed, 120, 3);
            let store = MemLogStore::new();
            ledger_schema(&Database::with_wal("crash_db", Arc::new(store.clone())));

            let mut next = 0usize; // first workload unit not yet acked
            'lifetimes: for life in 0..=schedule.crashes() + 1 {
                let db = Database::recover("crash_db", Arc::new(store.clone())).unwrap();
                db.set_group_commit_window(group_window);
                db.set_fault_plan(Some(schedule.plan(life)));
                let conn = db.connect();
                while next < WORKLOAD.len() {
                    match conn.execute_script(WORKLOAD[next]) {
                        Ok(_) => next += 1,
                        Err(_) => {
                            let frozen = db.fault_injector().map(|i| i.frozen()).unwrap_or(false);
                            assert!(frozen, "seed {seed}: non-crash failure");
                            continue 'lifetimes; // reboot
                        }
                    }
                }
                break;
            }
            assert_eq!(next, WORKLOAD.len(), "seed {seed}: storm never completed");

            let db = Database::recover("crash_db", Arc::new(store.clone())).unwrap();
            assert_eq!(
                db_fingerprint(&db),
                baseline,
                "seed {seed} window {group_window}: recovered state diverged"
            );
        }
    }
}

/// Transient-fault storms with concurrent snapshot readers: retried
/// writes push through while scans keep running against consistent
/// snapshots, and the final state fingerprint-matches the fault-free run.
#[test]
fn chaos_storms_with_concurrent_readers_match_fault_free() {
    let baseline = ledger_baseline();
    for seed in chaos_seeds() {
        const HORIZON: u64 = 200;
        const PERCENT: u64 = 25;
        let store = MemLogStore::new();
        let db = Database::with_wal("crash_db", Arc::new(store.clone()));
        ledger_schema(&db);
        db.set_fault_plan(Some(scripted_storm(seed, HORIZON, PERCENT)));

        let stop = Arc::new(AtomicBool::new(false));
        let scans = Arc::new(AtomicU64::new(0));
        let reader = {
            let db = db.clone();
            let stop = Arc::clone(&stop);
            let scans = Arc::clone(&scans);
            thread::spawn(move || {
                let conn = db.connect();
                while !stop.load(Ordering::Acquire) {
                    // The storm faults readers too ("connection reset");
                    // a faulted scan is retried, a successful one must
                    // be a consistent snapshot.
                    if let Ok(rs) = conn.query("SELECT id, bal FROM Ledger ORDER BY id", &[]) {
                        assert!(rs.len() <= 3);
                        scans.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        };

        // The storm faults at most HORIZON statement indices in total,
        // so HORIZON failed attempts guarantee the clock is past it.
        let conn = db.connect();
        for unit in WORKLOAD {
            let mut attempts = 0u64;
            while conn.execute_script(unit).is_err() {
                // A fault inside the BEGIN…COMMIT unit can leave the
                // transaction open; clear it before retrying the unit.
                let _ = conn.execute("ROLLBACK", &[]);
                attempts += 1;
                assert!(attempts <= HORIZON, "seed {seed}: retry budget exhausted");
            }
        }
        // On a single-CPU host the writer can finish before the reader
        // thread is ever scheduled; once the storm is drained, wait for
        // a few guaranteed-clean scans before stopping it.
        db.set_fault_plan(None);
        while scans.load(Ordering::Relaxed) < 3 {
            thread::yield_now();
        }
        stop.store(true, Ordering::Release);
        reader.join().unwrap();
        assert_eq!(
            db_fingerprint(&db),
            baseline,
            "seed {seed}: faulted run diverged from fault-free"
        );
    }
}
