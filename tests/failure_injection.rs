//! Failure injection across the stack: a flaky supplier service, faulting
//! SQL, and the recovery mechanisms the engine provides (scope fault
//! handlers, cleanup hooks, statement/transaction atomicity).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use flowsql::bis::{BisDeployment, DataSourceRegistry, RetrieveSetActivity, SqlActivity};
use flowsql::flowcore::builtins::{CopyFrom, Invoke, Scope, Sequence, Snippet};
use flowsql::flowcore::{Engine, FlowError, Message, ProcessDefinition, Variables};
use flowsql::patterns::probe::seed_orders;
use flowsql::sqlkernel::{Database, Value};

/// A supplier that rejects every order for `poison` items.
fn flaky_supplier_engine(poison: &'static str) -> (Engine, Arc<AtomicUsize>) {
    let calls = Arc::new(AtomicUsize::new(0));
    let counter = calls.clone();
    let mut engine = Engine::new();
    engine.services_mut().register_fn(
        flowsql::patterns::ORDER_FROM_SUPPLIER,
        move |input: &Message| {
            counter.fetch_add(1, Ordering::Relaxed);
            let item = input.scalar_part("ItemType")?.render();
            if item == poison {
                return Err(FlowError::fault(
                    "supplierRejected",
                    format!("no stock for {item}"),
                ));
            }
            Ok(Message::new().with_part("Confirmation", Value::Text(format!("confirmed:{item}"))))
        },
    );
    (engine, calls)
}

#[test]
fn service_fault_aborts_instance_but_cleanup_still_runs() {
    let db = Database::new("orders_db");
    seed_orders(&db);
    let (engine, calls) = flaky_supplier_engine("sprocket");

    let registry = DataSourceRegistry::new().with(db.clone());
    let def = flowsql::bis::figure4_process(registry, db.name());
    let inst = engine.run(&def, Variables::new()).unwrap();

    // Item order is gadget, sprocket, widget → faulted on the second.
    assert!(inst.is_faulted());
    assert_eq!(calls.load(Ordering::Relaxed), 2);
    // gadget's confirmation was recorded before the fault.
    assert_eq!(db.table_len("OrderConfirmations").unwrap(), 1);
    // The deployment cleanup still dropped the per-instance result table.
    assert!(db
        .table_names()
        .iter()
        .all(|t| !t.starts_with("rs_sr_itemlist")));
}

#[test]
fn scope_handler_records_failed_orders_and_completes() {
    let db = Database::new("orders_db");
    seed_orders(&db);
    db.connect()
        .execute(
            "CREATE TABLE FailedOrders (ItemId TEXT PRIMARY KEY, Reason TEXT)",
            &[],
        )
        .unwrap();
    let (engine, _) = flaky_supplier_engine("sprocket");

    // A per-item scope: try to order; on supplierRejected, record the
    // failure through a SQL activity and continue with the next item.
    let order_item = Scope::new(
        "order with recovery",
        Invoke::new(
            "Invoke OrderFromSupplier",
            flowsql::patterns::ORDER_FROM_SUPPLIER,
        )
        .input(
            "ItemType",
            CopyFrom::path("CurrentItem", "/Row/ItemId").unwrap(),
        )
        .input(
            "Quantity",
            CopyFrom::path("CurrentItem", "/Row/Quantity").unwrap(),
        )
        .output("Confirmation", "OrderConfirmation"),
    )
    .catch(
        "supplierRejected",
        SqlActivity::new(
            "record failure",
            "DS_Orders",
            "INSERT INTO FailedOrders VALUES (?, ?)",
        )
        .param(CopyFrom::path("CurrentItem", "/Row/ItemId").unwrap())
        .param_var("$faultMessage"),
    );

    let body = Sequence::new("main")
        .then(
            SqlActivity::new("SQL_1", "DS_Orders", flowsql::bis::sample::SQL_1)
                .result_into("SR_ItemList"),
        )
        .then(RetrieveSetActivity::new(
            "Retrieve Set",
            "DS_Orders",
            "SR_ItemList",
            "SV_ItemList",
        ))
        .then(flowsql::bis::cursor_loop(
            "while",
            "SV_ItemList",
            "CurrentItem",
            order_item,
        ));

    let def = BisDeployment::new(DataSourceRegistry::new().with(db.clone()))
        .bind_data_source("DS_Orders", db.name())
        .input_set("SR_Orders", "Orders")
        .result_set(
            "SR_ItemList",
            "DS_Orders",
            Some("(ItemId TEXT, Quantity INT)"),
        )
        .deploy(ProcessDefinition::new("resilient order flow", body));

    let inst = engine.run(&def, Variables::new()).unwrap();
    assert!(inst.is_completed(), "{:?}", inst.outcome);

    let conn = db.connect();
    let failed = conn
        .query("SELECT ItemId, Reason FROM FailedOrders", &[])
        .unwrap();
    assert_eq!(failed.rows.len(), 1);
    assert_eq!(failed.rows[0][0], Value::text("sprocket"));
    assert!(failed.rows[0][1].render().contains("no stock"));
}

#[test]
fn sql_fault_mid_loop_leaves_consistent_partial_state() {
    // The confirmation insert faults on the second iteration (duplicate
    // key); statement atomicity keeps the table consistent, the audit
    // trail shows exactly where it stopped.
    let db = Database::new("orders_db");
    seed_orders(&db);
    // Force a duplicate-key collision: pre-insert ConfId 2.
    db.connect()
        .execute(
            "INSERT INTO OrderConfirmations VALUES (2, 'blocker', 0, NULL)",
            &[],
        )
        .unwrap();

    let env_engine = {
        let (engine, _) = flaky_supplier_engine("nothing-is-poison");
        engine
    };
    let registry = DataSourceRegistry::new().with(db.clone());
    let def = flowsql::bis::figure4_process(registry, db.name());
    let inst = env_engine.run(&def, Variables::new()).unwrap();
    assert!(inst.is_faulted());

    // First iteration (ConfId 1) committed; second (ConfId 2) failed
    // cleanly; nothing half-written.
    let conn = db.connect();
    let rs = conn
        .query(
            "SELECT COUNT(*) FROM OrderConfirmations WHERE Confirmation IS NOT NULL",
            &[],
        )
        .unwrap();
    assert_eq!(rs.single_value().unwrap(), &Value::Int(1));
    let faults: Vec<_> = inst
        .audit
        .events()
        .iter()
        .filter(|e| e.status == flowsql::flowcore::AuditStatus::Faulted)
        .collect();
    assert!(!faults.is_empty());
    assert!(faults.iter().any(|e| e.detail.contains("constraint")));
}

#[test]
fn snippet_panic_free_error_propagation_through_layers() {
    // A snippet that returns an error (not a panic) propagates as a
    // fault with its message intact through while → sequence → process.
    let def = ProcessDefinition::new(
        "deep",
        Sequence::new("outer").then(Sequence::new("inner").then(Snippet::new("fails", |_| {
            Err(FlowError::Variable("injected failure".into()))
        }))),
    );
    let inst = Engine::new().run(&def, Variables::new()).unwrap();
    assert!(inst.is_faulted());
    assert!(format!("{:?}", inst.outcome).contains("injected failure"));
    // Every enclosing activity recorded the fault.
    let fault_count = inst
        .audit
        .events()
        .iter()
        .filter(|e| e.status == flowsql::flowcore::AuditStatus::Faulted)
        .count();
    assert_eq!(fault_count, 4); // snippet + inner + outer + process
}
