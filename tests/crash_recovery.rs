//! The headline crash-consistency claim, tested differentially across
//! all three product stacks: a workflow whose process keeps dying —
//! before the log write, after it, mid-apply, and during checkpoints —
//! must, after recovery and resumption, leave the user tables
//! **byte-identical** to a crash-free run, with every committed step
//! executed exactly once and no completed activity re-executed.
//!
//! Each scenario runs crash-free once on a durable database, then again
//! from scratch under ≥3 seeded crash schedules ([`crash_storm`]) and a
//! combined schedule mixing transient faults with process deaths
//! ([`combined_storm`]). Every "reboot" is a real one: the frozen
//! injector guarantees the dead process can contribute nothing more, and
//! `Database::recover` rebuilds state strictly from the log bytes.
//!
//! The `CRASH_SEED` environment variable adds one more schedule seed —
//! the CI crash-recovery step uses it to rotate schedules without
//! editing the test.

use std::sync::Arc;

use flowsql::bis::{BisDeployment, DataSourceRegistry};
use flowsql::flowcore::persistence::{DurableProcess, PersistenceService, STATUS_COMPLETED};
use flowsql::flowcore::retry::{BreakerConfig, RetryPolicy, RetryRuntime};
use flowsql::flowcore::value::{VarValue, Variables};
use flowsql::patterns::chaos::{
    combined_storm, crash_storm, db_fingerprint_excluding, rows_fingerprint, CrashSchedule,
};
use flowsql::soa::run_durable_pages;
use flowsql::sqlkernel::{Database, MemLogStore, Value};
use flowsql::wf::SqlWorkflowPersistenceService;

/// Statement indices covered by the storms.
const HORIZON: u64 = 120;

/// The three fixed schedule seeds, plus an optional CI-provided one.
fn schedule_seeds() -> Vec<u64> {
    let mut seeds = vec![11, 42, 1337];
    if let Some(extra) = std::env::var("CRASH_SEED")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
    {
        if !seeds.contains(&extra) {
            seeds.push(extra);
        }
    }
    seeds
}

/// A retry budget that guarantees eventual success against a bounded
/// transient storm: every failed attempt consumes at least one faulted
/// index, and there are at most `HORIZON` of them.
fn storm_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: HORIZON as u32 + 2,
        max_backoff_ticks: 8,
        ..RetryPolicy::default()
    }
}

/// A breaker that never trips — the claim under test is crash recovery,
/// not fail-fast (the breaker has its own tests).
fn no_trip() -> BreakerConfig {
    BreakerConfig {
        failure_threshold: u32::MAX,
        cooldown_ticks: 1,
    }
}

fn fresh_runtime() -> RetryRuntime {
    RetryRuntime::new(77)
        .with_policy(storm_policy())
        .with_breaker(no_trip())
}

/// Fingerprint of the user tables plus the durable parts of the
/// instance row (variables, pc, status — NOT the breaker clock, which
/// legitimately differs between a crashed and a clean history).
fn durable_fingerprint(db: &Database) -> String {
    let user = db_fingerprint_excluding(db, &["FLOW_INSTANCES"]);
    let instances = db
        .connect()
        .query(
            "SELECT InstanceKey, Process, Pc, Status, Vars FROM FLOW_INSTANCES \
             ORDER BY InstanceKey",
            &[],
        )
        .map(|rs| rows_fingerprint(&rs))
        .unwrap_or_default();
    format!("{user}\n-- instances --\n{instances}")
}

/// Drive `run` against a durable store under a crash schedule: one
/// process lifetime per scheduled crash, then a final clean lifetime.
/// Every lifetime starts with `Database::recover` over the log bytes —
/// the only state that survives a crash. A checkpoint is attempted
/// between lifetimes (sometimes dying itself, per the schedule). Returns
/// the number of crashes that actually fired.
fn run_to_completion(
    store: &MemLogStore,
    schedule: &CrashSchedule,
    mut run: impl FnMut(&Database) -> Result<(), flowsql::flowcore::FlowError>,
) -> usize {
    let mut fired = 0usize;
    for life in 0..=schedule.crashes() {
        let db = Database::recover("crash_db", Arc::new(store.clone())).unwrap();
        db.set_fault_plan(Some(schedule.plan(life)));
        let result = run(&db);
        let frozen = db.fault_injector().map(|i| i.frozen()).unwrap_or(false);
        if frozen {
            assert!(result.is_err(), "a crash must surface as an error");
            fired += 1;
            continue; // reboot: next lifetime recovers from the log
        }
        if result.is_ok() {
            // Completed. Attempt a checkpoint so late checkpoint-crash
            // schedules get their shot; a dying checkpoint just means
            // one more recovery below.
            if db.checkpoint().is_err() {
                fired += 1;
            }
            return fired;
        }
        // A non-crash failure (e.g. transient budget); with the storm
        // policy this cannot happen.
        panic!("run failed without a crash: {result:?}");
    }
    // All scheduled crashes fired and the final lifetime still did not
    // complete — one more clean lifetime must finish it.
    let db = Database::recover("crash_db", Arc::new(store.clone())).unwrap();
    assert!(
        run(&db).is_ok(),
        "clean lifetime after the storm must complete"
    );
    fired
}

/// Final verification shared by every scenario: recover once more from
/// the log alone and compare against the crash-free baseline.
fn assert_recovers_to(store: &MemLogStore, baseline: &str, instance_key: &str) {
    let db = Database::recover("crash_db", Arc::new(store.clone())).unwrap();
    assert_eq!(
        durable_fingerprint(&db),
        baseline,
        "recovered state must be byte-identical to the crash-free run"
    );
    let svc = PersistenceService::new(&db).unwrap();
    let (_, status) = svc.instance_status(instance_key).unwrap().unwrap();
    assert_eq!(status, STATUS_COMPLETED);
    assert!(db.stats().recoveries > 0, "recovery counter must report");
}

// ---------------------------------------------------------------------------
// BIS: deployment-resume over a durable data source
// ---------------------------------------------------------------------------

fn bis_schema(db: &Database) {
    db.connect()
        .execute_script(
            "CREATE TABLE Orders (OrderId INT PRIMARY KEY, Item TEXT, Qty INT);
             CREATE TABLE Shipments (ShipId INT PRIMARY KEY, OrderId INT);
             CREATE SEQUENCE ship_seq START WITH 100;",
        )
        .unwrap();
}

fn bis_process() -> DurableProcess {
    DurableProcess::new("order-intake")
        .step("record", |conn, vars| {
            conn.execute("INSERT INTO Orders VALUES (1, 'widget', 3)", &[])?;
            vars.set("order", VarValue::Scalar(Value::Int(1)));
            Ok(())
        })
        .step("ship", |conn, vars| {
            conn.execute("INSERT INTO Shipments VALUES (NEXTVAL('ship_seq'), 1)", &[])?;
            vars.set("shipped", VarValue::Scalar(Value::Bool(true)));
            Ok(())
        })
        .step("close", |conn, vars| {
            conn.execute("UPDATE Orders SET Qty = 0 WHERE OrderId = 1", &[])?;
            vars.set("closed", VarValue::Scalar(Value::Bool(true)));
            Ok(())
        })
}

fn bis_run(db: &Database) -> Result<(), flowsql::flowcore::FlowError> {
    let deployment = BisDeployment::new(DataSourceRegistry::new().with(db.clone()))
        .with_retry(77, storm_policy())
        .with_breaker(no_trip());
    deployment
        .run_durable("crash_db", &bis_process(), "intake-1", &Variables::new())
        .map(|_| ())
}

fn bis_baseline() -> String {
    let store = MemLogStore::new();
    let db = Database::with_wal("crash_db", Arc::new(store.clone()));
    bis_schema(&db);
    bis_run(&db).unwrap();
    durable_fingerprint(&db)
}

#[test]
fn bis_deployment_resumes_identically_under_crash_storms() {
    let baseline = bis_baseline();
    for seed in schedule_seeds() {
        let schedule = crash_storm(seed, HORIZON, 3);
        let store = MemLogStore::new();
        bis_schema(&Database::with_wal("crash_db", Arc::new(store.clone())));
        run_to_completion(&store, &schedule, bis_run);
        assert_recovers_to(&store, &baseline, "intake-1");
    }
}

#[test]
fn bis_deployment_survives_combined_transient_and_crash_storm() {
    let baseline = bis_baseline();
    for seed in schedule_seeds() {
        let schedule = combined_storm(seed, HORIZON, 2, 10);
        let store = MemLogStore::new();
        bis_schema(&Database::with_wal("crash_db", Arc::new(store.clone())));
        run_to_completion(&store, &schedule, bis_run);
        assert_recovers_to(&store, &baseline, "intake-1");
    }
}

#[test]
fn bis_deployment_with_group_commit_recovers_identically_under_crash_storms() {
    // Routing every commit through the WAL group sequencer must change
    // nothing about what a crash can destroy: the same storms, with
    // grouping enabled in every lifetime, recover to the same bytes as
    // the ungrouped crash-free baseline.
    let baseline = bis_baseline();
    for seed in schedule_seeds() {
        let schedule = crash_storm(seed, HORIZON, 3);
        let store = MemLogStore::new();
        bis_schema(&Database::with_wal("crash_db", Arc::new(store.clone())));
        run_to_completion(&store, &schedule, |db| {
            db.set_group_commit_window(2);
            bis_run(db)
        });
        assert_recovers_to(&store, &baseline, "intake-1");
    }
}

#[test]
fn bis_deployment_with_group_commit_survives_combined_storm() {
    let baseline = bis_baseline();
    for seed in schedule_seeds() {
        let schedule = combined_storm(seed, HORIZON, 2, 10);
        let store = MemLogStore::new();
        bis_schema(&Database::with_wal("crash_db", Arc::new(store.clone())));
        run_to_completion(&store, &schedule, |db| {
            db.set_group_commit_window(3);
            bis_run(db)
        });
        assert_recovers_to(&store, &baseline, "intake-1");
    }
}

// ---------------------------------------------------------------------------
// WF: SqlWorkflowPersistenceService (Fig. 5)
// ---------------------------------------------------------------------------

fn wf_schema(db: &Database) {
    db.connect()
        .execute_script(
            "CREATE TABLE Approvals (Id INT PRIMARY KEY, Decision TEXT);
             CREATE TABLE Audit (Seq INT PRIMARY KEY, What TEXT);",
        )
        .unwrap();
}

fn wf_process() -> DurableProcess {
    DurableProcess::new("approval")
        .step("submit", |conn, vars| {
            conn.execute("INSERT INTO Approvals VALUES (7, 'pending')", &[])?;
            conn.execute("INSERT INTO Audit VALUES (1, 'submitted')", &[])?;
            vars.set("state", VarValue::Scalar(Value::text("pending")));
            Ok(())
        })
        .step("decide", |conn, vars| {
            conn.execute(
                "UPDATE Approvals SET Decision = 'approved' WHERE Id = 7",
                &[],
            )?;
            conn.execute("INSERT INTO Audit VALUES (2, 'decided')", &[])?;
            vars.set("state", VarValue::Scalar(Value::text("approved")));
            Ok(())
        })
}

fn wf_run(db: &Database) -> Result<(), flowsql::flowcore::FlowError> {
    let svc = SqlWorkflowPersistenceService::new(db)?;
    let mut rt = fresh_runtime();
    svc.run_workflow(&wf_process(), "appr-7", &Variables::new(), &mut rt)
        .map(|_| ())
}

#[test]
fn wf_persistence_service_resumes_identically_under_crash_storms() {
    let baseline = {
        let store = MemLogStore::new();
        let db = Database::with_wal("crash_db", Arc::new(store.clone()));
        wf_schema(&db);
        wf_run(&db).unwrap();
        durable_fingerprint(&db)
    };
    for seed in schedule_seeds() {
        // Three statement crashes, then a checkpoint crash between
        // lifetimes (Fig. 5 host restart while the runtime snapshots).
        let mut schedule = crash_storm(seed, HORIZON, 3);
        schedule.checkpoint_crashes.push(0);
        let store = MemLogStore::new();
        wf_schema(&Database::with_wal("crash_db", Arc::new(store.clone())));
        run_to_completion(&store, &schedule, wf_run);
        assert_recovers_to(&store, &baseline, "appr-7");
    }
}

// ---------------------------------------------------------------------------
// SOA: dehydration between XSQL pages
// ---------------------------------------------------------------------------

const SOA_PAGES: [(&str, &str); 2] = [
    (
        "stage",
        "<xsql:page xmlns:xsql=\"urn:oracle-xsql\">\
         <xsql:dml>INSERT INTO Staging VALUES (1, {@item})</xsql:dml>\
         </xsql:page>",
    ),
    (
        "publish",
        "<xsql:page xmlns:xsql=\"urn:oracle-xsql\">\
         <xsql:dml>INSERT INTO Published VALUES (1, {@item})</xsql:dml>\
         <xsql:query>SELECT Id FROM Published ORDER BY Id</xsql:query>\
         </xsql:page>",
    ),
];

fn soa_schema(db: &Database) {
    db.connect()
        .execute_script(
            "CREATE TABLE Staging (Id INT PRIMARY KEY, Item TEXT);
             CREATE TABLE Published (Id INT PRIMARY KEY, Item TEXT);",
        )
        .unwrap();
}

fn soa_run(db: &Database) -> Result<(), flowsql::flowcore::FlowError> {
    let mut rt = fresh_runtime();
    run_durable_pages(
        db,
        "xsql-seq",
        &SOA_PAGES,
        "page-run-1",
        &[("item".into(), Value::text("widget"))],
        &mut rt,
    )
    .map(|_| ())
}

#[test]
fn soa_page_dehydration_resumes_identically_under_crash_storms() {
    let baseline = {
        let store = MemLogStore::new();
        let db = Database::with_wal("crash_db", Arc::new(store.clone()));
        soa_schema(&db);
        soa_run(&db).unwrap();
        durable_fingerprint(&db)
    };
    for seed in schedule_seeds() {
        let schedule = crash_storm(seed, HORIZON, 3);
        let store = MemLogStore::new();
        soa_schema(&Database::with_wal("crash_db", Arc::new(store.clone())));
        run_to_completion(&store, &schedule, soa_run);
        assert_recovers_to(&store, &baseline, "page-run-1");
    }
}

// ---------------------------------------------------------------------------
// Cross-cutting guarantees
// ---------------------------------------------------------------------------

/// Completed activities are never re-executed: each step inserts a row
/// under a fixed primary key, so any replay would either violate the key
/// (failing the run) or duplicate the row (failing the fingerprint).
/// This test makes the count explicit across a double-crash schedule.
#[test]
fn no_completed_step_reexecutes_across_double_crash() {
    for seed in schedule_seeds() {
        let schedule = crash_storm(seed.wrapping_mul(31), HORIZON, 2);
        let store = MemLogStore::new();
        bis_schema(&Database::with_wal("crash_db", Arc::new(store.clone())));
        run_to_completion(&store, &schedule, bis_run);
        let db = Database::recover("crash_db", Arc::new(store.clone())).unwrap();
        let conn = db.connect();
        let orders = conn.query("SELECT OrderId FROM Orders", &[]).unwrap();
        assert_eq!(orders.rows.len(), 1, "record step committed exactly once");
        let ships = conn.query("SELECT ShipId FROM Shipments", &[]).unwrap();
        assert_eq!(ships.rows.len(), 1, "ship step committed exactly once");
        assert_eq!(
            ships.rows[0][0],
            Value::Int(100),
            "committed sequence draws survive recovery without gaps"
        );
    }
}

/// A crash during checkpoint must fall back to the intact pre-checkpoint
/// log: nothing committed is lost, and the next checkpoint succeeds.
#[test]
fn checkpoint_crash_preserves_committed_state() {
    let store = MemLogStore::new();
    let db = Database::with_wal("crash_db", Arc::new(store.clone()));
    bis_schema(&db);
    bis_run(&db).unwrap();
    let before = durable_fingerprint(&db);

    let mut schedule = CrashSchedule::default();
    schedule.checkpoint_crashes.push(0);
    db.set_fault_plan(Some(schedule.plan(0)));
    assert!(db.checkpoint().is_err(), "scheduled checkpoint crash");

    let db = Database::recover("crash_db", Arc::new(store.clone())).unwrap();
    assert_eq!(durable_fingerprint(&db), before);
    db.checkpoint().unwrap();
    let db = Database::recover("crash_db", Arc::new(store)).unwrap();
    assert_eq!(durable_fingerprint(&db), before);
}

/// A torn tail — garbage bytes past the last intact frame, as a crash
/// mid-append leaves them — is dropped by the recovery scan, and the
/// exact number of dropped bytes is reported in [`DbStats`].
#[test]
fn torn_log_tail_is_dropped_and_counted() {
    use flowsql::sqlkernel::LogStore;

    let store = MemLogStore::new();
    let db = Database::with_wal("crash_db", Arc::new(store.clone()));
    bis_schema(&db);
    bis_run(&db).unwrap();
    let before = durable_fingerprint(&db);
    drop(db);

    // 37 bytes whose frame header claims an impossible length: the scan
    // must stop at the last intact frame and drop exactly these bytes.
    let garbage = [0xFFu8; 37];
    store.append(&garbage).unwrap();

    let db = Database::recover("crash_db", Arc::new(store.clone())).unwrap();
    assert_eq!(
        durable_fingerprint(&db),
        before,
        "torn tail corrupted state"
    );
    assert_eq!(
        db.stats().torn_tails_dropped,
        garbage.len() as u64,
        "dropped torn-tail bytes must be reported exactly"
    );
    // A clean re-recovery after a checkpoint sees no torn tail at all.
    db.checkpoint().unwrap();
    let db = Database::recover("crash_db", Arc::new(store)).unwrap();
    assert_eq!(db.stats().torn_tails_dropped, 0);
}

// ---------------------------------------------------------------------------
// Batched reads after crash recovery: a database rebuilt strictly from
// the log bytes must read the same bytes through compiled/batched plans
// as through the row-at-a-time interpreter — on every recovered table
// and on a grouped aggregate over the recovered rows.
// ---------------------------------------------------------------------------

#[test]
fn batched_reads_match_interpreter_after_crash_storm() {
    use flowsql::sqlkernel::parser::parse_statement;
    use flowsql::sqlkernel::{QueryResult, StatementResult};

    let baseline = bis_baseline();
    let schedule = crash_storm(1337, HORIZON, 3);
    let store = MemLogStore::new();
    bis_schema(&Database::with_wal("crash_db", Arc::new(store.clone())));
    run_to_completion(&store, &schedule, bis_run);
    assert_recovers_to(&store, &baseline, "intake-1");

    let db = Database::recover("crash_db", Arc::new(store.clone())).unwrap();
    let conn = db.connect();
    let interpreted = |sql: &str| -> QueryResult {
        let stmt = parse_statement(sql).unwrap();
        match conn.execute_ast(&stmt, &[]).unwrap() {
            StatementResult::Rows(rs) => rs,
            other => panic!("expected rows from {sql}, got {other:?}"),
        }
    };

    let mut tables = db.table_names();
    tables.sort_unstable();
    for t in &tables {
        let sql = format!("SELECT * FROM {t}");
        let batched = conn.query(&sql, &[]).unwrap();
        assert_eq!(
            rows_fingerprint(&batched),
            rows_fingerprint(&interpreted(&sql)),
            "table {t}: batched read diverged from the interpreter after recovery"
        );
    }
    let agg = "SELECT OrderId, COUNT(*) FROM Shipments GROUP BY OrderId ORDER BY 1";
    let batched = conn.query(agg, &[]).unwrap();
    assert_eq!(
        rows_fingerprint(&batched),
        rows_fingerprint(&interpreted(agg)),
        "grouped aggregate diverged between executors after recovery"
    );
    assert!(
        db.stats().batch_evals > 0 && db.stats().hash_aggs > 0,
        "the batched path must have engaged on the recovered database"
    );
}
