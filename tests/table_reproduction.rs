//! The headline reproduction claims: Tables I and II regenerate from
//! running code and match the published paper.

use flowsql::patterns::{self, verify_support_matrix, DataPattern, SqlIntegration};

fn products() -> Vec<Box<dyn SqlIntegration>> {
    vec![
        Box::new(flowsql::bis::BisProduct),
        Box::new(flowsql::wf::WfProduct),
        Box::new(flowsql::soa::OracleProduct),
    ]
}

#[test]
fn table2_matches_the_paper_exactly() {
    let generated: Vec<_> = products().iter().map(|p| p.support_matrix()).collect();
    assert_eq!(generated, patterns::paper::paper_table2());
}

#[test]
fn every_table2_cell_is_backed_by_an_executed_demonstration() {
    for product in products() {
        let matrix = product.support_matrix();
        let demos = verify_support_matrix(product.as_ref())
            .unwrap_or_else(|e| panic!("{}: {e}", matrix.product));
        // Every demonstration carries at least one evidence line.
        assert!(demos.iter().all(|d| !d.evidence.is_empty()));
    }
}

#[test]
fn table1_fields_match_paper_claims() {
    let infos: Vec<_> = products().iter().map(|p| p.product_info()).collect();
    // Row: Workflow Language.
    assert_eq!(infos[0].workflow_language, "BPEL");
    assert_eq!(infos[1].workflow_language, "C#, VB, XOML (BPEL)");
    assert_eq!(infos[2].workflow_language, "BPEL");
    // Row: SQL Inline Support.
    assert_eq!(
        infos[0].sql_inline_support,
        vec![
            "SQL Activity",
            "Retrieve Set Activity",
            "Atomic SQL Sequence"
        ]
    );
    assert_eq!(infos[1].sql_inline_support, vec!["customized SQL Activity"]);
    assert_eq!(
        infos[2].sql_inline_support,
        vec!["XPath Extension Functions"]
    );
    // Row: Reference to External Data Set.
    assert_eq!(
        infos[0].external_dataset_reference,
        "Set Reference, static text"
    );
    assert_eq!(infos[1].external_dataset_reference, "static text");
    assert_eq!(infos[2].external_dataset_reference, "static text");
    // Row: Materialized Set Representation.
    assert_eq!(
        infos[0].materialized_set_representation,
        "proprietary XML RowSet"
    );
    assert_eq!(infos[1].materialized_set_representation, "DataSet Object");
    assert_eq!(
        infos[2].materialized_set_representation,
        "proprietary XML RowSet"
    );
    // Row: Reference to External Data Source — only IBM is dynamic.
    assert_eq!(infos[0].external_datasource_reference, "dynamic, static");
    assert_eq!(infos[1].external_datasource_reference, "static");
    assert_eq!(infos[2].external_datasource_reference, "static");
    // Row: Additional Features — only IBM has one.
    assert_eq!(
        infos[0].additional_features,
        vec!["Lifecycle Management for DB Entities"]
    );
    assert!(infos[1].additional_features.is_empty());
    assert!(infos[2].additional_features.is_empty());
}

#[test]
fn discussion_claims_hold_on_generated_matrices() {
    let matrices: Vec<_> = products().iter().map(|p| p.support_matrix()).collect();
    for m in &matrices {
        // Sec. II-A: complete coverage expected from all approaches.
        assert!(m.complete(), "{} incomplete", m.product);
        // Sec. VI-C: all external-data patterns at an abstract level.
        for p in DataPattern::ALL
            .into_iter()
            .filter(|p| p.on_external_data())
        {
            assert!(m.abstractly_covered(p), "{}: {p}", m.product);
        }
        // Sec. VI-C: no vendor covers Sequential Set Access or
        // Synchronization abstractly.
        assert!(m
            .workaround_only()
            .contains(&DataPattern::SequentialSetAccess));
        assert!(m.workaround_only().contains(&DataPattern::Synchronization));
    }
    // Sec. VI-C: only Oracle covers the complete Tuple IUD abstractly.
    assert!(!matrices[0].abstractly_covered(DataPattern::TupleIud));
    assert!(!matrices[1].abstractly_covered(DataPattern::TupleIud));
    assert!(matrices[2].abstractly_covered(DataPattern::TupleIud));
}

#[test]
fn rendered_tables_are_stable_and_nonempty() {
    let infos: Vec<_> = products().iter().map(|p| p.product_info()).collect();
    let t1a = patterns::report::render_table1(&infos);
    let t1b = patterns::report::render_table1(&infos);
    assert_eq!(t1a, t1b);
    assert!(t1a.lines().count() > 10);

    let matrices: Vec<_> = products().iter().map(|p| p.support_matrix()).collect();
    let t2 = patterns::report::render_table2(&matrices);
    assert!(t2.contains("^1 only UPDATE"));
    assert!(t2.contains("^2 only DELETE and INSERT"));
}

#[test]
fn architectures_cover_figures_3_5_7() {
    let renders: Vec<String> = products()
        .iter()
        .map(|p| p.architecture().render())
        .collect();
    assert!(renders[0].contains("BPEL Process Engine")); // Fig. 3
    assert!(renders[1].contains("Runtime Engine")); // Fig. 5
    assert!(renders[2].contains("Core BPEL Engine")); // Fig. 7
}
