//! Cross-stack integration: the paper's running example must produce the
//! *same observable result* on all three SQL-integration styles and the
//! adapter baseline, while exhibiting each product's characteristic
//! activity mix.

use flowsql::adapter;
use flowsql::bis;
use flowsql::flowcore::{AuditStatus, Engine, Variables};
use flowsql::patterns::probe::{expected_item_list, ProbeEnv};
use flowsql::soa;
use flowsql::sqlkernel::Value;
use flowsql::wf;

/// Final confirmations table, normalized.
fn confirmations(env: &ProbeEnv) -> Vec<(String, i64, String)> {
    env.db
        .connect()
        .query(
            "SELECT ItemId, Quantity, Confirmation FROM OrderConfirmations ORDER BY ItemId",
            &[],
        )
        .unwrap()
        .rows
        .iter()
        .map(|r| (r[0].render(), r[1].as_i64().unwrap(), r[2].render()))
        .collect()
}

fn expected() -> Vec<(String, i64, String)> {
    expected_item_list()
        .into_iter()
        .map(|(item, qty)| (item.to_string(), qty, format!("confirmed:{item}:{qty}")))
        .collect()
}

#[test]
fn all_four_realizations_agree() {
    // BIS (Fig. 4)
    let env = ProbeEnv::fresh();
    let registry = bis::DataSourceRegistry::new().with(env.db.clone());
    let inst = env
        .engine
        .run(
            &bis::figure4_process(registry, env.db.name()),
            Variables::new(),
        )
        .unwrap();
    assert!(inst.is_completed(), "BIS: {:?}", inst.outcome);
    let bis_result = confirmations(&env);

    // WF (Fig. 6)
    let env = ProbeEnv::fresh();
    let inst = env
        .engine
        .run(&wf::figure6_process(env.db.clone()), Variables::new())
        .unwrap();
    assert!(inst.is_completed(), "WF: {:?}", inst.outcome);
    let wf_result = confirmations(&env);

    // SOA (Fig. 8)
    let env = ProbeEnv::fresh();
    let inst = env
        .engine
        .run(&soa::figure8_process(env.db.clone()), Variables::new())
        .unwrap();
    assert!(inst.is_completed(), "SOA: {:?}", inst.outcome);
    let soa_result = confirmations(&env);

    // Adapter baseline
    let env = ProbeEnv::fresh();
    let mut engine = Engine::with_services(env.engine.services().clone());
    adapter::register_data_adapter(engine.services_mut(), "ds", env.db.clone());
    let inst = engine
        .run(&adapter::sample_process_via_adapter("ds"), Variables::new())
        .unwrap();
    assert!(inst.is_completed(), "adapter: {:?}", inst.outcome);
    let adapter_result = confirmations(&env);

    let want = expected();
    assert_eq!(bis_result, want);
    assert_eq!(wf_result, want);
    assert_eq!(soa_result, want);
    assert_eq!(adapter_result, want);
}

#[test]
fn each_stack_has_its_characteristic_activity_mix() {
    // BIS: sql + retrieveSet + java-snippet, no sqlDatabase.
    let env = ProbeEnv::fresh();
    let registry = bis::DataSourceRegistry::new().with(env.db.clone());
    let inst = env
        .engine
        .run(
            &bis::figure4_process(registry, env.db.name()),
            Variables::new(),
        )
        .unwrap();
    let kinds: Vec<&str> = inst
        .audit
        .events()
        .iter()
        .map(|e| e.kind.as_str())
        .collect();
    assert!(kinds.contains(&"sql"));
    assert!(kinds.contains(&"retrieveSet"));
    assert!(kinds.contains(&"java-snippet"));
    assert!(!kinds.contains(&"sqlDatabase"));

    // WF: sqlDatabase + code, no sql / retrieveSet / java-snippet.
    let env = ProbeEnv::fresh();
    let inst = env
        .engine
        .run(&wf::figure6_process(env.db.clone()), Variables::new())
        .unwrap();
    let kinds: Vec<&str> = inst
        .audit
        .events()
        .iter()
        .map(|e| e.kind.as_str())
        .collect();
    assert!(kinds.contains(&"sqlDatabase"));
    assert!(kinds.contains(&"code"));
    assert!(!kinds.contains(&"sql"));
    assert!(!kinds.contains(&"retrieveSet"));
    assert!(!kinds.contains(&"java-snippet"));

    // SOA: assign hosts the SQL; java-snippet for the cursor.
    let env = ProbeEnv::fresh();
    let inst = env
        .engine
        .run(&soa::figure8_process(env.db.clone()), Variables::new())
        .unwrap();
    let kinds: Vec<&str> = inst
        .audit
        .events()
        .iter()
        .map(|e| e.kind.as_str())
        .collect();
    assert!(kinds.contains(&"assign"));
    assert!(kinds.contains(&"java-snippet"));
    assert!(!kinds.contains(&"sql"));
    assert!(!kinds.contains(&"sqlDatabase"));
}

#[test]
fn audit_trails_are_complete_and_balanced() {
    let env = ProbeEnv::fresh();
    let registry = bis::DataSourceRegistry::new().with(env.db.clone());
    let inst = env
        .engine
        .run(
            &bis::figure4_process(registry, env.db.name()),
            Variables::new(),
        )
        .unwrap();
    let started = inst.audit.with_status(AuditStatus::Started).count();
    let completed = inst.audit.with_status(AuditStatus::Completed).count();
    let faulted = inst.audit.with_status(AuditStatus::Faulted).count();
    assert_eq!(started, completed);
    assert_eq!(faulted, 0);
}

#[test]
fn running_example_is_idempotent_per_fresh_env_and_cumulative_within_one() {
    let env = ProbeEnv::fresh();
    let def = wf::figure6_process(env.db.clone());
    env.engine.run(&def, Variables::new()).unwrap();
    env.engine.run(&def, Variables::new()).unwrap();
    // Confirmations accumulate in the persistent table (6 = 2 runs × 3).
    assert_eq!(env.db.table_len("OrderConfirmations").unwrap(), 6);
    // All ConfIds distinct thanks to the sequence.
    let rs = env
        .db
        .connect()
        .query("SELECT COUNT(DISTINCT ConfId) FROM OrderConfirmations", &[])
        .unwrap();
    assert_eq!(rs.single_value().unwrap(), &Value::Int(6));
}
