//! The headline sharded-execution claim, tested differentially across
//! all three product stacks: a fleet of independent engines — each with
//! its own WAL — running routed single-shard workflow traffic *plus*
//! cross-shard transfers under two-phase commit must, after a storm of
//! process deaths aimed at every protocol window (participant prepared,
//! coordinator decided-but-silent, torn prepare vote, plain statement
//! crash), recover to the **same merged bytes** as a fault-free
//! unsharded run. No committed cross-shard transaction may be
//! half-applied; no aborted one may leave residue on any shard.
//!
//! Every "reboot" is a real one: [`ShardedDatabase::recover`] rebuilds
//! the whole fleet strictly from the log bytes, resolving in-doubt
//! participants against the coordinator's durable decision table.
//!
//! The `CRASH_SEED` environment variable adds one more schedule seed —
//! the CI crash-recovery step uses it to rotate schedules without
//! editing the test.

use std::sync::Arc;

use flowsql::bis::{BisDeployment, DataSourceRegistry};
use flowsql::flowcore::persistence::{DurableProcess, PersistenceService, STATUS_COMPLETED};
use flowsql::flowcore::retry::{BreakerConfig, RetryPolicy, RetryRuntime};
use flowsql::flowcore::value::{VarValue, Variables};
use flowsql::flowcore::{FlowError, InstanceScheduler};
use flowsql::patterns::chaos::{
    merged_fingerprint, rows_fingerprint, sharded_crash_storm, ShardCrash, ShardCrashSchedule,
};
use flowsql::soa::run_durable_pages;
use flowsql::sqlkernel::shard::ShardedDatabase;
use flowsql::sqlkernel::{Database, LogStore, MemLogStore, Value};
use flowsql::wf::SqlWorkflowPersistenceService;

/// Fleet width under test (the baseline runs the same traffic at 1).
const SHARDS: usize = 4;
/// Accounts spread across the fleet by key hash.
const ACCTS: i64 = 8;
/// Cross-shard transfers attempted per run.
const XFERS: i64 = 10;
/// Statement indices covered by plain statement crashes.
const HORIZON: u64 = 200;
/// Process deaths per storm — enough to cycle all four crash variants.
const CRASHES: usize = 6;

/// The three fixed schedule seeds, plus an optional CI-provided one.
fn schedule_seeds() -> Vec<u64> {
    let mut seeds = vec![11, 42, 1337];
    if let Some(extra) = std::env::var("CRASH_SEED")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
    {
        if !seeds.contains(&extra) {
            seeds.push(extra);
        }
    }
    seeds
}

fn storm_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: HORIZON as u32 + 2,
        max_backoff_ticks: 8,
        ..RetryPolicy::default()
    }
}

fn no_trip() -> BreakerConfig {
    BreakerConfig {
        failure_threshold: u32::MAX,
        cooldown_ticks: 1,
    }
}

/// Fresh per-shard stores plus the coordinator's store.
fn fresh_stores(n: usize) -> (Vec<MemLogStore>, MemLogStore) {
    (
        (0..n).map(|_| MemLogStore::new()).collect(),
        MemLogStore::new(),
    )
}

/// Recover the whole fleet from its logs — the only state a crash
/// leaves behind.
fn recover_fleet(stores: &[MemLogStore], coord: &MemLogStore, seed: u64) -> ShardedDatabase {
    let arcs: Vec<Arc<dyn LogStore>> = stores
        .iter()
        .map(|s| Arc::new(s.clone()) as Arc<dyn LogStore>)
        .collect();
    ShardedDatabase::recover("fleet", &arcs, Arc::new(coord.clone()), seed).unwrap()
}

/// Bootstrap the fleet fault-free: every shard gets the transfer tables
/// and the stack's schema, and the accounts are seeded round-robin by
/// key hash (each shard owns whichever accounts route to it).
fn bootstrap(sdb: &ShardedDatabase, stack_schema: fn(&Database)) {
    for shard in sdb.shards() {
        shard
            .connect()
            .execute_script(
                "CREATE TABLE Accounts (Acct TEXT PRIMARY KEY, Balance INT);
                 CREATE TABLE Transfers (Tid INT PRIMARY KEY, Amount INT);",
            )
            .unwrap();
        stack_schema(shard);
    }
    for a in 0..ACCTS {
        let key = format!("acct-{a}");
        sdb.shard_db_for(&key)
            .connect()
            .execute("INSERT INTO Accounts VALUES (?, 100)", &[Value::text(&key)])
            .unwrap();
    }
}

/// The cross-shard traffic: `XFERS` transfers, each moving a seeded
/// amount between two accounts that usually live on different shards,
/// committed through the 2PC path with an idempotence marker row
/// (`Transfers`) written on the source shard *inside the same
/// transaction* — so a retry after any crash can tell a committed
/// transfer from an aborted one and never applies money twice.
fn run_transfers(sdb: &ShardedDatabase) -> Result<(), flowsql::sqlkernel::SqlError> {
    for t in 0..XFERS {
        let src = format!("acct-{}", t % ACCTS);
        let dst = format!("acct-{}", (t + 3) % ACCTS);
        let amount = 1 + (t % 5);
        sdb.transact(|txn| {
            let seen = txn.query(
                &src,
                "SELECT Tid FROM Transfers WHERE Tid = ?",
                &[Value::Int(t)],
            )?;
            if !seen.rows.is_empty() {
                return Ok(()); // committed in an earlier lifetime
            }
            txn.execute(
                &src,
                "UPDATE Accounts SET Balance = Balance - ? WHERE Acct = ?",
                &[Value::Int(amount), Value::text(&src)],
            )?;
            txn.execute(
                &dst,
                "UPDATE Accounts SET Balance = Balance + ? WHERE Acct = ?",
                &[Value::Int(amount), Value::text(&dst)],
            )?;
            txn.execute(
                &src,
                "INSERT INTO Transfers VALUES (?, ?)",
                &[Value::Int(t), Value::Int(amount)],
            )?;
            Ok(())
        })?;
    }
    Ok(())
}

/// Merged durable fingerprint of the fleet: the union of every shard's
/// user tables (byte-comparable against an unsharded run) plus the
/// durable columns of the instance row on its owning shard.
fn fleet_fingerprint(sdb: &ShardedDatabase, instance_key: &str) -> String {
    let user = merged_fingerprint(sdb.shards(), &["FLOW_INSTANCES"]);
    let instances = sdb
        .shard_db_for(instance_key)
        .connect()
        .query(
            "SELECT InstanceKey, Process, Pc, Status, Vars FROM FLOW_INSTANCES \
             ORDER BY InstanceKey",
            &[],
        )
        .map(|rs| rows_fingerprint(&rs))
        .unwrap_or_default();
    format!("{user}\n-- instances --\n{instances}")
}

/// Is any engine of the fleet a dead process?
fn fleet_frozen(sdb: &ShardedDatabase) -> bool {
    sdb.shards()
        .iter()
        .chain(std::iter::once(sdb.coordinator()))
        .any(|db| db.fault_injector().map(|i| i.frozen()).unwrap_or(false))
}

/// Drive `run` under a shard-targeted crash schedule: one fleet
/// lifetime per scheduled crash, then a clean one. Every lifetime
/// recovers the whole fleet from the logs; exactly one engine carries
/// the lifetime's scheduled death. Returns how many crashes fired.
fn run_fleet_to_completion(
    stores: &[MemLogStore],
    coord: &MemLogStore,
    schedule: &ShardCrashSchedule,
    seed: u64,
    mut run: impl FnMut(&ShardedDatabase) -> Result<(), FlowError>,
) -> usize {
    let mut fired = 0usize;
    for life in 0..=schedule.crashes() {
        let sdb = recover_fleet(stores, coord, seed);
        schedule.install(life, &sdb);
        let result = run(&sdb);
        if fleet_frozen(&sdb) {
            if result.is_ok() {
                // Only the phase-2 notify window can swallow a death: the
                // decision row is durably committed, the dead participant
                // resolves in-doubt at the next recovery, and no later
                // statement happened to touch the dead shard. Every other
                // crash window must surface as an error.
                assert!(
                    matches!(
                        schedule.crashes.get(life),
                        Some(ShardCrash::ParticipantPrepared { .. })
                    ),
                    "a crash must surface as an error: life {life} crash {:?}",
                    schedule.crashes.get(life)
                );
            }
            fired += 1;
            continue; // reboot: next lifetime recovers the fleet
        }
        if result.is_ok() {
            if sdb.checkpoint_all().is_err() {
                fired += 1;
            }
            return fired;
        }
        panic!("run failed without a crash: {result:?}");
    }
    let sdb = recover_fleet(stores, coord, seed);
    assert!(
        run(&sdb).is_ok(),
        "clean lifetime after the storm must complete"
    );
    fired
}

/// Final verification shared by every stack: recover once more from the
/// logs alone, compare the merged bytes against the fault-free unsharded
/// baseline, and check the money-conservation and exactly-once
/// invariants directly.
fn assert_fleet_recovers_to(
    stores: &[MemLogStore],
    coord: &MemLogStore,
    seed: u64,
    baseline: &str,
    instance_key: &str,
) {
    let sdb = recover_fleet(stores, coord, seed);
    assert_eq!(
        fleet_fingerprint(&sdb, instance_key),
        baseline,
        "recovered fleet must merge to the bytes of the fault-free unsharded run"
    );
    // Money conservation: a half-applied transfer would break the sum.
    let mut total = 0i64;
    let mut accounts = 0usize;
    let mut transfers = 0usize;
    for shard in sdb.shards() {
        let conn = shard.connect();
        let rs = conn.query("SELECT Balance FROM Accounts", &[]).unwrap();
        accounts += rs.rows.len();
        for row in &rs.rows {
            if let Value::Int(b) = &row[0] {
                total += b;
            }
        }
        transfers += conn
            .query("SELECT Tid FROM Transfers", &[])
            .unwrap()
            .rows
            .len();
    }
    assert_eq!(accounts, ACCTS as usize);
    assert_eq!(
        total,
        ACCTS * 100,
        "cross-shard transfers must conserve money"
    );
    assert_eq!(
        transfers, XFERS as usize,
        "every transfer commits exactly once (marker row count)"
    );
    let svc = PersistenceService::new(sdb.shard_db_for(instance_key)).unwrap();
    let (_, status) = svc.instance_status(instance_key).unwrap().unwrap();
    assert_eq!(status, STATUS_COMPLETED);
}

/// One full storm scenario for a stack: fault-free unsharded baseline,
/// then for every seed a 4-shard fleet under a shard-targeted crash
/// storm, verified to merge back to the baseline bytes.
fn storm_scenario(
    stack_schema: fn(&Database),
    stack_run: fn(&Database) -> Result<(), FlowError>,
    instance_key: &str,
) {
    let run = |sdb: &ShardedDatabase| -> Result<(), FlowError> {
        stack_run(sdb.shard_db_for(instance_key))?;
        run_transfers(sdb).map_err(FlowError::Sql)
    };

    // Fault-free, unsharded (N=1) baseline.
    let (stores, coord) = fresh_stores(1);
    let baseline_fleet = recover_fleet(&stores, &coord, 7);
    bootstrap(&baseline_fleet, stack_schema);
    run(&baseline_fleet).unwrap();
    assert_eq!(
        baseline_fleet.single_shard_commits(),
        XFERS as u64,
        "one shard: every transfer takes the fast path"
    );
    let baseline = fleet_fingerprint(&baseline_fleet, instance_key);

    let mut total_fired = 0usize;
    for seed in schedule_seeds() {
        let schedule = sharded_crash_storm(seed, SHARDS, HORIZON, XFERS as u64, CRASHES);
        let (stores, coord) = fresh_stores(SHARDS);
        bootstrap(&recover_fleet(&stores, &coord, seed), stack_schema);
        total_fired += run_fleet_to_completion(&stores, &coord, &schedule, seed, run);
        assert_fleet_recovers_to(&stores, &coord, seed, &baseline, instance_key);
    }
    assert!(
        total_fired > 0,
        "across all seeds at least one scheduled crash must actually fire"
    );
}

// ---------------------------------------------------------------------------
// BIS: deployment-resume routed to the owning shard
// ---------------------------------------------------------------------------

fn bis_schema(db: &Database) {
    db.connect()
        .execute_script(
            "CREATE TABLE Orders (OrderId INT PRIMARY KEY, Item TEXT, Qty INT);
             CREATE TABLE Shipments (ShipId INT PRIMARY KEY, OrderId INT);
             CREATE SEQUENCE ship_seq START WITH 100;",
        )
        .unwrap();
}

fn bis_process() -> DurableProcess {
    DurableProcess::new("order-intake")
        .step("record", |conn, vars| {
            conn.execute("INSERT INTO Orders VALUES (1, 'widget', 3)", &[])?;
            vars.set("order", VarValue::Scalar(Value::Int(1)));
            Ok(())
        })
        .step("ship", |conn, vars| {
            conn.execute("INSERT INTO Shipments VALUES (NEXTVAL('ship_seq'), 1)", &[])?;
            vars.set("shipped", VarValue::Scalar(Value::Bool(true)));
            Ok(())
        })
}

fn bis_run(db: &Database) -> Result<(), FlowError> {
    let deployment = BisDeployment::new(DataSourceRegistry::new().with(db.clone()))
        .with_retry(77, storm_policy())
        .with_breaker(no_trip());
    deployment
        .run_durable(db.name(), &bis_process(), "intake-1", &Variables::new())
        .map(|_| ())
}

#[test]
fn bis_sharded_storm_recovers_to_unsharded_bytes() {
    storm_scenario(bis_schema, bis_run, "intake-1");
}

// ---------------------------------------------------------------------------
// WF: persistence service on the owning shard
// ---------------------------------------------------------------------------

fn wf_schema(db: &Database) {
    db.connect()
        .execute_script(
            "CREATE TABLE Approvals (Id INT PRIMARY KEY, Decision TEXT);
             CREATE TABLE Audit (Seq INT PRIMARY KEY, What TEXT);",
        )
        .unwrap();
}

fn wf_process() -> DurableProcess {
    DurableProcess::new("approval")
        .step("submit", |conn, vars| {
            conn.execute("INSERT INTO Approvals VALUES (7, 'pending')", &[])?;
            conn.execute("INSERT INTO Audit VALUES (1, 'submitted')", &[])?;
            vars.set("state", VarValue::Scalar(Value::text("pending")));
            Ok(())
        })
        .step("decide", |conn, vars| {
            conn.execute(
                "UPDATE Approvals SET Decision = 'approved' WHERE Id = 7",
                &[],
            )?;
            vars.set("state", VarValue::Scalar(Value::text("approved")));
            Ok(())
        })
}

fn wf_run(db: &Database) -> Result<(), FlowError> {
    let svc = SqlWorkflowPersistenceService::new(db)?;
    let mut rt = RetryRuntime::new(77)
        .with_policy(storm_policy())
        .with_breaker(no_trip());
    svc.run_workflow(&wf_process(), "appr-7", &Variables::new(), &mut rt)
        .map(|_| ())
}

#[test]
fn wf_sharded_storm_recovers_to_unsharded_bytes() {
    storm_scenario(wf_schema, wf_run, "appr-7");
}

// ---------------------------------------------------------------------------
// SOA: XSQL page dehydration on the owning shard
// ---------------------------------------------------------------------------

const SOA_PAGES: [(&str, &str); 2] = [
    (
        "stage",
        "<xsql:page xmlns:xsql=\"urn:oracle-xsql\">\
         <xsql:dml>INSERT INTO Staging VALUES (1, {@item})</xsql:dml>\
         </xsql:page>",
    ),
    (
        "publish",
        "<xsql:page xmlns:xsql=\"urn:oracle-xsql\">\
         <xsql:dml>INSERT INTO Published VALUES (1, {@item})</xsql:dml>\
         </xsql:page>",
    ),
];

fn soa_schema(db: &Database) {
    db.connect()
        .execute_script(
            "CREATE TABLE Staging (Id INT PRIMARY KEY, Item TEXT);
             CREATE TABLE Published (Id INT PRIMARY KEY, Item TEXT);",
        )
        .unwrap();
}

fn soa_run(db: &Database) -> Result<(), FlowError> {
    let mut rt = RetryRuntime::new(77)
        .with_policy(storm_policy())
        .with_breaker(no_trip());
    run_durable_pages(
        db,
        "xsql-seq",
        &SOA_PAGES,
        "page-run-1",
        &[("item".into(), Value::text("widget"))],
        &mut rt,
    )
    .map(|_| ())
}

#[test]
fn soa_sharded_storm_recovers_to_unsharded_bytes() {
    storm_scenario(soa_schema, soa_run, "page-run-1");
}

// ---------------------------------------------------------------------------
// Scheduler determinism across shard counts: the same CHAOS_SEED and
// instance set must leave byte-identical durable state — FLOW_INSTANCES
// included — whether the fleet is 1 engine or 4. Worker assignment is
// seeded per job index (independent of shard count), routing is the
// canonical key hash, and transient-fault retries absorb the storm, so
// the final bytes are a pure function of the workload.
// ---------------------------------------------------------------------------

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(20260807)
}

/// Union of the durable instance-row columns across the fleet (the
/// breaker clock column legitimately differs under faults and is
/// excluded, as in the unsharded crash tests).
fn instances_union(shards: &[Database]) -> String {
    let mut rows: Vec<String> = Vec::new();
    for db in shards {
        if let Ok(rs) = db.connect().query(
            "SELECT InstanceKey, Process, Pc, Status, Vars FROM FLOW_INSTANCES \
             ORDER BY InstanceKey",
            &[],
        ) {
            rows.extend(rs.rows.iter().map(|r| format!("{r:?}")));
        }
    }
    rows.sort();
    rows.join("\n")
}

/// Run `stack` (one durable instance per key, routed by the scheduler to
/// the owning shard) over a fresh `n`-shard fleet under a CHAOS_SEED
/// transient storm, and return the merged durable bytes.
fn sharded_stack_bytes(
    n: usize,
    keys: &[String],
    stack_schema: fn(&Database),
    job: fn(usize, &Database) -> Result<(), FlowError>,
) -> String {
    let shards: Vec<Database> = (0..n).map(|i| Database::new(format!("det#{i}"))).collect();
    for shard in &shards {
        stack_schema(shard);
        PersistenceService::new(shard).unwrap();
    }
    let seed = chaos_seed();
    for (i, shard) in shards.iter().enumerate() {
        shard.set_fault_plan(Some(flowsql::patterns::chaos::scripted_storm(
            seed ^ (i as u64),
            HORIZON,
            10,
        )));
    }
    let scheduler = InstanceScheduler::new(3).with_seed(seed);
    let results = scheduler.run_sharded(keys, &shards, |i, _key, shard| job(i, shard));
    for slot in results {
        slot.unwrap_or_else(|e| panic!("instance failed under the storm: {e}"));
    }
    for shard in &shards {
        shard.set_fault_plan(None); // fingerprint reads run storm-free
    }
    format!(
        "{}\n-- instances --\n{}",
        merged_fingerprint(&shards, &["FLOW_INSTANCES"]),
        instances_union(&shards)
    )
}

fn det_keys() -> Vec<String> {
    (0..12).map(|i| format!("inst-{i}")).collect()
}

fn det_schema(db: &Database) {
    db.connect()
        .execute_script(
            "CREATE TABLE Jobs (Id INT PRIMARY KEY, Tag TEXT);
             CREATE TABLE Pages (Id INT PRIMARY KEY, Item TEXT);",
        )
        .unwrap();
}

fn det_process(i: usize) -> DurableProcess {
    DurableProcess::new("det").step("write", move |conn, vars| {
        conn.execute(
            "INSERT INTO Jobs VALUES (?, 'done')",
            &[Value::Int(i as i64)],
        )?;
        vars.set("n", VarValue::Scalar(Value::Int(i as i64)));
        Ok(())
    })
}

fn det_rt(i: usize) -> RetryRuntime {
    RetryRuntime::new(i as u64)
        .with_policy(storm_policy())
        .with_breaker(no_trip())
}

fn bis_det_job(i: usize, shard: &Database) -> Result<(), FlowError> {
    BisDeployment::new(DataSourceRegistry::new().with(shard.clone()))
        .with_retry(i as u64, storm_policy())
        .with_breaker(no_trip())
        .run_durable(
            shard.name(),
            &det_process(i),
            &format!("inst-{i}"),
            &Variables::new(),
        )
        .map(|_| ())
}

fn wf_det_job(i: usize, shard: &Database) -> Result<(), FlowError> {
    SqlWorkflowPersistenceService::new(shard)?
        .run_workflow(
            &det_process(i),
            &format!("inst-{i}"),
            &Variables::new(),
            &mut det_rt(i),
        )
        .map(|_| ())
}

fn soa_det_job(i: usize, shard: &Database) -> Result<(), FlowError> {
    let page = format!(
        "<xsql:page xmlns:xsql=\"urn:oracle-xsql\">\
         <xsql:dml>INSERT INTO Pages VALUES ({i}, {{@item}})</xsql:dml>\
         </xsql:page>"
    );
    let pages = [("write", page.as_str())];
    run_durable_pages(
        shard,
        "det",
        &pages,
        &format!("inst-{i}"),
        &[("item".into(), Value::text("x"))],
        &mut det_rt(i),
    )
    .map(|_| ())
}

#[test]
fn scheduler_state_is_byte_identical_across_shard_counts() {
    let keys = det_keys();
    for (name, job) in [
        (
            "bis",
            bis_det_job as fn(usize, &Database) -> Result<(), FlowError>,
        ),
        ("wf", wf_det_job),
        ("soa", soa_det_job),
    ] {
        let one = sharded_stack_bytes(1, &keys, det_schema, job);
        let four = sharded_stack_bytes(4, &keys, det_schema, job);
        assert!(
            one.contains("inst-0") && one.contains("inst-11"),
            "{name}: all instances must reach durable state"
        );
        assert_eq!(
            one, four,
            "{name}: same CHAOS_SEED must leave byte-identical state at 1 and 4 shards"
        );
    }
}
