//! Parallel multi-instance execution, tested differentially across all
//! three product stacks: N workflow instances driven concurrently by the
//! [`InstanceScheduler`] worker pool must leave the database — user
//! tables AND the durable parts of every instance row — byte-identical
//! to the same N instances run sequentially (a one-worker pool), for
//! several scheduler seeds, both fault-free and under a seeded transient
//! storm with retries.
//!
//! This is the concurrency analog of `crash_recovery.rs`: where that
//! file proves crashes cannot corrupt state, this one proves parallelism
//! cannot — as long as instances follow the pattern every product in the
//! paper assumes, *multiple parallel instances over disjoint rows*.

use std::sync::Arc;

use flowsql::bis::{BisDeployment, DataSourceRegistry};
use flowsql::flowcore::persistence::{DurableProcess, PersistenceService};
use flowsql::flowcore::retry::{BreakerConfig, RetryPolicy, RetryRuntime};
use flowsql::flowcore::scheduler::InstanceScheduler;
use flowsql::flowcore::value::{VarValue, Variables};
use flowsql::patterns::chaos::{db_fingerprint_excluding, rows_fingerprint, scripted_storm};
use flowsql::soa::run_durable_pages_many;
use flowsql::sqlkernel::{Database, MemLogStore, Value};
use flowsql::wf::SqlWorkflowPersistenceService;

const INSTANCES: usize = 12;
const WORKERS: usize = 4;
const SEEDS: [u64; 3] = [11, 42, 1337];

/// Transient-storm coverage and a retry budget that outlasts it.
const STORM_HORIZON: u64 = 150;

fn storm_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: STORM_HORIZON as u32 + 2,
        max_backoff_ticks: 8,
        ..RetryPolicy::default()
    }
}

fn no_trip() -> BreakerConfig {
    BreakerConfig {
        failure_threshold: u32::MAX,
        cooldown_ticks: 1,
    }
}

/// Per-instance retry runtime with a budget that outlasts the storm —
/// under parallel interleaving any one instance may absorb most of the
/// storm's faults, so the default 4-attempt budget is not enough.
fn storm_runtime(i: usize) -> RetryRuntime {
    RetryRuntime::new(9u64.wrapping_add(i as u64))
        .with_policy(storm_policy())
        .with_breaker(no_trip())
}

/// User tables plus the durable parts of every instance row. The breaker
/// column is excluded: retry clocks legitimately differ between a stormy
/// and a calm history (and between interleavings).
fn durable_fingerprint(db: &Database) -> String {
    let user = db_fingerprint_excluding(db, &["FLOW_INSTANCES"]);
    let instances = db
        .connect()
        .query(
            "SELECT InstanceKey, Process, Pc, Status, Vars FROM FLOW_INSTANCES \
             ORDER BY InstanceKey",
            &[],
        )
        .map(|rs| rows_fingerprint(&rs))
        .unwrap_or_default();
    format!("{user}\n-- instances --\n{instances}")
}

fn keys(prefix: &str) -> Vec<String> {
    (0..INSTANCES).map(|i| format!("{prefix}-{i}")).collect()
}

// ---------------------------------------------------------------------------
// BIS
// ---------------------------------------------------------------------------

fn bis_schema(db: &Database) {
    db.connect()
        .execute_script(
            "CREATE TABLE Orders (OrderId INT PRIMARY KEY, Qty INT);
             CREATE TABLE Shipments (ShipId INT PRIMARY KEY, OrderId INT);",
        )
        .unwrap();
    // FLOW_INSTANCES exists before any worker takes its first step, so
    // concurrent first-steppers never race on DDL.
    PersistenceService::new(db).unwrap();
}

/// Instance `i` works exclusively on rows keyed by `i`.
fn bis_process(i: usize) -> DurableProcess {
    let id = i as i64;
    DurableProcess::new("intake")
        .step("record", move |conn, vars| {
            conn.execute(
                "INSERT INTO Orders VALUES (?, ?)",
                &[Value::Int(id), Value::Int(id * 2)],
            )?;
            vars.set("order", VarValue::Scalar(Value::Int(id)));
            Ok(())
        })
        .step("ship", move |conn, vars| {
            conn.execute(
                "INSERT INTO Shipments VALUES (?, ?)",
                &[Value::Int(1000 + id), Value::Int(id)],
            )?;
            vars.set("shipped", VarValue::Scalar(Value::Bool(true)));
            Ok(())
        })
        .step("close", move |conn, vars| {
            conn.execute(
                "UPDATE Orders SET Qty = Qty + 1 WHERE OrderId = ?",
                &[Value::Int(id)],
            )?;
            vars.set("closed", VarValue::Scalar(Value::Bool(true)));
            Ok(())
        })
}

fn bis_run(workers: usize, sched_seed: u64, storm: Option<u64>) -> String {
    let store = MemLogStore::new();
    let db = Database::with_wal("par_bis", Arc::new(store));
    bis_schema(&db);
    if let Some(seed) = storm {
        db.set_fault_plan(Some(scripted_storm(seed, STORM_HORIZON, 8)));
    }
    let deployment = BisDeployment::new(DataSourceRegistry::new().with(db.clone()))
        .with_retry(77, storm_policy())
        .with_breaker(no_trip());
    let scheduler = InstanceScheduler::new(workers).with_seed(sched_seed);
    let results = deployment.run_many_durable(
        "par_bis",
        bis_process,
        &keys("order"),
        &Variables::new(),
        &scheduler,
    );
    for (i, r) in results.iter().enumerate() {
        assert!(r.is_ok(), "instance {i} failed: {r:?}");
    }
    db.set_fault_plan(None);
    durable_fingerprint(&db)
}

#[test]
fn bis_parallel_matches_sequential_fingerprint() {
    let sequential = bis_run(1, 0, None);
    for seed in SEEDS {
        assert_eq!(
            bis_run(WORKERS, seed, None),
            sequential,
            "seed {seed}: parallel run diverged from sequential"
        );
    }
}

#[test]
fn bis_parallel_matches_sequential_under_transient_storm() {
    let sequential = bis_run(1, 0, None);
    for seed in SEEDS {
        assert_eq!(
            bis_run(WORKERS, seed, Some(seed)),
            sequential,
            "seed {seed}: stormy parallel run diverged"
        );
    }
}

// ---------------------------------------------------------------------------
// WF
// ---------------------------------------------------------------------------

fn wf_schema(db: &Database) {
    db.connect()
        .execute_script("CREATE TABLE Approvals (Id INT PRIMARY KEY, Decision TEXT);")
        .unwrap();
    PersistenceService::new(db).unwrap();
}

fn wf_process(i: usize) -> DurableProcess {
    let id = i as i64;
    DurableProcess::new("approval")
        .step("submit", move |conn, vars| {
            conn.execute(
                "INSERT INTO Approvals VALUES (?, 'pending')",
                &[Value::Int(id)],
            )?;
            vars.set("state", VarValue::Scalar(Value::text("pending")));
            Ok(())
        })
        .step("decide", move |conn, vars| {
            conn.execute(
                "UPDATE Approvals SET Decision = 'approved' WHERE Id = ?",
                &[Value::Int(id)],
            )?;
            vars.set("state", VarValue::Scalar(Value::text("approved")));
            Ok(())
        })
}

fn wf_run(workers: usize, sched_seed: u64, storm: Option<u64>) -> String {
    let store = MemLogStore::new();
    let db = Database::with_wal("par_wf", Arc::new(store));
    wf_schema(&db);
    if let Some(seed) = storm {
        db.set_fault_plan(Some(scripted_storm(seed, STORM_HORIZON, 8)));
    }
    let svc = SqlWorkflowPersistenceService::new(&db).unwrap();
    let scheduler = InstanceScheduler::new(workers).with_seed(sched_seed);
    let results = svc.run_workflows(
        wf_process,
        &keys("appr"),
        &Variables::new(),
        storm_runtime,
        &scheduler,
    );
    for (i, r) in results.iter().enumerate() {
        assert!(r.is_ok(), "instance {i} failed: {r:?}");
    }
    db.set_fault_plan(None);
    durable_fingerprint(&db)
}

#[test]
fn wf_parallel_matches_sequential_fingerprint() {
    let sequential = wf_run(1, 0, None);
    for seed in SEEDS {
        assert_eq!(wf_run(WORKERS, seed, None), sequential, "seed {seed}");
    }
}

#[test]
fn wf_parallel_matches_sequential_under_transient_storm() {
    let sequential = wf_run(1, 0, None);
    for seed in SEEDS {
        assert_eq!(wf_run(WORKERS, seed, Some(seed)), sequential, "seed {seed}");
    }
}

// ---------------------------------------------------------------------------
// SOA
// ---------------------------------------------------------------------------

const SOA_PAGES: [(&str, &str); 2] = [
    (
        "stage",
        "<xsql:page xmlns:xsql=\"urn:oracle-xsql\">\
         <xsql:dml>INSERT INTO Staging VALUES ({@id}, {@item})</xsql:dml>\
         </xsql:page>",
    ),
    (
        "publish",
        "<xsql:page xmlns:xsql=\"urn:oracle-xsql\">\
         <xsql:dml>INSERT INTO Published VALUES ({@id}, {@item})</xsql:dml>\
         <xsql:query>SELECT Item FROM Published WHERE Id = {@id}</xsql:query>\
         </xsql:page>",
    ),
];

fn soa_schema(db: &Database) {
    db.connect()
        .execute_script(
            "CREATE TABLE Staging (Id INT PRIMARY KEY, Item TEXT);
             CREATE TABLE Published (Id INT PRIMARY KEY, Item TEXT);",
        )
        .unwrap();
    PersistenceService::new(db).unwrap();
}

fn soa_params(i: usize) -> Vec<(String, Value)> {
    vec![
        ("id".into(), Value::Int(i as i64)),
        ("item".into(), Value::text(format!("item{i}"))),
    ]
}

fn soa_run(workers: usize, sched_seed: u64, storm: Option<u64>) -> String {
    let store = MemLogStore::new();
    let db = Database::with_wal("par_soa", Arc::new(store));
    soa_schema(&db);
    if let Some(seed) = storm {
        db.set_fault_plan(Some(scripted_storm(seed, STORM_HORIZON, 8)));
    }
    let scheduler = InstanceScheduler::new(workers).with_seed(sched_seed);
    let results = run_durable_pages_many(
        &db,
        "xsql-seq",
        &SOA_PAGES,
        &keys("page"),
        soa_params,
        storm_runtime,
        &scheduler,
    );
    for (i, r) in results.iter().enumerate() {
        assert!(r.is_ok(), "instance {i} failed: {r:?}");
    }
    db.set_fault_plan(None);
    durable_fingerprint(&db)
}

#[test]
fn soa_parallel_matches_sequential_fingerprint() {
    let sequential = soa_run(1, 0, None);
    for seed in SEEDS {
        assert_eq!(soa_run(WORKERS, seed, None), sequential, "seed {seed}");
    }
}

#[test]
fn soa_parallel_matches_sequential_under_transient_storm() {
    let sequential = soa_run(1, 0, None);
    for seed in SEEDS {
        assert_eq!(
            soa_run(WORKERS, seed, Some(seed)),
            sequential,
            "seed {seed}"
        );
    }
}

// ---------------------------------------------------------------------------
// Group commit under the same differential lens
// ---------------------------------------------------------------------------

#[test]
fn parallel_instances_with_group_commit_match_sequential() {
    // Same BIS workload, but the parallel run coalesces its commits
    // through the WAL group sequencer — durable state must not notice.
    let sequential = bis_run(1, 0, None);
    let store = MemLogStore::new();
    let db = Database::with_wal("par_bis", Arc::new(store.clone()));
    bis_schema(&db);
    db.set_group_commit_window(3);
    let deployment = BisDeployment::new(DataSourceRegistry::new().with(db.clone()))
        .with_retry(77, storm_policy())
        .with_breaker(no_trip());
    let scheduler = InstanceScheduler::new(WORKERS).with_seed(42);
    let results = deployment.run_many_durable(
        "par_bis",
        bis_process,
        &keys("order"),
        &Variables::new(),
        &scheduler,
    );
    for (i, r) in results.iter().enumerate() {
        assert!(r.is_ok(), "instance {i} failed: {r:?}");
    }
    db.set_group_commit_window(0);
    assert_eq!(durable_fingerprint(&db), sequential);
    // And the grouped log recovers to the same state.
    drop(db);
    let db2 = Database::recover("par_bis", Arc::new(store)).unwrap();
    assert_eq!(durable_fingerprint(&db2), sequential);
}
