/root/repo/target/release/deps/pattern_cost-1cdb3044e7b1ceb6.d: crates/bench/benches/pattern_cost.rs

/root/repo/target/release/deps/pattern_cost-1cdb3044e7b1ceb6: crates/bench/benches/pattern_cost.rs

crates/bench/benches/pattern_cost.rs:
