/root/repo/target/release/deps/patterns-be3d3b5b8fd640f0.d: crates/patterns/src/lib.rs crates/patterns/src/paper.rs crates/patterns/src/pattern.rs crates/patterns/src/probe.rs crates/patterns/src/product.rs crates/patterns/src/report.rs crates/patterns/src/support.rs crates/patterns/src/taxonomy.rs

/root/repo/target/release/deps/libpatterns-be3d3b5b8fd640f0.rlib: crates/patterns/src/lib.rs crates/patterns/src/paper.rs crates/patterns/src/pattern.rs crates/patterns/src/probe.rs crates/patterns/src/product.rs crates/patterns/src/report.rs crates/patterns/src/support.rs crates/patterns/src/taxonomy.rs

/root/repo/target/release/deps/libpatterns-be3d3b5b8fd640f0.rmeta: crates/patterns/src/lib.rs crates/patterns/src/paper.rs crates/patterns/src/pattern.rs crates/patterns/src/probe.rs crates/patterns/src/product.rs crates/patterns/src/report.rs crates/patterns/src/support.rs crates/patterns/src/taxonomy.rs

crates/patterns/src/lib.rs:
crates/patterns/src/paper.rs:
crates/patterns/src/pattern.rs:
crates/patterns/src/probe.rs:
crates/patterns/src/product.rs:
crates/patterns/src/report.rs:
crates/patterns/src/support.rs:
crates/patterns/src/taxonomy.rs:
