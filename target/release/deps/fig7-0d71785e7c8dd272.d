/root/repo/target/release/deps/fig7-0d71785e7c8dd272.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-0d71785e7c8dd272: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
