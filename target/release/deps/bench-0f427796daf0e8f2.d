/root/repo/target/release/deps/bench-0f427796daf0e8f2.d: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/rng.rs

/root/repo/target/release/deps/libbench-0f427796daf0e8f2.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/rng.rs

/root/repo/target/release/deps/libbench-0f427796daf0e8f2.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs crates/bench/src/rng.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
crates/bench/src/rng.rs:
