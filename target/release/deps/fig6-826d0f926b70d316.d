/root/repo/target/release/deps/fig6-826d0f926b70d316.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-826d0f926b70d316: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
