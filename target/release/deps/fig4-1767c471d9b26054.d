/root/repo/target/release/deps/fig4-1767c471d9b26054.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-1767c471d9b26054: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
