/root/repo/target/release/deps/bench_concurrency-7d44e3721620a42e.d: crates/bench/src/bin/bench_concurrency.rs

/root/repo/target/release/deps/bench_concurrency-7d44e3721620a42e: crates/bench/src/bin/bench_concurrency.rs

crates/bench/src/bin/bench_concurrency.rs:
