/root/repo/target/release/deps/table1-311048d3b5707257.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-311048d3b5707257: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
