/root/repo/target/release/deps/bis-da21e3b1eb703617.d: crates/bis/src/lib.rs crates/bis/src/activities.rs crates/bis/src/cursor.rs crates/bis/src/datasource.rs crates/bis/src/deployment.rs crates/bis/src/integration.rs crates/bis/src/sample.rs crates/bis/src/setref.rs

/root/repo/target/release/deps/libbis-da21e3b1eb703617.rlib: crates/bis/src/lib.rs crates/bis/src/activities.rs crates/bis/src/cursor.rs crates/bis/src/datasource.rs crates/bis/src/deployment.rs crates/bis/src/integration.rs crates/bis/src/sample.rs crates/bis/src/setref.rs

/root/repo/target/release/deps/libbis-da21e3b1eb703617.rmeta: crates/bis/src/lib.rs crates/bis/src/activities.rs crates/bis/src/cursor.rs crates/bis/src/datasource.rs crates/bis/src/deployment.rs crates/bis/src/integration.rs crates/bis/src/sample.rs crates/bis/src/setref.rs

crates/bis/src/lib.rs:
crates/bis/src/activities.rs:
crates/bis/src/cursor.rs:
crates/bis/src/datasource.rs:
crates/bis/src/deployment.rs:
crates/bis/src/integration.rs:
crates/bis/src/sample.rs:
crates/bis/src/setref.rs:
