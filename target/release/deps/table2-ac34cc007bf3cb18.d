/root/repo/target/release/deps/table2-ac34cc007bf3cb18.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-ac34cc007bf3cb18: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
