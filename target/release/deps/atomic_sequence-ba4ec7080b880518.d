/root/repo/target/release/deps/atomic_sequence-ba4ec7080b880518.d: crates/bench/benches/atomic_sequence.rs

/root/repo/target/release/deps/atomic_sequence-ba4ec7080b880518: crates/bench/benches/atomic_sequence.rs

crates/bench/benches/atomic_sequence.rs:
