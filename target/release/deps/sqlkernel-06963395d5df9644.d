/root/repo/target/release/deps/sqlkernel-06963395d5df9644.d: crates/sqlkernel/src/lib.rs crates/sqlkernel/src/ast.rs crates/sqlkernel/src/catalog.rs crates/sqlkernel/src/db.rs crates/sqlkernel/src/error.rs crates/sqlkernel/src/exec/mod.rs crates/sqlkernel/src/exec/ddl.rs crates/sqlkernel/src/exec/dml.rs crates/sqlkernel/src/exec/select.rs crates/sqlkernel/src/expr.rs crates/sqlkernel/src/lexer.rs crates/sqlkernel/src/parser.rs crates/sqlkernel/src/schema.rs crates/sqlkernel/src/storage.rs crates/sqlkernel/src/sync.rs crates/sqlkernel/src/token.rs crates/sqlkernel/src/txn.rs crates/sqlkernel/src/types.rs

/root/repo/target/release/deps/libsqlkernel-06963395d5df9644.rlib: crates/sqlkernel/src/lib.rs crates/sqlkernel/src/ast.rs crates/sqlkernel/src/catalog.rs crates/sqlkernel/src/db.rs crates/sqlkernel/src/error.rs crates/sqlkernel/src/exec/mod.rs crates/sqlkernel/src/exec/ddl.rs crates/sqlkernel/src/exec/dml.rs crates/sqlkernel/src/exec/select.rs crates/sqlkernel/src/expr.rs crates/sqlkernel/src/lexer.rs crates/sqlkernel/src/parser.rs crates/sqlkernel/src/schema.rs crates/sqlkernel/src/storage.rs crates/sqlkernel/src/sync.rs crates/sqlkernel/src/token.rs crates/sqlkernel/src/txn.rs crates/sqlkernel/src/types.rs

/root/repo/target/release/deps/libsqlkernel-06963395d5df9644.rmeta: crates/sqlkernel/src/lib.rs crates/sqlkernel/src/ast.rs crates/sqlkernel/src/catalog.rs crates/sqlkernel/src/db.rs crates/sqlkernel/src/error.rs crates/sqlkernel/src/exec/mod.rs crates/sqlkernel/src/exec/ddl.rs crates/sqlkernel/src/exec/dml.rs crates/sqlkernel/src/exec/select.rs crates/sqlkernel/src/expr.rs crates/sqlkernel/src/lexer.rs crates/sqlkernel/src/parser.rs crates/sqlkernel/src/schema.rs crates/sqlkernel/src/storage.rs crates/sqlkernel/src/sync.rs crates/sqlkernel/src/token.rs crates/sqlkernel/src/txn.rs crates/sqlkernel/src/types.rs

crates/sqlkernel/src/lib.rs:
crates/sqlkernel/src/ast.rs:
crates/sqlkernel/src/catalog.rs:
crates/sqlkernel/src/db.rs:
crates/sqlkernel/src/error.rs:
crates/sqlkernel/src/exec/mod.rs:
crates/sqlkernel/src/exec/ddl.rs:
crates/sqlkernel/src/exec/dml.rs:
crates/sqlkernel/src/exec/select.rs:
crates/sqlkernel/src/expr.rs:
crates/sqlkernel/src/lexer.rs:
crates/sqlkernel/src/parser.rs:
crates/sqlkernel/src/schema.rs:
crates/sqlkernel/src/storage.rs:
crates/sqlkernel/src/sync.rs:
crates/sqlkernel/src/token.rs:
crates/sqlkernel/src/txn.rs:
crates/sqlkernel/src/types.rs:
