/root/repo/target/release/deps/xmlval-52ec3382b7221b97.d: crates/xmlval/src/lib.rs crates/xmlval/src/error.rs crates/xmlval/src/node.rs crates/xmlval/src/parse.rs crates/xmlval/src/path.rs crates/xmlval/src/rowset.rs

/root/repo/target/release/deps/libxmlval-52ec3382b7221b97.rlib: crates/xmlval/src/lib.rs crates/xmlval/src/error.rs crates/xmlval/src/node.rs crates/xmlval/src/parse.rs crates/xmlval/src/path.rs crates/xmlval/src/rowset.rs

/root/repo/target/release/deps/libxmlval-52ec3382b7221b97.rmeta: crates/xmlval/src/lib.rs crates/xmlval/src/error.rs crates/xmlval/src/node.rs crates/xmlval/src/parse.rs crates/xmlval/src/path.rs crates/xmlval/src/rowset.rs

crates/xmlval/src/lib.rs:
crates/xmlval/src/error.rs:
crates/xmlval/src/node.rs:
crates/xmlval/src/parse.rs:
crates/xmlval/src/path.rs:
crates/xmlval/src/rowset.rs:
