/root/repo/target/release/deps/flowcore-3beed248bfad8ff0.d: crates/flowcore/src/lib.rs crates/flowcore/src/activity.rs crates/flowcore/src/audit.rs crates/flowcore/src/bpel.rs crates/flowcore/src/builtins.rs crates/flowcore/src/engine.rs crates/flowcore/src/error.rs crates/flowcore/src/process.rs crates/flowcore/src/service.rs crates/flowcore/src/value.rs

/root/repo/target/release/deps/libflowcore-3beed248bfad8ff0.rlib: crates/flowcore/src/lib.rs crates/flowcore/src/activity.rs crates/flowcore/src/audit.rs crates/flowcore/src/bpel.rs crates/flowcore/src/builtins.rs crates/flowcore/src/engine.rs crates/flowcore/src/error.rs crates/flowcore/src/process.rs crates/flowcore/src/service.rs crates/flowcore/src/value.rs

/root/repo/target/release/deps/libflowcore-3beed248bfad8ff0.rmeta: crates/flowcore/src/lib.rs crates/flowcore/src/activity.rs crates/flowcore/src/audit.rs crates/flowcore/src/bpel.rs crates/flowcore/src/builtins.rs crates/flowcore/src/engine.rs crates/flowcore/src/error.rs crates/flowcore/src/process.rs crates/flowcore/src/service.rs crates/flowcore/src/value.rs

crates/flowcore/src/lib.rs:
crates/flowcore/src/activity.rs:
crates/flowcore/src/audit.rs:
crates/flowcore/src/bpel.rs:
crates/flowcore/src/builtins.rs:
crates/flowcore/src/engine.rs:
crates/flowcore/src/error.rs:
crates/flowcore/src/process.rs:
crates/flowcore/src/service.rs:
crates/flowcore/src/value.rs:
