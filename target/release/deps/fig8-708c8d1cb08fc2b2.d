/root/repo/target/release/deps/fig8-708c8d1cb08fc2b2.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-708c8d1cb08fc2b2: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
