/root/repo/target/release/deps/concurrent_readers-4adb33dc4c63f4b2.d: crates/bench/benches/concurrent_readers.rs

/root/repo/target/release/deps/concurrent_readers-4adb33dc4c63f4b2: crates/bench/benches/concurrent_readers.rs

crates/bench/benches/concurrent_readers.rs:
