/root/repo/target/release/deps/flowsql-8f990b2fb14fe7ba.d: src/lib.rs

/root/repo/target/release/deps/libflowsql-8f990b2fb14fe7ba.rlib: src/lib.rs

/root/repo/target/release/deps/libflowsql-8f990b2fb14fe7ba.rmeta: src/lib.rs

src/lib.rs:
