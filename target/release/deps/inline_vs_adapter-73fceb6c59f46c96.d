/root/repo/target/release/deps/inline_vs_adapter-73fceb6c59f46c96.d: crates/bench/benches/inline_vs_adapter.rs

/root/repo/target/release/deps/inline_vs_adapter-73fceb6c59f46c96: crates/bench/benches/inline_vs_adapter.rs

crates/bench/benches/inline_vs_adapter.rs:
