/root/repo/target/release/deps/fig3-2b4540473c72eaea.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-2b4540473c72eaea: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
