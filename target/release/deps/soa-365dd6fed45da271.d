/root/repo/target/release/deps/soa-365dd6fed45da271.d: crates/soa/src/lib.rs crates/soa/src/bpelx.rs crates/soa/src/cursor.rs crates/soa/src/env.rs crates/soa/src/functions.rs crates/soa/src/integration.rs crates/soa/src/sample.rs crates/soa/src/xsql.rs

/root/repo/target/release/deps/libsoa-365dd6fed45da271.rlib: crates/soa/src/lib.rs crates/soa/src/bpelx.rs crates/soa/src/cursor.rs crates/soa/src/env.rs crates/soa/src/functions.rs crates/soa/src/integration.rs crates/soa/src/sample.rs crates/soa/src/xsql.rs

/root/repo/target/release/deps/libsoa-365dd6fed45da271.rmeta: crates/soa/src/lib.rs crates/soa/src/bpelx.rs crates/soa/src/cursor.rs crates/soa/src/env.rs crates/soa/src/functions.rs crates/soa/src/integration.rs crates/soa/src/sample.rs crates/soa/src/xsql.rs

crates/soa/src/lib.rs:
crates/soa/src/bpelx.rs:
crates/soa/src/cursor.rs:
crates/soa/src/env.rs:
crates/soa/src/functions.rs:
crates/soa/src/integration.rs:
crates/soa/src/sample.rs:
crates/soa/src/xsql.rs:
