/root/repo/target/release/deps/fig5-239feac56198167d.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-239feac56198167d: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
