/root/repo/target/release/deps/fig2-b022d8d19fa8d5ab.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-b022d8d19fa8d5ab: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
