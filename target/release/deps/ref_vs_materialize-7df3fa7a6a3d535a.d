/root/repo/target/release/deps/ref_vs_materialize-7df3fa7a6a3d535a.d: crates/bench/benches/ref_vs_materialize.rs

/root/repo/target/release/deps/ref_vs_materialize-7df3fa7a6a3d535a: crates/bench/benches/ref_vs_materialize.rs

crates/bench/benches/ref_vs_materialize.rs:
