/root/repo/target/release/deps/sqlkernel_core-b34d43fff8326ec6.d: crates/bench/benches/sqlkernel_core.rs

/root/repo/target/release/deps/sqlkernel_core-b34d43fff8326ec6: crates/bench/benches/sqlkernel_core.rs

crates/bench/benches/sqlkernel_core.rs:
