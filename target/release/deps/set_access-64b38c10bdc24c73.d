/root/repo/target/release/deps/set_access-64b38c10bdc24c73.d: crates/bench/benches/set_access.rs

/root/repo/target/release/deps/set_access-64b38c10bdc24c73: crates/bench/benches/set_access.rs

crates/bench/benches/set_access.rs:
