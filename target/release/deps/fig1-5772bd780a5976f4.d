/root/repo/target/release/deps/fig1-5772bd780a5976f4.d: crates/bench/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-5772bd780a5976f4: crates/bench/src/bin/fig1.rs

crates/bench/src/bin/fig1.rs:
