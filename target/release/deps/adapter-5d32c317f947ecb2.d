/root/repo/target/release/deps/adapter-5d32c317f947ecb2.d: crates/adapter/src/lib.rs crates/adapter/src/envelope.rs crates/adapter/src/service.rs

/root/repo/target/release/deps/libadapter-5d32c317f947ecb2.rlib: crates/adapter/src/lib.rs crates/adapter/src/envelope.rs crates/adapter/src/service.rs

/root/repo/target/release/deps/libadapter-5d32c317f947ecb2.rmeta: crates/adapter/src/lib.rs crates/adapter/src/envelope.rs crates/adapter/src/service.rs

crates/adapter/src/lib.rs:
crates/adapter/src/envelope.rs:
crates/adapter/src/service.rs:
