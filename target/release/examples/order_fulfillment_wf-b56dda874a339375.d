/root/repo/target/release/examples/order_fulfillment_wf-b56dda874a339375.d: examples/order_fulfillment_wf.rs

/root/repo/target/release/examples/order_fulfillment_wf-b56dda874a339375: examples/order_fulfillment_wf.rs

examples/order_fulfillment_wf.rs:
