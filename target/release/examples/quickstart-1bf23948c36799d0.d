/root/repo/target/release/examples/quickstart-1bf23948c36799d0.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-1bf23948c36799d0: examples/quickstart.rs

examples/quickstart.rs:
