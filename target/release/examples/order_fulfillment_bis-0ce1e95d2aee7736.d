/root/repo/target/release/examples/order_fulfillment_bis-0ce1e95d2aee7736.d: examples/order_fulfillment_bis.rs

/root/repo/target/release/examples/order_fulfillment_bis-0ce1e95d2aee7736: examples/order_fulfillment_bis.rs

examples/order_fulfillment_bis.rs:
