/root/repo/target/release/examples/order_fulfillment_soa-a673dec802a00240.d: examples/order_fulfillment_soa.rs

/root/repo/target/release/examples/order_fulfillment_soa-a673dec802a00240: examples/order_fulfillment_soa.rs

examples/order_fulfillment_soa.rs:
