/root/repo/target/debug/examples/order_fulfillment_soa-402fee1c35a411d1.d: examples/order_fulfillment_soa.rs

/root/repo/target/debug/examples/order_fulfillment_soa-402fee1c35a411d1: examples/order_fulfillment_soa.rs

examples/order_fulfillment_soa.rs:
