/root/repo/target/debug/examples/bpel_portability-4af046ebd0816284.d: examples/bpel_portability.rs

/root/repo/target/debug/examples/bpel_portability-4af046ebd0816284: examples/bpel_portability.rs

examples/bpel_portability.rs:
