/root/repo/target/debug/examples/dynamic_binding-59ec3319f679db21.d: examples/dynamic_binding.rs

/root/repo/target/debug/examples/dynamic_binding-59ec3319f679db21: examples/dynamic_binding.rs

examples/dynamic_binding.rs:
