/root/repo/target/debug/examples/order_fulfillment_bis-bca26d6db34dbc05.d: examples/order_fulfillment_bis.rs

/root/repo/target/debug/examples/order_fulfillment_bis-bca26d6db34dbc05: examples/order_fulfillment_bis.rs

examples/order_fulfillment_bis.rs:
