/root/repo/target/debug/examples/patterns_tour-42de05aa01462458.d: examples/patterns_tour.rs

/root/repo/target/debug/examples/patterns_tour-42de05aa01462458: examples/patterns_tour.rs

examples/patterns_tour.rs:
