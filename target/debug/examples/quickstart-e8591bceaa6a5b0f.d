/root/repo/target/debug/examples/quickstart-e8591bceaa6a5b0f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e8591bceaa6a5b0f: examples/quickstart.rs

examples/quickstart.rs:
