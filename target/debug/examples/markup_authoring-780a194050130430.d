/root/repo/target/debug/examples/markup_authoring-780a194050130430.d: examples/markup_authoring.rs

/root/repo/target/debug/examples/markup_authoring-780a194050130430: examples/markup_authoring.rs

examples/markup_authoring.rs:
