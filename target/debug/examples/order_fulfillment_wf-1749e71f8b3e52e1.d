/root/repo/target/debug/examples/order_fulfillment_wf-1749e71f8b3e52e1.d: examples/order_fulfillment_wf.rs

/root/repo/target/debug/examples/order_fulfillment_wf-1749e71f8b3e52e1: examples/order_fulfillment_wf.rs

examples/order_fulfillment_wf.rs:
