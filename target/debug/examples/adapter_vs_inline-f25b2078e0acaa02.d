/root/repo/target/debug/examples/adapter_vs_inline-f25b2078e0acaa02.d: examples/adapter_vs_inline.rs

/root/repo/target/debug/examples/adapter_vs_inline-f25b2078e0acaa02: examples/adapter_vs_inline.rs

examples/adapter_vs_inline.rs:
