/root/repo/target/debug/deps/fig5-0a06110650d92175.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-0a06110650d92175: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
